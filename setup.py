"""Legacy shim: the sandbox has setuptools without the `wheel` package, so
PEP-660 editable installs fail; `setup.py develop` still works offline."""
from setuptools import setup

setup()
