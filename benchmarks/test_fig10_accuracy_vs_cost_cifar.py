"""Fig. 10 — accuracy vs total cost (Eq. 5), all methods, image task.

Paper claims: under the cost axis Group-FEL's advantage grows. FedProx and
SCAFFOLD pay extra per-round compute/communication (1.3× training, 2×
payload respectively); SHARE's KLD grouping produces oversized costly
groups; FedCLAR trains every cluster every round. These are structural,
so the cost-axis orderings are robust at any scale.
"""

import numpy as np

from _util import SCALE, acc_at, run_once
from repro.experiments import format_series
from test_fig9_accuracy_vs_round import get_result


def test_fig10(benchmark):
    result = run_once(benchmark, get_result)
    series = result["series"]
    print("\n" + format_series(series, "cost", "accuracy", title="Fig 10"))

    # Evaluate at a budget everyone could reach.
    budget = min(s["cost"][-1] for s in series.values())
    accs = {k: acc_at(v, budget) for k, v in series.items()}
    print(f"accuracy at matched budget {budget:.0f}: "
          f"{ {k: round(v, 3) for k, v in accs.items()} }")

    # Group-FEL beats the personalized baseline and stays competitive with
    # the best method under matched cost.
    assert accs["group_fel"] > accs["fedclar"] - 0.02, (
        f"group_fel {accs['group_fel']:.3f} vs fedclar {accs['fedclar']:.3f}"
    )
    best = max(accs.values())
    assert accs["group_fel"] >= best - 0.06

    # Structural cost handicaps (the paper's §7.3.1 explanation): with the
    # same random grouping, FedProx pays ~1.3× compute per round and
    # SCAFFOLD masks a 2× payload — their mean per-round cost must exceed
    # FedAvg's.
    def mean_round_cost(series_dict):
        costs_arr = np.asarray(series_dict["cost"], dtype=float)
        return float(np.diff(np.concatenate([[0.0], costs_arr])).mean())

    round_costs = {k: mean_round_cost(v) for k in ("fedavg", "fedprox", "scaffold")
                   for v in [series[k]]}
    print(f"mean per-round cost: "
          f"{ {k: round(v) for k, v in round_costs.items()} }")
    assert round_costs["fedprox"] > 1.1 * round_costs["fedavg"]
    assert round_costs["scaffold"] > 1.05 * round_costs["fedavg"]
