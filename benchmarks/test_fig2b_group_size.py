"""Fig. 2b — accuracy vs cost for fixed random group sizes.

Paper claim: simply shrinking the group size does not reduce the total
cost needed for a given accuracy — smaller random groups are more skewed,
so their cheap rounds buy less progress. The curves for GS ∈ {5,10,15,20}
end up interleaved rather than ordered by group size.
"""

import numpy as np

from _util import SCALE, acc_at, run_once
from repro.experiments import fig2b_group_size, format_series


def test_fig2b(benchmark):
    result = run_once(benchmark, fig2b_group_size, SCALE)
    series = result["series"]
    print("\n" + format_series(series, "cost", "accuracy", title="Fig 2b"))
    assert len(series) >= 3

    budget = min(s["cost"][-1] for s in series.values())
    accs = {label: acc_at(s, budget) for label, s in series.items()}
    print(f"accuracy at shared budget {budget:.0f}: {accs}")

    # All group sizes converge to comparable accuracy under matched cost:
    # the smallest GS is NOT a clear winner (the paper's point).
    values = np.array(list(accs.values()))
    assert values.min() > 0.3, "all configurations must learn"
    smallest = accs[min(accs, key=lambda k: int(k.split("=")[1]))]
    assert smallest <= values.max() + 1e-9
    assert smallest < values.max() + 0.05, (
        "smallest group size should not dominate at matched cost"
    )
