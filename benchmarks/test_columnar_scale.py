"""Population-scale axis: grouping + sampling + accounting on the
columnar store at 10³ → 10⁶ clients, with **zero client materialization**.

The point of :class:`repro.population.ColumnarPopulation`: everything the
control plane does per round — CoV group formation, the sampling vector
p/Γ_p, cost-ledger and communication accounting — runs on flat arrays,
so population size is bounded by memory for a |K|×m int64 matrix, not by
Python object count. The stores here are metadata-only (``synthetic``):
any attempt to materialize a client would raise, which is the structural
proof that none of the measured stages needs one.

Folds a ``columnar`` axis into ``BENCH_hotpaths.json`` (preserving the
axes written by ``test_hotpaths.py`` / ``test_population_maintenance.py``).
Smoke mode (``REPRO_BENCH_SMOKE=1``) trims the size sweep to 10⁵ and the
repeats; the full run covers 10⁶.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from _util import run_once
from repro.costs.ledger import CostLedger
from repro.costs.model import CostModel, LinearCost, QuadraticCost
from repro.grouping import CoVGrouping, group_clients_per_edge
from repro.population import ColumnarPopulation, group_label_counts
from repro.sampling import (
    gamma_p,
    sample_without_replacement,
    sampling_probabilities_from_counts,
)
from repro.topology.comm import CommModel
from repro.topology.network import HierarchicalTopology

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
SIZES = [1_000, 10_000, 100_000] if SMOKE else [1_000, 10_000, 100_000, 1_000_000]
CLIENTS_PER_EDGE = 200
NUM_CLASSES = 20
OUT_PATH = Path(__file__).parents[1] / "BENCH_hotpaths.json"


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _bench_scale(num_clients: int) -> dict:
    repeats = 1 if num_clients >= 1_000_000 else (2 if SMOKE else 3)
    store = ColumnarPopulation.synthetic(num_clients, NUM_CLASSES, seed=num_clients)
    assert not store.has_data  # materializing any client would raise
    num_edges = max(1, num_clients // CLIENTS_PER_EDGE)
    edges = np.array_split(np.arange(num_clients), num_edges)
    grouper = CoVGrouping(min_group_size=20, max_cov=0.6)

    grouping_s, groups = _best_of(
        lambda: group_clients_per_edge(grouper, store.L, edges, rng=0), repeats
    )

    def sample_stage():
        counts = group_label_counts(store.L, groups)
        p = sampling_probabilities_from_counts(counts, "esrcov")
        g = gamma_p(p)
        selected = sample_without_replacement(p, min(16, len(groups)), rng=0)
        return p, g, selected

    sampling_s, (p, g_p, selected) = _best_of(sample_stage, repeats)

    sizes = np.array([grp.size for grp in groups], dtype=np.int64)
    n_g = np.array([grp.n_g for grp in groups], dtype=np.int64)
    edge_ids = np.array([grp.edge_id for grp in groups], dtype=np.int64)
    ledger = CostLedger(
        CostModel(training=LinearCost(c1=1.0), group_op=QuadraticCost(c2=1.0)),
        store.client_sizes(),
    )
    comm = CommModel(
        HierarchicalTopology(num_clients=num_clients, num_edges=num_edges),
        model_bytes=8.0 * 4096,
    )

    def account_stage():
        cost = ledger.charge_round_columnar(sizes, n_g, group_rounds=2, local_rounds=2)
        traffic = comm.round_traffic_columnar(sizes, edge_ids, group_rounds=2)
        return cost, traffic

    accounting_s, (cost, traffic) = _best_of(account_stage, repeats)

    assert not store.has_data  # still nothing materialized, end to end
    assert np.isfinite(g_p) and np.isfinite(cost) and selected.size
    return {
        "num_clients": num_clients,
        "classes": NUM_CLASSES,
        "num_edges": num_edges,
        "num_groups": len(groups),
        "grouping_s": grouping_s,
        "sampling_s": sampling_s,
        "accounting_s": accounting_s,
        "gamma_p": float(g_p),
        "round_cost": float(cost),
        "round_gbytes": traffic.total_bytes / 1e9,
    }


def _bench_all() -> list[dict]:
    return [_bench_scale(k) for k in SIZES]


def test_columnar_control_plane_scales_without_materialization(benchmark):
    rows = run_once(benchmark, _bench_all)

    print()
    for row in rows:
        print(
            f"columnar @ |K|={row['num_clients']:>9,}: "
            f"{row['num_groups']:>6,} groups | "
            f"grouping {row['grouping_s'] * 1e3:9.1f} ms | "
            f"sampling {row['sampling_s'] * 1e3:7.2f} ms | "
            f"accounting {row['accounting_s'] * 1e3:6.2f} ms"
        )

    # Sampling + accounting must stay decoupled from population scale:
    # near-linear array passes, never per-client Python work. 1000× the
    # clients may cost at most ~3000× in those stages (generous CI slack);
    # a per-object path would blow through this by orders of magnitude.
    first, last = rows[0], rows[-1]
    scale = last["num_clients"] / first["num_clients"]
    for stage in ("sampling_s", "accounting_s"):
        ratio = last[stage] / max(first[stage], 1e-9)
        assert ratio < 3.0 * scale, (stage, ratio, scale, rows)

    report = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {
        "benchmark": "hotpaths"
    }
    report["columnar"] = rows
    OUT_PATH.write_text(json.dumps(report, indent=1))
    print(f"wrote {OUT_PATH}")
