"""Fig. 9 — accuracy vs global round, all methods, image task.

Paper claims: Group-FEL outperforms the baselines on the round axis and
FedCLAR's global accuracy drops after its clustering round (personalized
FL does not serve the global task). At the fast scale Group-FEL ties the
strongest training-based baselines within noise (EXPERIMENTS.md records
measured values); FedCLAR's drop and everyone-learns are robust.
"""

import numpy as np

from _util import SCALE, final_acc, run_once
from repro.experiments import fig9_fig10_all_methods_cifar, format_series

_CACHE: dict = {}


def get_result():
    if "res" not in _CACHE:
        _CACHE["res"] = fig9_fig10_all_methods_cifar(SCALE, seed=0)
    return _CACHE["res"]


def test_fig9(benchmark):
    result = run_once(benchmark, get_result)
    series = result["series"]
    print("\n" + format_series(series, "round", "accuracy", title="Fig 9"))
    finals = {k: final_acc(v) for k, v in series.items()}
    print(f"final accuracy: { {k: round(v, 3) for k, v in finals.items()} }")

    # Every global-model method learns the task.
    for name in ("fedavg", "fedprox", "scaffold", "group_fel", "ouea", "share"):
        assert finals[name] > 0.4, f"{name} failed to learn"

    # Group-FEL is competitive with every baseline on the round axis.
    best_baseline = max(v for k, v in finals.items() if k != "group_fel")
    assert finals["group_fel"] >= best_baseline - 0.06

    # FedCLAR: accuracy drops after the clustering round (paper Fig. 9).
    fedclar = series["fedclar"]
    acc = np.asarray(fedclar["accuracy"])
    peak_before_end = acc.max()
    assert acc[-1] < peak_before_end - 0.01, (
        "FedCLAR's global accuracy should drop after clustering"
    )
    # And FedCLAR ends below Group-FEL.
    assert finals["fedclar"] < finals["group_fel"]
