"""Theory check (§4.3) — CoV-Grouping reduces the bound's driver ζ_g.

Not a paper figure, but the mechanism behind Theorem 1's first key
observation: groups with lower label-count CoV have group loss functions
closer to the global loss, i.e. smaller empirical ζ_g — and therefore a
smaller Theorem-1 bound at matched (η, T, K, E).
"""

import numpy as np

from _util import SCALE, run_once
from repro.experiments.configs import get_scale, make_image_workload
from repro.grouping import CoVGrouping, RandomGrouping, group_clients_per_edge
from repro.sampling import sampling_probabilities
from repro.theory import (
    BoundInputs,
    convergence_bound,
    estimate_group_heterogeneity,
    gamma_big,
    gamma_of_group,
    gamma_p,
)


def measure():
    s = get_scale(SCALE)
    wl = make_image_workload(s, alpha=0.1, seed=0)
    model = wl.model_fn()
    params = model.get_params()
    sizes = wl.fed.client_sizes()
    out = {}
    for name, grouper in [
        ("RG", RandomGrouping(group_size=s.min_group_size)),
        ("CoVG", CoVGrouping(s.min_group_size, s.max_cov)),
    ]:
        groups = group_clients_per_edge(grouper, wl.fed.L, wl.edge_assignment, rng=0)
        zg2, _ = estimate_group_heterogeneity(model, params, wl.fed.clients, groups)
        p = sampling_probabilities(groups, "esrcov", min_prob=1e-3)
        inp = BoundInputs(
            f0_gap=2.3, eta=0.01, T=100, K=s.group_rounds, E=s.local_rounds,
            L=1.0, sigma2=1.0, zeta2=1.0, zeta_g2=zg2,
            gamma=float(np.mean([gamma_of_group(g, sizes) for g in groups])),
            Gamma=gamma_big(groups), Gamma_p=gamma_p(p), S=s.num_sampled,
            group_size=float(np.mean([g.size for g in groups])),
        )
        out[name] = {
            "zeta_g2": zg2,
            "avg_cov": float(np.mean([g.cov for g in groups])),
            "bound": convergence_bound(inp),
        }
    return out


def test_covg_reduces_zeta_g(benchmark):
    result = run_once(benchmark, measure)
    for name, row in result.items():
        print(f"\n{name:5s}: ζ_g²={row['zeta_g2']:.4f} "
              f"avgCoV={row['avg_cov']:.3f} bound={row['bound']:.4f}")
    # Lower CoV groups ⇒ lower empirical group heterogeneity.
    assert result["CoVG"]["avg_cov"] < result["RG"]["avg_cov"]
    assert result["CoVG"]["zeta_g2"] < result["RG"]["zeta_g2"] * 1.05
    # Both bounds finite (step-size conditions hold at η=0.01).
    assert np.isfinite(result["CoVG"]["bound"])
    assert np.isfinite(result["RG"]["bound"])
