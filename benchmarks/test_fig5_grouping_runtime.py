"""Fig. 5 — grouping algorithm runtime vs number of clients.

Paper claims: RG is near-free; CDG is cheap; CoVG groups 1000 clients in
seconds; KLDG is far slower (O(|K|⁴|Y|) plus per-candidate log()).
"""

import numpy as np

from _util import SCALE, run_once
from repro.experiments import fig5_grouping_runtime, format_series


def test_fig5(benchmark):
    result = run_once(benchmark, fig5_grouping_runtime, SCALE)
    series = result["series"]
    print("\n" + format_series(series, "clients", "seconds", title="Fig 5"))

    largest = {name: s["seconds"][-1] for name, s in series.items()}

    # Ordering at the largest client count: RG < CDG < CoVG < KLDG.
    assert largest["RG"] < largest["CoVG"]
    assert largest["CDG"] < largest["KLDG"]
    assert largest["CoVG"] < largest["KLDG"], (
        f"KLDG ({largest['KLDG']:.3f}s) must be slower than CoVG "
        f"({largest['CoVG']:.3f}s) — the paper's log()-cost argument"
    )
    # KLDG's gap is large (paper: ~10× at 1000 clients).
    assert largest["KLDG"] > 3.0 * largest["CoVG"]

    # CoVG runtime grows superlinearly but stays practical.
    covg = series["CoVG"]
    assert covg["seconds"][-1] < 60.0
    ratio = covg["seconds"][-1] / max(covg["seconds"][0], 1e-9)
    size_ratio = covg["clients"][-1] / covg["clients"][0]
    assert ratio > size_ratio, "CoVG should scale superlinearly (cubic bound)"
