"""Telemetry cost contract: free when off, faithful when on.

Two claims are asserted:

1. **Disabled overhead < 3%** — when no telemetry is activated, every
   instrumentation point in the training stack degenerates to a no-op
   method on ``NULL_TELEMETRY``. Timing a generous multiple of the no-op
   calls an instrumented run would make shows the total is a vanishing
   fraction of real training time.
2. **Θ(s²) SecAgg span scaling** — the ``secagg`` spans an enabled run
   records grow quadratically with group size, reproducing Fig. 2a's
   group-operation shape from trace data alone (min-of-repeats against
   timer noise, quadratic fit like ``costs.calibration``).
"""

import time

import numpy as np

from _util import run_once
from repro.core import GroupFELTrainer, TrainerConfig, run_group_round
from repro.costs.calibration import fit_quadratic
from repro.data import FederatedDataset, SyntheticImage
from repro.grouping import CoVGrouping, Group, group_clients_per_edge
from repro.nn import SGD, make_mlp
from repro.secure import SecureAggregator
from repro.telemetry import NULL_TELEMETRY, Telemetry


def _make_fed(num_clients=16, n_train=2_000, rng=7):
    data = SyntheticImage(noise_std=2.0, seed=0)
    train, test = data.train_test(n_train, 200)
    return FederatedDataset.from_dataset(
        train, test, num_clients=num_clients, alpha=0.3,
        size_low=30, size_high=80, rng=rng,
    )


def _make_trainer(fed, telemetry=None, max_rounds=4):
    edges = [np.arange(fed.num_clients)]
    groups = group_clients_per_edge(CoVGrouping(3, 0.5), fed.L, edges, rng=0)
    cfg = TrainerConfig(group_rounds=2, local_rounds=2, num_sampled=3,
                        lr=0.08, max_rounds=max_rounds, seed=0)
    return GroupFELTrainer(
        lambda: make_mlp(192, 10, hidden=(64,), seed=3),
        fed, groups, cfg, telemetry=telemetry,
    )


def test_disabled_overhead_under_3_percent(benchmark):
    fed = _make_fed(n_train=4_000)

    def timed_disabled_run():
        best = np.inf
        for _ in range(3):
            trainer = _make_trainer(fed, telemetry=None)
            t0 = time.perf_counter()
            trainer.run()
            best = min(best, time.perf_counter() - t0)
        return best

    train_s = run_once(benchmark, timed_disabled_run)

    # How many instrumentation touches would that run have made? Count the
    # spans an enabled twin records and overprovision 10x to cover the
    # metric increments, gauge sets, and `tel.enabled` gates around them.
    tel = Telemetry()
    _make_trainer(fed, telemetry=tel).run()
    noop_calls = 10 * len(tel.tracer) + 1_000

    t0 = time.perf_counter()
    for _ in range(noop_calls):
        with NULL_TELEMETRY.span("x", k=1):
            pass
        NULL_TELEMETRY.inc("x", 1.0)
    noop_s = time.perf_counter() - t0

    overhead = noop_s / train_s
    print(f"\ndisabled-telemetry overhead: {noop_calls} no-op touches = "
          f"{noop_s * 1e3:.2f} ms vs {train_s * 1e3:.0f} ms training "
          f"({overhead:.2%})")
    assert overhead < 0.03


def test_secagg_span_time_is_quadratic_in_group_size(benchmark):
    sizes = [4, 8, 16]
    fed = _make_fed(num_clients=max(sizes), n_train=3_000)
    model = make_mlp(192, 10, hidden=(64,), seed=0)
    opt = SGD(model, lr=0.05)

    def secagg_span_seconds():
        """Min secagg span duration per group size, from the trace alone."""
        best = {}
        for s in sizes:
            tel = Telemetry(label=f"s{s}")
            group = Group(
                group_id=0, edge_id=0,
                members=np.arange(s),
                label_counts=fed.L[:s].sum(axis=0),
            )
            for repeat in range(3):
                run_group_round(
                    model, opt, group, fed.clients,
                    global_params=model.get_params().copy(),
                    group_rounds=2, local_rounds=1, batch_size=64,
                    rng=repeat,
                    secure_aggregator=SecureAggregator(telemetry=tel),
                    telemetry=tel,
                )
            spans = [sp for sp in tel.tracer.spans() if sp.name == "secagg"]
            assert len(spans) == 6  # 3 repeats x K=2
            assert all(sp.attrs["clients"] == s for sp in spans)
            best[s] = min(sp.duration for sp in spans)
        return best

    best = run_once(benchmark, secagg_span_seconds)
    xs = np.array(sizes, dtype=float)
    ys = np.array([best[s] for s in sizes])
    print("\nsecagg span seconds by group size:")
    for s in sizes:
        print(f"  s={s:3d}  {best[s] * 1e3:8.2f} ms")

    # Doubling the group size should much more than double the span time
    # (pure s² would be 4x; linear encode/decode terms soften it a little).
    assert ys[2] > 2.0 * ys[1]
    assert ys[1] > 1.5 * ys[0]
    # And the whole curve is well explained by a quadratic.
    _, r2 = fit_quadratic(xs, ys)
    assert r2 > 0.95
    # Largest size far exceeds linear extrapolation from the smallest.
    assert ys[2] > 2.0 * (ys[0] * xs[2] / xs[0])
