"""Fig. 7 — sampling methods: Random vs RCoV vs SRCoV vs ESRCoV.

Paper claims: the more sampling emphasizes CoV, the smoother and faster
the convergence; ESRCoV performs best overall. At the fast scale the
accuracy gaps between CoV variants sit inside seed noise (EXPERIMENTS.md),
so the assertions target the robust parts: every CoV-weighted method is
competitive with Random, and the CoV emphasis reduces trajectory jitter
(the paper's "smoother" claim).
"""

import numpy as np

from _util import SCALE, acc_at, final_acc, run_once
from repro.experiments import fig7_sampling_methods, format_series


def jitter(series: dict) -> float:
    acc = np.asarray(series["accuracy"])
    return float(np.std(np.diff(acc))) if acc.size > 2 else 0.0


def test_fig7(benchmark):
    result = run_once(benchmark, fig7_sampling_methods, SCALE)
    series = result["series"]
    print("\n" + format_series(series, "cost", "accuracy", title="Fig 7"))

    budget = min(s["cost"][-1] for s in series.values())
    accs = {k: acc_at(v, budget) for k, v in series.items()}
    jit = {k: jitter(v) for k, v in series.items()}
    print(f"acc@{budget:.0f}: { {k: round(v,3) for k,v in accs.items()} }")
    print(f"trajectory jitter: { {k: round(v,4) for k,v in jit.items()} }")

    # Everyone learns.
    assert min(accs.values()) > 0.3

    # CoV-weighted sampling is competitive with Random (within noise) and
    # the strongest CoV variant is at least as good.
    best_cov_variant = max(accs["RCoV"], accs["SRCoV"], accs["ESRCoV"])
    assert best_cov_variant >= accs["Random"] - 0.02

    # Smoothness: the heaviest CoV emphasis yields the least jitter
    # (it keeps re-sampling the same well-balanced groups).
    assert jit["ESRCoV"] <= jit["Random"] + 0.005
