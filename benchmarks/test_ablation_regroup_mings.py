"""Ablations — periodic regrouping (§6.1) and the MinGS knob (§5.3).

Regrouping: re-running CoV-Grouping every R rounds rotates which clients
sit in the prioritized groups, utilizing the data that pure ESRCoV
sampling would ignore (the paper's suggested remedy; its random first-
client pick is what makes regroupings differ).

MinGS: larger anonymity floors force bigger groups — more quadratic
overhead per round but better in-group balance; the sweep exposes the
trade-off that motivates the whole paper.
"""

import numpy as np

from _util import SCALE, run_once
from repro.experiments.configs import get_scale, make_image_workload
from repro.experiments.runner import run_combo
from repro.grouping import CoVGrouping, evaluate_grouping, group_clients_per_edge


def run_regroup_ablation():
    from dataclasses import replace

    s = get_scale(SCALE)
    out = {}
    for label, regroup in [("static", None), ("regroup@5", 5)]:
        wl = make_image_workload(s, alpha=0.1, seed=0)
        wl.trainer_config.regroup_every = regroup
        grouper = CoVGrouping(s.min_group_size, s.max_cov)
        from repro.core.trainer import GroupFELTrainer

        groups = group_clients_per_edge(grouper, wl.fed.L, wl.edge_assignment, rng=0)
        cfg = replace(wl.trainer_config, sampling_method="esrcov")
        trainer = GroupFELTrainer(
            wl.model_fn, wl.fed, groups, cfg, cost_model=wl.cost_model,
            grouper=grouper if regroup else None,
            edge_assignment=wl.edge_assignment if regroup else None,
            label=label,
        )
        out[label] = trainer.run()
    return out


def test_regrouping(benchmark):
    histories = run_once(benchmark, run_regroup_ablation)
    finals = {k: h.final_accuracy for k, h in histories.items()}
    print(f"\nregrouping ablation: { {k: round(v, 3) for k, v in finals.items()} }")
    # Both configurations must train; regrouping stays within noise of
    # static grouping while covering more clients.
    assert min(finals.values()) > 0.4
    assert abs(finals["regroup@5"] - finals["static"]) < 0.12


def test_mings_tradeoff(benchmark):
    """Larger MinGS ⇒ larger groups, more overhead, lower CoV."""

    def sweep():
        s = get_scale(SCALE)
        wl = make_image_workload(s, alpha=0.1, seed=0)
        rows = []
        for mings in (3, 5, 8):
            if mings > wl.fed.num_clients // len(wl.edge_assignment):
                continue
            groups = group_clients_per_edge(
                CoVGrouping(mings, s.max_cov), wl.fed.L, wl.edge_assignment, rng=0
            )
            rep = evaluate_grouping(groups)
            rows.append(
                {"MinGS": mings, "avg_size": rep.size_avg,
                 "avg_cov": rep.avg_cov, "avg_overhead": rep.avg_overhead}
            )
        return rows

    rows = run_once(benchmark, sweep)
    for r in rows:
        print(f"\nMinGS={r['MinGS']}: size={r['avg_size']:.2f} "
              f"cov={r['avg_cov']:.3f} overhead={r['avg_overhead']:.1f}")
    sizes = [r["avg_size"] for r in rows]
    overheads = [r["avg_overhead"] for r in rows]
    covs = [r["avg_cov"] for r in rows]
    assert sizes == sorted(sizes), "group size must grow with MinGS"
    assert overheads == sorted(overheads), "overhead must grow with MinGS"
    assert covs[-1] <= covs[0] + 0.05, "bigger groups should not be more skewed"
