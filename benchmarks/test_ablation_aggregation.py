"""Ablation (§6.2) — biased vs unbiased vs stabilized aggregation.

The paper warns that combining aggressive CoV sampling with the unbiased
1/(p_g·S) factor is numerically dangerous (huge 1/p_g amplifies one
group's model) and proposes the Eq. (35) stabilized normalization.
Checks: biased and stabilized both train fine under ESRCoV; the
stabilized weights always form a convex combination while raw unbiased
weights can blow past 1.
"""

import numpy as np

from _util import SCALE, run_once
from repro.experiments.configs import get_scale, make_image_workload
from repro.experiments.runner import run_combo
from repro.grouping import CoVGrouping, group_clients_per_edge
from repro.sampling import aggregation_weights, sampling_probabilities


def run_modes():
    from dataclasses import replace

    s = get_scale(SCALE)
    out = {}
    for mode in ("biased", "stabilized", "unbiased"):
        wl = make_image_workload(s, alpha=0.1, seed=0)
        wl.trainer_config.aggregation_mode = mode
        # A probability floor keeps 1/p_g finite (the paper's Γ_p concern).
        wl.trainer_config.min_prob = 0.01
        h = run_combo(
            CoVGrouping(s.min_group_size, s.max_cov), "esrcov", wl, label=mode
        )
        out[mode] = h
    return out


def test_aggregation_modes(benchmark):
    histories = run_once(benchmark, run_modes)
    finals = {k: h.final_accuracy for k, h in histories.items()}
    print(f"\nfinal accuracy by aggregation mode: "
          f"{ {k: round(v, 3) for k, v in finals.items()} }")

    # Biased and stabilized are the safe modes (paper's recommendation).
    assert finals["biased"] > 0.4
    assert finals["stabilized"] > 0.4
    # Stabilized stays within a few points of biased.
    assert abs(finals["stabilized"] - finals["biased"]) < 0.15


def test_unbiased_weight_explosion_mechanism(benchmark):
    """The §6.2 hazard, isolated: a tiny p_g makes the unbiased weight huge,
    while Eq. (35) keeps the combination convex."""
    from repro.grouping import Group

    groups = [
        Group(0, 0, np.array([0]), np.array([50, 50])),
        Group(1, 0, np.array([1]), np.array([100, 0])),
    ]
    p_sel = np.array([0.999, 1e-4])
    n = 10_000
    raw = run_once(benchmark, aggregation_weights, groups, p_sel, n, "unbiased")
    stab = aggregation_weights(groups, p_sel, n, "stabilized")
    assert raw.max() > 10.0, "unbiased factor should explode for tiny p_g"
    assert stab.max() <= 1.0
    assert abs(stab.sum() - 1.0) < 1e-12
