"""Online group maintenance vs full re-partition at population scale.

The point of ``repro.population.OnlineGroupMaintainer``: a single client
joining, leaving, or drifting costs an O(G·m) moment update, not a
from-scratch CoV formation over the whole edge. This benchmark measures
both at |K| = 800 (the paper's §7.4 scalability regime), asserts the
online path is ≥ 25× faster per membership change, and folds a
``population`` axis into ``BENCH_hotpaths.json`` (preserving the axes
written by ``test_hotpaths.py``).

Smoke mode (``REPRO_BENCH_SMOKE=1``) keeps the same problem size and
trims repeats.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from _util import run_once
from repro.grouping import CoVGrouping, group_clients_per_edge
from repro.population import OnlineGroupMaintainer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
REPEATS = 2 if SMOKE else 3
NUM_CLIENTS = 800
NUM_CLASSES = 100  # CIFAR-100-style label space
NUM_EDGES = 4
OPS = 50 if SMOKE else 200  # churn ops averaged per measurement
SPEEDUP_FLOOR = 25.0
OUT_PATH = Path(__file__).parents[1] / "BENCH_hotpaths.json"


def _int_label_matrix(n, m, seed=0):
    rng = np.random.default_rng(seed)
    props = rng.dirichlet(np.full(m, 0.3), size=n)
    totals = rng.integers(20, 61, size=n)
    return np.stack(
        [rng.multinomial(int(totals[i]), props[i]) for i in range(n)]
    ).astype(np.int64)


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_maintenance():
    L = _int_label_matrix(NUM_CLIENTS, NUM_CLASSES, seed=NUM_CLIENTS)
    edges = np.array_split(np.arange(NUM_CLIENTS), NUM_EDGES)
    edge_of = np.zeros(NUM_CLIENTS, dtype=np.int64)
    for e, ids in enumerate(edges):
        edge_of[ids] = e
    grouper = CoVGrouping(5, 0.5)
    groups = group_clients_per_edge(grouper, L, edges, rng=0)
    maint = OnlineGroupMaintainer(grouper, L, edge_of, groups=groups)

    full_s = _best_of(lambda: maint.full_repartition(rng=0))

    op_rng = np.random.default_rng(7)
    cids = op_rng.choice(NUM_CLIENTS, size=OPS, replace=False)

    def churn_cycle():
        # One leave + one join + the watchdog pass — a round's worth of
        # maintenance for a single membership change.
        for i, cid in enumerate(cids):
            maint.remove_client(int(cid))
            maint.insert_client(int(cid))
            maint.maintain(int(i), round_idx=int(i))

    online_s = _best_of(churn_cycle) / OPS
    return {
        "num_clients": NUM_CLIENTS,
        "classes": NUM_CLASSES,
        "num_edges": NUM_EDGES,
        "num_groups": maint.num_groups,
        "full_repartition_s": full_s,
        "online_update_s": online_s,
        "speedup": full_s / online_s,
    }


def test_online_maintenance_beats_full_repartition(benchmark):
    row = run_once(benchmark, _bench_maintenance)

    print(
        f"\npopulation maintenance @ |K|={row['num_clients']}: "
        f"full re-partition {row['full_repartition_s'] * 1e3:.2f} ms, "
        f"online update {row['online_update_s'] * 1e6:.1f} µs "
        f"({row['speedup']:.0f}x)"
    )
    assert row["speedup"] >= SPEEDUP_FLOOR, row

    # Fold the new axis into the hot-paths report without clobbering the
    # grouping/secagg axes test_hotpaths.py writes.
    report = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {
        "benchmark": "hotpaths"
    }
    report["population"] = [row]
    OUT_PATH.write_text(json.dumps(report, indent=1))
    print(f"wrote {OUT_PATH}")
