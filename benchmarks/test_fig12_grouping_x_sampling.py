"""Fig. 12 — grouping × sampling ablation.

Paper claims: CoVG+CoVS (the full Group-FEL combination) is clearly best;
either ingredient alone gives much less; KLDG combinations lag because the
KLD groups are costlier. Robust fast-scale checks: every combo learns,
the CoVG-based combos beat the KLDG ones on the cost axis (KLDG's
oversized groups are structurally expensive), and CoVG+CoVS is
competitive with the best combo.
"""

import numpy as np

from _util import SCALE, acc_at, run_once
from repro.experiments import fig12_grouping_x_sampling, format_series


def test_fig12(benchmark):
    result = run_once(benchmark, fig12_grouping_x_sampling, SCALE)
    series = result["series"]
    print("\n" + format_series(series, "cost", "accuracy", title="Fig 12"))

    budget = min(s["cost"][-1] for s in series.values())
    accs = {k: acc_at(v, budget) for k, v in series.items()}
    print(f"accuracy at matched budget {budget:.0f}: "
          f"{ {k: round(v, 3) for k, v in accs.items()} }")

    assert min(accs.values()) > 0.3, "every combo must learn"

    # The full combination is competitive with the best combo.
    best = max(accs.values())
    assert accs["CoVG+CoVS"] >= best - 0.06

    # CoVG grouping beats KLDG grouping under the same sampling (KLDG's
    # uncontrolled group sizes are costly — the paper's §7.3.1 argument).
    assert accs["CoVG+CoVS"] >= accs["KLDG+CoVS"] - 0.02
