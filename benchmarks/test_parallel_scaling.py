"""Parallel-round scaling: persistent pools vs per-round pool teardown.

Measures round throughput and per-round dispatch overhead for the three
execution backends at several model sizes, and pits the persistent pool
(workers start once, dataset ships once, per-round dispatch is a slim
``_GroupTask``) against the pre-change behavior emulated with
``ParallelMap(..., persistent=False)`` (a fresh pool built and torn down
every ``map`` call). Results land in ``BENCH_parallel_scaling.json`` at the
repo root — the repo's first machine-readable benchmark artifact; CI runs
this file in smoke mode (``REPRO_BENCH_SMOKE=1``) and uploads the JSON.

Hard assertions are structural (pool counts, one-time worker init) plus the
one timing claim with an enormous margin: on the process backend, reusing
the pool beats respawning workers every round.
"""

from __future__ import annotations

import functools
import json
import os
import time
from pathlib import Path

import numpy as np

from _util import run_once
from repro.core import GroupFELTrainer, TrainerConfig
from repro.data import FederatedDataset, SyntheticImage
from repro.grouping import CoVGrouping, group_clients_per_edge
from repro.nn import make_mlp
from repro.parallel import ParallelMap
from repro.telemetry import Telemetry

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
ROUNDS = 2 if SMOKE else 5
HIDDEN_SIZES = [(32,)] if SMOKE else [(32,), (128,), (256,)]
OUT_PATH = Path(__file__).parents[1] / "BENCH_parallel_scaling.json"

# Module-level partials so the process backend can pickle the model factory.
MODEL_FNS = {
    hidden: functools.partial(make_mlp, 192, 10, hidden=hidden, seed=3)
    for hidden in HIDDEN_SIZES
}


def _make_fed():
    data = SyntheticImage(noise_std=2.0, seed=0)
    train, test = data.train_test(1_200 if SMOKE else 3_000, 200)
    return FederatedDataset.from_dataset(
        train, test, num_clients=16, alpha=0.3,
        size_low=30, size_high=60, rng=7,
    )


def _run_config(fed, groups, hidden, backend, persistent):
    """Train ROUNDS rounds on one (backend, model size, pool mode) cell."""
    tel = Telemetry(label=f"{backend}-{'persistent' if persistent else 'transient'}")
    cfg = TrainerConfig(group_rounds=1, local_rounds=1, num_sampled=3,
                        lr=0.08, max_rounds=ROUNDS, seed=0,
                        parallel_backend=backend)
    pmap = ParallelMap(backend, max_workers=2, persistent=persistent,
                       telemetry=tel)
    trainer = GroupFELTrainer(MODEL_FNS[hidden], fed, groups, cfg,
                              parallel=pmap)
    try:
        t0 = time.perf_counter()
        trainer.run()
        total_s = time.perf_counter() - t0
    finally:
        trainer.close()
        pmap.close()

    model_params = MODEL_FNS[hidden]().num_params
    dispatch = tel.metrics.histogram("pool.dispatch_s")
    init = tel.metrics.histogram("pool.init_s")
    return {
        "backend": backend,
        "mode": "persistent" if persistent else "transient",
        "hidden": list(hidden),
        "model_params": int(model_params),
        "rounds": ROUNDS,
        "total_s": total_s,
        "per_round_s": total_s / ROUNDS,
        "rounds_per_s": ROUNDS / total_s,
        "pools_created": pmap.pools_created,
        "dispatch_s_per_round": (sum(dispatch.values()) / ROUNDS
                                 if dispatch.count else 0.0),
        "pool_init_s_total": sum(init.values()) if init.count else 0.0,
    }


def test_persistent_pool_scaling(benchmark):
    fed = _make_fed()
    edges = [np.arange(fed.num_clients)]
    groups = group_clients_per_edge(CoVGrouping(3, 0.5), fed.L, edges, rng=0)

    def sweep():
        rows = []
        for hidden in HIDDEN_SIZES:
            for backend in ("serial", "thread", "process"):
                rows.append(_run_config(fed, groups, hidden, backend, True))
            # Pre-change baseline: a fresh process pool per round.
            rows.append(_run_config(fed, groups, hidden, "process", False))
        return rows

    rows = run_once(benchmark, sweep)

    print(f"\n{'backend':>8} {'mode':>10} {'params':>8} {'s/round':>9} "
          f"{'dispatch s/rd':>13} {'pools':>6}")
    for r in rows:
        print(f"{r['backend']:>8} {r['mode']:>10} {r['model_params']:>8} "
              f"{r['per_round_s']:>9.3f} {r['dispatch_s_per_round']:>13.4f} "
              f"{r['pools_created']:>6}")

    by = {(r["backend"], r["mode"], tuple(r["hidden"])): r for r in rows}
    for hidden in HIDDEN_SIZES:
        serial = by[("serial", "persistent", hidden)]
        thread = by[("thread", "persistent", hidden)]
        proc = by[("process", "persistent", hidden)]
        transient = by[("process", "transient", hidden)]
        # Structural: persistent pools are built once for the whole run,
        # the old behavior rebuilt one per round.
        assert serial["pools_created"] == 0
        assert thread["pools_created"] == 1
        assert proc["pools_created"] == 1
        assert transient["pools_created"] == ROUNDS
        # The one timing claim, with a worker-respawn-per-round margin
        # behind it: per-round overhead shrank vs the pre-change baseline.
        assert proc["total_s"] < transient["total_s"]
        assert proc["pool_init_s_total"] < transient["pool_init_s_total"]

    OUT_PATH.write_text(json.dumps({
        "benchmark": "parallel_scaling",
        "smoke": SMOKE,
        "rounds_per_cell": ROUNDS,
        "num_sampled_groups": 3,
        "max_workers": 2,
        "results": rows,
    }, indent=1))
    print(f"wrote {OUT_PATH}")
