"""Parallel-round scaling: persistent pools, batched engine, shm dispatch.

Measures round throughput and per-round dispatch overhead for the three
execution backends at several model sizes, and pits the persistent pool
(workers start once, dataset ships once, per-round dispatch is a slim
``_GroupTask``) against the pre-change behavior emulated with
``ParallelMap(..., persistent=False)`` (a fresh pool built and torn down
every ``map`` call). A second sweep times the stacked batched training
engine (``repro.nn.batched``) against the per-client reference loop at
group sizes >= 20 in the regime the engine targets — small models, small
batches, where Python dispatch (not GEMM time) dominates. Results land in
``BENCH_parallel_scaling.json`` at the repo root; CI runs this file in
smoke mode (``REPRO_BENCH_SMOKE=1``) and uploads the JSON.

Hard assertions are structural (pool counts, one-time worker init,
batched == reference bit-for-bit) plus the timing claims: reusing the pool
beats respawning workers every round; the batched engine is >= 3x the
per-client loop at group size >= 20; and, given at least two cores, the
process backend beats the serial loop at every benchmarked model size.
The committed ``benchmarks/parallel_baseline.json`` turns those ratios
into a CI regression gate: any cell that drops more than 30% below its
baseline fails the run (mirroring the hotpaths gate).
"""

from __future__ import annotations

import functools
import json
import os
import time
from pathlib import Path

import numpy as np

from _util import run_once
from repro.core import GroupFELTrainer, TrainerConfig
from repro.core.client import run_local_rounds
from repro.data import FederatedDataset, SyntheticImage
from repro.data.client_data import ClientDataset
from repro.grouping import CoVGrouping, group_clients_per_edge
from repro.nn import make_mlp
from repro.nn.batched import batched_local_rounds
from repro.nn.optim import SGD
from repro.parallel import ParallelMap
from repro.telemetry import Telemetry

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
ROUNDS = 2 if SMOKE else 5
HIDDEN_SIZES = [(32,)] if SMOKE else [(32,), (128,), (256,)]
OUT_PATH = Path(__file__).parents[1] / "BENCH_parallel_scaling.json"
BASELINE_PATH = Path(__file__).parent / "parallel_baseline.json"
#: fail the perf gate if a cell drops >30% below its committed baseline
REGRESSION_TOLERANCE = 0.30
#: multi-core timing claims are meaningless on a single-core runner
MULTICORE = (os.cpu_count() or 1) >= 2

# The batched engine's target regime: small models and batches, where the
# per-client loop's cost is Python dispatch rather than GEMM time.
ENGINE_FEATURES = 64
ENGINE_BATCH = 8
ENGINE_EPOCHS = 2
ENGINE_SHARD = 32
ENGINE_CELLS = [  # (label, hidden layers, group size)
    ("softmax", (), 20),
    ("mlp16", (16,), 20),
    ("mlp16", (16,), 40),
]

# Module-level partials so the process backend can pickle the model factory.
MODEL_FNS = {
    hidden: functools.partial(make_mlp, 192, 10, hidden=hidden, seed=3)
    for hidden in HIDDEN_SIZES
}


def _make_fed():
    data = SyntheticImage(noise_std=2.0, seed=0)
    train, test = data.train_test(1_200 if SMOKE else 3_000, 200)
    return FederatedDataset.from_dataset(
        train, test, num_clients=16, alpha=0.3,
        size_low=30, size_high=60, rng=7,
    )


def _run_config(fed, groups, hidden, backend, persistent):
    """Train ROUNDS rounds on one (backend, model size, pool mode) cell."""
    tel = Telemetry(label=f"{backend}-{'persistent' if persistent else 'transient'}")
    cfg = TrainerConfig(group_rounds=1, local_rounds=1, num_sampled=3,
                        lr=0.08, max_rounds=ROUNDS, seed=0,
                        parallel_backend=backend)
    pmap = ParallelMap(backend, max_workers=2, persistent=persistent,
                       telemetry=tel)
    trainer = GroupFELTrainer(MODEL_FNS[hidden], fed, groups, cfg,
                              parallel=pmap)
    try:
        t0 = time.perf_counter()
        trainer.run()
        total_s = time.perf_counter() - t0
    finally:
        trainer.close()
        pmap.close()

    model_params = MODEL_FNS[hidden]().num_params
    dispatch = tel.metrics.histogram("pool.dispatch_s")
    init = tel.metrics.histogram("pool.init_s")
    return {
        "backend": backend,
        "mode": "persistent" if persistent else "transient",
        "hidden": list(hidden),
        "model_params": int(model_params),
        "rounds": ROUNDS,
        "total_s": total_s,
        "per_round_s": total_s / ROUNDS,
        "rounds_per_s": ROUNDS / total_s,
        "pools_created": pmap.pools_created,
        "dispatch_s_per_round": (sum(dispatch.values()) / ROUNDS
                                 if dispatch.count else 0.0),
        "pool_init_s_total": sum(init.values()) if init.count else 0.0,
    }


def _best_of(fn, repeats: int = 3):
    """Minimum wall-clock over a few runs (suppresses scheduler noise)."""
    best_s, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best_s = min(best_s, time.perf_counter() - t0)
    return best_s, result


def _engine_clients(group_size: int, num_classes: int = 10):
    rng = np.random.default_rng(42)
    clients = []
    for cid in range(group_size):
        x = rng.standard_normal((ENGINE_SHARD, ENGINE_FEATURES))
        y = rng.integers(0, num_classes, size=ENGINE_SHARD)
        clients.append(
            ClientDataset(cid, x, y, np.bincount(y, minlength=num_classes))
        )
    return clients


def _bench_engine():
    """Batched engine vs per-client reference loop, identical math."""
    rows = []
    for label, hidden, group_size in ENGINE_CELLS:
        model = make_mlp(ENGINE_FEATURES, 10, hidden=hidden, seed=3)
        optimizer = SGD(model, lr=0.05)
        clients = _engine_clients(group_size)
        start = model.get_params().copy()

        def reference():
            outs = []
            for c, r in zip(
                clients, np.random.default_rng(5).spawn(len(clients))
            ):
                params, _ = run_local_rounds(
                    model, optimizer, c, start,
                    local_rounds=ENGINE_EPOCHS, batch_size=ENGINE_BATCH,
                    rng=r, step_mode="epoch",
                )
                outs.append(params)
            return np.stack(outs)

        def batched():
            return batched_local_rounds(
                model, optimizer, clients, start,
                local_rounds=ENGINE_EPOCHS, batch_size=ENGINE_BATCH,
                rngs=list(np.random.default_rng(5).spawn(len(clients))),
                step_mode="epoch",
            )

        ref_s, ref_out = _best_of(reference)
        fast_s, fast_out = _best_of(batched)
        # Not a tolerance check: the engines must agree bit for bit.
        assert np.array_equal(ref_out, fast_out)
        rows.append(
            {
                "model": label,
                "hidden": list(hidden),
                "group_size": group_size,
                "model_params": int(model.num_params),
                "reference_s": ref_s,
                "batched_s": fast_s,
                "speedup": ref_s / fast_s,
            }
        )
    return rows


def _check_against_baseline(report):
    """The CI perf gate: each cell's ratio vs the committed baseline."""
    if not BASELINE_PATH.exists():
        print("no parallel baseline committed yet; skipping regression gate")
        return
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = 1.0 - REGRESSION_TOLERANCE
    base_engine = {
        (row["model"], row["group_size"]): row["speedup"]
        for row in baseline.get("engine", [])
    }
    for row in report["engine"]:
        want = base_engine.get((row["model"], row["group_size"]))
        if want is None:
            continue
        got = row["speedup"]
        print(
            f"perf gate engine {row['model']}@{row['group_size']}: "
            f"{got:.2f}x vs baseline {want:.2f}x"
        )
        assert got >= floor * want, (
            f"batched engine regressed at {row['model']}@{row['group_size']}: "
            f"{got:.2f}x < {floor:.2f} x baseline {want:.2f}x"
        )
    if not MULTICORE:
        print("single-core runner; skipping process-vs-serial gate")
        return
    base_ratio = {
        tuple(row["hidden"]): row["serial_over_process"]
        for row in baseline.get("process_vs_serial", [])
    }
    for row in report["process_vs_serial"]:
        want = base_ratio.get(tuple(row["hidden"]))
        if want is None:
            continue
        got = row["serial_over_process"]
        print(
            f"perf gate process hidden={row['hidden']}: serial/process "
            f"{got:.2f}x vs baseline {want:.2f}x"
        )
        assert got >= floor * want, (
            f"process backend regressed at hidden={row['hidden']}: "
            f"serial/process {got:.2f}x < {floor:.2f} x baseline {want:.2f}x"
        )


def test_persistent_pool_scaling(benchmark):
    fed = _make_fed()
    edges = [np.arange(fed.num_clients)]
    groups = group_clients_per_edge(CoVGrouping(3, 0.5), fed.L, edges, rng=0)

    def sweep():
        rows = []
        for hidden in HIDDEN_SIZES:
            for backend in ("serial", "thread", "process"):
                rows.append(_run_config(fed, groups, hidden, backend, True))
            # Pre-change baseline: a fresh process pool per round.
            rows.append(_run_config(fed, groups, hidden, "process", False))
        return rows, _bench_engine()

    rows, engine_rows = run_once(benchmark, sweep)

    print(f"\n{'backend':>8} {'mode':>10} {'params':>8} {'s/round':>9} "
          f"{'dispatch s/rd':>13} {'pools':>6}")
    for r in rows:
        print(f"{r['backend']:>8} {r['mode']:>10} {r['model_params']:>8} "
              f"{r['per_round_s']:>9.3f} {r['dispatch_s_per_round']:>13.4f} "
              f"{r['pools_created']:>6}")

    print(f"\n{'engine':>10} {'B':>4} {'params':>8} {'reference s':>12} "
          f"{'batched s':>10} {'speedup':>8}")
    for r in engine_rows:
        print(f"{r['model']:>10} {r['group_size']:>4} {r['model_params']:>8} "
              f"{r['reference_s']:>12.4f} {r['batched_s']:>10.4f} "
              f"{r['speedup']:>8.2f}")

    by = {(r["backend"], r["mode"], tuple(r["hidden"])): r for r in rows}
    ratio_rows = []
    for hidden in HIDDEN_SIZES:
        serial = by[("serial", "persistent", hidden)]
        thread = by[("thread", "persistent", hidden)]
        proc = by[("process", "persistent", hidden)]
        transient = by[("process", "transient", hidden)]
        # Structural: persistent pools are built once for the whole run,
        # the old behavior rebuilt one per round.
        assert serial["pools_created"] == 0
        assert thread["pools_created"] == 1
        assert proc["pools_created"] == 1
        assert transient["pools_created"] == ROUNDS
        # Timing claims need real parallel hardware: on a single core,
        # fork startup is near-free and scheduler noise swamps the margins.
        if MULTICORE:
            # Worker-respawn-per-round margin: per-round overhead shrank
            # vs the pre-change baseline.
            assert proc["total_s"] < transient["total_s"]
            assert proc["pool_init_s_total"] < transient["pool_init_s_total"]
        ratio_rows.append(
            {
                "hidden": list(hidden),
                "serial_per_round_s": serial["per_round_s"],
                "process_per_round_s": proc["per_round_s"],
                "serial_over_process": serial["per_round_s"]
                / proc["per_round_s"],
            }
        )
        # The headline claim this PR exists for — process dispatch must
        # not lose to the serial loop — needs real parallel hardware.
        if MULTICORE:
            assert proc["per_round_s"] < serial["per_round_s"], (
                f"process backend slower than serial at hidden={hidden}: "
                f"{proc['per_round_s']:.3f}s vs {serial['per_round_s']:.3f}s "
                "per round"
            )

    # Batched engine: the acceptance bar is 3x over the per-client loop at
    # group sizes >= 20 in the engine's target regime.
    for r in engine_rows:
        assert r["speedup"] >= 3.0, (
            f"batched engine below 3x at {r['model']}@{r['group_size']}: "
            f"{r['speedup']:.2f}x"
        )

    report = {
        "benchmark": "parallel_scaling",
        "smoke": SMOKE,
        "rounds_per_cell": ROUNDS,
        "num_sampled_groups": 3,
        "max_workers": 2,
        "multicore": MULTICORE,
        "results": rows,
        "process_vs_serial": ratio_rows,
        "engine": engine_rows,
    }
    _check_against_baseline(report)
    OUT_PATH.write_text(json.dumps(report, indent=1))
    print(f"wrote {OUT_PATH}")
