"""Fig. 11 — accuracy vs cost on the Speech-Commands-like task, α = 0.01.

Paper claims: with 35 classes and extreme skew the convergence is unstable
(large ζ), the ordering matches the image task, and Group-FEL stays best.
The robust fast-scale checks: every global-model method learns well above
chance (1/35 ≈ 0.029), Group-FEL is competitive at matched budget, and
FedCLAR underperforms on the global task.
"""

import numpy as np

from _util import SCALE, acc_at, run_once
from repro.experiments import fig11_all_methods_sc, format_series

METHODS = ["fedavg", "fedprox", "scaffold", "group_fel", "share", "fedclar"]


def test_fig11(benchmark):
    result = run_once(
        benchmark, fig11_all_methods_sc, SCALE, seed=0, methods=METHODS
    )
    series = result["series"]
    print("\n" + format_series(series, "cost", "accuracy", title="Fig 11"))

    budget = min(s["cost"][-1] for s in series.values())
    accs = {k: acc_at(v, budget) for k, v in series.items()}
    print(f"accuracy at matched budget {budget:.0f}: "
          f"{ {k: round(v, 3) for k, v in accs.items()} }")

    chance = 1.0 / 35.0
    for name in ("fedavg", "group_fel", "share"):
        assert accs[name] > 4 * chance, f"{name} barely above chance"

    # Group-FEL competitive with the best method at matched budget.
    best = max(accs.values())
    assert accs["group_fel"] >= best - 0.08

    # Personalized FL underperforms on the global task.
    assert accs["fedclar"] <= accs["group_fel"] + 0.02
