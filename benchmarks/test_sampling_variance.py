"""Sampling axis: estimator variance vs Γ against the scheme taxonomy.

For each scheme (multinomial / sequential_wor / stratified) and each
probability method (esrcov vs the variance-optimal p*), measure the
empirical variance of the unbiased aggregate estimator
Σ_{g∈S_t} m_g·(n_g/n)/α_g · x_g over simulated rounds, alongside the
theory quantities Γ_p = Σ 1/p_g and Γ_α = Σ 1/α_g, at |G| ∈ {10, 50, 200}.

The qualitative claims asserted (orderings, not absolute numbers):

* every scheme/method pair is unbiased — the empirical mean lands within
  CLT tolerance of the full-participation aggregate;
* stratification never hurts: per p-vector, the stratified estimator's
  variance is at most the multinomial one's (plus generous CI slack) —
  one draw per mass-balanced stratum removes the between-strata
  component;
* the variance-optimal p* beats esrcov's CoV-derived p for the same
  scheme (p* minimizes the size-weighted second moment by design).

Folds a ``sampling`` axis into ``BENCH_hotpaths.json`` (preserving the
axes written by the other benchmarks). Smoke mode (``REPRO_BENCH_SMOKE=1``)
trims the group-count sweep and the round counts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.grouping import Group
from repro.sampling import (
    GroupSampler,
    variance_optimal_probabilities,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
GROUP_COUNTS = [10, 50] if SMOKE else [10, 50, 200]
ROUNDS = 2_000 if SMOKE else 10_000
SIZE = 3  # |S_t|
OUT_PATH = Path(__file__).parents[1] / "BENCH_hotpaths.json"

SCHEMES = ["multinomial", "sequential_wor", "stratified"]
METHODS = ["esrcov", "varopt"]


def _make_groups(num_groups: int, seed: int) -> list[Group]:
    rng = np.random.default_rng(seed)
    groups = []
    for gid in range(num_groups):
        base = rng.integers(20, 120)
        skew = rng.uniform(0.0, 3.0, size=8)
        counts = np.maximum(1, (base * np.exp(skew) / np.exp(skew).max())).astype(
            np.int64
        )
        groups.append(
            Group(
                group_id=gid,
                edge_id=0,
                members=np.arange(gid * 4, gid * 4 + 4),
                label_counts=counts,
            )
        )
    return groups


def _measure(groups, method, scheme, x, rounds=ROUNDS) -> dict:
    sampler = GroupSampler(
        groups,
        method=method,
        num_sampled=SIZE,
        mode="unbiased",
        rng=2024,
        scheme=scheme,
    )
    estimates = np.empty(rounds)
    for t in range(rounds):
        selected, weights = sampler.sample()
        estimates[t] = float(
            sum(w * x[g.group_id] for g, w in zip(selected, weights))
        )
    return {
        "num_groups": len(groups),
        "method": method,
        "scheme": scheme,
        "mean": float(estimates.mean()),
        "variance": float(estimates.var(ddof=1)),
        "se": float(estimates.std(ddof=1) / np.sqrt(rounds)),
        "gamma_p": float(sampler.gamma_p()),
        "gamma_alpha": float(sampler.gamma_alpha()),
        "rounds": rounds,
    }


def test_sampling_variance_axis():
    rows = []
    for num_groups in GROUP_COUNTS:
        groups = _make_groups(num_groups, seed=num_groups)
        n = float(sum(g.n_g for g in groups))
        rng = np.random.default_rng(7)
        x = rng.standard_normal(num_groups)
        target = float(sum((g.n_g / n) * x[g.group_id] for g in groups))
        for method in METHODS:
            for scheme in SCHEMES:
                row = _measure(groups, method, scheme, x)
                row["target"] = target
                rows.append(row)

    print()
    for row in rows:
        print(
            f"sampling @ |G|={row['num_groups']:>4}: "
            f"{row['method']:>7}/{row['scheme']:<14} "
            f"var {row['variance']:9.5f} | "
            f"Γ_p {row['gamma_p']:9.1f} | Γ_α {row['gamma_alpha']:9.1f}"
        )

    by_key = {(r["num_groups"], r["method"], r["scheme"]): r for r in rows}
    for row in rows:
        # Unbiasedness across the whole grid (5 SE: many simultaneous tests).
        assert abs(row["mean"] - row["target"]) < 5.0 * row["se"], row

    for num_groups in GROUP_COUNTS:
        for method in METHODS:
            multi = by_key[(num_groups, method, "multinomial")]
            strat = by_key[(num_groups, method, "stratified")]
            # Stratification removes the between-strata variance component;
            # 1.25 slack covers the finite-sample noise of both estimates.
            assert strat["variance"] <= multi["variance"] * 1.25, (multi, strat)
        # p* is the closed-form minimizer of the size-weighted second
        # moment; on these synthetic x it should not lose to esrcov's
        # CoV-derived p by more than CI slack under the same WOR scheme.
        esr = by_key[(num_groups, "esrcov", "sequential_wor")]
        var = by_key[(num_groups, "varopt", "sequential_wor")]
        assert var["variance"] <= esr["variance"] * 1.5, (esr, var)

    report = (
        json.loads(OUT_PATH.read_text())
        if OUT_PATH.exists()
        else {"benchmark": "hotpaths"}
    )
    report["sampling"] = rows
    OUT_PATH.write_text(json.dumps(report, indent=1))
    print(f"wrote {OUT_PATH}")


def test_variance_optimal_probabilities_track_sizes():
    """Sanity anchor for the axis: p* ∝ n_g (unit norms), floored fairly."""
    groups = _make_groups(20, seed=1)
    n_g = np.array([g.n_g for g in groups], dtype=np.float64)
    p = variance_optimal_probabilities(n_g)
    assert np.allclose(p, n_g / n_g.sum())
