"""Table 1 — Group-FEL across α × MaxCoV.

Paper claims: (i) larger MaxCoV ⇒ smaller groups with larger average CoV;
(ii) more IID data (larger α) ⇒ smaller group CoV at matched MaxCoV and
better accuracy overall; (iii) group sizes always respect MinGS.
"""

import numpy as np

from _util import SCALE, run_once
from repro.experiments import format_table, table1_maxcov_alpha


def test_table1(benchmark):
    result = run_once(benchmark, table1_maxcov_alpha, SCALE)
    rows = result["rows"]
    print("\n" + format_table(rows, title="Table 1"))

    by_cell = {(r["alpha"], r["MaxCoV"]): r for r in rows}
    alphas = sorted({r["alpha"] for r in rows})
    maxcovs = sorted({r["MaxCoV"] for r in rows})

    # (i) Within each α: average group size shrinks (weakly) as MaxCoV
    # loosens, and average CoV grows (weakly).
    for a in alphas:
        sizes = [by_cell[(a, c)]["GS_avg"] for c in maxcovs]
        covs = [by_cell[(a, c)]["avg_cov"] for c in maxcovs]
        assert sizes[0] >= sizes[-1] - 0.3, f"α={a}: sizes {sizes}"
        assert covs[-1] >= covs[0] - 0.02, f"α={a}: covs {covs}"

    # (ii) More IID data ⇒ lower group CoV at the tightest MaxCoV.
    tight = maxcovs[0]
    covs_by_alpha = [by_cell[(a, tight)]["avg_cov"] for a in alphas]
    assert covs_by_alpha[-1] <= covs_by_alpha[0] + 0.02

    # More IID data ⇒ better best-cell accuracy.
    best_acc = {a: max(by_cell[(a, c)]["accuracy"] for c in maxcovs) for a in alphas}
    assert best_acc[alphas[-1]] >= best_acc[alphas[0]] - 0.02

    # (iii) MinGS respected everywhere.
    assert all(r["GS_min"] >= 3 for r in rows)
