"""Fig. 8 — the full RPi overhead measurement table.

Paper claims: eight curves ({CIFAR, SC} × {training, backdoor detection,
SecAgg, SCAFFOLD SecAgg}); training is linear; the group operations are
quadratic; SCAFFOLD's SecAgg is the costliest group operation; the SC
(lightweight) task sits below CIFAR throughout.
"""

import numpy as np

from _util import SCALE, run_once
from repro.experiments import fig8_rpi_measurement, format_series


def test_fig8(benchmark):
    result = run_once(benchmark, fig8_rpi_measurement, SCALE)
    series = result["series"]
    print("\n" + format_series(series, "x", "seconds", title="Fig 8"))
    assert len(series) == 8

    # Shape claims per curve family.
    for task in ("cifar", "sc"):
        training = series[f"{task} training"]
        secagg = series[f"{task} SecAgg"]
        scaffold = series[f"{task} SCAFFOLD SecAgg"]
        backdoor = series[f"{task} Backdoor Detection"]

        assert training["fit"] == "linear" and training["r2"] > 0.85
        for curve in (secagg, scaffold):
            assert curve["fit"] == "quadratic" and curve["r2"] > 0.9
        # The defense's constant (scipy linkage setup) dominates at small
        # sizes, so only shape is asserted: nonnegative curvature + growth.
        assert backdoor["fit"] == "quadratic"
        assert backdoor["seconds"][-1] >= backdoor["seconds"][0] * 0.9

        # SCAFFOLD SecAgg is the costliest group op. Whole-curve totals
        # average out scheduler noise better than any single point; on the
        # small SC payload the per-pair PRG setup constant dominates the
        # 2× masking work, so only near-parity is required there.
        scaffold_total = sum(scaffold["seconds"])
        secagg_total = sum(secagg["seconds"])
        if task == "cifar":
            assert scaffold_total > 0.95 * secagg_total, (
                f"cifar SCAFFOLD SecAgg total {scaffold_total:.3f} vs "
                f"SecAgg {secagg_total:.3f}"
            )
        else:
            assert scaffold_total > 0.6 * secagg_total
        assert scaffold["seconds"][-1] > backdoor["seconds"][-1]

    # Lightweight task: SC training below CIFAR training everywhere.
    sc_t = np.array(series["sc training"]["seconds"])
    cifar_t = np.array(series["cifar training"]["seconds"])
    assert np.all(sc_t <= cifar_t)
