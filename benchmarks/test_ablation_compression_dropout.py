"""Ablations beyond the paper: update compression and client dropouts.

§2.3 cites compression ([26, 27]) as the third efficiency axis; the
robustness literature motivates dropout tolerance. These benches verify
the Group-FEL stack degrades gracefully along both axes:

* 8-bit quantization ≈ full precision; aggressive top-k without error
  feedback loses accuracy, error feedback recovers most of it.
* 30 % client dropout costs little; the SecAgg recovery path works in-loop.
"""

import numpy as np

from _util import SCALE, run_once
from repro.compression import ErrorFeedback, QuantizeCompressor, TopKCompressor
from repro.core.trainer import GroupFELTrainer
from repro.experiments.configs import get_scale, make_image_workload
from repro.grouping import CoVGrouping, group_clients_per_edge


def _train(wl, groups, compressor=None, dropout=0.0, secure=False):
    from dataclasses import replace

    cfg = replace(
        wl.trainer_config,
        sampling_method="esrcov",
        client_dropout_prob=dropout,
        use_secure_aggregation=secure,
        max_rounds=min(wl.trainer_config.max_rounds, 15),
    )
    trainer = GroupFELTrainer(
        wl.model_fn, wl.fed, groups, cfg, cost_model=wl.cost_model,
        compressor=compressor,
    )
    return trainer.run()


def run_compression_ablation():
    s = get_scale(SCALE)
    wl = make_image_workload(s, alpha=0.1, seed=0)
    groups = group_clients_per_edge(
        CoVGrouping(s.min_group_size, s.max_cov), wl.fed.L, wl.edge_assignment, rng=0
    )
    num_params = wl.model_fn().num_params
    return {
        "full": _train(wl, groups).final_accuracy,
        "q8": _train(wl, groups, QuantizeCompressor(bits=8)).final_accuracy,
        "top5%": _train(wl, groups, TopKCompressor(0.05)).final_accuracy,
        "top5%+EF": _train(
            wl, groups, ErrorFeedback(TopKCompressor(0.05), num_params)
        ).final_accuracy,
    }


def test_compression_ablation(benchmark):
    accs = run_once(benchmark, run_compression_ablation)
    print(f"\ncompression ablation: { {k: round(v, 3) for k, v in accs.items()} }")
    # 8-bit quantization is near-lossless.
    assert accs["q8"] > accs["full"] - 0.05
    # Error feedback recovers most of aggressive sparsification's loss.
    assert accs["top5%+EF"] >= accs["top5%"] - 0.03
    assert accs["top5%+EF"] > accs["full"] - 0.12


def run_dropout_ablation():
    s = get_scale(SCALE)
    out = {}
    for label, dropout, secure in [
        ("no-dropout", 0.0, False),
        ("drop30%", 0.3, False),
        ("drop30%+secagg", 0.3, True),
    ]:
        wl = make_image_workload(s, alpha=0.1, seed=0)
        groups = group_clients_per_edge(
            CoVGrouping(s.min_group_size, s.max_cov), wl.fed.L,
            wl.edge_assignment, rng=0,
        )
        out[label] = _train(wl, groups, dropout=dropout, secure=secure).final_accuracy
    return out


def test_dropout_ablation(benchmark):
    accs = run_once(benchmark, run_dropout_ablation)
    print(f"\ndropout ablation: { {k: round(v, 3) for k, v in accs.items()} }")
    assert accs["drop30%"] > accs["no-dropout"] - 0.1, "graceful degradation"
    # The secure recovery path matches the plain dropout path.
    assert abs(accs["drop30%+secagg"] - accs["drop30%"]) < 0.1
