"""Shared helpers for the figure/table benchmarks.

Every benchmark regenerates one paper artifact at the ``fast`` scale
(minutes on one core; set REPRO_SCALE=paper for the full §7 workloads),
prints the same rows/series the paper plots, and asserts the paper's
qualitative claims — orderings, shapes, crossovers — not absolute numbers.
"""

from __future__ import annotations

import os

SCALE = os.environ.get("REPRO_SCALE", "fast")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive figure generator exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def acc_at(series: dict, budget: float) -> float:
    """Best accuracy within a cost budget for one curve dict."""
    pairs = [(c, a) for c, a in zip(series["cost"], series["accuracy"]) if c <= budget]
    return max((a for _, a in pairs), default=0.0)


def final_acc(series: dict) -> float:
    return series["accuracy"][-1] if series["accuracy"] else 0.0
