"""Fig. 2a — group-operation overheads vs training cost.

Paper claims: training time is linear in data size; secure aggregation and
backdoor detection are quadratic in group size; at realistic group sizes
the group operations rival or exceed training cost.
"""

import numpy as np

from _util import SCALE, run_once
from repro.experiments import fig2a_group_overheads, format_series


def test_fig2a(benchmark):
    result = run_once(benchmark, fig2a_group_overheads, SCALE)
    series = result["series"]
    print("\n" + format_series(series, "x", "seconds", title="Fig 2a: overheads"))

    training = next(v for k, v in series.items() if "training" in k)
    secagg = next(v for k, v in series.items() if "SecAgg" in k)
    backdoor = next(v for k, v in series.items() if "Backdoor" in k)

    # Shapes: training linear, group ops quadratic (good fits).
    assert training["fit"] == "linear" and training["r2"] > 0.85
    assert secagg["fit"] == "quadratic" and secagg["r2"] > 0.85
    # Backdoor detection: constant-dominated at fast-scale sizes, so only
    # the shape is asserted (grows, never shrinks drastically).
    assert backdoor["fit"] == "quadratic"
    assert backdoor["seconds"][-1] >= backdoor["seconds"][0] * 0.9

    # Quadratic coefficient dominates: the largest group size costs far
    # more than linear extrapolation from the smallest would predict.
    xs, ys = np.array(secagg["x"]), np.array(secagg["seconds"])
    linear_extrapolation = ys[0] * xs[-1] / xs[0]
    assert ys[-1] > 2.0 * linear_extrapolation
