"""Benchmark-suite conftest: nothing needed beyond pytest-benchmark."""
