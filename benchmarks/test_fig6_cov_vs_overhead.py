"""Fig. 6 — average CoV vs average group overhead frontier.

Paper claim: at matched overhead, CoVG produces the lowest-CoV (most IID)
groups — its frontier dominates RG, CDG, and KLDG.
"""

import numpy as np

from _util import SCALE, run_once
from repro.experiments import fig6_cov_vs_overhead


def pareto_dominates(xs_a, ys_a, xs_b, ys_b, slack=0.0):
    """For each point of B, some point of A has ≤ overhead and ≤ CoV+slack."""
    wins = 0
    for xb, yb in zip(xs_b, ys_b):
        if any(xa <= xb + 1e-9 and ya <= yb + slack for xa, ya in zip(xs_a, ys_a)):
            wins += 1
    return wins / max(len(xs_b), 1)


def test_fig6(benchmark):
    result = run_once(benchmark, fig6_cov_vs_overhead, SCALE)
    series = result["series"]
    for name, pts in series.items():
        rows = ", ".join(
            f"(oh={o:.1f}, cov={c:.3f})"
            for o, c in zip(pts["avg_overhead"], pts["avg_cov"])
        )
        print(f"\n{name:5s}: {rows}")

    covg = series["CoVG"]
    for rival in ("RG", "CDG", "KLDG"):
        frac = pareto_dominates(
            covg["avg_overhead"], covg["avg_cov"],
            series[rival]["avg_overhead"], series[rival]["avg_cov"],
            slack=0.02,
        )
        assert frac >= 0.6, (
            f"CoVG's frontier should dominate {rival} "
            f"(dominated fraction {frac:.2f})"
        )

    # CoVG's average CoV is the best overall.
    best_cov = {name: min(pts["avg_cov"]) for name, pts in series.items()}
    assert best_cov["CoVG"] == min(best_cov.values())
