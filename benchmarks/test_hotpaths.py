"""Hot-path speedups: incremental CoV-Grouping and vectorized SecAgg.

Times the two rewritten kernels against their golden references —
``CoVGrouping(engine="reference")`` and
``SecureAggregator.aggregate_reference`` — at the sizes the paper's §7
experiments actually hit (grouping over an edge's client pool, SecAgg over
one group), asserts the outputs are bit-identical, and writes
``BENCH_hotpaths.json`` at the repo root.

The committed ``benchmarks/hotpaths_baseline.json`` stores the *speedup
ratios* measured when the optimization landed; speedups are
machine-portable in a way absolute seconds are not, so CI's perf-smoke job
re-measures on its own hardware and fails if any point regresses more than
30% below its baseline ratio.  Smoke mode (``REPRO_BENCH_SMOKE=1``) keeps
the same problem sizes and trims repeats.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from _util import run_once
from repro.grouping import CoVGrouping
from repro.secure import SecureAggregator, clear_seed_table_cache

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
REPEATS = 2 if SMOKE else 3
GROUPING_SIZES = [50, 200, 800]
GROUPING_CLASSES = 100  # CIFAR-100-style label space: the label-rich regime
SECAGG_SIZES = [5, 20, 50]
SECAGG_DIM = 2000
# Fail the perf gate if a point's speedup drops >30% below its baseline.
REGRESSION_TOLERANCE = 0.30
OUT_PATH = Path(__file__).parents[1] / "BENCH_hotpaths.json"
BASELINE_PATH = Path(__file__).parent / "hotpaths_baseline.json"


def _best_of(fn, repeats=REPEATS):
    """(best seconds, last result): min over repeats rejects scheduler noise."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _label_matrix(n, m, seed=0):
    rng = np.random.default_rng(seed)
    props = rng.dirichlet(np.full(m, 0.3), size=n)
    totals = rng.integers(1, 41, size=n)
    return np.stack(
        [rng.multinomial(int(totals[i]), props[i]) for i in range(n)]
    ).astype(np.float64)


def _partitions(groups):
    return [tuple(g.members.tolist()) for g in groups]


def _bench_grouping():
    rows = []
    for n in GROUPING_SIZES:
        L = _label_matrix(n, GROUPING_CLASSES, seed=n)
        ids = np.arange(n)
        ref = CoVGrouping(5, 0.5, engine="reference")
        inc = CoVGrouping(5, 0.5, engine="incremental")
        ref_s, ref_groups = _best_of(lambda: ref.group(L, ids, rng=0))
        inc_s, inc_groups = _best_of(lambda: inc.group(L, ids, rng=0))
        assert _partitions(inc_groups) == _partitions(ref_groups), (
            f"engine divergence at n={n}"
        )
        rows.append(
            {
                "num_clients": n,
                "classes": GROUPING_CLASSES,
                "num_groups": len(inc_groups),
                "reference_s": ref_s,
                "incremental_s": inc_s,
                "speedup": ref_s / inc_s,
            }
        )
    return rows


def _bench_secagg():
    rows = []
    rng = np.random.default_rng(1)
    agg = SecureAggregator()
    for s in SECAGG_SIZES:
        vecs = rng.normal(size=(s, SECAGG_DIM))
        ref_s, ref_res = _best_of(lambda: agg.aggregate_reference(vecs, round_id=3))
        clear_seed_table_cache()
        # First call pays the seed-table derivation; per-round reuse is the
        # steady state (every group round re-aggregates), so warm the cache
        # once and time the steady state like the simulator sees it.
        agg.aggregate(vecs, round_id=3)
        fast_s, fast_res = _best_of(lambda: agg.aggregate(vecs, round_id=3))
        assert np.array_equal(fast_res.masked_inputs, ref_res.masked_inputs)
        assert np.array_equal(fast_res.total, ref_res.total)
        assert fast_res.mask_expansions == ref_res.mask_expansions
        rows.append(
            {
                "group_size": s,
                "dim": SECAGG_DIM,
                "reference_s": ref_s,
                "fast_s": fast_s,
                "speedup": ref_s / fast_s,
            }
        )
    return rows


def _check_against_baseline(report):
    """The CI perf gate: each point's speedup vs the committed baseline."""
    if not BASELINE_PATH.exists():
        print("no baseline committed yet; skipping regression gate")
        return
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = 1.0 - REGRESSION_TOLERANCE
    checks = []
    for kind, key in (("grouping", "num_clients"), ("secagg", "group_size")):
        base_by = {row[key]: row["speedup"] for row in baseline.get(kind, [])}
        for row in report[kind]:
            want = base_by.get(row[key])
            if want is None:
                continue
            checks.append((kind, row[key], row["speedup"], want))
    for kind, size, got, want in checks:
        print(f"perf gate {kind}@{size}: speedup {got:.2f}x vs baseline {want:.2f}x")
        assert got >= floor * want, (
            f"{kind} hot path regressed at size {size}: "
            f"{got:.2f}x < {floor:.2f} × baseline {want:.2f}x"
        )


def test_hotpath_speedups(benchmark):
    def sweep():
        return {"grouping": _bench_grouping(), "secagg": _bench_secagg()}

    results = run_once(benchmark, sweep)

    print(f"\n{'kernel':>10} {'size':>6} {'reference s':>12} {'fast s':>10} {'speedup':>8}")
    for r in results["grouping"]:
        print(f"{'grouping':>10} {r['num_clients']:>6} {r['reference_s']:>12.4f} "
              f"{r['incremental_s']:>10.4f} {r['speedup']:>7.2f}x")
    for r in results["secagg"]:
        print(f"{'secagg':>10} {r['group_size']:>6} {r['reference_s']:>12.4f} "
              f"{r['fast_s']:>10.4f} {r['speedup']:>7.2f}x")

    # The acceptance floor: ≥3× at the largest size of each kernel.
    big_grouping = results["grouping"][-1]
    big_secagg = results["secagg"][-1]
    assert big_grouping["num_clients"] == max(GROUPING_SIZES)
    assert big_secagg["group_size"] == max(SECAGG_SIZES)
    assert big_grouping["speedup"] >= 3.0, big_grouping
    assert big_secagg["speedup"] >= 3.0, big_secagg

    report = {
        "benchmark": "hotpaths",
        "smoke": SMOKE,
        "repeats": REPEATS,
        "regression_tolerance": REGRESSION_TOLERANCE,
        "grouping": results["grouping"],
        "secagg": results["secagg"],
    }
    _check_against_baseline(report)
    OUT_PATH.write_text(json.dumps(report, indent=1))
    print(f"wrote {OUT_PATH}")
