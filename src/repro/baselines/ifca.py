"""IFCA — the Iterative Federated Clustering Algorithm (Ghosh et al., 2020).

IFCA maintains ``k`` cluster center models. Every round, each participant
estimates its cluster identity by evaluating all ``k`` centers on its own
data and picking the lowest loss, trains from that center, and the server
aggregates updates per cluster. Centers are *cold-started* as distinct
perturbations of one base model (the FlexCFL/IFCA trick of re-seeding the
initializer per center, SNIPPETS.md snippet 2) so the loss-based
assignment can break symmetry in round one.

Adaptation to the group setting: the unit of cluster identity is the
*group* (a group's loss under a center is the data-weighted mean of its
members' losses), so cluster assignment composes with group formation,
sampling, faults, and population churn unchanged. Global accuracy is the
data-weighted mean of the center models' test accuracies — like FedCLAR,
IFCA optimizes per-cluster performance rather than one global model.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.aggregation import weighted_average
from repro.core.trainer import GroupFELTrainer
from repro.faults import FaultEvent
from repro.grouping.base import Group
from repro.rng import derive_seed, make_rng

__all__ = ["IFCATrainer"]


class IFCATrainer(GroupFELTrainer):
    """Group-level IFCA.

    Parameters (beyond GroupFELTrainer's)
    ----------
    num_clusters:
        ``k`` — the number of center models.
    init_scale:
        Cold-start perturbation scale, relative to the base parameter
        spread (each center ``c`` adds seeded noise of standard deviation
        ``init_scale * std(base)``).
    """

    def __init__(
        self,
        *args,
        num_clusters: int = 3,
        init_scale: float = 0.5,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if num_clusters < 2:
            raise ValueError(f"num_clusters must be >= 2, got {num_clusters}")
        if init_scale <= 0:
            raise ValueError(f"init_scale must be > 0, got {init_scale}")
        # Pipelined evaluation scores a single snapshotted parameter
        # vector; IFCA's metric is a weighted blend over k centers, so the
        # deferred point would diverge from evaluate(). Keep rounds
        # synchronous.
        self.config = replace(self.config, pipeline_rounds=False)
        self.num_clusters = int(num_clusters)
        self.init_scale = float(init_scale)
        self.center_models: list[np.ndarray] = self._cold_start(
            self.global_params
        )
        #: group_id -> center index, refreshed for participants each round
        #: and for everyone on regroup/churn.
        self.cluster_assignment: dict[int, int] = {}
        self._assign_all_groups()

    # ------------------------------------------------------------- clustering
    def _cold_start(self, base: np.ndarray) -> list[np.ndarray]:
        """k distinct centers from one base: per-center seeded noise."""
        spread = float(base.std()) or 1.0
        centers = []
        for c in range(self.num_clusters):
            rng = make_rng(derive_seed(self.config.seed, "ifca-center", c))
            noise = rng.normal(0.0, self.init_scale * spread, base.shape)
            centers.append(base + noise)
        return centers

    def _group_loss(self, group: Group, params: np.ndarray) -> float:
        """Data-weighted mean member loss of ``group`` under ``params``."""
        self.model.set_params(params)
        clients = self._clients_for(group)
        loss = 0.0
        total = 0
        for cid in group.members:
            client = clients[int(cid)]
            l, _ = self.model.evaluate(client.x, client.y)
            loss += client.n * l
            total += client.n
        return loss / max(total, 1)

    def _assign_cluster(self, group: Group) -> int:
        """Lowest-loss center for ``group`` (ties break to the lowest
        index, deterministically)."""
        losses = [
            self._group_loss(group, center) for center in self.center_models
        ]
        choice = int(np.argmin(losses))
        self.cluster_assignment[group.group_id] = choice
        return choice

    def _assign_all_groups(self) -> None:
        self.cluster_assignment = {}
        for g in self.groups:
            self._assign_cluster(g)

    def _on_groups_changed(self) -> None:
        # Regroup or churn rebuilt the partition: group ids no longer name
        # the same member sets, so re-estimate everyone.
        self._assign_all_groups()

    def _consensus(self) -> np.ndarray:
        """Data-mass-weighted blend of the centers — the single vector
        checkpoints and compatibility surfaces expect in global_params."""
        mass = np.zeros(self.num_clusters)
        for g in self.groups:
            c = self.cluster_assignment.get(g.group_id)
            if c is not None:
                mass[c] += g.n_g
        if mass.sum() <= 0:
            mass[:] = 1.0
        return weighted_average(
            np.vstack(self.center_models), mass, normalize=True
        )

    # --------------------------------------------------------------- training
    def _train_selected(
        self,
        selected: list[Group],
        weights: np.ndarray,
        group_rngs: list,
        round_span_id: int | None,
        round_events: list[FaultEvent],
    ) -> None:
        tel = self.telemetry
        # E-step: participants re-estimate their cluster identity against
        # the current centers.
        for g in selected:
            self._assign_cluster(g)
        by_cluster: dict[int, list[int]] = {}
        for i, g in enumerate(selected):
            by_cluster.setdefault(self.cluster_assignment[g.group_id], []).append(i)

        adaptive = self.sampler.adaptive is not None
        norms = np.empty(len(selected)) if adaptive else None
        total_bytes = total_size = 0
        # M-step: each cluster's groups train from its center and fold back
        # into it. Clusters run in index order (deterministic on every
        # backend); shm results are copied out per call, so the several
        # dispatches per round cannot alias each other's ring slots.
        for c in sorted(by_cluster):
            idxs = by_cluster[c]
            subset = [selected[i] for i in idxs]
            sub_rngs = [group_rngs[i] for i in idxs]
            start = self.center_models[c]
            results = self._execute_groups(subset, sub_rngs, start, round_span_id)
            for _, events in results:
                round_events.extend(events)
            stacked = np.vstack([params for params, _ in results])
            if norms is not None:
                norms[idxs] = np.linalg.norm(stacked - start, axis=1)
            with tel.span("cloud_aggregate", cluster=c, num_groups=len(subset)):
                self.center_models[c] = weighted_average(
                    stacked, weights[idxs], normalize=True
                )
            total_bytes += stacked.nbytes
            total_size += stacked.size
        if norms is not None:
            self.sampler.observe_update_norms(selected, norms)
        self.global_params = self._consensus()
        if tel.enabled:
            tel.inc("cloud_bytes_aggregated", float(total_bytes))
            tel.inc("cloud_params_averaged", float(total_size))

    def evaluate(self) -> tuple[float, float]:
        """Data-weighted mean of per-center global-test performance."""
        mass = np.zeros(self.num_clusters)
        for g in self.groups:
            c = self.cluster_assignment.get(g.group_id)
            if c is not None:
                mass[c] += g.n_g
        if mass.sum() <= 0:
            mass[:] = 1.0
        mass = mass / mass.sum()
        loss = acc = 0.0
        for c, params in enumerate(self.center_models):
            if mass[c] == 0.0:
                continue
            self.model.set_params(params)
            l, a = self.model.evaluate(self.fed.test.x, self.fed.test.y)
            loss += mass[c] * l
            acc += mass[c] * a
        return loss, acc

    # ---------------------------------------------------------- checkpointing
    def extra_state_dict(self) -> dict | None:
        return {
            "ifca_centers": [np.array(c, copy=True) for c in self.center_models],
            "ifca_assignment": dict(self.cluster_assignment),
        }

    def load_extra_state_dict(self, state: dict | None) -> None:
        if not state or "ifca_centers" not in state:
            raise ValueError(
                "checkpoint has no IFCA center state — it was written by a "
                "different trainer class"
            )
        centers = state["ifca_centers"]
        if len(centers) != self.num_clusters:
            raise ValueError(
                f"checkpoint has {len(centers)} IFCA centers but this "
                f"trainer expects {self.num_clusters}"
            )
        self.center_models = [np.array(c, copy=True) for c in centers]
        self.cluster_assignment = {
            int(k): int(v) for k, v in state["ifca_assignment"].items()
        }
