"""Named method configurations — one spec per curve in Figs. 9–11.

``build_method`` assembles a ready-to-run trainer for any of the paper's
seven methods from shared ingredients (dataset, model factory, edge
assignment, cost model), applying each method's grouping algorithm,
sampling rule, local strategy, and cost factors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.baselines.fedclar import FedCLARTrainer
from repro.core.strategies import (
    FedProxStrategy,
    LocalStrategy,
    PlainSGDStrategy,
    ScaffoldStrategy,
)
from repro.core.trainer import GroupFELTrainer, TrainerConfig
from repro.costs.model import CostModel
from repro.data.client_data import FederatedDataset
from repro.grouping import (
    CDGGrouping,
    CoVGrouping,
    Grouper,
    KLDGrouping,
    RandomGrouping,
    group_clients_per_edge,
)
from repro.rng import make_rng

__all__ = ["MethodSpec", "METHODS", "build_method"]


@dataclass(frozen=True)
class MethodSpec:
    """Recipe for one method: grouping × sampling × local strategy."""

    name: str
    grouper_factory: Callable[[int, float], Grouper]  # (size_knob, max_cov) -> Grouper
    sampling_method: str
    strategy_factory: Callable[[], LocalStrategy]
    trainer_cls: type = GroupFELTrainer
    trainer_kwargs: dict | None = None


def _covg(size: int, max_cov: float) -> Grouper:
    return CoVGrouping(min_group_size=size, max_cov=max_cov)


def _rg(size: int, max_cov: float) -> Grouper:
    return RandomGrouping(group_size=size)


def _cdg(size: int, max_cov: float) -> Grouper:
    return CDGGrouping(group_size=size)


def _kldg(size: int, max_cov: float) -> Grouper:
    return KLDGrouping(min_group_size=size)


#: The seven methods of §7.3 (Figs. 9–11).
METHODS: dict[str, MethodSpec] = {
    "group_fel": MethodSpec("group_fel", _covg, "esrcov", PlainSGDStrategy),
    "fedavg": MethodSpec("fedavg", _rg, "random", PlainSGDStrategy),
    "fedprox": MethodSpec("fedprox", _rg, "random", lambda: FedProxStrategy(mu=0.01)),
    "scaffold": MethodSpec("scaffold", _rg, "random", ScaffoldStrategy),
    "ouea": MethodSpec("ouea", _cdg, "random", PlainSGDStrategy),
    "share": MethodSpec("share", _kldg, "random", PlainSGDStrategy),
    "fedclar": MethodSpec(
        "fedclar",
        _rg,
        "random",
        PlainSGDStrategy,
        trainer_cls=FedCLARTrainer,
        trainer_kwargs={"cluster_round": 10, "num_clusters": 4},
    ),
}


def build_method(
    name: str,
    model_fn: Callable,
    fed: FederatedDataset,
    edge_assignment: list[np.ndarray],
    config: TrainerConfig,
    cost_model: CostModel | None = None,
    group_size_knob: int = 5,
    max_cov: float = 0.5,
    rng: np.random.Generator | int | None = None,
    telemetry=None,
    parallel=None,
    checkpoint_dir=None,
) -> GroupFELTrainer:
    """Build a ready-to-run trainer for a named method.

    Parameters
    ----------
    group_size_knob:
        MinGS for the greedy groupers, target group size for RG/CDG —
        "we tune all grouping algorithms so that they tend to generate
        similar group sizes" (§7.1).
    config:
        Shared hyperparameters; the method's sampling rule overrides
        ``config.sampling_method``.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` forwarded to the
        trainer (default: the ambient instance).
    parallel:
        Optional shared :class:`repro.parallel.ParallelMap` forwarded to
        the trainer so several methods reuse one persistent worker pool.
    checkpoint_dir:
        Optional crash-safe checkpoint directory forwarded to the trainer
        (see ``repro.checkpoint``); omit to fall back to the ambient
        :class:`repro.checkpoint.CheckpointPolicy`, if any.
    """
    try:
        spec = METHODS[name]
    except KeyError:
        raise KeyError(f"unknown method {name!r}; known: {sorted(METHODS)}") from None
    rng = make_rng(rng)
    grouper = spec.grouper_factory(group_size_knob, max_cov)
    groups = group_clients_per_edge(grouper, fed.L, edge_assignment, rng=rng)
    cfg = replace(config, sampling_method=spec.sampling_method)
    kwargs = dict(spec.trainer_kwargs or {})
    return spec.trainer_cls(
        model_fn,
        fed,
        groups,
        cfg,
        cost_model=cost_model,
        strategy=spec.strategy_factory(),
        # Hand the trainer its formation context so regroup_every and
        # population dynamics (config or ambient) can re-form groups.
        grouper=grouper,
        edge_assignment=edge_assignment,
        label=name,
        telemetry=telemetry,
        parallel=parallel,
        checkpoint_dir=checkpoint_dir,
        **kwargs,
    )
