"""Named method configurations — one spec per curve in Figs. 9–11.

``build_method`` assembles a ready-to-run trainer for any of the paper's
seven methods from shared ingredients (dataset, model factory, edge
assignment, cost model), applying each method's grouping algorithm,
sampling rule, local strategy, and cost factors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.baselines.fedclar import FedCLARTrainer
from repro.baselines.ifca import IFCATrainer
from repro.core.strategies import (
    FedProxStrategy,
    LocalStrategy,
    PlainSGDStrategy,
    ScaffoldStrategy,
)
from repro.core.trainer import GroupFELTrainer, TrainerConfig
from repro.costs.model import CostModel
from repro.data.client_data import FederatedDataset
from repro.grouping import (
    CDGGrouping,
    CoVGrouping,
    FedGroupGrouping,
    Grouper,
    KLDGrouping,
    RandomGrouping,
    group_clients_per_edge,
)
from repro.rng import make_rng

__all__ = ["MethodSpec", "METHODS", "build_method"]


@dataclass(frozen=True)
class MethodSpec:
    """Recipe for one method: grouping × sampling × local strategy."""

    name: str
    grouper_factory: Callable[[int, float], Grouper]  # (size_knob, max_cov) -> Grouper
    sampling_method: str
    strategy_factory: Callable[[], LocalStrategy]
    trainer_cls: type = GroupFELTrainer
    trainer_kwargs: dict | None = None
    #: optional per-method sampling scheme (None = keep the config's), so
    #: e.g. an HT-corrected multinomial baseline is expressible as a spec.
    sampling_scheme: str | None = None


def _covg(size: int, max_cov: float) -> Grouper:
    return CoVGrouping(min_group_size=size, max_cov=max_cov)


def _rg(size: int, max_cov: float) -> Grouper:
    return RandomGrouping(group_size=size)


def _cdg(size: int, max_cov: float) -> Grouper:
    return CDGGrouping(group_size=size)


def _kldg(size: int, max_cov: float) -> Grouper:
    return KLDGrouping(min_group_size=size)


def _fedgroup(size: int, max_cov: float) -> Grouper:
    return FedGroupGrouping(group_size=size)


#: The seven methods of §7.3 (Figs. 9–11) plus the clustered-FL suite
#: from the related work (IFCA, FedGroup).
METHODS: dict[str, MethodSpec] = {
    "group_fel": MethodSpec("group_fel", _covg, "esrcov", PlainSGDStrategy),
    "fedavg": MethodSpec("fedavg", _rg, "random", PlainSGDStrategy),
    "fedprox": MethodSpec("fedprox", _rg, "random", lambda: FedProxStrategy(mu=0.01)),
    "scaffold": MethodSpec("scaffold", _rg, "random", ScaffoldStrategy),
    "ouea": MethodSpec("ouea", _cdg, "random", PlainSGDStrategy),
    "share": MethodSpec("share", _kldg, "random", PlainSGDStrategy),
    "fedclar": MethodSpec(
        "fedclar",
        _rg,
        "random",
        PlainSGDStrategy,
        trainer_cls=FedCLARTrainer,
        trainer_kwargs={"cluster_round": 10, "num_clusters": 4},
    ),
    "ifca": MethodSpec(
        "ifca",
        _rg,
        "random",
        PlainSGDStrategy,
        trainer_cls=IFCATrainer,
        trainer_kwargs={"num_clusters": 3},
    ),
    "fedgroup": MethodSpec("fedgroup", _fedgroup, "random", PlainSGDStrategy),
}


def build_method(
    name: str,
    model_fn: Callable,
    fed: FederatedDataset,
    edge_assignment: list[np.ndarray],
    config: TrainerConfig,
    cost_model: CostModel | None = None,
    group_size_knob: int = 5,
    max_cov: float = 0.5,
    rng: np.random.Generator | int | None = None,
    telemetry=None,
    parallel=None,
    checkpoint_dir=None,
    sampling_scheme: str | None = None,
) -> GroupFELTrainer:
    """Build a ready-to-run trainer for a named method.

    Parameters
    ----------
    group_size_knob:
        MinGS for the greedy groupers, target group size for RG/CDG —
        "we tune all grouping algorithms so that they tend to generate
        similar group sizes" (§7.1).
    config:
        Shared hyperparameters; the method's sampling rule overrides
        ``config.sampling_method``. The override is recorded in the
        trainer's ``history.extra["sampling"]`` (with the clobbered
        request under ``"requested_method"``) so the effective rule is
        always observable.
    sampling_scheme:
        Optional draw-scheme override (see ``repro.sampling.schemes``);
        wins over the spec's ``sampling_scheme``, which wins over
        ``config.sampling_scheme``.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` forwarded to the
        trainer (default: the ambient instance).
    parallel:
        Optional shared :class:`repro.parallel.ParallelMap` forwarded to
        the trainer so several methods reuse one persistent worker pool.
    checkpoint_dir:
        Optional crash-safe checkpoint directory forwarded to the trainer
        (see ``repro.checkpoint``); omit to fall back to the ambient
        :class:`repro.checkpoint.CheckpointPolicy`, if any.
    """
    try:
        spec = METHODS[name]
    except KeyError:
        raise KeyError(f"unknown method {name!r}; known: {sorted(METHODS)}") from None
    rng = make_rng(rng)
    grouper = spec.grouper_factory(group_size_knob, max_cov)
    groups = group_clients_per_edge(grouper, fed.L, edge_assignment, rng=rng)
    cfg = replace(config, sampling_method=spec.sampling_method)
    scheme = sampling_scheme if sampling_scheme is not None else spec.sampling_scheme
    if scheme is not None:
        cfg = replace(cfg, sampling_scheme=scheme)
    kwargs = dict(spec.trainer_kwargs or {})
    trainer = spec.trainer_cls(
        model_fn,
        fed,
        groups,
        cfg,
        cost_model=cost_model,
        strategy=spec.strategy_factory(),
        # Hand the trainer its formation context so regroup_every and
        # population dynamics (config or ambient) can re-form groups.
        grouper=grouper,
        edge_assignment=edge_assignment,
        label=name,
        telemetry=telemetry,
        parallel=parallel,
        checkpoint_dir=checkpoint_dir,
        **kwargs,
    )
    # Make the effective sampling configuration observable: the spec's
    # rule silently wins over config.sampling_method, so record both.
    sampling_record = {
        "method": trainer.config.sampling_method,
        "scheme": trainer.config.sampling_scheme,
    }
    if config.sampling_method != spec.sampling_method:
        sampling_record["requested_method"] = config.sampling_method
        if trainer.telemetry.enabled:
            trainer.telemetry.inc("build_method.sampling_method_overridden")
    trainer.history.extra["sampling"] = sampling_record
    return trainer
