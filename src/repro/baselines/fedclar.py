"""FedCLAR — clustered personalized FL (Presotto et al., PerCom 2022).

FedCLAR trains federated models, clusters clients by model-update
similarity at a chosen round, and thereafter trains one personalized model
per cluster. It optimizes per-cluster performance, not the global task —
the paper includes it to show personalized FL "is not suitable for
training a good global model" (its global accuracy *drops* after the
clustering round, Fig. 9).

Adaptation to the group setting: before the clustering round the run is
ordinary hierarchical FedAvg (random groups, uniform sampling). At the
clustering round each client's local update direction is measured from the
current global model, clients are agglomeratively clustered by cosine
distance, and each cluster becomes an independent federation whose model
is trained on its own members only. Global accuracy is then the
data-weighted mean of the cluster models' accuracies on the global test
set.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from repro.core.client import run_local_rounds
from repro.core.trainer import GroupFELTrainer, TrainerConfig
from repro.grouping.base import Group
from repro.secure.backdoor import BackdoorDetector

__all__ = ["FedCLARTrainer"]


class FedCLARTrainer(GroupFELTrainer):
    """Hierarchical FedCLAR.

    Parameters (beyond GroupFELTrainer's)
    ----------
    cluster_round:
        Global round at which clustering triggers.
    num_clusters:
        Number of client clusters (personalized models).
    """

    def __init__(
        self,
        *args,
        cluster_round: int = 10,
        num_clusters: int = 4,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if cluster_round < 1:
            raise ValueError(f"cluster_round must be >= 1, got {cluster_round}")
        if num_clusters < 2:
            raise ValueError(f"num_clusters must be >= 2, got {num_clusters}")
        # Post-clustering evaluation blends k cluster models; the pipelined
        # eval path scores one snapshotted vector and would diverge.
        self.config = replace(self.config, pipeline_rounds=False)
        self.cluster_round = int(cluster_round)
        self.num_clusters = int(num_clusters)
        self.cluster_models: dict[int, np.ndarray] | None = None
        self.client_cluster: np.ndarray | None = None
        self.cluster_groups: dict[int, Group] | None = None

    # ------------------------------------------------------------------ clustering
    def _cluster_clients(self) -> None:
        """Cluster clients by local-update cosine similarity."""
        n = self.fed.num_clients
        updates = np.empty((n, self.global_params.shape[0]))
        rng = self.rng.spawn(1)[0]
        for cid, client in enumerate(self.fed.clients):
            end, _ = run_local_rounds(
                self.model,
                self.optimizer,
                client,
                start_params=self.global_params,
                local_rounds=1,
                batch_size=self.config.batch_size,
                rng=rng,
            )
            updates[cid] = end - self.global_params
        dist = BackdoorDetector.cosine_distance_matrix(updates)
        tree = linkage(squareform(dist, checks=False), method="average")
        k = min(self.num_clusters, n)
        labels = fcluster(tree, t=k, criterion="maxclust") - 1
        self.client_cluster = labels
        self.cluster_models = {}
        self.cluster_groups = {}
        for c in np.unique(labels):
            members = np.flatnonzero(labels == c)
            self.cluster_models[int(c)] = self.global_params.copy()
            self.cluster_groups[int(c)] = Group(
                group_id=int(c),
                edge_id=0,
                members=members,
                label_counts=self.fed.L[members].sum(axis=0),
            )

    # ------------------------------------------------------------------ training
    def train_round(self) -> float:
        if self.cluster_models is None:
            cost = super().train_round()
            if self.round_idx >= self.cluster_round:
                self._cluster_clients()
            return cost

        # Post-clustering: every cluster trains its own model on its members.
        assert self.cluster_groups is not None
        from repro.core.group import run_group_round

        for cid, group in self.cluster_groups.items():
            self.cluster_models[cid] = run_group_round(
                self.model,
                self.optimizer,
                group,
                self.fed.clients,
                self.cluster_models[cid],
                group_rounds=self.config.group_rounds,
                local_rounds=self.config.local_rounds,
                batch_size=self.config.batch_size,
                rng=self.rng.spawn(1)[0],
                strategy=self.strategy,
                step_mode=self.config.step_mode,
            )
        cost = self.ledger.charge_round(
            list(self.cluster_groups.values()),
            self.config.group_rounds,
            self.config.local_rounds,
        )
        self.round_idx += 1
        return cost

    def evaluate(self) -> tuple[float, float]:
        if self.cluster_models is None:
            return super().evaluate()
        # Data-weighted mean of per-cluster global-test performance.
        assert self.cluster_groups is not None
        total_n = sum(g.n_g for g in self.cluster_groups.values())
        loss = acc = 0.0
        for cid, params in self.cluster_models.items():
            self.model.set_params(params)
            l, a = self.model.evaluate(self.fed.test.x, self.fed.test.y)
            w = self.cluster_groups[cid].n_g / total_n
            loss += w * l
            acc += w * a
        return loss, acc

    # ---------------------------------------------------------- checkpointing
    def extra_state_dict(self) -> dict | None:
        if self.cluster_models is None:
            return None
        return {
            "fedclar_models": {
                int(c): np.array(p, copy=True)
                for c, p in self.cluster_models.items()
            },
            "fedclar_client_cluster": np.array(self.client_cluster, copy=True),
            "fedclar_groups": {
                int(c): g for c, g in self.cluster_groups.items()
            },
        }

    def load_extra_state_dict(self, state: dict | None) -> None:
        if not state:
            # Checkpoint taken before the clustering round: resume the
            # plain hierarchical phase.
            self.cluster_models = None
            self.client_cluster = None
            self.cluster_groups = None
            return
        if "fedclar_models" not in state:
            raise ValueError(
                "checkpoint extra state is not FedCLAR's — it was written "
                "by a different trainer class"
            )
        self.cluster_models = {
            int(c): np.array(p, copy=True)
            for c, p in state["fedclar_models"].items()
        }
        self.client_cluster = np.array(state["fedclar_client_cluster"], copy=True)
        self.cluster_groups = dict(state["fedclar_groups"])
