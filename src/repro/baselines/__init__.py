"""Baseline methods, all run through the same hierarchical loop (§7.3).

Per the paper's protocol every baseline is "modified to a hierarchical
version ... with uniform group sampling": FedAvg / FedProx / SCAFFOLD use
random grouping; OUEA brings its CDG grouping; SHARE its KLD grouping;
FedCLAR starts from random grouping and switches to clustered personalized
training at a set round. Group-FEL itself is CoV-Grouping + CoV sampling.
"""

from repro.baselines.fedclar import FedCLARTrainer
from repro.baselines.ifca import IFCATrainer
from repro.baselines.registry import METHODS, MethodSpec, build_method

__all__ = ["FedCLARTrainer", "IFCATrainer", "METHODS", "MethodSpec", "build_method"]
