"""Population-event recording with deterministic replay signatures.

Every population change — a client joining or leaving, a label-drift
mutation, a migration between groups, a watchdog regroup — becomes a
:class:`PopulationEvent` appended to the run's :class:`PopulationTrace`.
Because all dynamics decisions are pure functions of
``(population seed, kind, index, round, client)`` (see
``repro.population.dynamics``), two runs with the same seed produce the
same event *set* regardless of the execution backend.
:meth:`PopulationTrace.signature` hashes the canonically sorted events,
giving a backend-independent replay fingerprint — the population-side
twin of :meth:`repro.faults.FaultTrace.signature`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import Counter
from dataclasses import dataclass, field

__all__ = ["PopulationEvent", "PopulationTrace"]


@dataclass(frozen=True)
class PopulationEvent:
    """One population change.

    ``kind`` is the event family (``join`` / ``leave`` / ``drift`` /
    ``corrupt`` / ``migrate`` / ``regroup``). ``index`` identifies which
    dynamic fired (drift/corruption replay re-derives the mutation from
    it); ``mode`` qualifies drifts (``step`` / ``linear`` / ``corr``),
    corruptions (``cycle`` / ``ramp``) and regroups (``scoped`` /
    ``full`` / ``forced``). ``group_id`` / ``to_group_id`` record the
    affected group (joins, leaves, migrations); ``samples`` and ``offset``
    record a drift's relabeled-sample count and class rotation — a
    ``corrupt`` event reuses ``offset`` to carry its severity level,
    keeping the signature schema stable.
    """

    kind: str
    round: int
    client_id: int | None = None
    index: int | None = None
    mode: str | None = None
    group_id: int | None = None
    to_group_id: int | None = None
    samples: int = 0
    offset: int = 0

    def key(self) -> tuple:
        """Total ordering key — canonical across execution backends."""
        return (
            self.round,
            self.kind,
            -1 if self.client_id is None else self.client_id,
            -1 if self.index is None else self.index,
            -1 if self.group_id is None else self.group_id,
            -1 if self.to_group_id is None else self.to_group_id,
            self.mode or "",
        )


@dataclass
class PopulationTrace:
    """Thread-safe accumulator of the population events of a run."""

    events: list[PopulationEvent] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __getstate__(self) -> dict:
        """Pickle/checkpoint support: the lock is process-local, drop it."""
        with self._lock:
            return {"events": list(self.events)}

    def __setstate__(self, state: dict) -> None:
        self.events = list(state["events"])
        self._lock = threading.Lock()

    def record(self, event: PopulationEvent) -> None:
        with self._lock:
            self.events.append(event)

    def extend(self, events: list[PopulationEvent]) -> None:
        with self._lock:
            self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)

    def sorted(self) -> list[PopulationEvent]:
        """Events in canonical order (independent of recording order)."""
        return sorted(self.events, key=PopulationEvent.key)

    def counts(self) -> Counter:
        """Event count per ``kind`` (the ``population.*`` breakdown)."""
        return Counter(e.kind for e in self.events)

    def signature(self) -> str:
        """Hex digest of the canonically-sorted trace.

        Equal signatures ⇒ the two runs applied exactly the same
        population changes — the deterministic-replay contract (same
        seed, same signature, on any backend).
        """
        h = hashlib.sha256()
        for e in self.sorted():
            h.update(
                f"{e.kind}|{e.round}|{e.client_id}|{e.index}|{e.mode}|"
                f"{e.group_id}|{e.to_group_id}|{e.samples}|{e.offset}\n".encode()
            )
        return h.hexdigest()
