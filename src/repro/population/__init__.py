"""Dynamic client populations: churn, label drift, online group maintenance.

The paper's CoV-Grouping and Γ_p sampling analysis assume a static client
population; this package removes that assumption. A
:class:`PopulationModel` schedules seeded arrival/departure processes and
label-drift dynamics as pure per-round decisions (the ``repro.faults``
idiom — same seed ⇒ same population, bit for bit, on any backend); an
:class:`OnlineGroupMaintainer` keeps the CoV partition valid under those
events via O(m) incremental-moment updates and a MaxCoV-degradation
watchdog; a :class:`PopulationEngine` applies everything at the trainer's
round boundaries and records a replayable :class:`PopulationTrace`.

Enable it with ``TrainerConfig(population="start:0.7,join:1,leave:0.02")``
(plus ``grouper=``/``edge_assignment=`` on the trainer), the runner's
``population=`` parameter, or the CLI's ``--population SPEC``.
"""

from repro.population.dynamics import (
    CORRUPTION_MODES,
    DRIFT_MODES,
    Arrivals,
    Departures,
    FeatureCorruption,
    InitialActive,
    LabelDrift,
    PopulationModel,
    get_active_population,
    population_activated,
    set_active_population,
)
from repro.population.engine import PopulationEngine, PopulationStep
from repro.population.maintenance import OnlineGroupMaintainer
from repro.population.store import ColumnarPopulation, group_label_counts
from repro.population.trace import PopulationEvent, PopulationTrace

__all__ = [
    "ColumnarPopulation",
    "group_label_counts",
    "DRIFT_MODES",
    "CORRUPTION_MODES",
    "InitialActive",
    "Arrivals",
    "Departures",
    "LabelDrift",
    "FeatureCorruption",
    "PopulationModel",
    "PopulationEngine",
    "PopulationStep",
    "OnlineGroupMaintainer",
    "PopulationEvent",
    "PopulationTrace",
    "get_active_population",
    "set_active_population",
    "population_activated",
]
