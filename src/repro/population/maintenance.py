"""Online CoV-group maintenance over incremental S1/S2 moments.

PR 5's incremental grouping engine made *forming* groups cheap by scoring
candidates from the running moments S1 = Σ_j c_j and S2 = Σ_j c_j² of the
group's label counts. This module keeps those moments alive *after*
formation so a dynamic population never needs a from-scratch re-partition
for a single membership change:

* :meth:`OnlineGroupMaintainer.insert_client` — O(G·m) greedy placement
  into the CoV-minimizing group of the client's edge;
* :meth:`OnlineGroupMaintainer.remove_client` /
  :meth:`~OnlineGroupMaintainer.update_client` — O(m) moment updates;
* :meth:`OnlineGroupMaintainer.migrate_client` — remove + best re-insert.

Label counts are integers, so every moment update is *exact* (int64 dot
products folded into Python ints), and insert placement compares candidate
scores as exact rational numbers — CoV² = m·S2/S1² − 1 and
eq27² = S2/S1 − S1/m are both monotone in an integer fraction — so
placement never depends on float rounding and replays bit-identically on
any backend.

A MaxCoV-degradation watchdog (:meth:`~OnlineGroupMaintainer.maintain`)
runs after each round's population events: groups whose membership or
counts changed ("dirty") and now violate the size floor or exceed
``degrade_factor × MaxCoV`` are re-grouped *scoped* — only the degraded
groups' clients are re-partitioned (FlexCFL-style rescheduling), with
undersized leftovers folded into surviving groups as migrations — falling
back to a full re-partition when the degraded set is the majority. Static
partitions are never churned: the watchdog reacts to changes, not to
standing CoV values, so it cannot thrash.
"""

from __future__ import annotations

import math
from collections import defaultdict
from fractions import Fraction

import numpy as np

from repro.grouping.base import Group, Grouper
from repro.grouping.cov import cov_of_counts, cov_paper_eq27
from repro.population.trace import PopulationEvent
from repro.rng import make_rng, spawn, spawn_many
from repro.telemetry import Telemetry, resolve as resolve_telemetry

__all__ = ["OnlineGroupMaintainer"]


class _GroupState:
    """One maintained group: members + label counts + exact moments.

    ``s1``/``s2`` are Python ints (arbitrary precision), updated in O(m)
    per membership/count change; ``dirty`` marks the group for the next
    watchdog pass.
    """

    __slots__ = ("edge_id", "members", "counts", "s1", "s2", "dirty")

    def __init__(self, edge_id: int, num_classes: int):
        self.edge_id = int(edge_id)
        self.members: list[int] = []
        self.counts = np.zeros(num_classes, dtype=np.int64)
        self.s1 = 0
        self.s2 = 0
        self.dirty = False

    @property
    def size(self) -> int:
        return len(self.members)


class OnlineGroupMaintainer:
    """Keep a CoV-grouped partition valid under churn and drift.

    Parameters
    ----------
    grouper:
        The formation algorithm used for (re-)partitions. Its
        ``min_group_size`` / ``max_cov`` / ``cov_metric`` attributes (the
        :class:`repro.grouping.CoVGrouping` knobs) drive placement and the
        watchdog; groupers without them fall back to permissive defaults.
    label_matrix:
        The live (clients × classes) integer label matrix L — held by
        reference, *not* copied: :meth:`update_client` writes drifted
        counts back into it so every consumer (groupers, samplers) sees
        one consistent view.
    edge_of_client:
        Edge-server id per pool client; groups only ever form within one
        edge (Algorithm 1's per-edge formation).
    groups:
        The current partition to adopt (e.g. from
        :func:`repro.grouping.group_clients_per_edge`).
    degrade_factor:
        Watchdog tolerance: a dirty group triggers re-grouping when its
        CoV exceeds ``degrade_factor × max_cov`` (hysteresis above the
        formation target so single-client noise does not thrash).
    """

    def __init__(
        self,
        grouper: Grouper,
        label_matrix: np.ndarray,
        edge_of_client: np.ndarray,
        groups: list[Group] | tuple = (),
        telemetry: Telemetry | None = None,
        degrade_factor: float = 1.25,
    ):
        if label_matrix.ndim != 2:
            raise ValueError(
                f"label_matrix must be 2-D (clients × classes), got shape "
                f"{label_matrix.shape}"
            )
        if not np.issubdtype(label_matrix.dtype, np.integer):
            raise ValueError(
                "online maintenance needs an integer label matrix (exact "
                f"moments), got dtype {label_matrix.dtype}"
            )
        if degrade_factor < 1.0:
            raise ValueError(
                f"degrade_factor must be >= 1, got {degrade_factor}"
            )
        self.grouper = grouper
        self.L = label_matrix
        self.edge_of_client = np.asarray(edge_of_client, dtype=np.int64)
        self.num_edges = (
            int(self.edge_of_client.max()) + 1 if self.edge_of_client.size else 1
        )
        self.telemetry = resolve_telemetry(telemetry)
        self.degrade_factor = float(degrade_factor)
        self.min_group_size = int(
            getattr(grouper, "min_group_size", getattr(grouper, "group_size", 1))
        )
        self.max_cov = float(getattr(grouper, "max_cov", math.inf))
        self.cov_metric = getattr(grouper, "cov_metric", "cov")
        self._states: list[_GroupState] = []
        self.group_of: dict[int, _GroupState] = {}
        if groups:
            self.reset_from_groups(groups)

    # ------------------------------------------------------------- inspection
    @property
    def num_groups(self) -> int:
        return len(self._states)

    def active_ids(self) -> list[int]:
        """The maintained client ids, ascending."""
        return sorted(self.group_of)

    def moments(self) -> list[tuple[int, int]]:
        """(S1, S2) per group — exposed for exactness tests."""
        return [(s.s1, s.s2) for s in self._states]

    def group_index(self, client_id: int) -> int:
        """Current group position of a maintained client."""
        return self._states.index(self.group_of[client_id])

    def cov_of(self, state_index: int) -> float:
        """The configured metric of one group's current counts."""
        metric = cov_paper_eq27 if self.cov_metric == "eq27" else cov_of_counts
        return float(metric(self._states[state_index].counts))

    def groups(self) -> list[Group]:
        """Materialize the maintained partition as renumbered Groups."""
        return [
            Group(
                group_id=gid,
                edge_id=s.edge_id,
                members=np.array(s.members, dtype=np.int64),
                label_counts=s.counts.copy(),
            )
            for gid, s in enumerate(self._states)
        ]

    def reset_from_groups(self, groups: list[Group] | tuple, strict: bool = True) -> None:
        """Adopt an externally formed partition (initial groups, restore).

        With ``strict`` every group's stored ``label_counts`` must equal
        the sum of its members' live L rows — the guard that catches
        resuming drifted populations over an already-mutated dataset
        (drift replay would double-apply).
        """
        states: list[_GroupState] = []
        owner: dict[int, _GroupState] = {}
        for g in groups:
            s = _GroupState(g.edge_id, self.L.shape[1])
            s.members = [int(c) for c in g.members]
            s.counts = self.L[np.asarray(g.members, dtype=np.int64)].sum(
                axis=0, dtype=np.int64
            )
            if strict and not np.array_equal(s.counts, g.label_counts):
                raise ValueError(
                    f"group {g.group_id} label_counts disagree with the live "
                    "label matrix — the dataset was mutated outside this "
                    "maintainer (e.g. resuming a drifted population over "
                    "non-pristine client data)"
                )
            s.s1 = int(s.counts.sum())
            s.s2 = int(s.counts @ s.counts)
            for cid in s.members:
                if cid in owner:
                    raise ValueError(f"client {cid} appears in two groups")
                owner[cid] = s
            states.append(s)
        self._states = states
        self.group_of = owner

    # ------------------------------------------------------------ primitives
    def _score(self, s1: int, s2: int) -> tuple[int, Fraction]:
        """Exact rational ordering key of a (S1, S2) candidate.

        cov:  CoV² = m·S2/S1² − 1  → order by S2/S1².
        eq27: eq27² = S2/S1 − S1/m → order by (m·S2 − S1²)/(m·S1).
        Empty groups (S1 = 0) sort last (CoV = ∞).
        """
        if s1 <= 0:
            return (1, Fraction(0))
        m = self.L.shape[1]
        if self.cov_metric == "eq27":
            return (0, Fraction(m * s2 - s1 * s1, m * s1))
        return (0, Fraction(s2, s1 * s1))

    def _insert_score(self, s: _GroupState, row: np.ndarray, rsum: int, rq: int):
        s1c = s.s1 + rsum
        s2c = s.s2 + 2 * int(s.counts @ row) + rq
        return self._score(s1c, s2c)

    def _attach(self, s: _GroupState, cid: int, row: np.ndarray) -> None:
        s.s1 += int(row.sum())
        s.s2 += 2 * int(s.counts @ row) + int(row @ row)
        s.counts += row
        s.members.append(cid)
        s.dirty = True
        self.group_of[cid] = s

    def _detach(self, cid: int) -> _GroupState:
        s = self.group_of.pop(cid)
        row = self.L[cid]
        s.members.remove(cid)
        s.counts -= row
        s.s1 -= int(row.sum())
        s.s2 -= 2 * int(s.counts @ row) + int(row @ row)
        s.dirty = True
        return s

    def _best_target(
        self, row: np.ndarray, edge_id: int, exclude: _GroupState | None = None
    ) -> _GroupState | None:
        cands = [
            s for s in self._states if s.edge_id == edge_id and s is not exclude
        ]
        if not cands:
            return None
        rsum = int(row.sum())
        rq = int(row @ row)
        # min() keeps the first of exact ties — position order, deterministic.
        return min(cands, key=lambda s: self._insert_score(s, row, rsum, rq))

    # ------------------------------------------------------------ operations
    def insert_client(self, client_id: int) -> int:
        """Place an arriving client into the CoV-minimizing group of its
        edge (a new singleton group if the edge has none); returns the
        group position."""
        cid = int(client_id)
        if cid in self.group_of:
            raise ValueError(f"client {cid} is already maintained")
        row = self.L[cid]
        edge = int(self.edge_of_client[cid])
        target = self._best_target(row, edge)
        if target is None:
            target = _GroupState(edge, self.L.shape[1])
            target.dirty = True
            self._states.append(target)
        self._attach(target, cid, row)
        if self.telemetry.enabled:
            self.telemetry.inc("population.inserts")
        return self._states.index(target)

    def remove_client(self, client_id: int) -> int:
        """Remove a departing client (O(m) moment update); empty groups
        are pruned. Returns the group position it left."""
        cid = int(client_id)
        if cid not in self.group_of:
            raise ValueError(f"client {cid} is not maintained")
        s = self.group_of[cid]
        gi = self._states.index(s)
        self._detach(cid)
        if not s.members:
            self._states.remove(s)
        if self.telemetry.enabled:
            self.telemetry.inc("population.removals")
        return gi

    def update_client(self, client_id: int, new_counts: np.ndarray) -> None:
        """Apply a label-drift count change: O(m) delta on the owning
        group's moments, then write the new row back into L."""
        cid = int(client_id)
        s = self.group_of.get(cid)
        new = np.asarray(new_counts, dtype=np.int64)
        if new.shape != self.L[cid].shape:
            raise ValueError(
                f"new_counts shape {new.shape} != {self.L[cid].shape}"
            )
        if s is not None:
            d = new - self.L[cid]
            s.s1 += int(d.sum())
            s.s2 += 2 * int(s.counts @ d) + int(d @ d)
            s.counts += d
            s.dirty = True
        np.copyto(self.L[cid], new)

    def migrate_client(self, client_id: int) -> tuple[int, int] | None:
        """Move a client to the best *other* group of its edge; returns
        (from, to) group positions, or None if its edge has no other
        group."""
        cid = int(client_id)
        s = self.group_of[cid]
        edge = int(self.edge_of_client[cid])
        target = self._best_target(self.L[cid], edge, exclude=s)
        if target is None:
            return None
        src = self._states.index(s)
        self._detach(cid)
        if not s.members:
            self._states.remove(s)
        self._attach(target, cid, self.L[cid])
        if self.telemetry.enabled:
            self.telemetry.inc("population.migrations")
        return src, self._states.index(target)

    # -------------------------------------------------------------- watchdog
    def _is_degraded(self, s: _GroupState) -> bool:
        if s.size < self.min_group_size and len(self._states) > 1:
            return True
        if not math.isfinite(self.max_cov):
            return False
        metric = cov_paper_eq27 if self.cov_metric == "eq27" else cov_of_counts
        return float(metric(s.counts)) > self.max_cov * self.degrade_factor

    def maintain(self, rng, round_idx: int, record=None) -> bool:
        """The MaxCoV-degradation watchdog — run once per round after the
        round's population events.

        Dirty groups (membership or counts changed since the last pass)
        that now violate the size floor or exceed
        ``degrade_factor × MaxCoV`` are re-grouped: *scoped* over just the
        degraded groups' clients when they are a minority, a *full*
        re-partition otherwise. ``record``, if given, receives one
        :class:`PopulationEvent` per regroup/migration. Returns True when
        anything (counts or structure) changed since the last pass, i.e.
        whether samplers must be rebuilt.
        """
        changed = any(s.dirty for s in self._states)
        degraded = [s for s in self._states if s.dirty and self._is_degraded(s)]
        for s in self._states:
            s.dirty = False
        if not degraded:
            return changed
        tel = self.telemetry
        if 2 * len(degraded) >= len(self._states):
            pool = sum(s.size for s in degraded)
            self.full_repartition(rng)
            if record is not None:
                record(
                    PopulationEvent(
                        "regroup", round_idx, mode="full", samples=pool
                    )
                )
            if tel.enabled:
                tel.inc("population.regroups_full")
                tel.observe("population.regroup_clients", float(pool))
        else:
            self._scoped_regroup(degraded, rng, round_idx, record)
            if tel.enabled:
                tel.inc("population.regroups_scoped")
        return True

    def _scoped_regroup(
        self, degraded: list[_GroupState], rng, round_idx: int, record
    ) -> None:
        """Re-partition only the degraded groups' clients, per edge.

        Edges whose degraded pool still meets MinGS re-run the grouper on
        it; smaller pools fold member-by-member into the edge's surviving
        groups (recorded as migrations), or stay one leftover group when
        the edge has no survivor.
        """
        mgs = self.min_group_size
        tel = self.telemetry
        pool_by_edge: dict[int, list[int]] = defaultdict(list)
        for s in degraded:
            pool_by_edge[s.edge_id].extend(s.members)
        for s in degraded:
            for cid in list(s.members):
                self.group_of.pop(cid)
            self._states.remove(s)
        rng = make_rng(rng)
        for edge in sorted(pool_by_edge):
            ids = sorted(pool_by_edge[edge])
            child = spawn(rng)
            if len(ids) >= mgs:
                formed = self.grouper.group(
                    self.L[np.array(ids, dtype=np.int64)],
                    np.array(ids, dtype=np.int64),
                    edge_id=edge,
                    rng=child,
                )
                self._adopt(formed)
                if record is not None:
                    record(
                        PopulationEvent(
                            "regroup", round_idx, index=edge, mode="scoped",
                            samples=len(ids),
                        )
                    )
                if tel.enabled:
                    tel.observe("population.regroup_clients", float(len(ids)))
            elif any(t.edge_id == edge for t in self._states):
                for cid in ids:
                    row = self.L[cid]
                    target = self._best_target(row, edge)
                    self._attach(target, cid, row)
                    target.dirty = False  # accepted by this pass
                    if record is not None:
                        record(
                            PopulationEvent(
                                "migrate", round_idx, client_id=cid,
                                to_group_id=self._states.index(target),
                            )
                        )
                    if tel.enabled:
                        tel.inc("population.migrations")
            else:
                leftover = _GroupState(edge, self.L.shape[1])
                self._states.append(leftover)
                for cid in ids:
                    self._attach(leftover, cid, self.L[cid])
                leftover.dirty = False

    def full_repartition(self, rng, active_ids: list[int] | None = None) -> None:
        """From-scratch per-edge re-partition of the maintained clients.

        Mirrors :func:`repro.grouping.group_clients_per_edge` exactly — one
        spawned child RNG per pool edge, ascending client order — so when
        every edge's active count meets MinGS the result is bit-identical
        to a fresh formation over the same label matrix. Edges below the
        floor keep their clients as one leftover group (a fresh formation
        would reject them — see ``CoVGrouping.group``'s validation).
        """
        if active_ids is None:
            active_ids = self.active_ids()
        rng = make_rng(rng)
        children = spawn_many(rng, self.num_edges)
        by_edge: dict[int, list[int]] = defaultdict(list)
        for cid in sorted(int(c) for c in active_ids):
            by_edge[int(self.edge_of_client[cid])].append(cid)
        self._states = []
        self.group_of = {}
        for edge in range(self.num_edges):
            ids = by_edge.get(edge, [])
            if not ids:
                continue
            if len(ids) < self.min_group_size:
                leftover = _GroupState(edge, self.L.shape[1])
                self._states.append(leftover)
                for cid in ids:
                    self._attach(leftover, cid, self.L[cid])
                leftover.dirty = False
            else:
                formed = self.grouper.group(
                    self.L[np.array(ids, dtype=np.int64)],
                    np.array(ids, dtype=np.int64),
                    edge_id=edge,
                    rng=children[edge],
                )
                self._adopt(formed)

    def _adopt(self, formed: list[Group]) -> None:
        """Fold freshly formed Groups into maintained state (clean)."""
        for g in formed:
            s = _GroupState(g.edge_id, self.L.shape[1])
            s.members = [int(c) for c in g.members]
            s.counts = np.asarray(g.label_counts, dtype=np.int64).copy()
            s.s1 = int(s.counts.sum())
            s.s2 = int(s.counts @ s.counts)
            for cid in s.members:
                self.group_of[cid] = s
            self._states.append(s)

    def __repr__(self) -> str:
        return (
            f"OnlineGroupMaintainer(groups={self.num_groups}, "
            f"clients={len(self.group_of)}, grouper={self.grouper!r})"
        )
