"""`PopulationEngine` — applies a `PopulationModel` at round boundaries.

The engine owns the evolving population state of one trainer: which pool
clients are currently active, the maintained group partition
(:class:`~repro.population.maintenance.OnlineGroupMaintainer`), and the
replayable :class:`~repro.population.trace.PopulationTrace`. Each global
round, :meth:`step` applies — in a fixed canonical order, so replay is
bit-identical on any backend —

1. **departures**: every active client asks ``model.departs`` (ascending
   id; the last active client never leaves);
2. **arrivals**: ``model.arrivals`` dormant clients join (lowest dormant
   ids first), greedily placed into their edge's CoV-minimizing group;
3. **label drift**: firing drifts relabel a seeded subset of the client's
   samples in place (``y`` and its L row stay consistent — the data the
   groups train on *is* the drifted data);
4. **maintenance**: the MaxCoV watchdog re-groups degraded groups.

All RNG use is derived from the model seed and the site
(``derive_seed(seed, kind, index, round, client)``), never from the
trainer's stream — population dynamics and training randomness compose
independently, and checkpoint resume re-derives drift mutations exactly
from the recorded events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grouping.base import Group, Grouper
from repro.population.dynamics import PopulationModel
from repro.population.maintenance import OnlineGroupMaintainer
from repro.population.trace import PopulationEvent, PopulationTrace
from repro.rng import derive_seed, make_rng
from repro.telemetry import Telemetry, resolve as resolve_telemetry

__all__ = ["PopulationEngine", "PopulationStep"]


@dataclass
class PopulationStep:
    """What one round's population pass changed.

    ``groups_changed`` ⇒ the partition or any group's counts changed, so
    sampling probabilities and Eq. (4) weights must be recomputed;
    ``data_changed`` ⇒ client training data mutated (process-pool worker
    state must be re-shipped).
    """

    events: list[PopulationEvent] = field(default_factory=list)
    groups_changed: bool = False
    data_changed: bool = False


class PopulationEngine:
    """Evolve one trainer's client population across rounds."""

    def __init__(
        self,
        model: PopulationModel,
        fed,
        grouper: Grouper,
        edge_assignment: list[np.ndarray],
        groups: list[Group],
        telemetry: Telemetry | None = None,
    ):
        self.model = model
        self.fed = fed
        self.telemetry = resolve_telemetry(telemetry)
        pool = fed.num_clients
        edge_of = np.zeros(pool, dtype=np.int64)
        for edge_id, clients in enumerate(edge_assignment):
            edge_of[np.asarray(clients, dtype=np.int64)] = edge_id
        self.trace = PopulationTrace()
        self.maintainer = OnlineGroupMaintainer(
            grouper, fed.L, edge_of, groups=groups, telemetry=self.telemetry
        )
        self.active = model.initial_active(pool)
        # A columnar store tracks its own active mask; share one array so
        # store-level introspection always reflects the engine's state.
        adopt = getattr(fed, "adopt_active", None)
        if adopt is not None:
            self.active = adopt(self.active)
        if not self.active.all():
            # A seeded initial subset: deterministic from-scratch partition
            # of just the active clients (keyed off the model seed, so the
            # trainer's RNG stream layout is untouched).
            self.maintainer.full_repartition(
                make_rng(derive_seed(model.seed, "init")),
                active_ids=[int(c) for c in np.flatnonzero(self.active)],
            )
        self._num_active = int(self.active.sum())
        self.groups = self.maintainer.groups()
        #: pristine per-client feature copies, captured lazily the first
        #: time a corruption strikes the client — corruption is always
        #: re-applied *from pristine*, never compounded.
        self._pristine_x: dict[int, np.ndarray] = {}

    @property
    def num_active(self) -> int:
        return self._num_active

    # ---------------------------------------------------------------- stepping
    def step(self, round_idx: int) -> PopulationStep:
        """Apply one round's population events; see the module docstring
        for the canonical order."""
        model = self.model
        events: list[PopulationEvent] = []
        data_changed = False

        for cid in [int(c) for c in np.flatnonzero(self.active)]:
            if self._num_active <= 1:
                break
            if model.departs(round_idx, cid):
                gi = self.maintainer.remove_client(cid)
                self.active[cid] = False
                self._num_active -= 1
                events.append(
                    PopulationEvent("leave", round_idx, client_id=cid, group_id=gi)
                )

        joining = model.arrivals(round_idx)
        if joining:
            dormant = np.flatnonzero(~self.active)[:joining]
            for cid in [int(c) for c in dormant]:
                gi = self.maintainer.insert_client(cid)
                self.active[cid] = True
                self._num_active += 1
                events.append(
                    PopulationEvent("join", round_idx, client_id=cid, group_id=gi)
                )

        if model.has_drift:
            for cid in [int(c) for c in np.flatnonzero(self.active)]:
                for idx, dyn in model.drift_decisions(round_idx, cid):
                    event = self._apply_drift(idx, dyn, round_idx, cid)
                    if event is not None:
                        events.append(event)
                        data_changed = True

        if model.has_corruption:
            for cid in [int(c) for c in np.flatnonzero(self.active)]:
                for idx, dyn in model.corruption_decisions(round_idx, cid):
                    events.append(self._apply_corruption(idx, dyn, round_idx, cid))
                    data_changed = True

        tel = self.telemetry
        with tel.span("population_maintain", round=round_idx):
            changed = self.maintainer.maintain(
                make_rng(derive_seed(model.seed, "regroup", round_idx)),
                round_idx,
                record=events.append,
            )
        # Corruption perturbs features only — label counts, and hence the
        # sampling probabilities and Eq. (4) weights, are untouched, so it
        # must not trigger a sampler rebuild (which would consume trainer
        # RNG and change the selection stream).
        groups_changed = changed or any(e.kind != "corrupt" for e in events)
        if groups_changed:
            self.groups = self.maintainer.groups()
        self.trace.extend(events)
        if tel.enabled:
            for e in events:
                if e.kind in ("join", "leave", "drift", "corrupt"):
                    tel.inc(f"population.{e.kind}s")
            tel.set_gauge("population.active", float(self._num_active))
            tel.set_gauge("population.groups", float(len(self.groups)))
        return PopulationStep(events, groups_changed, data_changed)

    def _apply_drift(
        self, index: int, dyn, round_idx: int, cid: int
    ) -> PopulationEvent | None:
        """Relabel a seeded subset of the client's samples in place.

        Representation-agnostic: ``client_labels``/``client_size`` resolve
        to the object path's per-client arrays or the columnar store's
        shared-array views, so the mutation (and hence the replay
        signature) is identical either way.
        """
        num_classes = self.fed.num_classes
        num, offset, indices = self.model.drift_sample(
            index, dyn, round_idx, cid, self.fed.client_size(cid), num_classes
        )
        if num == 0:
            return None
        y = self.fed.client_labels(cid)
        y[indices] = (y[indices] + offset) % num_classes
        new_counts = np.bincount(y, minlength=num_classes).astype(np.int64)
        if self.active[cid]:
            self.maintainer.update_client(cid, new_counts)
        else:
            np.copyto(self.fed.L[cid], new_counts)
        return PopulationEvent(
            "drift", round_idx, client_id=cid, index=index, mode=dyn.mode,
            samples=num, offset=offset,
        )

    def _apply_corruption(
        self, index: int, dyn, round_idx: int, cid: int
    ) -> PopulationEvent:
        """Re-noise the client's features from pristine at this round's
        severity (continual test-time corruption).

        The event reuses the trace schema's ``offset`` field to carry the
        severity level, keeping the replay-signature format stable; both
        the severity and the noise are pure in (seed, index, round,
        client), so resume re-derives the identical features.
        """
        x = self.fed.client_features(cid)
        pristine = self._pristine_x.setdefault(cid, x.copy())
        severity = self.model.corruption_severity(index, dyn, round_idx, cid)
        noise = self.model.corruption_noise(
            index, dyn, round_idx, cid, severity, x.shape
        )
        np.copyto(x, pristine + noise)
        return PopulationEvent(
            "corrupt", round_idx, client_id=cid, index=index, mode=dyn.mode,
            samples=int(x.shape[0]), offset=severity,
        )

    def force_repartition(self, round_idx: int) -> None:
        """Full re-partition of the active population (``regroup_every``)."""
        self.maintainer.full_repartition(
            make_rng(derive_seed(self.model.seed, "regroup", round_idx, "forced"))
        )
        self.groups = self.maintainer.groups()
        self.trace.record(PopulationEvent("regroup", round_idx, mode="forced"))

    # ------------------------------------------------------------ checkpointing
    def state_dict(self) -> dict:
        """Everything resume needs beyond the trainer's restored groups:
        the active mask and the full event list (drift re-derivation)."""
        return {
            "active": self.active.copy(),
            "events": list(self.trace.events),
        }

    def load_state_dict(self, state: dict, groups: list[Group]) -> None:
        """Restore population state, replaying drift onto pristine data.

        Drift decisions are pure functions of (seed, site), so each
        recorded drift event re-derives its exact mutation and applies it
        to the client's samples; the maintainer then re-adopts the
        restored groups and verifies them against the replayed label
        matrix — catching resumes over an already-drifted dataset (which
        would double-apply) loudly instead of silently diverging.
        """
        events = list(state["events"])
        mine = list(self.trace.events)
        if mine != events[: len(mine)]:
            raise ValueError(
                "population trace diverged from the checkpoint's — resume "
                "needs a freshly-constructed trainer over pristine data"
            )
        for e in events[len(mine):]:
            if e.kind == "corrupt":
                # Corruption re-noises from pristine, so replaying the
                # events in order leaves exactly the last severity applied.
                dyn = self.model.dynamics[e.index]
                x = self.fed.client_features(e.client_id)
                pristine = self._pristine_x.setdefault(e.client_id, x.copy())
                severity = self.model.corruption_severity(
                    e.index, dyn, e.round, e.client_id
                )
                if severity != e.offset:
                    raise ValueError(
                        f"corruption replay diverged at {e}: the population "
                        "model differs from the checkpointed run"
                    )
                noise = self.model.corruption_noise(
                    e.index, dyn, e.round, e.client_id, severity, x.shape
                )
                np.copyto(x, pristine + noise)
                continue
            if e.kind != "drift":
                continue
            dyn = self.model.dynamics[e.index]
            num_classes = self.fed.num_classes
            num, offset, indices = self.model.drift_sample(
                e.index, dyn, e.round, e.client_id,
                self.fed.client_size(e.client_id), num_classes
            )
            if num != e.samples or offset != e.offset:
                raise ValueError(
                    f"drift replay diverged at {e}: the population model or "
                    "dataset differs from the checkpointed run"
                )
            y = self.fed.client_labels(e.client_id)
            y[indices] = (y[indices] + offset) % num_classes
            np.copyto(
                self.fed.L[e.client_id],
                np.bincount(y, minlength=num_classes).astype(np.int64),
            )
        self.active = np.asarray(state["active"], dtype=bool).copy()
        adopt = getattr(self.fed, "adopt_active", None)
        if adopt is not None:
            self.active = adopt(self.active)
        self._num_active = int(self.active.sum())
        trace = PopulationTrace()
        trace.extend(events)
        self.trace = trace
        self.maintainer.reset_from_groups(groups, strict=True)
        self.groups = self.maintainer.groups()
