"""`ColumnarPopulation` — the client population as columnar NumPy state.

The array-of-struct representation (:class:`repro.data.client_data.
FederatedDataset` holding one :class:`ClientDataset` object per client)
caps realistic populations in the low thousands: every client object is
built eagerly and, on the process backend, pickled into worker pools.
This module is the struct-of-array twin — one store holds the whole
population as a handful of flat arrays:

* ``L``            — the label-count matrix (int64, |K| × m), the *only*
  per-client information grouping is allowed to see (§5.1);
* ``n``            — per-client sample counts n_i (int64, == L row sums);
* ``active``       — the churn mask maintained by the population engine;
* ``spawn_keys``   — per-client RNG spawn keys (uint64, splitmix64 over
  the store seed), so client-local randomness can be derived without
  materializing anything;
* ``unit_costs`` / ``latency_s`` — per-client cost/latency calibration
  hooks consumed by the vectorized accounting paths.

Training data, when present, lives in two shared arrays laid out
contiguously per client (CSR-style ``sample_offsets``), so
:meth:`materialize` hands out :class:`ClientDataset` **views** — zero
copies — for exactly the ~S·|g| clients sampled into a round. Stores
built by :meth:`synthetic` carry no data at all: grouping, sampling, and
accounting at |K| ~ 10⁶ never touch a client object.

Equivalence contract: a store built from a :class:`FederatedDataset` via
``fed.to_columnar()`` sees byte-identical per-client sample values in the
same order, so grouping partitions, sampling probabilities, Γ_p,
population replay signatures, and trained parameters match the object
path bit for bit (``tests/population/test_columnar_equivalence.py``).

Memory model: materialized clients are views into the store's shared
arrays. Label drift writes *through* those views (clients own disjoint
ranges), which is exactly how the population engine keeps ``y`` and the
client's L row consistent. Checkpoint resume therefore needs a store
rebuilt over pristine data — the same caveat as the object path.
"""

from __future__ import annotations

import numpy as np

from repro.data.client_data import ClientDataset
from repro.grouping.base import Group

__all__ = ["ColumnarPopulation", "group_label_counts", "spawn_keys"]


def spawn_keys(seed: int, count: int) -> np.ndarray:
    """Per-client uint64 RNG spawn keys: splitmix64 over (seed, client id).

    Vectorized (no per-client Python calls), deterministic in the seed, and
    well-mixed — adjacent client ids land in unrelated streams. Feed a key
    to ``repro.rng.make_rng(int(key))`` for a client-local generator.
    """
    base = (int(seed) * 0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15) % (1 << 64)
    z = np.arange(count, dtype=np.uint64)
    z = z + np.uint64(base)
    z ^= z >> np.uint64(30)
    z *= np.uint64(0xBF58476D1CE4E5B9)
    z ^= z >> np.uint64(27)
    z *= np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    return z


def group_label_counts(
    L: np.ndarray, groups: list[Group] | list[np.ndarray]
) -> np.ndarray:
    """Per-group label-count rows Σ_{i∈g} L[i], vectorized over all groups.

    Accepts :class:`Group` objects or raw member-index arrays. One fancy
    index + one ``reduceat`` — no per-group Python sums, so 10⁵ groups
    aggregate in milliseconds.
    """
    members = [
        np.asarray(g.members if isinstance(g, Group) else g, dtype=np.int64)
        for g in groups
    ]
    if not members:
        return np.empty((0, L.shape[1]), dtype=np.int64)
    sizes = np.array([m.size for m in members], dtype=np.int64)
    if (sizes == 0).any():
        raise ValueError("cannot aggregate label counts over an empty group")
    flat = np.concatenate(members)
    offsets = np.zeros(len(members), dtype=np.int64)
    np.cumsum(sizes[:-1], out=offsets[1:])
    return np.add.reduceat(L[flat], offsets, axis=0)


class ColumnarPopulation:
    """A client population held as flat arrays (see module docstring).

    Parameters
    ----------
    L:
        Label-count matrix (|K| × m), copied to int64. Row sums define
        the per-client sizes ``n``.
    train_x / train_y / sample_offsets:
        Optional shared training data: client ``i`` owns rows
        ``sample_offsets[i]:sample_offsets[i+1]`` of both arrays (so
        per-client slices are true views). Omit all three for a
        metadata-only store (benchmarks, formation studies) —
        :meth:`materialize` then raises.
    test:
        Optional held-out :class:`repro.data.datasets.ArrayDataset`
        (needed by ``GroupFELTrainer.evaluate``).
    seed:
        Root of the per-client ``spawn_keys`` stream.
    """

    def __init__(
        self,
        L: np.ndarray,
        *,
        train_x: np.ndarray | None = None,
        train_y: np.ndarray | None = None,
        sample_offsets: np.ndarray | None = None,
        test=None,
        seed: int = 0,
        unit_costs: np.ndarray | None = None,
        latency_s: np.ndarray | None = None,
        name: str = "columnar",
    ):
        self.L = np.array(L, dtype=np.int64)
        if self.L.ndim != 2:
            raise ValueError(f"L must be 2-D (clients × classes), got shape {self.L.shape}")
        if (self.L < 0).any():
            raise ValueError("label counts must be non-negative")
        self.n = self.L.sum(axis=1)
        self.num_classes = int(self.L.shape[1])
        self.active = np.ones(self.num_clients, dtype=bool)
        self.seed = int(seed)
        self.spawn_keys = spawn_keys(self.seed, self.num_clients)
        self.unit_costs = (
            np.ones(self.num_clients, dtype=np.float64)
            if unit_costs is None
            else np.asarray(unit_costs, dtype=np.float64)
        )
        self.latency_s = (
            np.zeros(self.num_clients, dtype=np.float64)
            if latency_s is None
            else np.asarray(latency_s, dtype=np.float64)
        )
        for arr, label in ((self.unit_costs, "unit_costs"), (self.latency_s, "latency_s")):
            if arr.shape != (self.num_clients,):
                raise ValueError(
                    f"{label} must have shape ({self.num_clients},), got {arr.shape}"
                )
        self.test = test
        self.name = name

        data = (train_x, train_y, sample_offsets)
        if any(a is not None for a in data) and not all(a is not None for a in data):
            raise ValueError(
                "train_x, train_y, and sample_offsets must be given together"
            )
        self._train_x = train_x
        self._train_y = train_y
        if sample_offsets is None:
            self._offsets = None
        else:
            off = np.asarray(sample_offsets, dtype=np.int64)
            if off.shape != (self.num_clients + 1,):
                raise ValueError(
                    f"sample_offsets must have shape ({self.num_clients + 1},), "
                    f"got {off.shape}"
                )
            if off[0] != 0 or (np.diff(off) != self.n).any():
                raise ValueError("sample_offsets disagree with the L row sums")
            if train_y.shape[0] != off[-1] or train_x.shape[0] != off[-1]:
                raise ValueError(
                    f"train arrays hold {train_y.shape[0]} samples, offsets "
                    f"expect {int(off[-1])}"
                )
            self._offsets = off

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_federated(cls, fed, seed: int = 0) -> "ColumnarPopulation":
        """Snapshot a :class:`FederatedDataset` into columnar form.

        Per-client samples are re-laid-out contiguously (one copy, here,
        once) in shard order — byte-identical values per client to the
        object path — after which every materialization is a view. The
        store's arrays are independent of ``fed``'s: drift applied to one
        representation never leaks into the other.
        """
        offsets = np.zeros(fed.num_clients + 1, dtype=np.int64)
        np.cumsum([c.n for c in fed.clients], out=offsets[1:])
        train_x = np.concatenate([c.x for c in fed.clients], axis=0)
        train_y = np.concatenate([c.y for c in fed.clients], axis=0)
        return cls(
            fed.L,
            train_x=train_x,
            train_y=train_y,
            sample_offsets=offsets,
            test=fed.test,
            seed=seed,
            name=f"columnar({getattr(fed.train, 'name', 'fed')})",
        )

    @classmethod
    def synthetic(
        cls,
        num_clients: int,
        num_classes: int,
        seed: int = 0,
        alpha: float = 0.3,
        size_low: int = 20,
        size_high: int = 60,
    ) -> "ColumnarPopulation":
        """A metadata-only population at arbitrary scale (no sample data).

        Dirichlet(α) per-client label skew with Poissonized per-class
        counts — fully vectorized, so 10⁶ clients build in well under a
        second. Every client ends up with ≥ 1 sample.
        """
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        if num_classes < 1:
            raise ValueError(f"num_classes must be >= 1, got {num_classes}")
        rng = np.random.default_rng(seed)
        props = rng.dirichlet(np.full(num_classes, alpha), size=num_clients)
        totals = rng.integers(size_low, size_high + 1, size=num_clients)
        L = rng.poisson(props * totals[:, None]).astype(np.int64)
        empty = np.flatnonzero(L.sum(axis=1) == 0)
        if empty.size:
            L[empty, rng.integers(0, num_classes, size=empty.size)] = 1
        return cls(L, seed=seed, name=f"synthetic({num_clients})")

    # ------------------------------------------------------------- inspection
    @property
    def num_clients(self) -> int:
        return int(self.L.shape[0])

    @property
    def has_data(self) -> bool:
        """Whether clients can be materialized (sample arrays present)."""
        return self._offsets is not None

    def client_sizes(self) -> np.ndarray:
        """n_i for every client (a copy — the ledger may outlive drift)."""
        return self.n.copy()

    @property
    def total_samples(self) -> int:
        """The paper's n = Σ n_i."""
        return int(self.n.sum())

    def global_label_distribution(self) -> np.ndarray:
        """Fraction of each label across all client shards."""
        totals = self.L.sum(axis=0).astype(np.float64)
        s = totals.sum()
        return totals / s if s > 0 else totals

    def num_active(self) -> int:
        return int(self.active.sum())

    def __repr__(self) -> str:
        return (
            f"ColumnarPopulation({self.name!r}, clients={self.num_clients}, "
            f"classes={self.num_classes}, active={self.num_active()}, "
            f"data={'yes' if self.has_data else 'no'})"
        )

    # ------------------------------------------------------- per-client access
    def _require_data(self) -> None:
        if not self.has_data:
            raise ValueError(
                f"{self.name!r} is a metadata-only population (no sample "
                "arrays); build it via ColumnarPopulation.from_federated / "
                "FederatedDataset.to_columnar to materialize clients"
            )

    def client_size(self, client_id: int) -> int:
        """n_i — valid with or without sample data."""
        return int(self.n[client_id])

    def client_labels(self, client_id: int) -> np.ndarray:
        """Client ``i``'s label vector, as a *mutable view* into the shared
        store — label drift writes through it (and updates ``L[i]``)."""
        self._require_data()
        a, b = self._offsets[client_id], self._offsets[client_id + 1]
        return self._train_y[a:b]

    def client_features(self, client_id: int) -> np.ndarray:
        """Client ``i``'s feature array, as a *mutable view* into the
        shared store — test-time corruption writes through it."""
        self._require_data()
        a, b = self._offsets[client_id], self._offsets[client_id + 1]
        return self._train_x[a:b]

    def snapshot_shards(self, include_features: bool = False) -> dict:
        """Copy the mutable shard data (labels + L, optionally features)
        so a sweep can restore pristine state between methods."""
        self._require_data()
        snap: dict = {"L": self.L.copy(), "y": self._train_y.copy()}
        if include_features:
            snap["x"] = self._train_x.copy()
        return snap

    def restore_shards(self, snapshot: dict) -> None:
        """Write a :meth:`snapshot_shards` copy back **in place** (via
        ``np.copyto``) so materialized views and L-row aliases stay
        valid."""
        self._require_data()
        np.copyto(self.L, snapshot["L"])
        np.copyto(self._train_y, snapshot["y"])
        if "x" in snapshot:
            np.copyto(self._train_x, snapshot["x"])

    def materialize(self, ids) -> dict[int, ClientDataset]:
        """Lazily materialize the given clients as zero-copy views.

        Returns ``{client_id: ClientDataset}`` where each dataset's ``x`` /
        ``y`` / ``label_counts`` are slices of the store's shared arrays
        (``x.base is`` the store's train array). This is the per-round
        hand-off to group training: only the sampled ~S·|g| clients ever
        exist as objects, and mutations through the views (drift) stay in
        the store.
        """
        self._require_data()
        out: dict[int, ClientDataset] = {}
        off = self._offsets
        for cid in ids:
            cid = int(cid)
            out[cid] = ClientDataset(
                client_id=cid,
                x=self._train_x[off[cid] : off[cid + 1]],
                y=self._train_y[off[cid] : off[cid + 1]],
                label_counts=self.L[cid],
            )
        return out

    # ----------------------------------------------------------------- updates
    def adopt_active(self, mask: np.ndarray) -> np.ndarray:
        """Install ``mask`` as the store's active mask and return the shared
        array — the population engine calls this so store and engine see one
        mask."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.active.shape:
            raise ValueError(
                f"active mask must have shape {self.active.shape}, got {mask.shape}"
            )
        np.copyto(self.active, mask)
        return self.active

    def set_active(self, ids, flag: bool) -> None:
        """Flip the active mask for the given clients."""
        self.active[np.asarray(ids, dtype=np.int64)] = bool(flag)

    def apply_relabel(self, client_id: int, indices: np.ndarray, offset: int) -> np.ndarray:
        """Rotate the given samples' labels by ``offset`` classes (mod m),
        keeping ``L[client_id]`` exact; returns the new count row.

        The size-preserving mutation label drift performs — n_i never
        changes, only the class histogram.
        """
        y = self.client_labels(client_id)
        indices = np.asarray(indices, dtype=np.int64)
        y[indices] = (y[indices] + int(offset)) % self.num_classes
        new_counts = np.bincount(y, minlength=self.num_classes).astype(np.int64)
        np.copyto(self.L[client_id], new_counts)
        return self.L[client_id]

    # ------------------------------------------------------------- validation
    def check_invariants(self) -> None:
        """Assert the store's cross-array invariants hold *exactly*.

        ``n == L row sums``; when data is present, every client's label
        histogram equals its L row; the active mask is boolean and
        per-client. Cheap enough to call from property tests after every
        random operation.
        """
        if (self.L < 0).any():
            raise AssertionError("negative label counts")
        if not np.array_equal(self.n, self.L.sum(axis=1)):
            raise AssertionError("n diverged from L row sums")
        if self.active.dtype != np.bool_ or self.active.shape != (self.num_clients,):
            raise AssertionError("active mask malformed")
        if self.has_data:
            if (np.diff(self._offsets) != self.n).any():
                raise AssertionError("sample offsets diverged from n")
            hist = np.zeros_like(self.L)
            for i in range(self.num_clients):
                a, b = self._offsets[i], self._offsets[i + 1]
                hist[i] = np.bincount(
                    self._train_y[a:b], minlength=self.num_classes
                )
            if not np.array_equal(hist, self.L):
                raise AssertionError("L diverged from the per-client label data")
