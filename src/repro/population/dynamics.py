"""`PopulationModel` — seeded churn and label-drift schedules, pure decisions.

The dynamic-population twin of :class:`repro.faults.FaultPlan`: every
decision ("does client c leave in round t?", "which samples does drift
relabel?") is computed by deriving a dedicated RNG from the model seed and
the stable identifiers of the site::

    rng = make_rng(derive_seed(seed, kind, index, round, client_id))

so decisions are pure functions of *where* they are asked, never of *when*
or *in which order*. That buys deterministic replay (same seed ⇒ same
population trace, bit for bit), backend independence (serial / thread /
process trainers see identical populations), and composability (each
dynamic draws from a disjoint stream).

A model is picklable (seed + frozen dynamic dataclasses); the correlated-
drift memo cache is process-local and dropped on pickle — it is a pure
function of the seed and rebuilds identically anywhere.

Spec grammar (the CLI's ``--population`` flag)
----------------------------------------------
Comma-separated ``name:value[:param...][@mode]`` terms::

    start:0.6                  60% of the client pool is active at round 0
    join:1.5                   ~Poisson(1.5) dormant clients join per round
    leave:0.02                 2% per-client departure chance per round
    drift:0.1                  step drift: 10%/round chance a client
                               relabels 50% of its samples
    drift:0.1:0.3              ... relabeling 30% of its samples
    drift:0.05@linear          every round relabel 5% of samples by a
                               fixed class rotation (slow drift)
    drift:0.05:0.3:0.9@corr    correlated episodes: enter drift w.p. 0.05,
                               persist w.p. 0.9, relabel 30%/round inside
    corrupt:1.0                continual test-time corruption: every round
                               each client's features are re-noised at a
                               severity from its streaming schedule
    corrupt:1.0:5:3            ... severities 1..5, advancing every 3 rounds
    corrupt:0.5:4:2@ramp       fire w.p. 0.5/round; severity ramps 1→4 and
                               saturates (default @cycle wraps around)

e.g. ``--population start:0.7,join:1.0,leave:0.03,drift:0.1:0.4``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.rng import derive_seed, make_rng

__all__ = [
    "InitialActive",
    "Arrivals",
    "Departures",
    "LabelDrift",
    "FeatureCorruption",
    "PopulationModel",
    "DRIFT_MODES",
    "CORRUPTION_MODES",
    "get_active_population",
    "set_active_population",
    "population_activated",
]

DRIFT_MODES = ("step", "linear", "corr")
CORRUPTION_MODES = ("cycle", "ramp")


@dataclass(frozen=True)
class InitialActive:
    """``start:frac`` — the seeded fraction of the pool active at round 0."""

    frac: float
    kind = "start"

    def __post_init__(self) -> None:
        if not 0.0 < self.frac <= 1.0:
            raise ValueError(f"start fraction must be in (0, 1], got {self.frac}")


@dataclass(frozen=True)
class Arrivals:
    """``join:rate`` — Poisson(rate) dormant clients join per round."""

    rate: float
    kind = "join"

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"join rate must be >= 0, got {self.rate}")


@dataclass(frozen=True)
class Departures:
    """``leave:prob`` — per-client, per-round departure probability."""

    prob: float
    kind = "leave"

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob < 1.0:
            raise ValueError(f"leave prob must be in [0, 1), got {self.prob}")


@dataclass(frozen=True)
class LabelDrift:
    """``drift:prob[:fraction][:rho][@mode]`` — label-distribution drift.

    ``step`` (default): with probability ``prob`` per round, relabel
    ``fraction`` of the client's samples by a random class rotation.
    ``linear``: every round, relabel ``prob`` of the samples (slow
    continuous rotation; ``fraction``/``rho`` unused).
    ``corr``: a 2-state Markov chain per client — enter a drift episode
    w.p. ``prob``, persist w.p. ``rho``; while inside, relabel
    ``fraction``/round (FedCTTA-style temporally correlated shift).
    """

    prob: float
    fraction: float = 0.5
    rho: float = 0.8
    mode: str = "step"
    kind = "drift"

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"drift prob must be in [0, 1], got {self.prob}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"drift fraction must be in (0, 1], got {self.fraction}"
            )
        if not 0.0 <= self.rho <= 1.0:
            raise ValueError(f"drift rho must be in [0, 1], got {self.rho}")
        if self.mode not in DRIFT_MODES:
            raise ValueError(
                f"drift mode must be one of {DRIFT_MODES}, got {self.mode!r}"
            )


@dataclass(frozen=True)
class FeatureCorruption:
    """``corrupt:prob[:severities][:period][@mode]`` — continual test-time
    feature corruption (the FedCTTA scenario).

    Each client walks its own severity schedule — a seeded per-client
    *phase* staggers the stream so clients sit at different severities in
    the same round, which is what stresses grouping under non-stationarity.
    With probability ``prob`` per round, the client's features are
    re-noised *from pristine* with seeded Gaussian noise of standard
    deviation ``scale * severity``, severity in ``1..severities``:

    ``cycle`` (default): severity steps every ``period`` rounds and wraps
    around (the CIFAR-C-style repeating corruption stream).
    ``ramp``: severity steps every ``period`` rounds and saturates at
    ``severities`` (monotone degradation).
    """

    prob: float
    severities: int = 5
    period: int = 5
    mode: str = "cycle"
    scale: float = 0.25
    kind = "corrupt"

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"corrupt prob must be in [0, 1], got {self.prob}")
        if self.severities < 1:
            raise ValueError(
                f"corrupt severities must be >= 1, got {self.severities}"
            )
        if self.period < 1:
            raise ValueError(f"corrupt period must be >= 1, got {self.period}")
        if self.mode not in CORRUPTION_MODES:
            raise ValueError(
                f"corrupt mode must be one of {CORRUPTION_MODES}, got {self.mode!r}"
            )
        if self.scale <= 0:
            raise ValueError(f"corrupt scale must be > 0, got {self.scale}")


_DYNAMIC_TYPES = (InitialActive, Arrivals, Departures, LabelDrift, FeatureCorruption)


class PopulationModel:
    """A seeded bundle of population dynamics applied across a run.

    Parameters
    ----------
    seed:
        Root seed of the population schedule — independent of the
        trainer's seed so the *same* population can be replayed against
        different training randomness (and vice versa).
    dynamics:
        Any mix of :class:`InitialActive`, :class:`Arrivals`,
        :class:`Departures`, :class:`LabelDrift`. Multiple dynamics of
        the same kind compose (arrival rates add, departure/drift
        chances apply independently).
    """

    def __init__(self, seed: int = 0, dynamics: list | tuple = ()):
        self.seed = int(seed)
        self.dynamics = list(dynamics)
        for dyn in self.dynamics:
            if not isinstance(dyn, _DYNAMIC_TYPES):
                raise TypeError(f"not a population dynamic: {dyn!r}")
        #: memo of correlated-drift chain states, keyed (index, client);
        #: process-local (a pure function of the seed — see __getstate__)
        self._corr_cache: dict[tuple[int, int], list[bool]] = {}

    # ------------------------------------------------------------- inspection
    def of_kind(self, kind: str) -> list:
        return [d for d in self.dynamics if d.kind == kind]

    @property
    def has_churn(self) -> bool:
        return bool(self.of_kind("join") or self.of_kind("leave"))

    @property
    def has_drift(self) -> bool:
        return bool(self.of_kind("drift"))

    @property
    def has_corruption(self) -> bool:
        return bool(self.of_kind("corrupt"))

    def __bool__(self) -> bool:
        return bool(self.dynamics)

    def __repr__(self) -> str:
        return f"PopulationModel(seed={self.seed}, dynamics={self.dynamics!r})"

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_corr_cache"] = {}  # rebuilds identically from the seed
        return state

    # -------------------------------------------------------------- decisions
    def _rng(self, kind: str, index: int, *key: int) -> np.random.Generator:
        """RNG unique to (dynamic, site) — the pure core."""
        return make_rng(derive_seed(self.seed, kind, index, *key))

    def _draw(self, kind: str, index: int, *key: int) -> float:
        return float(self._rng(kind, index, *key).random())

    def initial_active(self, pool_size: int) -> np.ndarray:
        """Boolean mask of the clients active at round 0 (≥ 1 active).

        When several ``start`` terms are given the smallest fraction
        wins (the most restrictive initial population).
        """
        starts = self.of_kind("start")
        mask = np.ones(pool_size, dtype=bool)
        if not starts or pool_size == 0:
            return mask
        frac = min(d.frac for d in starts)
        idx = next(i for i, d in enumerate(self.dynamics) if d.kind == "start")
        draws = self._rng("start", idx).random(pool_size)
        mask = draws < frac
        if not mask.any():
            mask[int(np.argmin(draws))] = True
        return mask

    def arrivals(self, round_idx: int) -> int:
        """How many dormant clients join this round (Poisson per dynamic)."""
        total = 0
        for idx, dyn in enumerate(self.dynamics):
            if dyn.kind != "join" or dyn.rate <= 0:
                continue
            total += int(self._rng("join", idx, round_idx).poisson(dyn.rate))
        return total

    def departs(self, round_idx: int, client_id: int) -> bool:
        """Does this active client leave at the start of this round?"""
        for idx, dyn in enumerate(self.dynamics):
            if dyn.kind != "leave":
                continue
            if self._draw("leave", idx, round_idx, client_id) < dyn.prob:
                return True
        return False

    def drift_decisions(self, round_idx: int, client_id: int) -> list[tuple[int, LabelDrift]]:
        """The drift dynamics striking this client this round."""
        fired: list[tuple[int, LabelDrift]] = []
        for idx, dyn in enumerate(self.dynamics):
            if dyn.kind != "drift":
                continue
            if dyn.mode == "linear":
                hit = dyn.prob > 0
            elif dyn.mode == "corr":
                hit = self._corr_state(idx, dyn, round_idx, client_id)
            else:  # step
                hit = self._draw("drift", idx, round_idx, client_id) < dyn.prob
            if hit:
                fired.append((idx, dyn))
        return fired

    def _corr_state(self, idx: int, dyn: LabelDrift, round_idx: int, client_id: int) -> bool:
        """2-state Markov chain, computed recursively from round 0.

        Memoized per (dynamic, client) so a T-round run stays O(T); the
        cache is dropped on pickle and rebuilt identically anywhere
        because each transition draw is keyed by its own round.
        """
        chain = self._corr_cache.setdefault((idx, client_id), [])
        while len(chain) <= round_idx:
            t = len(chain)
            inside = chain[t - 1] if t else False
            p = dyn.rho if inside else dyn.prob
            chain.append(self._draw("drift-state", idx, t, client_id) < p)
        return chain[round_idx]

    def drift_sample(
        self,
        index: int,
        dyn: LabelDrift,
        round_idx: int,
        client_id: int,
        n_samples: int,
        num_classes: int,
    ) -> tuple[int, int, np.ndarray]:
        """The mutation a firing drift applies: (count, class offset, indices).

        Pure in (seed, index, round, client): checkpoint resume re-derives
        the exact same relabeling from the recorded event site. The
        expected relabel count ``x`` (``fraction``·n for step/corr,
        ``prob``·n for linear) is realized as ⌊x⌋ plus a Bernoulli(frac(x))
        extra sample, so small shards still drift at the configured rate.
        """
        rng = self._rng("drift-apply", index, round_idx, client_id)
        x = (dyn.prob if dyn.mode == "linear" else dyn.fraction) * n_samples
        num = int(x) + int(rng.random() < (x - int(x)))
        offset = int(rng.integers(1, num_classes)) if num_classes > 1 else 0
        if num <= 0 or offset == 0 or n_samples == 0:
            return 0, 0, np.empty(0, dtype=np.int64)
        indices = rng.choice(n_samples, size=min(num, n_samples), replace=False)
        return int(indices.size), offset, indices.astype(np.int64)

    # ------------------------------------------------------------- corruption
    def corruption_decisions(
        self, round_idx: int, client_id: int
    ) -> list[tuple[int, FeatureCorruption]]:
        """The corruption dynamics striking this client this round."""
        fired: list[tuple[int, FeatureCorruption]] = []
        for idx, dyn in enumerate(self.dynamics):
            if dyn.kind != "corrupt":
                continue
            if self._draw("corrupt", idx, round_idx, client_id) < dyn.prob:
                fired.append((idx, dyn))
        return fired

    def corruption_severity(
        self,
        index: int,
        dyn: FeatureCorruption,
        round_idx: int,
        client_id: int,
    ) -> int:
        """This client's severity (1..severities) at this round.

        The stream position is ``round + phase`` where ``phase`` is a
        seeded per-client offset into the schedule — pure in (seed, index,
        client), so replay and resume re-derive the identical stream.
        """
        phase = int(
            self._rng("corrupt-phase", index, client_id).integers(
                0, dyn.severities * dyn.period
            )
        )
        t = round_idx + phase
        if dyn.mode == "ramp":
            return min(dyn.severities, t // dyn.period + 1)
        return (t // dyn.period) % dyn.severities + 1

    def corruption_noise(
        self,
        index: int,
        dyn: FeatureCorruption,
        round_idx: int,
        client_id: int,
        severity: int,
        shape: tuple,
    ) -> np.ndarray:
        """The additive feature noise a firing corruption applies — pure in
        (seed, index, round, client), so resume re-derives it exactly."""
        rng = self._rng("corrupt-apply", index, round_idx, client_id)
        return rng.normal(0.0, dyn.scale * severity, shape)

    # ------------------------------------------------------------------ spec
    #: spec grammar arity: term name → max ``:``-separated values
    _SPEC_ARITY = {"start": 1, "join": 1, "leave": 1, "drift": 3, "corrupt": 3}

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "PopulationModel":
        """Parse the CLI grammar (see module docstring) into a model.

        Fail-fast: malformed terms — missing or non-numeric values,
        unknown kinds, surplus fields, duplicated ``start`` terms, a
        ``@mode`` on anything but ``drift``, out-of-range rates — raise a
        ``ValueError`` naming the offending token. (Multiple ``join`` /
        ``leave`` / ``drift`` terms compose by design; two ``start`` terms
        would silently shadow each other, so those are rejected.)
        """
        dynamics: list = []
        seen_start = False
        for raw in spec.split(","):
            term = raw.strip()
            if not term:
                continue
            mode = None
            if "@" in term:
                term, mode = term.rsplit("@", 1)
            parts = term.split(":")
            name = parts[0].lower()
            if name not in cls._SPEC_ARITY:
                raise ValueError(
                    f"unknown population kind {name!r} in term {raw!r}; "
                    "known: start, join, leave, drift, corrupt"
                )
            if len(parts) < 2:
                raise ValueError(
                    f"population term {raw!r} needs a value, e.g. 'leave:0.02'"
                )
            if len(parts) - 1 > cls._SPEC_ARITY[name]:
                raise ValueError(
                    f"population term {raw!r} has {len(parts) - 1} values; "
                    f"{name!r} takes at most {cls._SPEC_ARITY[name]}"
                )
            try:
                value = float(parts[1])
            except ValueError:
                raise ValueError(f"bad value in population term {raw!r}") from None
            if mode is not None and name not in ("drift", "corrupt"):
                raise ValueError(
                    f"population term {raw!r}: only drift and corrupt take an @mode"
                )
            if name == "start":
                if seen_start:
                    raise ValueError(
                        f"duplicate 'start' in population term {raw!r}: the "
                        "initial active fraction may only be given once"
                    )
                seen_start = True
            try:
                if name == "start":
                    dynamics.append(InitialActive(frac=value))
                elif name == "join":
                    dynamics.append(Arrivals(rate=value))
                elif name == "leave":
                    dynamics.append(Departures(prob=value))
                elif name == "corrupt":
                    ckwargs: dict = {"prob": value, "mode": mode or "cycle"}
                    if len(parts) > 2:
                        ckwargs["severities"] = int(parts[2])
                    if len(parts) > 3:
                        ckwargs["period"] = int(parts[3])
                    dynamics.append(FeatureCorruption(**ckwargs))
                else:  # drift
                    kwargs: dict = {"prob": value, "mode": mode or "step"}
                    if len(parts) > 2:
                        kwargs["fraction"] = float(parts[2])
                    if len(parts) > 3:
                        kwargs["rho"] = float(parts[3])
                    dynamics.append(LabelDrift(**kwargs))
            except ValueError as exc:
                raise ValueError(f"bad population term {raw!r}: {exc}") from None
        if not dynamics:
            raise ValueError(f"population spec {spec!r} defines no dynamics")
        return cls(seed=seed, dynamics=dynamics)


#: Ambient model (mirrors ``repro.faults``'s activation pattern): the CLI
#: installs a model here so trainers buried inside figure generators pick
#: it up without every generator growing a ``population=`` parameter.
_active_population: PopulationModel | None = None


def get_active_population() -> PopulationModel | None:
    """The ambient population model, or None for a static population."""
    return _active_population


def set_active_population(model: PopulationModel | None) -> PopulationModel | None:
    """Install ``model`` ambiently; returns the previous model."""
    global _active_population
    previous = _active_population
    _active_population = model
    return previous


@contextmanager
def population_activated(model: PopulationModel):
    """Install ``model`` ambiently for the duration of the block."""
    previous = set_active_population(model)
    try:
        yield model
    finally:
        set_active_population(previous)
