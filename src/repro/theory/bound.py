"""Theorem 1's convergence bound (Eq. 10) with the λ constants (Eq. 13–18).

The bound on (1/T)·Σ_t ‖∇f(x_t)‖² has three terms:

1. initialization:  (f(x₀) − E f(x_T)) / (λ₁ η T K E)
2. sampling:        λ_s · Γ_p / (|S_t| · λ₁ T K E)
3. heterogeneity:   γ Γ (λ₂σ² + λ₃ζ² + λ₄ζ_g²) / (λ₁ T)

Key qualitative facts the tests verify:
* larger group heterogeneity ζ_g ⇒ larger bound (first key observation),
* larger sampling dispersion Γ_p ⇒ larger bound (second observation),
* larger γ or Γ ⇒ larger bound (third observation),
* the bound decays as T grows (convergence), provided the step-size
  conditions (Eq. 14, 18) hold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoundInputs", "lambda_constants", "step_size_ok", "convergence_bound"]


@dataclass(frozen=True)
class BoundInputs:
    """Everything Theorem 1's right-hand side depends on."""

    f0_gap: float  # f(x₀) − E[f(x_T)] (positive for a descending run)
    eta: float  # learning rate η
    T: int  # global rounds
    K: int  # group rounds
    E: int  # local rounds
    L: float  # smoothness constant
    sigma2: float  # gradient-noise bound σ²
    zeta2: float  # local heterogeneity ζ²
    zeta_g2: float  # group heterogeneity ζ_g²
    gamma: float  # γ (Eq. 11)
    Gamma: float  # Γ (Eq. 12)
    Gamma_p: float  # Γ_p ≥ Σ 1/p_g
    S: int  # |S_t| — groups sampled per round
    group_size: float  # |g| used in λ_σ (average group size)

    def validate(self) -> None:
        if min(self.T, self.K, self.E, self.S) < 1:
            raise ValueError("T, K, E, S must all be >= 1")
        if self.eta <= 0 or self.L <= 0:
            raise ValueError("eta and L must be positive")
        if min(self.sigma2, self.zeta2, self.zeta_g2) < 0:
            raise ValueError("variance/heterogeneity terms must be >= 0")
        if self.gamma < 1.0 - 1e-9 or self.Gamma < 1.0 - 1e-9:
            raise ValueError("γ and Γ are >= 1 by construction (Eq. 11–12)")


def lambda_constants(inp: BoundInputs) -> dict[str, float]:
    """Evaluate the λ constants of Eq. (13)–(17).

    λ₁ is set to its largest admissible value, ½ − 3λ_f·ηγΓKEL² (Eq. 14);
    callers should check it is positive (the step-size condition).
    """
    eta, K, E, L = inp.eta, inp.K, inp.E, inp.L
    g, G = inp.gamma, inp.Gamma
    lam_s = eta * g * G * K**2 * (1.0 + 10.0 * eta**2 * E**2 * L**2 * inp.sigma2)
    lam_f = 30.0 * eta**2 * K**2 * (1.0 + 90.0 * g * eta**2 * E**2 * L**2)
    lam_1 = 0.5 - 3.0 * lam_f * eta * g * G * K * E * L**2
    lam_sigma = (
        5.0
        * K
        * eta**2
        * E**2
        * (
            1.0
            + ((1.0 + 6.0 * K) * E + 9.0 * K) * 10.0 * eta**2 * E * L**2
            + 18.0 * K / (max(inp.group_size, 1.0) * E)
        )
    )
    lam_2 = 3.0 * lam_sigma * g * L**2 + 5.0 * eta**2 * E**2 * L**2
    lam_3 = 2700.0 * eta**4 * g * K**2 * E**4 * L**2
    lam_4 = 90.0 * eta**2 * K**2 * E**2 * L**2
    return {
        "lambda_1": lam_1,
        "lambda_2": lam_2,
        "lambda_3": lam_3,
        "lambda_4": lam_4,
        "lambda_s": lam_s,
        "lambda_f": lam_f,
        "lambda_sigma": lam_sigma,
    }


def step_size_ok(inp: BoundInputs) -> bool:
    """Check Eq. (14) (λ₁ > 0) and Eq. (18) (η ≤ 1/(2KE))."""
    lam = lambda_constants(inp)
    return lam["lambda_1"] > 0 and inp.eta <= 1.0 / (2.0 * inp.K * inp.E)


def convergence_bound(inp: BoundInputs) -> float:
    """Evaluate the right-hand side of Eq. (10).

    Returns ``inf`` when the step-size conditions fail (the bound is then
    vacuous).
    """
    inp.validate()
    lam = lambda_constants(inp)
    lam1 = lam["lambda_1"]
    if lam1 <= 0 or inp.eta > 1.0 / (2.0 * inp.K * inp.E):
        return float("inf")
    T, K, E = inp.T, inp.K, inp.E
    term_init = inp.f0_gap / (lam1 * inp.eta * T * K * E)
    term_sampling = lam["lambda_s"] * (inp.Gamma_p / inp.S) / (lam1 * T * K * E)
    term_hetero = (
        inp.gamma
        * inp.Gamma
        * (lam["lambda_2"] * inp.sigma2 + lam["lambda_3"] * inp.zeta2 + lam["lambda_4"] * inp.zeta_g2)
        / (lam1 * T)
    )
    return float(term_init + term_sampling + term_hetero)
