"""Theorem 1: the convergence bound of Group-FEL (§4).

``constants`` computes the group-character quantities γ, Γ, Γ_p (Eq. 11–12)
from actual groupings; ``bound`` evaluates the full right-hand side of
Eq. (10) with the λ constants (Eq. 13–18); ``heterogeneity`` estimates the
assumption constants σ, ζ, ζ_g empirically from model gradients.
"""

from repro.theory.constants import gamma_of_group, gamma_big, gamma_p
from repro.theory.bound import (
    BoundInputs,
    convergence_bound,
    lambda_constants,
    step_size_ok,
)
from repro.theory.heterogeneity import (
    estimate_gradient_noise,
    estimate_group_heterogeneity,
    estimate_local_heterogeneity,
)
from repro.theory.smoothness import check_descent_lemma, estimate_smoothness

__all__ = [
    "gamma_of_group",
    "gamma_big",
    "gamma_p",
    "BoundInputs",
    "lambda_constants",
    "convergence_bound",
    "step_size_ok",
    "estimate_gradient_noise",
    "estimate_local_heterogeneity",
    "estimate_group_heterogeneity",
    "estimate_smoothness",
    "check_descent_lemma",
]
