"""Numerical validation of the analysis assumptions (§4.1).

The convergence proof rests on Assumptions 1–4. There is "no practical way
to compute ζ_g and L" exactly (§4.1), but both can be *probed* numerically:

* :func:`estimate_smoothness` — a lower bound on the Lipschitz constant L
  of ∇f via sampled secant quotients ‖∇f(x)−∇f(y)‖/‖x−y‖ (Assumption 2).
* :func:`check_descent_lemma` — verify the quadratic upper bound Eq. (19),
  f(y) ≤ f(x) + ⟨∇f(x), y−x⟩ + (L/2)‖x−y‖², at sampled point pairs for a
  given L: the inequality the whole proof skeleton starts from.

The theory test-suite uses these to confirm our loss landscape actually
satisfies the assumptions the reproduced theorem needs.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import CrossEntropyLoss
from repro.nn.model import Model
from repro.rng import make_rng

__all__ = ["estimate_smoothness", "check_descent_lemma"]


def _loss_and_gradient(
    model: Model, params: np.ndarray, x: np.ndarray, y: np.ndarray
) -> tuple[float, np.ndarray]:
    model.set_params(params)
    loss = model.loss_and_grad(x, y, CrossEntropyLoss())
    return loss, model.get_grads()


def estimate_smoothness(
    model: Model,
    x: np.ndarray,
    y: np.ndarray,
    num_pairs: int = 20,
    radius: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Max sampled secant quotient — a lower bound on L (Assumption 2).

    Samples pairs (x₀, x₀ + r·u) around the model's current parameters and
    returns max ‖∇f(a)−∇f(b)‖ / ‖a−b‖.
    """
    if num_pairs < 1:
        raise ValueError(f"num_pairs must be >= 1, got {num_pairs}")
    rng = make_rng(rng)
    base = model.get_params().copy()
    worst = 0.0
    for _ in range(num_pairs):
        direction = rng.normal(size=base.shape)
        direction /= np.linalg.norm(direction)
        step = rng.uniform(0.01, radius)
        a = base + rng.normal(scale=0.1, size=base.shape)
        b = a + step * direction
        _, ga = _loss_and_gradient(model, a, x, y)
        _, gb = _loss_and_gradient(model, b, x, y)
        worst = max(worst, float(np.linalg.norm(ga - gb) / step))
    model.set_params(base)
    return worst


def check_descent_lemma(
    model: Model,
    x: np.ndarray,
    y: np.ndarray,
    L: float,
    num_pairs: int = 20,
    radius: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> tuple[bool, float]:
    """Check Eq. (19) at sampled pairs for the given L.

    Returns ``(all_satisfied, max_violation)`` where violation is
    f(y) − [f(x) + ⟨∇f(x), y−x⟩ + (L/2)‖x−y‖²] (≤ 0 when satisfied).
    """
    if L <= 0:
        raise ValueError(f"L must be positive, got {L}")
    rng = make_rng(rng)
    base = model.get_params().copy()
    worst = -np.inf
    for _ in range(num_pairs):
        a = base + rng.normal(scale=0.1, size=base.shape)
        direction = rng.normal(size=base.shape)
        direction /= np.linalg.norm(direction)
        step = rng.uniform(0.01, radius)
        b = a + step * direction
        fa, ga = _loss_and_gradient(model, a, x, y)
        fb, _ = _loss_and_gradient(model, b, x, y)
        bound = fa + float(ga @ (b - a)) + 0.5 * L * step * step
        worst = max(worst, fb - bound)
    model.set_params(base)
    return worst <= 1e-9, float(worst)
