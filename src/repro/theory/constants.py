"""Group-character constants of Theorem 1 (Eq. 11–12).

    γ  = |g|² · [ 1/|g|² + Var(n_i/n_g) ]
    Γ  = |G|² · [ 1/|G|² + Var(n_g/n)  ]
    Γ_p ≥ Σ_g 1/p_g

§4.3's third observation: γ − 1 = (σ_c/μ_c)² — the squared CoV of the data
*amounts* across the group's clients. Balanced data counts ⇒ γ → 1.
"""

from __future__ import annotations

import numpy as np

from repro.grouping.base import Group

__all__ = ["gamma_of_group", "gamma_big", "gamma_p"]


def _dispersion(counts: np.ndarray) -> float:
    """k²·[1/k² + Var(c_i/total)] for a count vector of length k."""
    counts = np.asarray(counts, dtype=np.float64)
    k = counts.shape[0]
    if k == 0:
        raise ValueError("empty count vector")
    total = counts.sum()
    if total <= 0:
        raise ValueError("counts must have positive sum")
    shares = counts / total
    return float(k * k * (1.0 / (k * k) + shares.var()))


def gamma_of_group(group: Group | np.ndarray, client_sizes: np.ndarray | None = None) -> float:
    """γ for one group (Eq. 11).

    Accepts either a Group (with ``client_sizes`` giving n_i for all
    clients) or a raw vector of the group's member data counts.
    """
    if isinstance(group, Group):
        if client_sizes is None:
            raise ValueError("client_sizes required when passing a Group")
        counts = np.asarray(client_sizes, dtype=np.float64)[group.members]
    else:
        counts = np.asarray(group, dtype=np.float64)
    return _dispersion(counts)


def gamma_big(groups: list[Group] | np.ndarray) -> float:
    """Γ over the group set (Eq. 12): dispersion of the n_g/n shares."""
    if isinstance(groups, np.ndarray):
        counts = groups
    else:
        counts = np.array([g.n_g for g in groups], dtype=np.float64)
    return _dispersion(counts)


def gamma_p(p: np.ndarray) -> float:
    """Γ_p = Σ_g 1/p_g (its tight lower bound; Eq. 12's constraint)."""
    p = np.asarray(p, dtype=np.float64)
    if np.any(p <= 0):
        return float("inf")
    return float(np.sum(1.0 / p))
