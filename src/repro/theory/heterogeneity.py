"""Empirical estimators for the assumption constants σ², ζ², ζ_g².

The paper notes "there is no practical way to compute ζ_g and L" — but
they can be *estimated* at a reference point by evaluating full-batch
gradients, which is exactly what these helpers do. They make the theory
module actionable: compute γ, Γ, Γ_p from a grouping, estimate ζ_g from
gradients, and evaluate Theorem 1's bound for that configuration. The
benchmark suite uses them to show ζ_g shrinks under CoV-Grouping (the
mechanism behind the paper's first key observation).
"""

from __future__ import annotations

import numpy as np

from repro.data.client_data import ClientDataset
from repro.grouping.base import Group
from repro.nn.model import Model

__all__ = [
    "estimate_gradient_noise",
    "estimate_local_heterogeneity",
    "estimate_group_heterogeneity",
]


def _full_gradient(model: Model, params: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    model.set_params(params)
    model.loss_and_grad(x, y)
    return model.get_grads()


def _client_gradients(
    model: Model, params: np.ndarray, clients: list[ClientDataset]
) -> tuple[np.ndarray, np.ndarray]:
    """Per-client full gradients and data sizes."""
    grads = np.empty((len(clients), params.shape[0]))
    sizes = np.empty(len(clients))
    for k, c in enumerate(clients):
        grads[k] = _full_gradient(model, params, c.x, c.y)
        sizes[k] = c.n
    return grads, sizes


def estimate_gradient_noise(
    model: Model,
    params: np.ndarray,
    client: ClientDataset,
    batch_size: int,
    num_batches: int = 8,
    rng: np.random.Generator | None = None,
) -> float:
    """σ² estimate: max squared deviation of minibatch vs full gradient."""
    rng = rng or np.random.default_rng(0)
    full = _full_gradient(model, params, client.x, client.y)
    worst = 0.0
    for _ in range(num_batches):
        xb, yb = client.sample_batch(batch_size, rng)
        gb = _full_gradient(model, params, xb, yb)
        worst = max(worst, float(((gb - full) ** 2).sum()))
    return worst


def estimate_local_heterogeneity(
    model: Model, params: np.ndarray, clients: list[ClientDataset]
) -> float:
    """ζ² estimate: max_i ‖∇f_i(x) − ∇f(x)‖² at the reference point."""
    grads, sizes = _client_gradients(model, params, clients)
    weights = sizes / sizes.sum()
    global_grad = weights @ grads
    dev = ((grads - global_grad) ** 2).sum(axis=1)
    return float(dev.max())


def estimate_group_heterogeneity(
    model: Model,
    params: np.ndarray,
    clients: list[ClientDataset],
    groups: list[Group],
) -> tuple[float, np.ndarray]:
    """ζ_g² estimate: max_g ‖∇f_g(x) − ∇f(x)‖², plus the per-group values.

    ∇f_g is the n_i/n_g-weighted mean of member gradients (Eq. 2); ∇f the
    n_g/n-weighted mean over groups (Eq. 3).
    """
    grads, sizes = _client_gradients(model, params, clients)
    group_grads = np.empty((len(groups), params.shape[0]))
    group_sizes = np.empty(len(groups))
    for k, g in enumerate(groups):
        member_sizes = sizes[g.members]
        w = member_sizes / member_sizes.sum()
        group_grads[k] = w @ grads[g.members]
        group_sizes[k] = member_sizes.sum()
    gw = group_sizes / group_sizes.sum()
    global_grad = gw @ group_grads
    dev = ((group_grads - global_grad) ** 2).sum(axis=1)
    return float(dev.max()), dev
