"""Zero-copy dispatch buffers for the process backend.

PR 3 removed the round-invariant payloads (dataset, model factory) from
per-task pickles via one-time worker-state shipping. What still crossed
the pool as pickle bytes every round were the *per-round* arrays: the
global parameter vector out to every worker, and each group's result
vector back. Both are fixed-size float64 vectors — exactly what POSIX
shared memory is for.

This module provides the primitives the trainer builds its dispatch on:

* :class:`ShmView` — a tiny picklable descriptor (segment name, offset,
  length). A task carries the descriptor; the worker resolves it to a
  NumPy view over the mapped segment. Pickling a descriptor costs ~100
  bytes regardless of model size.
* :class:`ShmRing` — a parent-owned ring of fixed-size float64 slots in
  one shared segment, with unlink-on-GC so crashed runs don't leak
  ``/dev/shm`` segments.
* :class:`ShmChannel` — the trainer-facing pairing: a 2-slot global-params
  ring (double-buffered so a pipelined round t+1 can publish while round
  t's segment views are still alive) and a grow-on-demand results ring
  with one slot per in-flight group task.

Worker-side attachment caches segments by name and works around the
resource-tracker over-tracking of attached segments on Python < 3.13
(attaching registers the segment with the tracker, which would unlink it
when the *worker* exits — out from under the parent): ``track=False``
where available, else an explicit ``resource_tracker.unregister``.

Everything degrades gracefully: if shared memory is unavailable (no
``/dev/shm``, permissions), :func:`shm_available` reports False and the
trainer falls back to per-task pickles with identical semantics.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ShmView", "ShmRing", "ShmChannel", "shm_available"]

_FLOAT = np.float64
_ITEMSIZE = 8

#: worker-side (and parent-side) segment cache: one attach per segment
#: name per process, reused by every task that references it
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment by name, once per process, tracker-safe."""
    seg = _ATTACHED.get(name)
    if seg is None:
        try:
            seg = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: no track= keyword
            seg = shared_memory.SharedMemory(name=name)
            try:
                import multiprocessing

                # Forked workers share the creator's resource tracker, so
                # the attach-side registration is a no-op against the
                # creator's (sets dedupe) — unregistering here would strip
                # the creator's entry and make its eventual unlink whine.
                # Spawned workers have their *own* tracker, which would
                # unlink the segment out from under the creator when the
                # worker exits; there the unregister is the fix.
                if multiprocessing.get_start_method() != "fork":
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(seg._name, "shared_memory")
            except Exception:
                pass
        _ATTACHED[name] = seg
    return seg


def shm_available() -> bool:
    """True when shared-memory segments can actually be created here."""
    try:
        probe = shared_memory.SharedMemory(create=True, size=_ITEMSIZE)
    except Exception:
        return False
    probe.close()
    try:
        probe.unlink()
    except Exception:
        pass
    return True


@dataclass(frozen=True)
class ShmView:
    """Picklable handle to one float64 vector inside a shared segment."""

    name: str
    #: offset into the segment, in float64 elements
    offset: int
    #: vector length, in float64 elements
    length: int

    def resolve(self) -> np.ndarray:
        """The live NumPy view in the calling process (attaches on first use)."""
        seg = _attach(self.name)
        return np.ndarray(
            (self.length,), dtype=_FLOAT, buffer=seg.buf,
            offset=self.offset * _ITEMSIZE,
        )


def _release(seg: shared_memory.SharedMemory) -> None:
    """Finalizer: unmap and unlink, tolerating double-release."""
    try:
        seg.close()
    except Exception:
        pass
    try:
        seg.unlink()
    except Exception:
        pass


class ShmRing:
    """A parent-owned shared segment divided into equal float64 slots.

    The parent writes with :meth:`write` / reads with :meth:`view`;
    workers get :meth:`descriptor` handles. The segment is unlinked when
    the ring is closed or garbage-collected, whichever comes first.
    """

    def __init__(self, slot_len: int, slots: int):
        if slot_len < 1 or slots < 1:
            raise ValueError(
                f"need positive slot_len/slots, got {slot_len}/{slots}"
            )
        self.slot_len = int(slot_len)
        self.slots = int(slots)
        self._seg = shared_memory.SharedMemory(
            create=True, size=self.slot_len * self.slots * _ITEMSIZE
        )
        self._finalizer = weakref.finalize(self, _release, self._seg)

    @property
    def name(self) -> str:
        return self._seg.name

    def view(self, slot: int) -> np.ndarray:
        """Parent-side view of one slot (no copy)."""
        if not 0 <= slot < self.slots:
            raise IndexError(f"slot {slot} out of range [0, {self.slots})")
        return np.ndarray(
            (self.slot_len,), dtype=_FLOAT, buffer=self._seg.buf,
            offset=slot * self.slot_len * _ITEMSIZE,
        )

    def write(self, slot: int, values: np.ndarray) -> ShmView:
        """Copy ``values`` into a slot; returns the worker-side handle."""
        self.view(slot)[:] = values
        return self.descriptor(slot)

    def descriptor(self, slot: int) -> ShmView:
        if not 0 <= slot < self.slots:
            raise IndexError(f"slot {slot} out of range [0, {self.slots})")
        return ShmView(
            name=self.name, offset=slot * self.slot_len, length=self.slot_len
        )

    def close(self) -> None:
        """Unmap and unlink the segment. Idempotent."""
        self._finalizer()


class ShmChannel:
    """Round-dispatch buffers for one trainer: params out, results back.

    ``publish_params`` double-buffers the global parameter vector (two
    slots, alternating per round) so a new round's publish never scribbles
    over a vector an in-flight consumer may still be reading.
    ``result_slots`` hands out one slot per group task, growing the result
    ring when a round samples more groups than any round before it —
    between rounds nothing is in flight, so the old ring unlinks safely.
    """

    def __init__(self, num_params: int):
        self.num_params = int(num_params)
        self._params = ShmRing(self.num_params, 2)
        self._cursor = 0
        self._results: ShmRing | None = None

    def publish_params(self, params: np.ndarray) -> ShmView:
        """Write the round's global params; returns the task-side handle."""
        if params.shape != (self.num_params,):
            raise ValueError(
                f"expected shape ({self.num_params},), got {params.shape}"
            )
        self._cursor ^= 1
        return self._params.write(self._cursor, params)

    def result_slots(self, n: int) -> list[ShmView]:
        """Handles for ``n`` group results (one slot per in-flight task)."""
        if self._results is None or self._results.slots < n:
            if self._results is not None:
                self._results.close()
            self._results = ShmRing(self.num_params, max(n, 1))
        return [self._results.descriptor(i) for i in range(n)]

    def result_array(self, slot: int) -> np.ndarray:
        """Parent-side view of a result a worker wrote (no copy)."""
        if self._results is None:
            raise RuntimeError("no result ring allocated yet")
        return self._results.view(slot)

    def close(self) -> None:
        """Unlink both rings. Idempotent."""
        self._params.close()
        if self._results is not None:
            self._results.close()
