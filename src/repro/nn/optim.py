"""Optimizers and learning-rate schedules.

The optimizer works on the flat parameter vector (see ``repro.nn.model``),
so a step is a handful of vectorized array operations regardless of model
depth. Non-trainable entries (BatchNorm running stats) are masked out.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.model import Model

__all__ = ["LRSchedule", "ConstantLR", "StepLR", "CosineLR", "SGD"]


class LRSchedule:
    """Maps a step index to a learning rate."""

    def lr_at(self, step: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """Fixed learning rate."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def lr_at(self, step: int) -> float:
        return self.lr


class StepLR(LRSchedule):
    """Multiply the rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.lr = float(lr)
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def lr_at(self, step: int) -> float:
        return self.lr * self.gamma ** (step // self.step_size)


class CosineLR(LRSchedule):
    """Cosine annealing from ``lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, lr: float, total_steps: int, min_lr: float = 0.0):
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {total_steps}")
        self.lr = float(lr)
        self.total_steps = int(total_steps)
        self.min_lr = float(min_lr)

    def lr_at(self, step: int) -> float:
        t = min(step, self.total_steps) / self.total_steps
        return self.min_lr + 0.5 * (self.lr - self.min_lr) * (1.0 + math.cos(math.pi * t))


class SGD:
    """Stochastic gradient descent with optional momentum and weight decay.

    Operates on a model's flat parameter/gradient vectors; a preallocated
    velocity buffer is updated in place (no per-step allocation).
    """

    def __init__(
        self,
        model: Model,
        lr: float | LRSchedule = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        self.model = model
        self.schedule = ConstantLR(lr) if isinstance(lr, (int, float)) else lr
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.step_count = 0
        n = model.num_params
        self._mask = model.trainable_mask()
        self._velocity = np.zeros(n) if momentum > 0.0 else None
        # Scratch buffers reused every step.
        self._params = np.empty(n)
        self._grads = np.empty(n)

    @property
    def lr(self) -> float:
        """Learning rate the *next* step will use."""
        return self.schedule.lr_at(self.step_count)

    @property
    def effective_lr(self) -> float:
        """Per-gradient-unit displacement rate, momentum included.

        Under heavy-ball momentum a steady gradient g displaces parameters
        by ≈ steps·lr·g/(1−m); SCAFFOLD's control-variate update divides
        the observed displacement by steps·effective_lr to recover the
        average gradient, so it must use this rate, not the raw lr.
        """
        return self.schedule.lr_at(0) / (1.0 - self.momentum)

    def step(self, grad_offset: np.ndarray | None = None) -> float:
        """Apply one update from the model's accumulated gradients.

        Parameters
        ----------
        grad_offset:
            Optional vector added to the gradient before the update — the
            hook used by SCAFFOLD (``-c_i + c``) and FedProx (``mu * (x -
            x_global)``). Must have model.num_params entries.

        Returns the learning rate used.
        """
        lr = self.schedule.lr_at(self.step_count)
        self.step_count += 1
        params = self.model.get_params(self._params)
        grads = self.model.get_grads(self._grads)
        if grad_offset is not None:
            grads += grad_offset
        if self.weight_decay:
            grads += self.weight_decay * params
        grads[~self._mask] = 0.0
        if self._velocity is not None:
            self._velocity *= self.momentum
            self._velocity += grads
            params -= lr * self._velocity
        else:
            params -= lr * grads
        self.model.set_params(params)
        return lr

    def reset_state(self) -> None:
        """Clear momentum and the step counter (used between FL clients)."""
        self.step_count = 0
        if self._velocity is not None:
            self._velocity.fill(0.0)
