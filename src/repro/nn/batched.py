"""Batched multi-client local training: one (B, n, d) pass per group step.

The per-client loop in ``run_group_round`` pays the full Python toll per
client per step: layer dispatch, ``get_params``/``set_params`` round trips,
optimizer scratch copies, and a loss value that is computed only to be
discarded. For a group of B same-architecture clients all of that collapses
into array programs over one flat ``(B, P)`` parameter matrix:

* forward/backward become stacked GEMMs — ``np.matmul`` over ``(B, n, in) @
  (B, in, out)`` runs the same per-slice dgemm the per-client loop runs,
  so results are **bit-identical**, not merely close;
* the SGD update (momentum, weight decay, trainable-mask, LR schedule) is
  one fused set of elementwise ops over ``(B, P)`` instead of B separate
  scratch-buffer round trips;
* minibatches are drawn through the *same* :meth:`ClientDataset.batches` /
  :meth:`ClientDataset.sample_batch` calls on the *same* per-client RNGs as
  the reference loop, so index draws — and therefore every float — match.

Clients step in lockstep per local round; because clients are independent
(each row of the parameter matrix belongs to one client), interleaving
order cannot change results. Within a step, clients are grouped by
minibatch size (all full batches share one stacked pass; ragged last
batches form their own sub-passes), so no padding is ever introduced —
padding would perturb GEMM reduction shapes and break bit-identity.

Supported substrate: :class:`~repro.nn.model.Sequential` models composed of
``Dense`` / ``ReLU`` / ``LeakyReLU`` layers (the MLP family) under the
default cross-entropy loss. Anything else — convolutions, BatchNorm
(cross-sample statistics), Dropout (layer-owned RNG whose draw order a
batched pass would change) — must keep the per-client reference path;
:func:`supports_batched_training` is the gate ``run_group_round`` consults
in ``engine="auto"`` mode.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dense, LeakyReLU, ReLU
from repro.nn.model import Model
from repro.nn.optim import ConstantLR, SGD
from repro.telemetry import Telemetry, resolve as resolve_telemetry

__all__ = ["supports_batched_training", "batched_local_rounds"]

#: exact layer types the batched engine can stack (strict: subclasses may
#: override forward/backward and silently diverge from the batched math)
_BATCHABLE_LAYERS = (Dense, ReLU, LeakyReLU)


def supports_batched_training(model: Model) -> bool:
    """True when every layer of ``model`` has a batched equivalent.

    Strict type checks (not ``isinstance``) keep custom subclasses on the
    reference path — a ``Dense`` subclass with an overridden ``forward``
    would not match the stacked math.
    """
    try:
        layers = model.layers
    except NotImplementedError:
        return False
    return all(type(layer) in _BATCHABLE_LAYERS for layer in layers)


class _BatchedNet:
    """Layout of one model template, prepared for (B, P) batched passes.

    Holds per-Dense-layer offsets into the flat parameter vector plus the
    trainable mask; built once per group round, reused every step.
    """

    def __init__(self, model: Model):
        self.plan: list[tuple[str, int, int, int]] = []  # (kind, off, in, out)
        offset = 0
        for layer in model.layers:
            kind = type(layer)
            if kind is Dense:
                size_w = layer.in_features * layer.out_features
                self.plan.append(
                    ("dense", offset, layer.in_features, layer.out_features)
                )
                offset += size_w + layer.out_features
            elif kind is ReLU:
                self.plan.append(("relu", 0, 0, 0))
            elif kind is LeakyReLU:
                self.plan.append(("lrelu", 0, 0, layer.negative_slope))
            else:  # pragma: no cover - guarded by supports_batched_training
                raise ValueError(
                    f"layer {layer!r} has no batched equivalent; gate with "
                    "supports_batched_training() or use engine='reference'"
                )
        self.num_params = offset
        if model.num_params != offset:
            raise ValueError(
                f"model flat size {model.num_params} != batched plan {offset}"
            )
        mask = model.trainable_mask()
        #: None when everything is trainable (the common case) — skips the
        #: masking write in the step loop
        self.frozen = None if mask.all() else ~mask
        #: index of the earliest Dense layer: its input gradient (and the
        #: backward of anything before it) is never consumed, so the
        #: backward pass stops there — one whole GEMM the per-client
        #: reference path pays and we don't
        self.first_dense = next(
            i for i, (kind, *_rest) in enumerate(self.plan) if kind == "dense"
        )
        #: scratch (B, P) gradient buffer, grown on demand and reused
        #: across steps
        self._gflat = np.empty((0, self.num_params))

    def forward_backward(
        self, params: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Stacked forward + cross-entropy backward for one lockstep batch.

        ``params`` is (B, P); ``x`` is (B, nb, features...), ``y`` (B, nb).
        Returns the flat gradient matrix (B, P). Matches the reference
        ``model.loss_and_grad`` float for float (the discarded loss scalar
        is simply never computed).
        """
        bsz = params.shape[0]
        if x.ndim > 3:  # MLP.forward flattens non-batch axes
            x = x.reshape(bsz, x.shape[1], -1)
        acts: list[np.ndarray | None] = []
        out = x
        for kind, off, n_in, n_out in self.plan:
            if kind == "dense":
                w = params[:, off : off + n_in * n_out].reshape(bsz, n_in, n_out)
                b = params[:, off + n_in * n_out : off + n_in * n_out + n_out]
                acts.append(out)
                out = np.matmul(out, w) + b[:, None, :]
            elif kind == "relu":
                mask = out > 0
                acts.append(mask)
                out = np.where(mask, out, 0.0)
            else:  # lrelu
                mask = out > 0
                acts.append(mask)
                out = np.where(mask, out, n_out * out)

        # Fused softmax cross-entropy gradient: (softmax(z) - onehot) / nb,
        # replicating repro.nn.losses.CrossEntropyLoss minus the loss value.
        nb = out.shape[1]
        grad = out - out.max(axis=2, keepdims=True)
        np.exp(grad, out=grad)
        grad /= grad.sum(axis=2, keepdims=True)
        grad[np.arange(bsz)[:, None], np.arange(nb)[None, :], y] -= 1.0
        grad /= nb

        if self._gflat.shape[0] < bsz:
            self._gflat = np.empty((bsz, self.num_params))
        gflat = self._gflat[:bsz]
        for i in range(len(self.plan) - 1, self.first_dense - 1, -1):
            kind, off, n_in, n_out = self.plan[i]
            act = acts[i]
            if kind == "dense":
                gw = np.matmul(act.transpose(0, 2, 1), grad)
                gb = grad.sum(axis=1)
                # The reference accumulates into zeroed buffers (0.0 + v);
                # adding 0.0 canonicalizes any -0.0 the GEMM produced so the
                # flat gradients match the reference bit for bit.
                gw += 0.0
                gb += 0.0
                gflat[:, off : off + n_in * n_out] = gw.reshape(bsz, -1)
                gflat[:, off + n_in * n_out : off + n_in * n_out + n_out] = gb
                if i > self.first_dense:
                    w = params[:, off : off + n_in * n_out].reshape(
                        bsz, n_in, n_out
                    )
                    grad = np.matmul(grad, w.transpose(0, 2, 1))
            elif kind == "relu":
                grad = np.where(act, grad, 0.0)
            else:  # lrelu
                grad = np.where(act, grad, n_out * grad)
        return gflat


def _lockstep_schedule(
    epoch_batches: list[list[tuple[np.ndarray, np.ndarray]]], t: int
):
    """Group the clients active at substep ``t`` by minibatch size.

    ``epoch_batches[j]`` is client j's minibatch list for the current
    epoch; clients with fewer batches simply sit out the later substeps.
    Yields ``(sel, x, y)`` with ``sel`` the client rows stacked into
    ``x``/``y`` — one yield per distinct batch size, so stacked shapes
    stay rectangular without padding (padding would change GEMM reduction
    shapes and break bit-identity).
    """
    by_size: dict[int, list[int]] = {}
    for j, batches in enumerate(epoch_batches):
        if t < len(batches):
            by_size.setdefault(batches[t][0].shape[0], []).append(j)
    for size in sorted(by_size):
        sel = by_size[size]
        xs = [epoch_batches[j][t][0] for j in sel]
        ys = [epoch_batches[j][t][1] for j in sel]
        yield np.array(sel, dtype=np.intp), np.stack(xs), np.stack(ys)


def batched_local_rounds(
    model: Model,
    optimizer: SGD,
    clients: list,
    start_params: np.ndarray,
    local_rounds: int,
    batch_size: int,
    rngs: list[np.random.Generator],
    strategy=None,
    anchor: np.ndarray | None = None,
    step_mode: str = "epoch",
    telemetry: Telemetry | None = None,
) -> np.ndarray:
    """Run E local rounds for B clients at once; returns (B, P) end params.

    Drop-in replacement for B calls of
    :func:`repro.core.client.run_local_rounds` — same client RNG streams
    (minibatches are drawn through the very same ``ClientDataset`` methods),
    same update arithmetic, bit-identical end parameters. ``model`` and
    ``optimizer`` are treated as read-only templates: the model supplies
    the layer plan and trainable mask, the optimizer its schedule /
    momentum / weight decay.

    The strategy's :meth:`~repro.core.strategies.LocalStrategy.after_local`
    hooks run once per client in client order *after* the lockstep loop —
    equivalent to the reference interleaving because a client's local
    training never observes another client's ``after_local`` mutation
    (verified for the in-tree strategies; custom cross-client strategies
    should stay on the reference path).
    """
    from repro.core.strategies import PlainSGDStrategy

    if local_rounds < 1:
        raise ValueError(f"local_rounds must be >= 1, got {local_rounds}")
    if step_mode not in ("epoch", "batch"):
        raise ValueError(f"step_mode must be 'epoch' or 'batch', got {step_mode!r}")
    if len(clients) != len(rngs):
        raise ValueError(f"{len(clients)} clients but {len(rngs)} rngs")

    strategy = strategy or PlainSGDStrategy()
    anchor = start_params if anchor is None else anchor
    net = _BatchedNet(model)
    bsz = len(clients)
    n_params = net.num_params

    params = np.tile(np.asarray(start_params, dtype=np.float64), (bsz, 1))
    momentum = optimizer.momentum
    weight_decay = optimizer.weight_decay
    schedule = optimizer.schedule
    const_lr = schedule.lr_at(0) if isinstance(schedule, ConstantLR) else None
    velocity = np.zeros((bsz, n_params)) if momentum > 0.0 else None
    steps = np.zeros(bsz, dtype=np.int64)
    samples = 0
    uses_offset = not isinstance(strategy, PlainSGDStrategy)
    client_ids = [c.client_id for c in clients]

    for _ in range(local_rounds):
        # Same draws, same order, per client RNG, as the reference loop —
        # the dataset's own methods produce the minibatches.
        if step_mode == "epoch":
            epoch_batches = [
                list(c.batches(batch_size, rng)) for c, rng in zip(clients, rngs)
            ]
        else:
            epoch_batches = [
                [c.sample_batch(batch_size, rng)] for c, rng in zip(clients, rngs)
            ]
        for t in range(max(len(b) for b in epoch_batches)):
            # One offset call per substep over ALL clients, in client order,
            # then row-sliced per size group: values match the per-client
            # path (a client's row reads its pre-step params either way) and
            # first-touch order on strategy state (SCAFFOLD's lazily-created
            # variates) matches the reference loop's member order.
            offset_full = (
                strategy.batched_grad_offset(client_ids, params, anchor)
                if uses_offset
                else None
            )
            for sel, x, y in _lockstep_schedule(epoch_batches, t):
                samples += x.shape[0] * x.shape[1]
                whole = sel.size == bsz
                p = params if whole else params[sel]
                grads = net.forward_backward(p, x, y)
                if offset_full is not None:
                    grads += offset_full if whole else offset_full[sel]
                if weight_decay:
                    grads += weight_decay * p
                if net.frozen is not None:
                    grads[:, net.frozen] = 0.0
                if const_lr is not None:
                    lr = const_lr
                else:
                    lr = np.array(
                        [schedule.lr_at(int(s)) for s in steps[sel]]
                    )[:, None]
                if velocity is None:
                    if whole:
                        params -= lr * grads
                    else:
                        params[sel] = p - lr * grads
                elif whole:
                    velocity *= momentum
                    velocity += grads
                    params -= lr * velocity
                else:
                    v = velocity[sel]
                    v *= momentum
                    v += grads
                    velocity[sel] = v
                    params[sel] = p - lr * v
                steps[sel] += 1

    eff_lr = optimizer.effective_lr
    for j, cid in enumerate(client_ids):
        strategy.after_local(cid, start_params, params[j], int(steps[j]), eff_lr)

    tel = resolve_telemetry(telemetry)
    if tel.enabled:
        tel.inc("local_steps", float(steps.sum()))
        tel.inc("client_updates", float(bsz))
        tel.inc("samples_trained", float(samples))
    return params
