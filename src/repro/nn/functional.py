"""Stateless numerical kernels shared by layers and losses.

The convolution path uses im2col/col2im so the inner loops become one big
GEMM per layer — the canonical vectorization trick from the scientific-
Python optimization guide (replace Python loops with one BLAS call).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "im2col",
    "col2im",
    "im2col_1d",
    "col2im_1d",
    "softmax",
    "log_softmax",
    "one_hot",
    "xavier_uniform",
    "kaiming_normal",
]


def _pair(v: int | tuple[int, int]) -> tuple[int, int]:
    return (v, v) if isinstance(v, int) else (int(v[0]), int(v[1]))


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output length of a convolution along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output size {out} <= 0 "
            f"(input={size}, kernel={kernel}, stride={stride}, pad={pad})"
        )
    return out


def im2col(
    x: np.ndarray, kernel: int | tuple[int, int], stride: int = 1, pad: int = 0
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` into ``(N*OH*OW, C*KH*KW)`` patch rows.

    Returns the column matrix plus the output spatial shape ``(OH, OW)``.
    Uses stride tricks (a view, not a copy) before the final reshape so the
    only data movement is the one unavoidable gather.
    """
    kh, kw = _pair(kernel)
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, OH, OW, C, KH, KW) -> rows of patches.
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), (oh, ow)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int | tuple[int, int],
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Fold patch-gradient rows back to an input gradient (im2col adjoint)."""
    kh, kw = _pair(kernel)
    n, c, h, w = x_shape
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    grad = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    patches = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    # Scatter-add each kernel offset in one vectorized slice assignment.
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            grad[:, :, i:i_max:stride, j:j_max:stride] += patches[:, :, i, j]
    if pad > 0:
        return grad[:, :, pad:-pad, pad:-pad]
    return grad


def im2col_1d(
    x: np.ndarray, kernel: int, stride: int = 1, pad: int = 0
) -> tuple[np.ndarray, int]:
    """Unfold ``(N, C, L)`` into ``(N*OL, C*K)`` patch rows; returns (cols, OL)."""
    n, c, length = x.shape
    ol = conv_output_size(length, kernel, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad)), mode="constant")
    sn, sc, sl = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, ol, kernel),
        strides=(sn, sc, sl * stride, sl),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 1, 3).reshape(n * ol, c * kernel)
    return np.ascontiguousarray(cols), ol


def col2im_1d(
    cols: np.ndarray,
    x_shape: tuple[int, int, int],
    kernel: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col_1d`."""
    n, c, length = x_shape
    ol = conv_output_size(length, kernel, stride, pad)
    lp = length + 2 * pad
    grad = np.zeros((n, c, lp), dtype=cols.dtype)
    patches = cols.reshape(n, ol, c, kernel).transpose(0, 2, 3, 1)
    for k in range(kernel):
        grad[:, :, k : k + stride * ol : stride] += patches[:, :, k]
    if pad > 0:
        return grad[:, :, pad:-pad]
    return grad


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    return shifted


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` -> one-hot ``(N, num_classes)`` float64."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels out of range [0, {num_classes}): "
            f"min={labels.min()}, max={labels.max()}"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def xavier_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_normal(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int
) -> np.ndarray:
    """He/Kaiming normal initialization (for ReLU networks)."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)
