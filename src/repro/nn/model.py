"""Model container with a flat-parameter-vector API.

Federated learning constantly ships, averages, and diffs whole models.
Representing a model's state as one contiguous ``float64`` vector makes
every FL operation a vectorized array expression:

* FedAvg aggregation  -> ``np.einsum("g,gp->p", weights, stacked_params)``
* FedProx proximal    -> ``grad += mu * (params - global_params)``
* SCAFFOLD variates   -> plain vector adds
* secure aggregation  -> fixed-point quantization of one buffer

``Sequential.get_params()`` copies layer arrays into the flat buffer;
``set_params`` copies back. Layer arrays keep their identity, so views held
by the optimizer stay valid.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.nn.layers import Layer
from repro.nn.losses import CrossEntropyLoss, Loss

__all__ = ["Model", "Sequential"]


class Model:
    """Abstract model: forward pass + flat parameter access."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- flat parameter interface -------------------------------------------------
    @property
    def layers(self) -> Sequence[Layer]:
        raise NotImplementedError

    def _param_items(self) -> list[tuple[Layer, str]]:
        return [
            (leaf, name)
            for layer in self.layers
            for leaf in layer.param_layers()
            for name in leaf.params
        ]

    @property
    def num_params(self) -> int:
        return sum(
            leaf.num_params for layer in self.layers for leaf in layer.param_layers()
        )

    def get_params(self, out: np.ndarray | None = None) -> np.ndarray:
        """Copy all parameters into one contiguous vector."""
        n = self.num_params
        if out is None:
            out = np.empty(n, dtype=np.float64)
        elif out.shape != (n,):
            raise ValueError(f"out has shape {out.shape}, expected ({n},)")
        offset = 0
        for layer, name in self._param_items():
            p = layer.params[name]
            out[offset : offset + p.size] = p.ravel()
            offset += p.size
        return out

    def set_params(self, vec: np.ndarray) -> None:
        """Load parameters from a flat vector (in-place into layer arrays)."""
        n = self.num_params
        vec = np.asarray(vec, dtype=np.float64)
        if vec.shape != (n,):
            raise ValueError(f"vector has shape {vec.shape}, expected ({n},)")
        offset = 0
        for layer, name in self._param_items():
            p = layer.params[name]
            p.ravel()[:] = vec[offset : offset + p.size]
            offset += p.size

    def get_grads(self, out: np.ndarray | None = None) -> np.ndarray:
        """Copy all gradients into one contiguous vector."""
        n = self.num_params
        if out is None:
            out = np.empty(n, dtype=np.float64)
        offset = 0
        for layer, name in self._param_items():
            g = layer.grads[name]
            out[offset : offset + g.size] = g.ravel()
            offset += g.size
        return out

    def trainable_mask(self) -> np.ndarray:
        """Boolean vector marking optimizer-updatable entries."""
        mask = np.empty(self.num_params, dtype=bool)
        offset = 0
        for layer, name in self._param_items():
            size = layer.params[name].size
            mask[offset : offset + size] = layer.trainable[name]
            offset += size
        return mask

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    # -- training helpers ---------------------------------------------------------
    def loss_and_grad(
        self, x: np.ndarray, y: np.ndarray, loss_fn: Loss | None = None
    ) -> float:
        """One forward+backward pass; gradients accumulate into the layers."""
        loss_fn = loss_fn or CrossEntropyLoss()
        self.zero_grads()
        logits = self.forward(x, training=True)
        loss, grad = loss_fn(logits, y)
        self.backward(grad)
        return loss

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions without caching activations."""
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            logits = self.forward(x[start : start + batch_size], training=False)
            outputs.append(logits.argmax(axis=1))
        return np.concatenate(outputs) if outputs else np.empty(0, dtype=np.int64)

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> tuple[float, float]:
        """Return (mean cross-entropy loss, accuracy) on a dataset."""
        loss_fn = CrossEntropyLoss()
        total_loss = 0.0
        correct = 0
        n = x.shape[0]
        if n == 0:
            return 0.0, 0.0
        for start in range(0, n, batch_size):
            xb, yb = x[start : start + batch_size], y[start : start + batch_size]
            logits = self.forward(xb, training=False)
            loss, _ = loss_fn(logits, yb)
            total_loss += loss * xb.shape[0]
            correct += int((logits.argmax(axis=1) == yb).sum())
        return total_loss / n, correct / n


class Sequential(Model):
    """A simple layer pipeline."""

    def __init__(self, layers: Iterable[Layer]):
        self._layers = list(layers)

    @property
    def layers(self) -> Sequence[Layer]:
        return self._layers

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for layer in self._layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self._layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self._layers)
        return f"Sequential([{inner}])"
