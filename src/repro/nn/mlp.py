"""Small dense models: fast substrates for tests and ablations."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.rng import make_rng

__all__ = ["MLP", "SoftmaxRegression", "make_mlp"]


class MLP(Sequential):
    """Multi-layer perceptron with ReLU activations.

    Parameters
    ----------
    in_features / num_classes:
        Input and output widths.
    hidden:
        Hidden layer widths, e.g. ``(64, 32)``. Empty = linear model.
    """

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: tuple[int, ...] = (64,),
        seed: int | np.random.Generator | None = 0,
    ):
        rng = make_rng(seed)
        layers = []
        width = in_features
        for h in hidden:
            layers.append(Dense(width, h, rng))
            layers.append(ReLU())
            width = h
        layers.append(Dense(width, num_classes, rng))
        super().__init__(layers)
        self.in_features = in_features
        self.num_classes = num_classes
        self.hidden = tuple(hidden)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim > 2:  # accept image/sequence tensors directly
            x = x.reshape(x.shape[0], -1)
        return super().forward(x, training=training)


class SoftmaxRegression(MLP):
    """Linear softmax classifier — the cheapest model for property tests."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        seed: int | np.random.Generator | None = 0,
    ):
        super().__init__(in_features, num_classes, hidden=(), seed=seed)


def make_mlp(
    in_features: int,
    num_classes: int,
    hidden: tuple[int, ...] = (64,),
    seed: int | np.random.Generator | None = 0,
) -> MLP:
    """Factory matching the signature style of the other model builders."""
    return MLP(in_features, num_classes, hidden=hidden, seed=seed)
