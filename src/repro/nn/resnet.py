"""ResNetLite: the paper's "3-block ResNet" for the image task.

A compact residual CNN sized for the synthetic CIFAR-10 stand-in: stem conv
-> three residual blocks (with one stride-2 downsample each after the first)
-> global average pool -> linear classifier. Channel widths are configurable
so unit tests can run a very small instance.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dense,
    Flatten,
    GlobalAvgPool2d,
    Layer,
    ReLU,
)
from repro.nn.model import Sequential
from repro.rng import make_rng

__all__ = ["ResidualBlock", "ResNetLite", "make_resnet_lite"]


class ResidualBlock(Layer):
    """conv-bn-relu-conv-bn + identity/projection shortcut, then ReLU.

    A composite layer: it owns sub-layers and routes forward/backward through
    them manually (the skip connection prevents a plain Sequential).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
        stride: int = 1,
        use_batchnorm: bool = True,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.conv1 = Conv2d(in_channels, out_channels, 3, rng, stride=stride, padding=1)
        self.bn1 = BatchNorm2d(out_channels) if use_batchnorm else None
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, rng, stride=1, padding=1)
        self.bn2 = BatchNorm2d(out_channels) if use_batchnorm else None
        self.relu_out = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Conv2d | None = Conv2d(
                in_channels, out_channels, 1, rng, stride=stride, padding=0
            )
        else:
            self.shortcut = None

    def _sublayers(self) -> list[Layer]:
        subs: list[Layer] = [self.conv1]
        if self.bn1 is not None:
            subs.append(self.bn1)
        subs.append(self.conv2)
        if self.bn2 is not None:
            subs.append(self.bn2)
        if self.shortcut is not None:
            subs.append(self.shortcut)
        return subs

    def param_layers(self) -> list[Layer]:
        return [leaf for sub in self._sublayers() for leaf in sub.param_layers()]

    def zero_grads(self) -> None:
        for sub in self._sublayers():
            sub.zero_grads()

    @property
    def num_params(self) -> int:  # type: ignore[override]
        return sum(sub.num_params for sub in self._sublayers())

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = self.conv1.forward(x, training)
        if self.bn1 is not None:
            out = self.bn1.forward(out, training)
        out = self.relu1.forward(out, training)
        out = self.conv2.forward(out, training)
        if self.bn2 is not None:
            out = self.bn2.forward(out, training)
        identity = self.shortcut.forward(x, training) if self.shortcut is not None else x
        return self.relu_out.forward(out + identity, training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.relu_out.backward(grad_out)
        # Branch gradients: the residual sum fans the gradient to both paths.
        grad_main = grad
        if self.bn2 is not None:
            grad_main = self.bn2.backward(grad_main)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        if self.bn1 is not None:
            grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        grad_skip = self.shortcut.backward(grad) if self.shortcut is not None else grad
        return grad_main + grad_skip

    def __repr__(self) -> str:
        return (
            f"ResidualBlock({self.in_channels}->{self.out_channels}, stride={self.stride})"
        )


class ResNetLite(Sequential):
    """Stem conv + 3 residual blocks + classifier (the paper's CIFAR model)."""

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 10,
        base_width: int = 16,
        image_size: int = 8,
        use_batchnorm: bool = True,
        seed: int | np.random.Generator | None = 0,
    ):
        rng = make_rng(seed)
        w = base_width
        layers: list[Layer] = [
            Conv2d(in_channels, w, 3, rng, stride=1, padding=1),
            ReLU(),
            ResidualBlock(w, w, rng, stride=1, use_batchnorm=use_batchnorm),
            ResidualBlock(w, 2 * w, rng, stride=2, use_batchnorm=use_batchnorm),
            ResidualBlock(2 * w, 2 * w, rng, stride=1, use_batchnorm=use_batchnorm),
            GlobalAvgPool2d(),
            Dense(2 * w, num_classes, rng),
        ]
        super().__init__(layers)
        self.in_channels = in_channels
        self.num_classes = num_classes
        self.base_width = base_width
        self.image_size = image_size


def make_resnet_lite(
    in_channels: int = 3,
    num_classes: int = 10,
    base_width: int = 16,
    image_size: int = 8,
    use_batchnorm: bool = True,
    seed: int | np.random.Generator | None = 0,
) -> ResNetLite:
    """Factory for the paper's image-classification model."""
    return ResNetLite(
        in_channels=in_channels,
        num_classes=num_classes,
        base_width=base_width,
        image_size=image_size,
        use_batchnorm=use_batchnorm,
        seed=seed,
    )
