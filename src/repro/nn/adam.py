"""Adam optimizer and gradient clipping, on the flat-vector API.

Adam is not used by the paper's experiments (they run SGD) but rounds out
the library for downstream users; gradient clipping is a common stabilizer
for the edge-of-stability non-IID regime.
"""

from __future__ import annotations

import numpy as np

from repro.nn.model import Model
from repro.nn.optim import ConstantLR, LRSchedule

__all__ = ["Adam", "clip_gradients"]


def clip_gradients(grads: np.ndarray, max_norm: float) -> np.ndarray:
    """Scale ``grads`` in place so its L2 norm is at most ``max_norm``."""
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    norm = float(np.linalg.norm(grads))
    if norm > max_norm:
        grads *= max_norm / norm
    return grads


class Adam:
    """Adam (Kingma & Ba, 2015) over a model's flat parameters.

    Mirrors :class:`repro.nn.optim.SGD`'s interface (``step(grad_offset)``,
    ``reset_state``) so it can drop into the same client-training loop.
    """

    def __init__(
        self,
        model: Model,
        lr: float | LRSchedule = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        max_grad_norm: float | None = None,
    ):
        self.model = model
        self.schedule = ConstantLR(lr) if isinstance(lr, (int, float)) else lr
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = float(b1), float(b2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.max_grad_norm = max_grad_norm
        self.momentum = 0.0  # effective_lr parity with SGD's interface
        n = model.num_params
        self._mask = model.trainable_mask()
        self._m = np.zeros(n)
        self._v = np.zeros(n)
        self._params = np.empty(n)
        self._grads = np.empty(n)
        self.step_count = 0

    @property
    def lr(self) -> float:
        return self.schedule.lr_at(self.step_count)

    @property
    def effective_lr(self) -> float:
        """Displacement rate proxy (SCAFFOLD hook parity with SGD)."""
        return self.schedule.lr_at(0)

    def step(self, grad_offset: np.ndarray | None = None) -> float:
        lr = self.schedule.lr_at(self.step_count)
        self.step_count += 1
        params = self.model.get_params(self._params)
        grads = self.model.get_grads(self._grads)
        if grad_offset is not None:
            grads += grad_offset
        if self.weight_decay:
            grads += self.weight_decay * params
        if self.max_grad_norm is not None:
            clip_gradients(grads, self.max_grad_norm)
        grads[~self._mask] = 0.0
        self._m *= self.beta1
        self._m += (1.0 - self.beta1) * grads
        self._v *= self.beta2
        self._v += (1.0 - self.beta2) * grads * grads
        t = self.step_count
        m_hat = self._m / (1.0 - self.beta1**t)
        v_hat = self._v / (1.0 - self.beta2**t)
        params -= lr * m_hat / (np.sqrt(v_hat) + self.eps)
        self.model.set_params(params)
        return lr

    def reset_state(self) -> None:
        self.step_count = 0
        self._m.fill(0.0)
        self._v.fill(0.0)
