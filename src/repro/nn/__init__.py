"""From-scratch NumPy neural-network library (the paper's PyTorch substitute).

Design notes
------------
* Every layer implements explicit ``forward``/``backward`` passes with cached
  activations; no autodiff. All heavy math is vectorized NumPy (im2col-based
  convolutions, batched GEMMs) per the HPC optimization guide.
* Models expose **flat parameter vectors** (``get_params``/``set_params``):
  federated aggregation then becomes a single weighted ``np.add`` reduction
  over contiguous ``float64`` buffers — no per-layer Python loops.
* Non-trainable state (BatchNorm running statistics) lives in the same flat
  vector (FedAvg-style averaging applies to it) but is masked out of
  optimizer updates via ``trainable_mask``.
"""

from repro.nn.functional import (
    col2im,
    im2col,
    log_softmax,
    one_hot,
    softmax,
)
from repro.nn.layers import (
    BatchNorm1d,
    BatchNorm2d,
    Conv1d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool1d,
    GlobalAvgPool2d,
    Layer,
    LeakyReLU,
    MaxPool1d,
    MaxPool2d,
    ReLU,
)
from repro.nn.extra_layers import AvgPool1d, AvgPool2d, LayerNorm
from repro.nn.losses import CrossEntropyLoss, Loss, MSELoss
from repro.nn.model import Model, Sequential
from repro.nn.resnet import ResidualBlock, ResNetLite, make_resnet_lite
from repro.nn.audio_cnn import AudioCNN, make_audio_cnn
from repro.nn.mlp import MLP, SoftmaxRegression, make_mlp
from repro.nn.optim import SGD, ConstantLR, CosineLR, LRSchedule, StepLR
from repro.nn.adam import Adam, clip_gradients
from repro.nn.serialization import load_model, model_signature, save_model

__all__ = [
    "im2col",
    "col2im",
    "softmax",
    "log_softmax",
    "one_hot",
    "Layer",
    "Dense",
    "Conv1d",
    "Conv2d",
    "ReLU",
    "LeakyReLU",
    "Dropout",
    "Flatten",
    "MaxPool1d",
    "MaxPool2d",
    "GlobalAvgPool1d",
    "GlobalAvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "AvgPool2d",
    "AvgPool1d",
    "Loss",
    "CrossEntropyLoss",
    "MSELoss",
    "Model",
    "Sequential",
    "ResidualBlock",
    "ResNetLite",
    "make_resnet_lite",
    "AudioCNN",
    "make_audio_cnn",
    "MLP",
    "SoftmaxRegression",
    "make_mlp",
    "SGD",
    "Adam",
    "clip_gradients",
    "LRSchedule",
    "ConstantLR",
    "StepLR",
    "CosineLR",
    "save_model",
    "load_model",
    "model_signature",
]
