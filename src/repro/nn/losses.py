"""Loss functions returning (scalar loss, gradient w.r.t. logits)."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax

__all__ = ["Loss", "CrossEntropyLoss", "MSELoss"]


class Loss:
    """A loss maps (logits, targets) -> (mean loss, d loss / d logits)."""

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        raise NotImplementedError


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy on integer labels (fused for stability).

    The fused formulation avoids materializing probabilities twice and keeps
    the gradient exactly ``(softmax(z) - onehot(y)) / N``.
    """

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        targets = np.asarray(targets)
        n = logits.shape[0]
        if targets.shape[0] != n:
            raise ValueError(f"batch mismatch: logits {n} vs targets {targets.shape[0]}")
        logp = log_softmax(logits, axis=1)
        loss = -logp[np.arange(n), targets].mean()
        grad = softmax(logits, axis=1)
        grad[np.arange(n), targets] -= 1.0
        grad /= n
        return float(loss), grad


class MSELoss(Loss):
    """Mean squared error; targets may be class indices (one-hot encoded)."""

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        targets = np.asarray(targets)
        if targets.ndim == 1 and logits.ndim == 2:
            targets = one_hot(targets.astype(np.int64), logits.shape[1])
        diff = logits - targets
        loss = float(np.mean(diff * diff))
        grad = 2.0 * diff / diff.size
        return loss, grad
