"""AudioCNN: the paper's "5-layer CNN" for the Speech-Commands task.

A lightweight 1-D convolutional network over MFCC-like feature sequences:
two conv-relu-pool stages, one conv-relu stage, global average pooling, and
a linear classifier — five weighted layers, sized to be cheap like the
paper's Raspberry-Pi-trainable model.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv1d,
    Dense,
    GlobalAvgPool1d,
    Layer,
    MaxPool1d,
    ReLU,
)
from repro.nn.model import Sequential
from repro.rng import make_rng

__all__ = ["AudioCNN", "make_audio_cnn"]


class AudioCNN(Sequential):
    """Five-layer 1-D CNN for sequence classification.

    Input shape ``(N, in_channels, seq_len)``; ``seq_len`` must be divisible
    by 4 (two 2x pooling stages).
    """

    def __init__(
        self,
        in_channels: int = 8,
        num_classes: int = 35,
        seq_len: int = 16,
        base_width: int = 16,
        seed: int | np.random.Generator | None = 0,
    ):
        if seq_len % 4:
            raise ValueError(f"seq_len must be divisible by 4, got {seq_len}")
        rng = make_rng(seed)
        w = base_width
        layers: list[Layer] = [
            Conv1d(in_channels, w, 3, rng, stride=1, padding=1),
            ReLU(),
            MaxPool1d(2),
            Conv1d(w, 2 * w, 3, rng, stride=1, padding=1),
            ReLU(),
            MaxPool1d(2),
            Conv1d(2 * w, 2 * w, 3, rng, stride=1, padding=1),
            ReLU(),
            GlobalAvgPool1d(),
            Dense(2 * w, 2 * w, rng),
            ReLU(),
            Dense(2 * w, num_classes, rng),
        ]
        super().__init__(layers)
        self.in_channels = in_channels
        self.num_classes = num_classes
        self.seq_len = seq_len
        self.base_width = base_width


def make_audio_cnn(
    in_channels: int = 8,
    num_classes: int = 35,
    seq_len: int = 16,
    base_width: int = 16,
    seed: int | np.random.Generator | None = 0,
) -> AudioCNN:
    """Factory for the paper's command-recognition model."""
    return AudioCNN(
        in_channels=in_channels,
        num_classes=num_classes,
        seq_len=seq_len,
        base_width=base_width,
        seed=seed,
    )
