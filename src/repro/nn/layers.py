"""Neural-network layers with explicit forward/backward passes.

Each layer owns named parameter arrays (``self.params``), matching gradient
arrays (``self.grads``), and a trainability flag per parameter
(``self.trainable``) — BatchNorm running statistics are parameters that are
federated-averaged but never touched by the optimizer.

Shapes follow the PyTorch convention: images are ``(N, C, H, W)``,
sequences are ``(N, C, L)``, dense activations are ``(N, F)``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import (
    col2im,
    col2im_1d,
    im2col,
    im2col_1d,
    kaiming_normal,
)

__all__ = [
    "Layer",
    "Dense",
    "Conv2d",
    "Conv1d",
    "ReLU",
    "LeakyReLU",
    "Dropout",
    "Flatten",
    "MaxPool2d",
    "MaxPool1d",
    "GlobalAvgPool2d",
    "GlobalAvgPool1d",
    "BatchNorm2d",
    "BatchNorm1d",
]


class Layer:
    """Base class: a differentiable transform with named parameters."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.trainable: dict[str, bool] = {}

    def add_param(self, name: str, value: np.ndarray, trainable: bool = True) -> None:
        """Register a parameter array (float64, contiguous)."""
        arr = np.ascontiguousarray(value, dtype=np.float64)
        self.params[name] = arr
        self.grads[name] = np.zeros_like(arr)
        self.trainable[name] = trainable

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grads(self) -> None:
        for g in self.grads.values():
            g.fill(0.0)

    def param_layers(self) -> list["Layer"]:
        """Leaf layers owning parameters; composite layers override this."""
        return [self]

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.params.values())

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Affine layer: ``y = x @ W + b`` with ``W`` of shape (in, out)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.add_param("W", kaiming_normal(rng, (in_features, out_features), in_features))
        self.add_param("b", np.zeros(out_features))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._x = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._x
        if x is None:
            raise RuntimeError("backward called before a training forward pass")
        self.grads["W"] += x.T @ grad_out
        self.grads["b"] += grad_out.sum(axis=0)
        return grad_out @ self.params["W"].T

    def __repr__(self) -> str:
        return f"Dense({self.in_features}, {self.out_features})"


class Conv2d(Layer):
    """2-D convolution via im2col + GEMM. Weight shape (C_out, C_in, KH, KW)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.add_param(
            "W",
            kaiming_normal(rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in),
        )
        self.add_param("b", np.zeros(out_channels))
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n = x.shape[0]
        cols, (oh, ow) = im2col(x, self.kernel_size, self.stride, self.padding)
        w_mat = self.params["W"].reshape(self.out_channels, -1)
        out = cols @ w_mat.T + self.params["b"]
        if training:
            self._cols = cols
            self._x_shape = x.shape
        return out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c_out, oh, ow = grad_out.shape
        grad_rows = grad_out.transpose(0, 2, 3, 1).reshape(n * oh * ow, c_out)
        w_mat = self.params["W"].reshape(self.out_channels, -1)
        self.grads["W"] += (grad_rows.T @ self._cols).reshape(self.params["W"].shape)
        self.grads["b"] += grad_rows.sum(axis=0)
        grad_cols = grad_rows @ w_mat
        return col2im(grad_cols, self._x_shape, self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


class Conv1d(Layer):
    """1-D convolution via im2col + GEMM. Weight shape (C_out, C_in, K)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size
        self.add_param("W", kaiming_normal(rng, (out_channels, in_channels, kernel_size), fan_in))
        self.add_param("b", np.zeros(out_channels))
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n = x.shape[0]
        cols, ol = im2col_1d(x, self.kernel_size, self.stride, self.padding)
        w_mat = self.params["W"].reshape(self.out_channels, -1)
        out = cols @ w_mat.T + self.params["b"]
        if training:
            self._cols = cols
            self._x_shape = x.shape
        return out.reshape(n, ol, self.out_channels).transpose(0, 2, 1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c_out, ol = grad_out.shape
        grad_rows = grad_out.transpose(0, 2, 1).reshape(n * ol, c_out)
        w_mat = self.params["W"].reshape(self.out_channels, -1)
        self.grads["W"] += (grad_rows.T @ self._cols).reshape(self.params["W"].shape)
        self.grads["b"] += grad_rows.sum(axis=0)
        grad_cols = grad_rows @ w_mat
        return col2im_1d(grad_cols, self._x_shape, self.kernel_size, self.stride, self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv1d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


class ReLU(Layer):
    """Rectified linear unit (mask cached for the backward pass)."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return np.where(mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        return np.where(self._mask, grad_out, 0.0)


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return np.where(mask, x, self.negative_slope * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        return np.where(self._mask, grad_out, self.negative_slope * grad_out)


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Flatten(Layer):
    """Collapse all non-batch axes."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad_out.reshape(self._shape)


class MaxPool2d(Layer):
    """Max pooling with kernel == stride (the common non-overlapping case)."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = int(kernel_size)
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        k = self.kernel_size
        n, c, h, w = x.shape
        if h % k or w % k:
            raise ValueError(f"spatial dims ({h},{w}) not divisible by pool size {k}")
        oh, ow = h // k, w // k
        windows = x.reshape(n, c, oh, k, ow, k).transpose(0, 1, 2, 4, 3, 5)
        flat = windows.reshape(n, c, oh, ow, k * k)
        if training:
            self._argmax = flat.argmax(axis=-1)
            self._x_shape = x.shape
        return flat.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        k = self.kernel_size
        n, c, h, w = self._x_shape
        oh, ow = h // k, w // k
        flat = np.zeros((n, c, oh, ow, k * k), dtype=grad_out.dtype)
        np.put_along_axis(flat, self._argmax[..., None], grad_out[..., None], axis=-1)
        return (
            flat.reshape(n, c, oh, ow, k, k)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, h, w)
        )

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size})"


class MaxPool1d(Layer):
    """1-D max pooling with kernel == stride."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        self.kernel_size = int(kernel_size)
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        k = self.kernel_size
        n, c, length = x.shape
        if length % k:
            raise ValueError(f"sequence length {length} not divisible by pool size {k}")
        ol = length // k
        windows = x.reshape(n, c, ol, k)
        if training:
            self._argmax = windows.argmax(axis=-1)
            self._x_shape = x.shape
        return windows.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        k = self.kernel_size
        n, c, length = self._x_shape
        windows = np.zeros((n, c, length // k, k), dtype=grad_out.dtype)
        np.put_along_axis(windows, self._argmax[..., None], grad_out[..., None], axis=-1)
        return windows.reshape(n, c, length)

    def __repr__(self) -> str:
        return f"MaxPool1d(k={self.kernel_size})"


class GlobalAvgPool2d(Layer):
    """Spatial global average pooling: (N, C, H, W) -> (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, h, w = self._x_shape
        return np.broadcast_to(grad_out[:, :, None, None] / (h * w), self._x_shape).copy()


class GlobalAvgPool1d(Layer):
    """Temporal global average pooling: (N, C, L) -> (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._x_shape = x.shape
        return x.mean(axis=2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, length = self._x_shape
        return np.broadcast_to(grad_out[:, :, None] / length, self._x_shape).copy()


class _BatchNormBase(Layer):
    """Shared batch-norm math over a reduction axis set.

    Running statistics are registered as *non-trainable* parameters so they
    ride along in the flat parameter vector (and are federated-averaged),
    but the optimizer never updates them.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.add_param("gamma", np.ones(num_features))
        self.add_param("beta", np.zeros(num_features))
        self.add_param("running_mean", np.zeros(num_features), trainable=False)
        self.add_param("running_var", np.ones(num_features), trainable=False)
        self._cache: tuple | None = None

    # Subclasses define how (N, C, ...) maps to per-feature statistics.
    _axes: tuple[int, ...] = (0,)

    def _reshape(self, v: np.ndarray, ndim: int) -> np.ndarray:
        shape = [1] * ndim
        shape[1 if ndim > 1 else 0] = self.num_features
        return v.reshape(shape)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        ndim = x.ndim
        gamma = self._reshape(self.params["gamma"], ndim)
        beta = self._reshape(self.params["beta"], ndim)
        if training:
            mean = x.mean(axis=self._axes)
            var = x.var(axis=self._axes)
            rm, rv = self.params["running_mean"], self.params["running_var"]
            rm *= 1.0 - self.momentum
            rm += self.momentum * mean
            rv *= 1.0 - self.momentum
            rv += self.momentum * var
            inv_std = 1.0 / np.sqrt(var + self.eps)
            x_hat = (x - self._reshape(mean, ndim)) * self._reshape(inv_std, ndim)
            self._cache = (x_hat, inv_std)
            return gamma * x_hat + beta
        mean = self._reshape(self.params["running_mean"], ndim)
        var = self._reshape(self.params["running_var"], ndim)
        return gamma * (x - mean) / np.sqrt(var + self.eps) + beta

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x_hat, inv_std = self._cache
        ndim = grad_out.ndim
        m = grad_out.size // self.num_features
        self.grads["gamma"] += (grad_out * x_hat).sum(axis=self._axes)
        self.grads["beta"] += grad_out.sum(axis=self._axes)
        gamma = self._reshape(self.params["gamma"], ndim)
        g = grad_out * gamma
        g_sum = g.sum(axis=self._axes, keepdims=True)
        gx_sum = (g * x_hat).sum(axis=self._axes, keepdims=True)
        inv = self._reshape(inv_std, ndim)
        return inv * (g - g_sum / m - x_hat * gx_sum / m)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_features})"


class BatchNorm2d(_BatchNormBase):
    """Batch normalization over (N, H, W) per channel for (N, C, H, W)."""

    _axes = (0, 2, 3)


class BatchNorm1d(_BatchNormBase):
    """Batch normalization for (N, C, L) sequences or (N, F) features."""

    @property
    def _axes(self):  # type: ignore[override]
        return self._axes_dynamic

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._axes_dynamic = (0,) if x.ndim == 2 else (0, 2)
        return super().forward(x, training)
