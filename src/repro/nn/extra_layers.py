"""Additional layers: LayerNorm and average pooling.

LayerNorm normalizes per sample (no running statistics), which makes it
the FL-friendly alternative to BatchNorm: nothing to average across
clients, no train/eval asymmetry, no statistics corruption under non-IID
local data.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer

__all__ = ["LayerNorm", "AvgPool2d", "AvgPool1d"]


class LayerNorm(Layer):
    """Per-sample normalization over all non-batch axes.

    For input (N, ...) each sample is standardized over its own features
    and then scaled/shifted by learnable per-feature gain/bias of shape
    ``normalized_shape``.
    """

    def __init__(self, normalized_shape: int | tuple[int, ...], eps: float = 1e-5):
        super().__init__()
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(int(d) for d in normalized_shape)
        self.eps = float(eps)
        self.add_param("gamma", np.ones(self.normalized_shape))
        self.add_param("beta", np.zeros(self.normalized_shape))
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.shape[1:] != self.normalized_shape:
            raise ValueError(
                f"input feature shape {x.shape[1:]} != {self.normalized_shape}"
            )
        axes = tuple(range(1, x.ndim))
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        if training:
            self._cache = (x_hat, inv_std)
        return self.params["gamma"] * x_hat + self.params["beta"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x_hat, inv_std = self._cache
        axes = tuple(range(1, grad_out.ndim))
        m = int(np.prod(self.normalized_shape))
        self.grads["gamma"] += (grad_out * x_hat).sum(axis=0)
        self.grads["beta"] += grad_out.sum(axis=0)
        g = grad_out * self.params["gamma"]
        g_sum = g.sum(axis=axes, keepdims=True)
        gx_sum = (g * x_hat).sum(axis=axes, keepdims=True)
        return inv_std * (g - g_sum / m - x_hat * gx_sum / m)

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape})"


class AvgPool2d(Layer):
    """Average pooling with kernel == stride: (N, C, H, W) -> (N, C, H/k, W/k)."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = int(kernel_size)
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        k = self.kernel_size
        n, c, h, w = x.shape
        if h % k or w % k:
            raise ValueError(f"spatial dims ({h},{w}) not divisible by pool size {k}")
        if training:
            self._x_shape = x.shape
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        k = self.kernel_size
        n, c, h, w = self._x_shape
        grad = grad_out[:, :, :, None, :, None] / (k * k)
        return np.broadcast_to(
            grad, (n, c, h // k, k, w // k, k)
        ).reshape(n, c, h, w).copy()

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size})"


class AvgPool1d(Layer):
    """Average pooling with kernel == stride: (N, C, L) -> (N, C, L/k)."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = int(kernel_size)
        self._x_shape: tuple[int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        k = self.kernel_size
        n, c, length = x.shape
        if length % k:
            raise ValueError(f"sequence length {length} not divisible by {k}")
        if training:
            self._x_shape = x.shape
        return x.reshape(n, c, length // k, k).mean(axis=3)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        k = self.kernel_size
        n, c, length = self._x_shape
        grad = grad_out[:, :, :, None] / k
        return np.broadcast_to(grad, (n, c, length // k, k)).reshape(n, c, length).copy()

    def __repr__(self) -> str:
        return f"AvgPool1d(k={self.kernel_size})"
