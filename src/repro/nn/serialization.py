"""Model checkpoint serialization (.npz).

Checkpoints store the flat parameter vector plus a structural signature
(per-parameter shapes and names) so loading into a mismatched architecture
fails loudly instead of silently scrambling weights.
"""

from __future__ import annotations

import io
import os

import numpy as np

from repro.nn.model import Model

__all__ = ["save_model", "load_model", "model_signature"]


def model_signature(model: Model) -> list[str]:
    """Stable structural signature: '<LayerType>.<param>:<shape>' per leaf."""
    sig = []
    for layer, name in model._param_items():
        shape = "x".join(str(d) for d in layer.params[name].shape)
        sig.append(f"{type(layer).__name__}.{name}:{shape}")
    return sig


def save_model(model: Model, path: str | os.PathLike) -> None:
    """Write the model's parameters and signature to an .npz file."""
    np.savez_compressed(
        path,
        params=model.get_params(),
        signature=np.array(model_signature(model)),
    )


def load_model(model: Model, path: str | os.PathLike, strict: bool = True) -> Model:
    """Load parameters into ``model`` (in place), checking the signature.

    With ``strict`` (default) any structural mismatch raises ``ValueError``;
    otherwise only the total parameter count must match.
    """
    with np.load(path, allow_pickle=False) as archive:
        params = archive["params"]
        saved_sig = [str(s) for s in archive["signature"]]
    if strict:
        current = model_signature(model)
        if current != saved_sig:
            raise ValueError(
                "checkpoint structure mismatch:\n"
                f"  checkpoint: {saved_sig[:3]}... ({len(saved_sig)} entries)\n"
                f"  model:      {current[:3]}... ({len(current)} entries)"
            )
    if params.shape != (model.num_params,):
        raise ValueError(
            f"checkpoint has {params.shape[0]} params, model needs {model.num_params}"
        )
    model.set_params(params)
    return model
