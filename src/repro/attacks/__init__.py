"""Adversarial clients for evaluating the backdoor-detection group op.

The paper charges every group for backdoor detection (FLAME-style) but
never shows an attack; this module supplies the attacks so the defense can
be evaluated end to end: poisoned clients join the federation, train like
everyone else, and manipulate their updates (or their data) before upload.

* :class:`LabelFlipAttack` — data poisoning: train on permuted labels.
* :class:`SignFlipAttack` — model poisoning: upload −λ·(honest update).
* :class:`ScalingAttack` — model replacement: amplify the update to
  dominate the (weighted) average.
* :class:`TriggerBackdoorAttack` — classic backdoor: stamp a trigger
  patch on local samples and relabel them to the target class, so the
  global model misclassifies *triggered* inputs while clean accuracy
  stays high.

``poison_federation`` wraps selected clients of a FederatedDataset;
``attack_success_rate`` measures the backdoor's effect.
"""

from repro.attacks.attacks import (
    Attack,
    LabelFlipAttack,
    ScalingAttack,
    SignFlipAttack,
    TriggerBackdoorAttack,
    apply_trigger,
    attack_success_rate,
    poison_federation,
)

__all__ = [
    "Attack",
    "LabelFlipAttack",
    "SignFlipAttack",
    "ScalingAttack",
    "TriggerBackdoorAttack",
    "apply_trigger",
    "poison_federation",
    "attack_success_rate",
]
