"""Attack implementations and federation-poisoning helpers."""

from __future__ import annotations

import numpy as np

from repro.data.client_data import ClientDataset, FederatedDataset
from repro.nn.model import Model
from repro.rng import make_rng

__all__ = [
    "Attack",
    "LabelFlipAttack",
    "SignFlipAttack",
    "ScalingAttack",
    "TriggerBackdoorAttack",
    "apply_trigger",
    "poison_federation",
    "attack_success_rate",
]


class Attack:
    """An adversarial client behaviour.

    ``poison_data`` corrupts the local shard before training (data
    poisoning); ``transform_update`` manipulates the update before upload
    (model poisoning). Either may be an identity.
    """

    name = "attack"

    def poison_data(
        self, client: ClientDataset, num_classes: int,
        rng: np.random.Generator | int | None = None,
    ) -> ClientDataset:
        return client

    def transform_update(
        self, update: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        return update


class LabelFlipAttack(Attack):
    """Data poisoning: labels are cyclically shifted (y → y+1 mod m)."""

    name = "label_flip"

    def poison_data(self, client, num_classes, rng=None):
        flipped = (client.y + 1) % num_classes
        return ClientDataset(
            client_id=client.client_id,
            x=client.x,
            y=flipped,
            label_counts=np.bincount(flipped, minlength=num_classes),
        )


class SignFlipAttack(Attack):
    """Model poisoning: upload −λ × the honest update (gradient ascent)."""

    name = "sign_flip"

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = float(scale)

    def transform_update(self, update, rng=None):
        return -self.scale * update


class ScalingAttack(Attack):
    """Model replacement: amplify the update to dominate the average.

    With aggregation weight w, a γ ≈ 1/w amplification substitutes the
    attacker's model for the aggregate (Bagdasaryan et al., 2020).
    """

    name = "scaling"

    def __init__(self, gamma: float = 10.0):
        if gamma <= 1:
            raise ValueError(f"gamma must be > 1, got {gamma}")
        self.gamma = float(gamma)

    def transform_update(self, update, rng=None):
        return self.gamma * update


def apply_trigger(x: np.ndarray, value: float = 3.0, size: int = 2) -> np.ndarray:
    """Stamp a bright square trigger into the corner of image tensors.

    Works on (N, C, H, W) images; for other layouts the trailing axes'
    corner entries are set. Returns a copy.
    """
    x = np.array(x, copy=True)
    if x.ndim == 4:
        x[:, :, :size, :size] = value
    elif x.ndim == 3:
        x[:, :, :size] = value
    else:
        x[:, :size] = value
    return x


class TriggerBackdoorAttack(Attack):
    """Classic backdoor: triggered samples are relabeled to a target class.

    A ``poison_fraction`` of the attacker's shard gets the trigger patch
    and the target label; the attacker optionally scales its update so the
    backdoor survives averaging.
    """

    name = "trigger_backdoor"

    def __init__(
        self,
        target_class: int = 0,
        poison_fraction: float = 0.5,
        trigger_value: float = 3.0,
        boost: float = 1.0,
    ):
        if not 0.0 < poison_fraction <= 1.0:
            raise ValueError(f"poison_fraction must be in (0, 1], got {poison_fraction}")
        if boost <= 0:
            raise ValueError(f"boost must be positive, got {boost}")
        self.target_class = int(target_class)
        self.poison_fraction = float(poison_fraction)
        self.trigger_value = float(trigger_value)
        self.boost = float(boost)

    def poison_data(self, client, num_classes, rng=None):
        rng = make_rng(rng)
        n_poison = max(1, int(round(self.poison_fraction * client.n)))
        idx = rng.choice(client.n, size=n_poison, replace=False)
        x = np.array(client.x, copy=True)
        y = np.array(client.y, copy=True)
        x[idx] = apply_trigger(x[idx], value=self.trigger_value)
        y[idx] = self.target_class
        return ClientDataset(
            client_id=client.client_id,
            x=x,
            y=y,
            label_counts=np.bincount(y, minlength=num_classes),
        )

    def transform_update(self, update, rng=None):
        if self.boost == 1.0:
            return update
        return self.boost * update


def poison_federation(
    fed: FederatedDataset,
    attacker_ids: list[int],
    attack: Attack,
    rng: np.random.Generator | int | None = None,
) -> dict[int, Attack]:
    """Apply an attack's data poisoning to the chosen clients, in place.

    Returns ``{client_id: attack}`` — the update-transform map the trainer
    consumes (model-poisoning attacks act there even with clean data).
    """
    rng = make_rng(rng)
    for cid in attacker_ids:
        if not 0 <= cid < fed.num_clients:
            raise ValueError(f"attacker id {cid} out of range")
        fed.clients[cid] = attack.poison_data(
            fed.clients[cid], fed.num_classes, rng=rng.spawn(1)[0]
        )
    return {int(cid): attack for cid in attacker_ids}


def attack_success_rate(
    model: Model,
    test_x: np.ndarray,
    test_y: np.ndarray,
    target_class: int,
    trigger_value: float = 3.0,
) -> float:
    """Fraction of triggered non-target test samples classified as target."""
    mask = test_y != target_class
    if not mask.any():
        return 0.0
    triggered = apply_trigger(test_x[mask], value=trigger_value)
    preds = model.predict(triggered)
    return float((preds == target_class).mean())
