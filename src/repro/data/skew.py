"""Additional non-IID partition generators.

The paper's experiments use Dirichlet label skew; these alternatives make
the library usable for the broader non-IID literature and stress grouping
under different heterogeneity shapes:

* :func:`shard_partition` — McMahan et al.'s pathological split: sort by
  label, cut into contiguous shards, deal ``shards_per_client`` to each
  client (every client sees at most that many classes).
* :func:`quantity_skew_partition` — identical label distributions but
  power-law data amounts (pure γ-stress: ζ_g ≈ 0, γ ≫ 1).
"""

from __future__ import annotations

import numpy as np

from repro.rng import make_rng

__all__ = ["shard_partition", "quantity_skew_partition"]


def shard_partition(
    labels: np.ndarray,
    num_clients: int,
    shards_per_client: int = 2,
    rng: np.random.Generator | int | None = None,
) -> list[np.ndarray]:
    """Pathological label-sorted shard split (FedAvg paper, §3).

    Produces ``num_clients × shards_per_client`` equal shards of the
    label-sorted index list and deals ``shards_per_client`` random shards
    to each client, so each client holds data from very few classes.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if num_clients < 1 or shards_per_client < 1:
        raise ValueError("num_clients and shards_per_client must be >= 1")
    total_shards = num_clients * shards_per_client
    if total_shards > labels.size:
        raise ValueError(
            f"{total_shards} shards requested but only {labels.size} samples"
        )
    rng = make_rng(rng)
    order = np.argsort(labels, kind="stable")
    shards = np.array_split(order, total_shards)
    shard_ids = rng.permutation(total_shards)
    out = []
    for c in range(num_clients):
        ids = shard_ids[c * shards_per_client : (c + 1) * shards_per_client]
        shard = np.concatenate([shards[i] for i in ids])
        rng.shuffle(shard)
        out.append(shard)
    return out


def quantity_skew_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float = 1.5,
    min_samples: int = 5,
    rng: np.random.Generator | int | None = None,
) -> list[np.ndarray]:
    """IID labels per client, power-law (Pareto-ish) data amounts.

    Client sizes follow ``x ~ Pareto(alpha)`` normalized to consume the
    whole dataset; each client then receives a uniformly random (hence
    label-IID) subset of its size. Stresses γ (Eq. 11) in isolation.
    """
    labels = np.asarray(labels)
    n = labels.size
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    if min_samples * num_clients > n:
        raise ValueError(
            f"cannot give {num_clients} clients ≥{min_samples} samples from {n}"
        )
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = make_rng(rng)
    raw = rng.pareto(alpha, size=num_clients) + 1.0
    budget = n - min_samples * num_clients
    extra = np.floor(raw / raw.sum() * budget).astype(np.int64)
    sizes = min_samples + extra
    # Distribute the rounding remainder to the largest clients.
    remainder = n - int(sizes.sum())
    if remainder > 0:
        top = np.argsort(-sizes)[:remainder]
        sizes[top] += 1
    order = rng.permutation(n)
    out = []
    offset = 0
    for s in sizes:
        out.append(order[offset : offset + int(s)])
        offset += int(s)
    return out
