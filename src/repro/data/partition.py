"""Non-IID federated partitioning (Dirichlet label skew, Hsu et al. 2019).

The paper's setup (§7.2): data split across 300 clients with 20–200 samples
each (normal distribution), per-client label mix drawn from Dirichlet(α) —
smaller α means more skewed clients. This module produces index partitions
plus the label matrix ``L`` (clients × classes) that every grouping
algorithm consumes (grouping never sees raw data — §5.1).
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.rng import make_rng

__all__ = [
    "normal_client_sizes",
    "dirichlet_partition",
    "label_matrix",
    "partition_dataset",
]


def normal_client_sizes(
    num_clients: int,
    low: int = 20,
    high: int = 200,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Per-client sample counts ~ Normal centered on [low, high], clipped.

    Matches the paper's "20 to 200 (normal distribution)" client sizes:
    mean at the midpoint, std chosen so ±2σ spans the range.
    """
    if num_clients <= 0:
        raise ValueError(f"num_clients must be positive, got {num_clients}")
    if not 0 < low <= high:
        raise ValueError(f"invalid size range [{low}, {high}]")
    rng = make_rng(rng)
    mean = (low + high) / 2.0
    std = (high - low) / 4.0
    sizes = rng.normal(mean, std, size=num_clients)
    return np.clip(np.rint(sizes), low, high).astype(np.int64)


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float,
    client_sizes: np.ndarray | None = None,
    num_classes: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> list[np.ndarray]:
    """Partition sample indices into non-IID client shards.

    Each client draws a label distribution ``q_i ~ Dirichlet(α·1_m)`` and
    fills its quota by sampling labels from ``q_i``, taking actual sample
    indices from per-class pools. When a desired class pool runs dry the
    draw falls back to the remaining classes (renormalized), so client
    sizes are met exactly as long as enough samples exist overall.

    Returns a list of index arrays, one per client (disjoint).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = make_rng(rng)
    m = int(num_classes if num_classes is not None else labels.max() + 1)
    if client_sizes is None:
        base = labels.size // num_clients
        client_sizes = np.full(num_clients, base, dtype=np.int64)
    client_sizes = np.asarray(client_sizes, dtype=np.int64)
    if client_sizes.shape != (num_clients,):
        raise ValueError(
            f"client_sizes shape {client_sizes.shape} != ({num_clients},)"
        )
    total_needed = int(client_sizes.sum())
    if total_needed > labels.size:
        raise ValueError(
            f"clients need {total_needed} samples but dataset has {labels.size}"
        )

    # Shuffled per-class index pools, consumed from the tail (O(1) pops).
    pools: list[list[int]] = []
    for c in range(m):
        idx = np.flatnonzero(labels == c)
        rng.shuffle(idx)
        pools.append(list(idx))

    shards: list[np.ndarray] = []
    for i in range(num_clients):
        size = int(client_sizes[i])
        proportions = rng.dirichlet(np.full(m, alpha))
        # Draw the client's label multiset in one multinomial, then repair
        # class-by-class against pool availability.
        want = rng.multinomial(size, proportions)
        take = np.minimum(want, [len(p) for p in pools])
        shortfall = size - int(take.sum())
        if shortfall > 0:
            avail = np.array([len(p) for p in pools]) - take
            # Refill from classes with leftovers, weighted by availability.
            while shortfall > 0:
                total_avail = avail.sum()
                if total_avail <= 0:
                    raise RuntimeError("exhausted all class pools (should not happen)")
                probs = avail / total_avail
                extra = rng.multinomial(shortfall, probs)
                extra = np.minimum(extra, avail)
                take += extra
                avail -= extra
                shortfall = size - int(take.sum())
        chosen: list[int] = []
        for c in range(m):
            k = int(take[c])
            if k:
                chosen.extend(pools[c][-k:])
                del pools[c][-k:]
        shard = np.array(chosen, dtype=np.int64)
        rng.shuffle(shard)
        shards.append(shard)
    return shards


def label_matrix(
    shards: list[np.ndarray], labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """The paper's matrix ``L``: ``L[i, j]`` = #samples of class j on client i."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((len(shards), num_classes), dtype=np.int64)
    for i, shard in enumerate(shards):
        out[i] = np.bincount(labels[shard], minlength=num_classes)
    return out


def partition_dataset(
    dataset: ArrayDataset,
    num_clients: int,
    alpha: float,
    size_low: int = 20,
    size_high: int = 200,
    rng: np.random.Generator | int | None = None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """One-call paper setup: normal sizes + Dirichlet skew.

    Returns (shards, label_matrix).
    """
    rng = make_rng(rng)
    sizes = normal_client_sizes(num_clients, size_low, size_high, rng)
    # Scale sizes down proportionally if the dataset is too small (keeps the
    # relative dispersion that γ depends on).
    total = int(sizes.sum())
    if total > len(dataset):
        scale = len(dataset) / total
        sizes = np.maximum(1, np.floor(sizes * scale)).astype(np.int64)
    shards = dirichlet_partition(
        dataset.y, num_clients, alpha, client_sizes=sizes,
        num_classes=dataset.num_classes, rng=rng,
    )
    return shards, label_matrix(shards, dataset.y, dataset.num_classes)
