"""Synthetic classification datasets standing in for CIFAR-10 / SpeechCommands.

Each dataset draws per-class prototypes and emits samples as
``prototype + noise`` with controllable signal-to-noise, so task difficulty
is tunable and a correctly implemented FL loop visibly climbs in accuracy.
Inputs are standardized to zero mean / unit variance globally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rng import make_rng

__all__ = ["ArrayDataset", "SyntheticImage", "SyntheticAudio", "make_dataset"]


@dataclass
class ArrayDataset:
    """An in-memory classification dataset.

    Attributes
    ----------
    x : features, first axis is the sample axis.
    y : int64 labels in ``[0, num_classes)``.
    num_classes : label cardinality ``m``.
    name : registry name for reporting.
    """

    x: np.ndarray
    y: np.ndarray
    num_classes: int
    name: str = "array"

    def __post_init__(self) -> None:
        self.x = np.ascontiguousarray(self.x, dtype=np.float64)
        self.y = np.ascontiguousarray(self.y, dtype=np.int64)
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"feature/label length mismatch: {self.x.shape[0]} vs {self.y.shape[0]}"
            )
        if self.y.size and (self.y.min() < 0 or self.y.max() >= self.num_classes):
            raise ValueError("labels outside [0, num_classes)")

    def __len__(self) -> int:
        return self.x.shape[0]

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """A new dataset containing only ``indices`` (copies, keeps layout)."""
        idx = np.asarray(indices, dtype=np.int64)
        return ArrayDataset(self.x[idx], self.y[idx], self.num_classes, self.name)

    @property
    def feature_shape(self) -> tuple[int, ...]:
        return self.x.shape[1:]

    def class_counts(self) -> np.ndarray:
        """Label histogram of length ``num_classes``."""
        return np.bincount(self.y, minlength=self.num_classes)


def _prototype_samples(
    rng: np.random.Generator,
    labels: np.ndarray,
    prototypes: np.ndarray,
    noise_std: float,
) -> np.ndarray:
    """x_i = prototypes[y_i] + N(0, noise_std²); standardized globally."""
    x = prototypes[labels] + rng.normal(0.0, noise_std, size=(labels.size, *prototypes.shape[1:]))
    x -= x.mean()
    std = x.std()
    if std > 0:
        x /= std
    return x


def _balanced_labels(rng: np.random.Generator, n: int, m: int) -> np.ndarray:
    """n labels covering m classes as evenly as possible, shuffled."""
    reps = int(np.ceil(n / m))
    labels = np.tile(np.arange(m), reps)[:n]
    rng.shuffle(labels)
    return labels


class SyntheticImage:
    """CIFAR-10 stand-in: ``m``-class image tensors ``(C, H, W)``.

    Parameters
    ----------
    num_classes / channels / image_size:
        Default 10 classes of 3×8×8 images (a scaled-down CIFAR geometry).
    noise_std:
        Sample noise around the class prototype; larger = harder task.
    """

    def __init__(
        self,
        num_classes: int = 10,
        channels: int = 3,
        image_size: int = 8,
        noise_std: float = 1.0,
        seed: int | np.random.Generator | None = 0,
    ):
        self.num_classes = num_classes
        self.channels = channels
        self.image_size = image_size
        self.noise_std = float(noise_std)
        rng = make_rng(seed)
        self._proto_rng = rng
        self.prototypes = rng.normal(
            0.0, 1.0, size=(num_classes, channels, image_size, image_size)
        )

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> ArrayDataset:
        """Draw ``n`` class-balanced samples."""
        rng = make_rng(self._proto_rng if rng is None else rng)
        labels = _balanced_labels(rng, n, self.num_classes)
        x = _prototype_samples(rng, labels, self.prototypes, self.noise_std)
        return ArrayDataset(x, labels, self.num_classes, name="synthetic_image")

    def train_test(
        self, n_train: int, n_test: int, rng: np.random.Generator | int | None = None
    ) -> tuple[ArrayDataset, ArrayDataset]:
        """Independent train/test splits from the same prototypes."""
        rng = make_rng(self._proto_rng if rng is None else rng)
        return self.sample(n_train, rng), self.sample(n_test, rng)


class SyntheticAudio:
    """Speech-Commands stand-in: ``m``-class feature sequences ``(C, L)``.

    Prototypes are smooth (cumulative-sum filtered) sequences and each sample
    receives a small random circular time shift — the invariance a 1-D CNN
    exploits — plus additive noise.
    """

    def __init__(
        self,
        num_classes: int = 35,
        channels: int = 8,
        seq_len: int = 16,
        noise_std: float = 1.0,
        max_shift: int = 2,
        seed: int | np.random.Generator | None = 0,
    ):
        self.num_classes = num_classes
        self.channels = channels
        self.seq_len = seq_len
        self.noise_std = float(noise_std)
        self.max_shift = int(max_shift)
        rng = make_rng(seed)
        self._proto_rng = rng
        raw = rng.normal(0.0, 1.0, size=(num_classes, channels, seq_len))
        # Smooth along time so shifts change samples gradually.
        kernel = np.ones(3) / 3.0
        smooth = np.apply_along_axis(lambda s: np.convolve(s, kernel, mode="same"), 2, raw)
        self.prototypes = smooth / smooth.std()

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> ArrayDataset:
        """Draw ``n`` class-balanced samples with random time shifts."""
        rng = make_rng(self._proto_rng if rng is None else rng)
        labels = _balanced_labels(rng, n, self.num_classes)
        base = self.prototypes[labels]
        if self.max_shift > 0:
            shifts = rng.integers(-self.max_shift, self.max_shift + 1, size=n)
            cols = (np.arange(self.seq_len)[None, :] - shifts[:, None]) % self.seq_len
            base = np.take_along_axis(base, cols[:, None, :], axis=2)
        x = base + rng.normal(0.0, self.noise_std, size=base.shape)
        x -= x.mean()
        std = x.std()
        if std > 0:
            x /= std
        return ArrayDataset(x, labels, self.num_classes, name="synthetic_audio")

    def train_test(
        self, n_train: int, n_test: int, rng: np.random.Generator | int | None = None
    ) -> tuple[ArrayDataset, ArrayDataset]:
        """Independent train/test splits from the same prototypes."""
        rng = make_rng(self._proto_rng if rng is None else rng)
        return self.sample(n_train, rng), self.sample(n_test, rng)


def make_dataset(name: str, **kwargs) -> SyntheticImage | SyntheticAudio:
    """Dataset registry: ``synthetic_image`` (CIFAR-like) or ``synthetic_audio``."""
    registry = {"synthetic_image": SyntheticImage, "synthetic_audio": SyntheticAudio}
    try:
        cls = registry[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(registry)}") from None
    return cls(**kwargs)
