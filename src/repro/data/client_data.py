"""Per-client dataset containers and the federated dataset bundle."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.data.partition import label_matrix, partition_dataset
from repro.rng import make_rng, spawn_many

__all__ = ["ClientDataset", "FederatedDataset"]


@dataclass
class ClientDataset:
    """One client's local shard plus its label statistics.

    ``label_counts`` is the client's row of the label matrix L — the only
    information grouping algorithms are allowed to see (§5.1: "without any
    information of their local data, model, nor gradient").
    """

    client_id: int
    x: np.ndarray
    y: np.ndarray
    label_counts: np.ndarray

    @property
    def n(self) -> int:
        """Number of local samples (the paper's n_i)."""
        return self.x.shape[0]

    def batches(
        self, batch_size: int, rng: np.random.Generator | int | None = None
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Shuffled minibatches covering the shard once."""
        rng = make_rng(rng)
        order = rng.permutation(self.n)
        for start in range(0, self.n, batch_size):
            idx = order[start : start + batch_size]
            yield self.x[idx], self.y[idx]

    def sample_batch(
        self, batch_size: int, rng: np.random.Generator | int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """One random minibatch ξ (with replacement if shard is smaller)."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        rng = make_rng(rng)
        replace = self.n < batch_size
        idx = rng.choice(self.n, size=min(batch_size, self.n) if not replace else batch_size,
                         replace=replace)
        return self.x[idx], self.y[idx]


class FederatedDataset:
    """The full federated learning data bundle.

    Holds the global train/test arrays, the per-client shards, and the label
    matrix L. Built either from explicit shards or via the one-call paper
    setup (:meth:`from_dataset`).
    """

    def __init__(
        self,
        train: ArrayDataset,
        test: ArrayDataset,
        shards: list[np.ndarray],
    ):
        self.train = train
        self.test = test
        self.shards = [np.asarray(s, dtype=np.int64) for s in shards]
        self.num_classes = train.num_classes
        self.L = label_matrix(self.shards, train.y, train.num_classes)
        self.clients = [
            ClientDataset(
                client_id=i,
                x=train.x[shard],
                y=train.y[shard],
                label_counts=self.L[i],
            )
            for i, shard in enumerate(self.shards)
        ]

    @classmethod
    def from_dataset(
        cls,
        train: ArrayDataset,
        test: ArrayDataset,
        num_clients: int,
        alpha: float,
        size_low: int = 20,
        size_high: int = 200,
        rng: np.random.Generator | int | None = None,
    ) -> "FederatedDataset":
        """Paper setup: normal client sizes + Dirichlet(α) label skew."""
        shards, _ = partition_dataset(
            train, num_clients, alpha, size_low=size_low, size_high=size_high, rng=rng
        )
        return cls(train, test, shards)

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    def client_sizes(self) -> np.ndarray:
        """n_i for every client."""
        return np.array([c.n for c in self.clients], dtype=np.int64)

    def client_size(self, client_id: int) -> int:
        """One client's n_i (representation-agnostic accessor — the
        population engine uses this on either this class or a
        :class:`repro.population.ColumnarPopulation`)."""
        return self.clients[client_id].n

    def client_labels(self, client_id: int) -> np.ndarray:
        """One client's mutable label vector (label drift writes through
        it; the columnar store exposes the same accessor as a view)."""
        return self.clients[client_id].y

    def client_features(self, client_id: int) -> np.ndarray:
        """One client's mutable feature array (test-time corruption writes
        through it; the columnar store exposes the same accessor as a
        view)."""
        return self.clients[client_id].x

    def snapshot_shards(self, include_features: bool = False) -> dict:
        """Copy the mutable per-client data (labels + L, optionally
        features) so a sweep can restore pristine shards between methods.

        The object path's per-client ``x``/``y`` are fancy-index *copies*
        of the train arrays, so snapshotting the clients covers every
        array a population dynamic mutates.
        """
        snap: dict = {
            "L": self.L.copy(),
            "y": [c.y.copy() for c in self.clients],
        }
        if include_features:
            snap["x"] = [c.x.copy() for c in self.clients]
        return snap

    def restore_shards(self, snapshot: dict) -> None:
        """Write a :meth:`snapshot_shards` copy back **in place** — through
        ``np.copyto``, never rebinding, so every live view (each client's
        ``label_counts`` aliases its L row) stays valid."""
        np.copyto(self.L, snapshot["L"])
        for client, y in zip(self.clients, snapshot["y"]):
            np.copyto(client.y, y)
        for client, x in zip(self.clients, snapshot.get("x", ())):
            np.copyto(client.x, x)

    def to_columnar(self, seed: int = 0):
        """Snapshot into a :class:`repro.population.ColumnarPopulation`.

        One re-layout copy here (per-client samples made contiguous, in
        shard order, so values match ``self.clients`` exactly); after
        that, materializing any client is a zero-copy view. The store is
        independent of this dataset — drift in one never leaks into the
        other.
        """
        from repro.population.store import ColumnarPopulation

        return ColumnarPopulation.from_federated(self, seed=seed)

    @property
    def total_samples(self) -> int:
        """The paper's n = Σ n_i."""
        return int(self.client_sizes().sum())

    def global_label_distribution(self) -> np.ndarray:
        """Fraction of each label across all client shards."""
        totals = self.L.sum(axis=0).astype(np.float64)
        s = totals.sum()
        return totals / s if s > 0 else totals
