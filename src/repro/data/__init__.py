"""Datasets and federated partitioning.

The environment is offline, so CIFAR-10 and Speech Commands are replaced by
synthetic class-prototype datasets that keep exactly what the paper's
algorithms react to: label cardinality (10 vs 35 classes), input modality
(2-D image tensor vs 1-D feature sequence), and Dirichlet label skew across
clients with normally distributed per-client data counts (20–200).
"""

from repro.data.datasets import (
    ArrayDataset,
    SyntheticAudio,
    SyntheticImage,
    make_dataset,
)
from repro.data.partition import (
    dirichlet_partition,
    label_matrix,
    normal_client_sizes,
    partition_dataset,
)
from repro.data.client_data import ClientDataset, FederatedDataset
from repro.data.skew import quantity_skew_partition, shard_partition

__all__ = [
    "ArrayDataset",
    "SyntheticImage",
    "SyntheticAudio",
    "make_dataset",
    "dirichlet_partition",
    "normal_client_sizes",
    "label_matrix",
    "partition_dataset",
    "ClientDataset",
    "FederatedDataset",
    "shard_partition",
    "quantity_skew_partition",
]
