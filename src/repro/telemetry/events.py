"""Telemetry event bus.

Events are timestamped, named records with free-form fields
(``train_start``, ``round_end``, ...). The bus both *stores* every emitted
event — so the JSONL exporter can replay the run — and *notifies*
subscribers synchronously, a lightweight seam for live monitors and tests.

The bus is only ever constructed by an enabled :class:`~repro.telemetry.
Telemetry`; the disabled facade never allocates one, keeping the no-op
fast path free of any event machinery.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "EventBus"]


@dataclass
class Event:
    """One emitted event: a name, a wall-clock timestamp, and fields.

    Wall-clock time (``time.time``) rather than the monotonic span clock so
    events from different processes can be aligned after a merge.
    """

    name: str
    t: float
    fields: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Flat dict form used by the JSONL exporter."""
        return {"name": self.name, "t": self.t, "fields": dict(self.fields)}


class EventBus:
    """Thread-safe store-and-notify event channel.

    Parameters
    ----------
    clock:
        Timestamp source; injectable for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.time):
        self._clock = clock
        self._lock = threading.Lock()
        self._events: list[Event] = []
        self._subscribers: list[Callable[[Event], None]] = []

    def subscribe(self, fn: Callable[[Event], None]) -> None:
        """Register ``fn`` to be called synchronously on every emit."""
        with self._lock:
            self._subscribers.append(fn)

    def emit(self, name: str, **fields) -> Event:
        """Record an event and notify subscribers; returns the event."""
        event = Event(name=name, t=self._clock(), fields=fields)
        with self._lock:
            self._events.append(event)
            subscribers = list(self._subscribers)
        for fn in subscribers:
            fn(event)
        return event

    def events(self) -> list[Event]:
        """All events emitted so far, in emission order."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
