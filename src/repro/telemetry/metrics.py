"""Counters, gauges, and histograms for run-level quantities.

The instruments record the quantities the paper's cost analysis cares
about — bytes aggregated, parameters averaged, clients dropped/flagged,
sampled-group inclusion probabilities, per-round Γ_p, cost-ledger deltas —
without prescribing any particular backend. Each instrument is
individually lock-protected so worker threads can update them while the
main thread reads.

Semantics follow the usual conventions:

* :class:`Counter` — monotone non-decreasing accumulator.
* :class:`Gauge` — last-write-wins current value.
* :class:`Histogram` — full sample record with summary statistics
  (runs here are short enough that keeping raw observations is cheap and
  buys exact percentiles).
"""

from __future__ import annotations

import math
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing accumulator."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        with self._lock:
            self.value += float(amount)


class Gauge:
    """Last-write-wins current value (NaN until first set)."""

    def __init__(self, name: str):
        self.name = name
        self.value = math.nan
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Record of observations with exact summary statistics."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    def values(self) -> list[float]:
        with self._lock:
            return list(self._values)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._values)

    @property
    def total(self) -> float:
        with self._lock:
            return float(sum(self._values))

    @property
    def min(self) -> float:
        with self._lock:
            return min(self._values) if self._values else math.nan

    @property
    def max(self) -> float:
        with self._lock:
            return max(self._values) if self._values else math.nan

    @property
    def mean(self) -> float:
        with self._lock:
            if not self._values:
                return math.nan
            return sum(self._values) / len(self._values)

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (nearest-rank), q in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            if not self._values:
                return math.nan
            ordered = sorted(self._values)
            rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
            return ordered[rank]

    def stats(self) -> dict:
        """Summary dict used by the exporters."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create registry; one namespace shared by all instruments.

    A name is bound to its first-used kind — asking for ``counter("x")``
    after ``gauge("x")`` is a programming error and raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind: type):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = kind(name)
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def counters(self) -> dict[str, float]:
        with self._lock:
            items = list(self._instruments.items())
        return {n: i.value for n, i in items if isinstance(i, Counter)}

    def gauges(self) -> dict[str, float]:
        with self._lock:
            items = list(self._instruments.items())
        return {n: i.value for n, i in items if isinstance(i, Gauge)}

    def histograms(self) -> dict[str, Histogram]:
        with self._lock:
            items = list(self._instruments.items())
        return {n: i for n, i in items if isinstance(i, Histogram)}

    def snapshot(self) -> dict:
        """Plain-data view of every instrument (for exports and merging)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                name: {"values": hist.values(), **hist.stats()}
                for name, hist in self.histograms().items()
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add, histograms extend, gauges take the incoming value —
        the per-worker registries of a process backend merge in submission
        order, so "last write wins" is deterministic.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            for value in data.get("values", []):
                hist.observe(value)
