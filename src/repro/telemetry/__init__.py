"""Structured tracing, metrics, and profiling for Group-FEL runs.

The observability substrate for every run: nestable wall-clock spans
(``round > group > client_update / secagg / backdoor / aggregate``),
counters/gauges/histograms for the quantities the paper's cost model and
sampling theory care about (bytes aggregated, clients dropped, sampled
inclusion probabilities, Γ_p, cost-ledger deltas), a subscribe-able event
bus, and exporters (JSONL trace, CSV summary, Prometheus text, ASCII
summary table).

Quick tour
----------
>>> from repro.telemetry import Telemetry
>>> tel = Telemetry(label="demo")
>>> with tel.span("round", index=0):
...     with tel.span("group", group_id=3):
...         tel.inc("bytes_aggregated", 1024)
>>> print(tel.summary())                           # doctest: +SKIP

Enable it for a training run either explicitly::

    trainer = GroupFELTrainer(..., telemetry=tel)

or ambiently (how the CLI's ``--telemetry out.jsonl`` flag works)::

    with activated(tel):
        run_method("group_fel", workload)
    tel.to_jsonl("out.jsonl")

With no telemetry passed or activated, every instrumentation point
resolves to :data:`NULL_TELEMETRY`, whose operations are constant-time
no-ops — results are bit-identical and overhead is below the noise floor.
"""

from repro.telemetry.events import Event, EventBus
from repro.telemetry.exporters import (
    load_jsonl,
    parse_prometheus,
    summary,
    to_csv,
    to_jsonl,
    to_prometheus,
)
from repro.telemetry.facade import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    activated,
    get_active,
    resolve,
    set_active,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.tracing import Span, Tracer

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "activated",
    "get_active",
    "set_active",
    "resolve",
    "Span",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Event",
    "EventBus",
    "to_jsonl",
    "load_jsonl",
    "to_csv",
    "to_prometheus",
    "parse_prometheus",
    "summary",
]
