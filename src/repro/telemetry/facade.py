"""The `Telemetry` facade and the process-wide active instance.

One object bundles the three collectors (tracer, metrics, event bus) plus
the exporters, and is what gets threaded through the trainer stack. Two
resolution paths exist:

* **Explicit** — pass ``telemetry=`` to ``GroupFELTrainer`` (and friends).
* **Ambient** — ``with activated(tel): ...`` installs a process-wide
  default picked up by any component constructed inside the block. This is
  how ``python -m repro.experiments <fig> --telemetry out.jsonl`` reaches
  the trainers buried inside figure generators without changing their
  signatures.

When nothing is installed, :data:`NULL_TELEMETRY` is active: a singleton
whose every operation is a constant-time no-op (``span`` returns one shared
null context manager; the metric/event methods are empty). Instrumented
hot paths therefore cost an attribute lookup and a call when telemetry is
off — the benchmark suite holds this under 3% of a training run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import Callable

from repro.telemetry.events import Event, EventBus
from repro.telemetry.exporters import (
    summary as _summary,
    to_csv as _to_csv,
    to_jsonl as _to_jsonl,
    to_prometheus as _to_prometheus,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Span, Tracer

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "get_active",
    "set_active",
    "activated",
    "resolve",
]


class Telemetry:
    """Facade over tracing + metrics + events for one run (or many).

    Parameters
    ----------
    label:
        Free-form run label, included in exports.
    clock:
        Monotonic clock for span durations; injectable for tests.
    """

    enabled: bool = True

    def __init__(self, label: str = "run", clock: Callable[[], float] = time.perf_counter):
        self.label = label
        self.tracer = Tracer(clock=clock)
        self.metrics = MetricsRegistry()
        self.events = EventBus()
        #: free-form run metadata included in the JSONL ``meta`` record
        self.meta: dict = {}

    # -------------------------------------------------------------- tracing
    def span(self, name: str, parent_id: int | None = None, **attrs):
        """Context manager timing a region; nests via the thread-local stack."""
        return self.tracer.span(name, parent_id=parent_id, **attrs)

    def current_span_id(self) -> int | None:
        return self.tracer.current_span_id()

    def ingest_spans(
        self, spans: list[Span], parent_id: int | None = None
    ) -> list[Span]:
        """Merge spans from a worker-process tracer (see ``Tracer.ingest``)."""
        return self.tracer.ingest(spans, parent_id=parent_id)

    # -------------------------------------------------------------- metrics
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    # --------------------------------------------------------------- events
    def event(self, name: str, **fields) -> Event | None:
        return self.events.emit(name, **fields)

    # -------------------------------------------------------------- exports
    def to_jsonl(self, path: str) -> int:
        return _to_jsonl(self, path)

    def to_csv(self, path: str) -> int:
        return _to_csv(self, path)

    def to_prometheus(self) -> str:
        return _to_prometheus(self)

    def summary(self) -> str:
        return _summary(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Telemetry(label={self.label!r}, spans={len(self.tracer)}, "
            f"events={len(self.events)})"
        )


#: Shared reusable no-op context manager (``nullcontext`` is reentrant).
_NULL_SPAN = nullcontext()


class NullTelemetry(Telemetry):
    """Disabled telemetry: every operation is a constant-time no-op.

    Allocates no collectors; exports raise, because there is nothing to
    export (callers gate on ``telemetry.enabled``).
    """

    enabled = False

    def __init__(self):
        self.label = "disabled"
        self.meta = {}

    def span(self, name: str, parent_id: int | None = None, **attrs):
        return _NULL_SPAN

    def current_span_id(self) -> None:
        return None

    def ingest_spans(self, spans, parent_id=None) -> list:
        return []

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def event(self, name: str, **fields) -> None:
        return None

    def _disabled(self) -> RuntimeError:
        return RuntimeError(
            "telemetry is disabled; construct a Telemetry() and pass it to "
            "the trainer (or use repro.telemetry.activated)"
        )

    def to_jsonl(self, path: str) -> int:
        raise self._disabled()

    def to_csv(self, path: str) -> int:
        raise self._disabled()

    def to_prometheus(self) -> str:
        raise self._disabled()

    def summary(self) -> str:
        return "(telemetry disabled)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullTelemetry()"


NULL_TELEMETRY = NullTelemetry()

_active: Telemetry = NULL_TELEMETRY


def get_active() -> Telemetry:
    """The ambient telemetry (``NULL_TELEMETRY`` unless one is installed)."""
    return _active


def set_active(telemetry: Telemetry | None) -> Telemetry:
    """Install ``telemetry`` (None → disabled) ambiently; returns the previous."""
    global _active
    previous = _active
    _active = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


@contextmanager
def activated(telemetry: Telemetry):
    """Install ``telemetry`` ambiently for the duration of the block."""
    previous = set_active(telemetry)
    try:
        yield telemetry
    finally:
        set_active(previous)


def resolve(telemetry: Telemetry | None) -> Telemetry:
    """Explicit instance if given, else the ambient one (never None)."""
    return telemetry if telemetry is not None else _active
