"""Nestable wall-clock spans with a thread-safe collector.

A *span* measures one timed region (``round``, ``group``, ``client_update``,
``secagg``, ``backdoor``, ``aggregate``). Spans nest: the tracer keeps a
per-thread stack so a span opened while another is active becomes its
child, giving the trainer's ``round > group > client_update`` hierarchy for
free on the serial path.

Two parallel-execution concerns are handled explicitly:

* **Thread backend** — worker threads have their own (empty) span stacks,
  so a span opened on a worker cannot see the main thread's ``round`` span.
  Callers pass ``parent_id`` explicitly to stitch the cross-thread edge;
  the finished-span list is lock-protected.
* **Process backend** — workers cannot share a tracer at all. A worker
  records into its own tracer and ships the finished spans back (spans are
  plain picklable dataclasses); :meth:`Tracer.ingest` merges them into the
  parent trace, re-assigning span ids to avoid collisions while preserving
  the worker-internal parent structure.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One finished (or in-flight) timed region."""

    span_id: int
    parent_id: int | None
    name: str
    t_start: float
    t_end: float = 0.0
    attrs: dict = field(default_factory=dict)
    thread: str = ""

    @property
    def duration(self) -> float:
        """Elapsed seconds (0 while the span is still open)."""
        return max(self.t_end - self.t_start, 0.0) if self.t_end else 0.0

    def as_dict(self) -> dict:
        """Flat dict form used by the JSONL exporter."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration": self.duration,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects spans from any number of threads (and merged processes).

    Parameters
    ----------
    clock:
        Monotonic time source (default ``time.perf_counter``); injectable
        for deterministic duration tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._finished: list[Span] = []
        self._next_id = 1
        self._tls = threading.local()

    # ------------------------------------------------------------- recording
    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _allocate_ids(self, count: int) -> int:
        """Reserve ``count`` consecutive span ids; returns the first."""
        with self._lock:
            first = self._next_id
            self._next_id += count
        return first

    def current_span_id(self) -> int | None:
        """Id of the innermost open span on *this* thread, if any."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    @contextmanager
    def span(self, name: str, parent_id: int | None = None, **attrs):
        """Open a span; closes (and records) it when the block exits.

        ``parent_id`` overrides the thread-local nesting — pass the parent's
        id when the span runs on a different thread than its parent.
        """
        stack = self._stack()
        if parent_id is None and stack:
            parent_id = stack[-1].span_id
        span = Span(
            span_id=self._allocate_ids(1),
            parent_id=parent_id,
            name=name,
            t_start=self._clock(),
            attrs=attrs,
            thread=threading.current_thread().name,
        )
        stack.append(span)
        try:
            yield span
        finally:
            span.t_end = self._clock()
            stack.pop()
            with self._lock:
                self._finished.append(span)

    def ingest(
        self, spans: Iterable[Span], parent_id: int | None = None
    ) -> list[Span]:
        """Merge spans recorded by another tracer (a process-pool worker).

        Ids are re-assigned from this tracer's counter so merged spans never
        collide with local ones; parent links *within* the ingested batch
        are remapped, and batch roots are attached under ``parent_id``.
        Returns the re-identified spans as stored.
        """
        spans = list(spans)
        if not spans:
            return []
        first = self._allocate_ids(len(spans))
        mapping = {
            span.span_id: first + offset for offset, span in enumerate(spans)
        }
        merged = [
            replace(
                span,
                span_id=mapping[span.span_id],
                parent_id=mapping.get(span.parent_id, parent_id),
                attrs=dict(span.attrs),
            )
            for span in spans
        ]
        with self._lock:
            self._finished.extend(merged)
        return merged

    # --------------------------------------------------------------- queries
    def spans(self) -> list[Span]:
        """All finished spans, ordered by start time."""
        with self._lock:
            return sorted(self._finished, key=lambda s: (s.t_start, s.span_id))

    def roots(self) -> list[Span]:
        """Finished spans with no recorded parent."""
        known = {s.span_id for s in self.spans()}
        return [s for s in self.spans() if s.parent_id not in known]

    def children(self, span_id: int) -> list[Span]:
        """Finished direct children of ``span_id``, ordered by start time."""
        return [s for s in self.spans() if s.parent_id == span_id]

    def totals_by_name(self) -> dict[str, tuple[int, float]]:
        """``name -> (count, total seconds)`` aggregate over all spans."""
        totals: dict[str, tuple[int, float]] = {}
        for span in self.spans():
            count, total = totals.get(span.name, (0, 0.0))
            totals[span.name] = (count + 1, total + span.duration)
        return totals

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)
