"""Exporters: JSONL event log, CSV summary, Prometheus text, ASCII table.

All exporters read the same :class:`~repro.telemetry.Telemetry` facade and
are pure functions of its state — export as often as you like, during or
after a run. The JSONL trace is the lossless format (every span, metric,
and event); CSV and Prometheus are summaries that round-trip the same
counter/gauge values (asserted by the test suite).
"""

from __future__ import annotations

import csv
import json
import re
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.facade import Telemetry

__all__ = [
    "to_jsonl",
    "load_jsonl",
    "to_csv",
    "to_prometheus",
    "parse_prometheus",
    "summary",
]

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_PREFIX = "repro_"


def to_jsonl(telemetry: "Telemetry", path: str) -> int:
    """Write the full trace as JSON Lines; returns the record count.

    Record types: one ``meta`` header, then ``span`` (start-time order),
    ``counter``/``gauge``/``histogram``, and ``event`` records.
    """
    records: list[dict] = [
        {"type": "meta", "label": telemetry.label, **telemetry.meta}
    ]
    for span in telemetry.tracer.spans():
        records.append({"type": "span", **span.as_dict()})
    snapshot = telemetry.metrics.snapshot()
    for name, value in sorted(snapshot["counters"].items()):
        records.append({"type": "counter", "name": name, "value": value})
    for name, value in sorted(snapshot["gauges"].items()):
        records.append({"type": "gauge", "name": name, "value": value})
    for name, data in sorted(snapshot["histograms"].items()):
        records.append({"type": "histogram", "name": name, **data})
    for event in telemetry.events.events():
        records.append({"type": "event", **event.as_dict()})
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, default=float) + "\n")
    return len(records)


def load_jsonl(path: str) -> dict[str, list[dict]]:
    """Read a JSONL trace back as ``{record type: [records]}``."""
    out: dict[str, list[dict]] = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            out.setdefault(record.pop("type"), []).append(record)
    return out


def to_csv(telemetry: "Telemetry", path: str) -> int:
    """Write a metric summary CSV; returns the row count.

    Columns: ``kind,name,count,value,min,max,mean`` — counters and gauges
    fill ``value``, histograms fill the statistics columns.
    """
    snapshot = telemetry.metrics.snapshot()
    rows: list[list] = []
    for name, value in sorted(snapshot["counters"].items()):
        rows.append(["counter", name, "", value, "", "", ""])
    for name, value in sorted(snapshot["gauges"].items()):
        rows.append(["gauge", name, "", value, "", "", ""])
    for name, data in sorted(snapshot["histograms"].items()):
        rows.append(
            ["histogram", name, data["count"], data["sum"],
             data["min"], data["max"], data["mean"]]
        )
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["kind", "name", "count", "value", "min", "max", "mean"])
        writer.writerows(rows)
    return len(rows)


def _prom_name(name: str) -> str:
    return _PROM_PREFIX + _PROM_NAME_RE.sub("_", name)


def to_prometheus(telemetry: "Telemetry") -> str:
    """Render metrics in the Prometheus text exposition format.

    Histograms are exposed summary-style (``_count`` / ``_sum``). Span
    aggregates ride along as ``repro_span_seconds_total{name=...}`` so a
    scrape sees where the wall-clock went without parsing the JSONL trace.
    """
    snapshot = telemetry.metrics.snapshot()
    lines: list[str] = []
    for name, value in sorted(snapshot["counters"].items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value!r}")
    for name, value in sorted(snapshot["gauges"].items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value!r}")
    for name, data in sorted(snapshot["histograms"].items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        lines.append(f"{prom}_count {float(data['count'])!r}")
        lines.append(f"{prom}_sum {data['sum']!r}")
    totals = telemetry.tracer.totals_by_name()
    if totals:
        lines.append("# TYPE repro_span_seconds_total counter")
        for name, (count, total) in sorted(totals.items()):
            lines.append(
                f'repro_span_seconds_total{{name="{name}"}} {total!r}'
            )
            lines.append(f'repro_span_count{{name="{name}"}} {float(count)!r}')
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text back to ``{metric name: value}`` (tests)."""
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        out[name] = float(value)
    return out


def summary(telemetry: "Telemetry") -> str:
    """ASCII span/metric summary in the style of ``experiments/report.py``."""
    # Imported lazily: repro.experiments pulls in the trainer, which
    # (indirectly) imports this package.
    from repro.experiments.report import format_table

    sections: list[str] = []
    totals = telemetry.tracer.totals_by_name()
    if totals:
        rows = [
            {
                "span": name,
                "count": count,
                "total_s": total,
                "mean_s": total / count if count else 0.0,
            }
            for name, (count, total) in sorted(
                totals.items(), key=lambda kv: -kv[1][1]
            )
        ]
        sections.append(format_table(rows, title=f"Spans — {telemetry.label}"))
    snapshot = telemetry.metrics.snapshot()
    metric_rows = [
        {"metric": name, "kind": "counter", "value": value}
        for name, value in sorted(snapshot["counters"].items())
    ] + [
        {"metric": name, "kind": "gauge", "value": value}
        for name, value in sorted(snapshot["gauges"].items())
    ] + [
        {"metric": name, "kind": "histogram(mean)", "value": data["mean"]}
        for name, data in sorted(snapshot["histograms"].items())
    ]
    if metric_rows:
        sections.append(format_table(metric_rows, title="Metrics"))
    if telemetry.events.events():
        sections.append(f"Events: {len(telemetry.events.events())}")
    return "\n\n".join(sections) if sections else "(no telemetry recorded)"
