"""Versioned, crash-safe checkpoint container.

One checkpoint is a single file::

    magic (8 bytes) | header length (4 bytes, big-endian) | header JSON | payload

The header carries the format version, the payload's length and SHA-256,
and caller metadata (label, round, config fingerprint); the payload is a
pickled state dict. Loading verifies magic, version, length, and checksum,
so a truncated or bit-flipped file fails loudly with
:class:`CorruptCheckpointError` instead of resuming garbage.

Atomicity
---------
:func:`write_checkpoint` writes to a temporary file in the destination
directory, fsyncs it, and ``os.replace``-renames it over the target. A
crash at any instant leaves either the previous complete checkpoint or
none — never a partial file under the checkpoint's name.

Checkpoints are pickles: load them only from paths you trust (the same
trust level as the code and data of the run itself).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import struct
import tempfile
from typing import Any

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CorruptCheckpointError",
    "CheckpointVersionError",
    "write_checkpoint",
    "read_checkpoint",
    "read_header",
]

CHECKPOINT_MAGIC = b"REPROCKP"
CHECKPOINT_VERSION = 1

_LEN_FMT = ">I"
_LEN_SIZE = struct.calcsize(_LEN_FMT)


class CheckpointError(ValueError):
    """Base error for unreadable or unusable checkpoint files."""


class CorruptCheckpointError(CheckpointError):
    """The file is not a complete, intact checkpoint (truncated/bit-rot)."""


class CheckpointVersionError(CheckpointError):
    """The file's format version is not supported by this code."""


def write_checkpoint(
    path: str | os.PathLike,
    payload: Any,
    meta: dict | None = None,
) -> int:
    """Atomically write ``payload`` (+ ``meta`` header fields) to ``path``.

    Returns the total bytes written. The temporary file lives in the
    destination directory so the final ``os.replace`` stays on one
    filesystem (rename atomicity).
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = dict(meta or {})
    header.update(
        version=CHECKPOINT_VERSION,
        payload_bytes=len(blob),
        payload_sha256=hashlib.sha256(blob).hexdigest(),
    )
    header_bytes = json.dumps(header, sort_keys=True, default=str).encode("utf-8")
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(CHECKPOINT_MAGIC)
            f.write(struct.pack(_LEN_FMT, len(header_bytes)))
            f.write(header_bytes)
            f.write(blob)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return len(CHECKPOINT_MAGIC) + _LEN_SIZE + len(header_bytes) + len(blob)


def _read_exact(f, n: int, what: str) -> bytes:
    data = f.read(n)
    if len(data) != n:
        raise CorruptCheckpointError(
            f"checkpoint truncated: expected {n} bytes of {what}, got {len(data)}"
        )
    return data


def _load_header(f, path: str) -> dict:
    magic = f.read(len(CHECKPOINT_MAGIC))
    if magic != CHECKPOINT_MAGIC:
        raise CorruptCheckpointError(
            f"{path!r} is not a repro checkpoint (bad magic {magic!r})"
        )
    (header_len,) = struct.unpack(
        _LEN_FMT, _read_exact(f, _LEN_SIZE, "header length")
    )
    try:
        header = json.loads(_read_exact(f, header_len, "header").decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptCheckpointError(f"{path!r}: unreadable header: {exc}") from exc
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointVersionError(
            f"{path!r} has format version {version!r}; this build reads "
            f"version {CHECKPOINT_VERSION}"
        )
    return header


def read_header(path: str | os.PathLike) -> dict:
    """Read and validate only the header (cheap checkpoint inspection)."""
    path = os.fspath(path)
    with open(path, "rb") as f:
        return _load_header(f, path)


def read_checkpoint(path: str | os.PathLike) -> tuple[dict, Any]:
    """Read, verify, and unpickle a checkpoint; returns ``(header, payload)``.

    Raises :class:`CorruptCheckpointError` for truncation or checksum
    mismatch and :class:`CheckpointVersionError` for a format-version skew.
    """
    path = os.fspath(path)
    with open(path, "rb") as f:
        header = _load_header(f, path)
        blob = _read_exact(f, int(header["payload_bytes"]), "payload")
        if f.read(1):
            raise CorruptCheckpointError(f"{path!r}: trailing bytes after payload")
    digest = hashlib.sha256(blob).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CorruptCheckpointError(
            f"{path!r}: payload checksum mismatch (file corrupted)"
        )
    try:
        payload = pickle.loads(blob)
    except Exception as exc:  # pickle raises many concrete types
        raise CorruptCheckpointError(f"{path!r}: payload unpickling failed: {exc}") from exc
    return header, payload
