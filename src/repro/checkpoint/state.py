"""Capture/restore of complete `GroupFELTrainer` training state.

The captured dict is everything `run()` reads that evolves across rounds:
the global model parameters, the trainer and sampler RNGs (including their
seed-sequence spawn counters — see :func:`repro.rng.generator_state`), the
current groups (regrouping may have replaced the originals), the
per-strategy state (SCAFFOLD control variates), the training history, the
cost-ledger series, the fault trace, the sampled-group history, and any
stateful compressor (error-feedback residuals).

Static inputs — the federated dataset, the model factory, the config —
are *not* stored; a resumed run must be constructed from the same inputs
(the header's config fingerprint catches accidental mismatches).
"""

from __future__ import annotations

import copy
from dataclasses import fields
from typing import TYPE_CHECKING

import numpy as np

from repro.faults import FaultTrace
from repro.rng import generator_state, restore_generator
from repro.sampling.sampler import GroupSampler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.trainer import GroupFELTrainer, TrainerConfig

__all__ = ["capture_state", "restore_state", "config_fingerprint"]


def config_fingerprint(config: "TrainerConfig", grouper=None) -> dict:
    """JSON-safe summary of the config, stored in the checkpoint header.

    Used to reject resuming a checkpoint into a trainer whose
    hyperparameters diverged — a silent way to lose bit-identical replay.
    ``grouper`` folds the trainer's grouping engine into the fingerprint
    (its repr carries MinGS/MaxCoV/engine/cov_metric), so a resume under a
    different grouping — or, via the config's ``population`` field, a
    different population schedule — is rejected loudly instead of
    silently diverging.
    """
    fp: dict = {}
    for f in fields(config):
        value = getattr(config, f.name)
        if value is None or isinstance(value, (bool, int, float, str)):
            fp[f.name] = value
        else:  # AggregationMode enum, FaultPlan, PopulationModel — stable reprs
            fp[f.name] = getattr(value, "value", None) or repr(value)
    fp["grouper"] = None if grouper is None else repr(grouper)
    return fp


def capture_state(trainer: "GroupFELTrainer") -> dict:
    """Snapshot every piece of evolving state ``run()`` depends on."""
    return {
        "round_idx": int(trainer.round_idx),
        "global_params": np.array(trainer.global_params, copy=True),
        "rng": generator_state(trainer.rng),
        "sampler_rng": generator_state(trainer.sampler.rng),
        "groups": copy.deepcopy(trainer.groups),
        "sampled_history": copy.deepcopy(trainer.sampled_history),
        "strategy": trainer.strategy.state_dict(),
        "sampler_adaptive": trainer.sampler.adaptive_state_dict(),
        "history": trainer.history.state_dict(),
        "ledger": {
            "round_costs": list(trainer.ledger.round_costs),
            "fault_delay_s": list(trainer.ledger.fault_delay_s),
            "fault_events": list(trainer.ledger.fault_events),
        },
        "fault_trace": list(trainer.fault_trace.events),
        "compressor": copy.deepcopy(trainer.compressor),
        "population": (
            trainer.population_engine.state_dict()
            if trainer.population_engine is not None
            else None
        ),
        "trainer_extra": copy.deepcopy(trainer.extra_state_dict()),
    }


def restore_state(trainer: "GroupFELTrainer", state: dict) -> None:
    """Install a :func:`capture_state` snapshot into ``trainer`` in place.

    The sampler is rebuilt from the restored groups (its probability
    vector and sampling scheme are pure functions of them and the config)
    with its RNG stream restored directly, so the next draw matches the
    interrupted run's; an ``adaptive`` sampler additionally restores its
    norm-EMA estimator, replaying the probability trajectory exactly.
    """
    cfg = trainer.config
    trainer.round_idx = int(state["round_idx"])
    trainer.global_params = np.array(state["global_params"], copy=True)
    trainer.rng = restore_generator(state["rng"])
    trainer.groups = list(state["groups"])
    trainer.sampler = GroupSampler(
        trainer.groups,
        method=cfg.sampling_method,
        num_sampled=min(cfg.num_sampled, len(trainer.groups)),
        mode=cfg.aggregation_mode,
        min_prob=cfg.min_prob,
        rng=restore_generator(state["sampler_rng"]),
        telemetry=trainer.telemetry,
        scheme=cfg.sampling_scheme,
    )
    if trainer.sampler.adaptive is not None:
        trainer.sampler.load_adaptive_state_dict(state.get("sampler_adaptive"))
    trainer.sampled_history = list(state["sampled_history"])
    trainer.strategy.load_state_dict(state["strategy"])
    trainer.history.load_state_dict(state["history"])
    ledger = state["ledger"]
    trainer.ledger.round_costs = list(ledger["round_costs"])
    trainer.ledger.fault_delay_s = list(ledger["fault_delay_s"])
    trainer.ledger.fault_events = list(ledger["fault_events"])
    trace = FaultTrace()
    trace.extend(list(state["fault_trace"]))
    trainer.fault_trace = trace
    trainer.compressor = state["compressor"]
    population = state.get("population")
    if trainer.population_engine is not None:
        if population is None:
            raise ValueError(
                "checkpoint has no population state but this trainer runs "
                "population dynamics — it was written by a static-population "
                "run"
            )
        trainer.population_engine.load_state_dict(population, trainer.groups)
    elif population is not None:
        raise ValueError(
            "checkpoint carries population state but this trainer has no "
            "population model — construct it with the same "
            "TrainerConfig.population (and grouper/edge_assignment)"
        )
    # Subclass-owned state (IFCA centers, FedCLAR clusters) restores last:
    # it may reference the restored groups.
    trainer.load_extra_state_dict(copy.deepcopy(state.get("trainer_extra")))
