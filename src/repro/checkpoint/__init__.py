"""Crash-safe checkpoint/resume with deterministic replay.

`repro.checkpoint` serializes *complete* trainer state — global model,
strategy state (SCAFFOLD control variates), training history, cost-ledger
series, fault trace, sampler state, and all RNG generator states — to a
versioned, atomically-written file, so a run interrupted at any round
boundary resumes bit-identically to the uninterrupted run on every
parallel backend.

Entry points:

* ``GroupFELTrainer.save_checkpoint() / load_checkpoint()`` — one trainer.
* ``TrainerConfig(checkpoint_every=...)`` + ``GroupFELTrainer(checkpoint_dir=...)``
  — periodic auto-saving during ``run()``.
* ``run_method(..., checkpoint_dir=..., resume_from=...)`` — the runner.
* ``python -m repro.experiments <target> --checkpoint-dir D [--resume]`` —
  the CLI, via the ambient :class:`CheckpointPolicy`.
"""

from repro.checkpoint.format import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointVersionError,
    CorruptCheckpointError,
    read_checkpoint,
    read_header,
    write_checkpoint,
)
from repro.checkpoint.manager import (
    CheckpointManager,
    CheckpointPolicy,
    checkpointing_activated,
    get_active_policy,
    manager_for_label,
    set_active_policy,
)
from repro.checkpoint.state import capture_state, config_fingerprint, restore_state

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CorruptCheckpointError",
    "CheckpointVersionError",
    "read_checkpoint",
    "read_header",
    "write_checkpoint",
    "CheckpointManager",
    "CheckpointPolicy",
    "checkpointing_activated",
    "get_active_policy",
    "set_active_policy",
    "manager_for_label",
    "capture_state",
    "restore_state",
    "config_fingerprint",
]
