"""Checkpoint directory management and the ambient checkpoint policy.

A :class:`CheckpointManager` owns one directory of round-stamped
checkpoints (``ckpt_round_000012.ckpt``), writes them atomically (see
``repro.checkpoint.format``), finds the latest for resume, and prunes old
ones under a retention knob.

A :class:`CheckpointPolicy` is the CLI-facing counterpart: installed
ambiently (``checkpointing_activated``), every trainer a figure generator
constructs picks it up — each under a per-label subdirectory — exactly
like the ambient telemetry/fault-plan/worker-pool instances, so the
generators stay checkpoint-agnostic.
"""

from __future__ import annotations

import os
import re
from contextlib import contextmanager
from dataclasses import dataclass

from repro.checkpoint.format import read_checkpoint, write_checkpoint
from repro.telemetry import Telemetry, resolve as resolve_telemetry

__all__ = [
    "CheckpointManager",
    "CheckpointPolicy",
    "checkpointing_activated",
    "get_active_policy",
    "set_active_policy",
    "manager_for_label",
]

_CKPT_RE = re.compile(r"^ckpt_round_(\d+)\.ckpt$")


def _slug(label: str) -> str:
    """Filesystem-safe directory name for a trainer label."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label) or "run"


@dataclass(frozen=True)
class CheckpointPolicy:
    """How a run (possibly spanning many trainers) should checkpoint.

    Attributes
    ----------
    dir:
        Root checkpoint directory; each trainer writes under
        ``dir/<label>/``.
    every:
        Save cadence in global rounds (trainers with an explicit
        ``TrainerConfig.checkpoint_every`` keep their own).
    resume:
        When True, a trainer that finds a checkpoint under its label
        auto-resumes from the latest one at construction.
    keep:
        Retain only the newest ``keep`` checkpoints per trainer
        (None = keep all).
    """

    dir: str
    every: int = 1
    resume: bool = False
    keep: int | None = None


class CheckpointManager:
    """Round-stamped atomic checkpoints in one directory."""

    def __init__(
        self,
        directory: str | os.PathLike,
        every: int = 1,
        keep: int | None = None,
        telemetry: Telemetry | None = None,
    ):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if keep is not None and keep < 1:
            raise ValueError(f"keep must be >= 1 or None, got {keep}")
        self.directory = os.fspath(directory)
        self.every = int(every)
        self.keep = keep
        self.telemetry = resolve_telemetry(telemetry)
        #: round of the most recent save (None before the first)
        self.last_saved_round: int | None = None

    # -------------------------------------------------------------- queries
    def should_save(self, round_idx: int) -> bool:
        """True when ``round_idx`` falls on the save cadence."""
        return round_idx % self.every == 0

    def path_for(self, round_idx: int) -> str:
        return os.path.join(self.directory, f"ckpt_round_{round_idx:06d}.ckpt")

    def checkpoints(self) -> list[str]:
        """All checkpoint paths in this directory, oldest round first."""
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        stamped = []
        for name in names:
            m = _CKPT_RE.match(name)
            if m:
                stamped.append((int(m.group(1)), name))
        return [
            os.path.join(self.directory, name) for _, name in sorted(stamped)
        ]

    def latest(self) -> str | None:
        """Path of the newest checkpoint, or None when the dir is empty."""
        paths = self.checkpoints()
        return paths[-1] if paths else None

    # ---------------------------------------------------------------- write
    def save(self, payload: dict, round_idx: int, meta: dict | None = None) -> str:
        """Atomically write one checkpoint; returns its path.

        Emits the ``checkpoint.saves`` / ``checkpoint.bytes`` counters and
        prunes past the retention limit.
        """
        path = self.path_for(round_idx)
        meta = dict(meta or {})
        meta.setdefault("round_idx", int(round_idx))
        nbytes = write_checkpoint(path, payload, meta=meta)
        self.last_saved_round = int(round_idx)
        tel = self.telemetry
        if tel.enabled:
            tel.inc("checkpoint.saves")
            tel.inc("checkpoint.bytes", float(nbytes))
        if self.keep is not None:
            for old in self.checkpoints()[: -self.keep]:
                try:
                    os.unlink(old)
                except OSError:  # pragma: no cover - benign race
                    pass
        return path

    def load_latest(self) -> tuple[dict, dict]:
        """(header, payload) of the newest checkpoint; raises if none."""
        latest = self.latest()
        if latest is None:
            raise FileNotFoundError(
                f"no checkpoints under {self.directory!r}"
            )
        return read_checkpoint(latest)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CheckpointManager(dir={self.directory!r}, every={self.every}, "
            f"keep={self.keep}, n={len(self.checkpoints())})"
        )


# --------------------------------------------------------------------------
# Ambient policy, mirroring repro.telemetry.activated / repro.faults
# plan_activated: the CLI installs one policy and every trainer any figure
# generator constructs checkpoints (and resumes) under it.
_active_policy: CheckpointPolicy | None = None


def get_active_policy() -> CheckpointPolicy | None:
    """The ambient checkpoint policy, or None when none is installed."""
    return _active_policy


def set_active_policy(policy: CheckpointPolicy | None) -> CheckpointPolicy | None:
    """Install ``policy`` ambiently; returns the previous one."""
    global _active_policy
    previous = _active_policy
    _active_policy = policy
    return previous


@contextmanager
def checkpointing_activated(policy: CheckpointPolicy):
    """Install ``policy`` ambiently for the duration of the block."""
    previous = set_active_policy(policy)
    try:
        yield policy
    finally:
        set_active_policy(previous)


def manager_for_label(policy: CheckpointPolicy, label: str,
                      every: int | None = None,
                      telemetry: Telemetry | None = None) -> CheckpointManager:
    """The per-trainer manager a policy implies (``dir/<label-slug>/``)."""
    return CheckpointManager(
        os.path.join(policy.dir, _slug(label)),
        every=every if every is not None else policy.every,
        keep=policy.keep,
        telemetry=telemetry,
    )
