"""NetworkX model of the cloud–edge–client graph."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.rng import make_rng
from repro.topology.entities import Client, Cloud, EdgeServer

__all__ = ["LinkParams", "HierarchicalTopology"]


@dataclass(frozen=True)
class LinkParams:
    """One link's characteristics.

    latency_s:
        One-way propagation latency in seconds.
    bandwidth_bps:
        Usable bandwidth in bits per second.
    """

    latency_s: float
    bandwidth_bps: float

    def transfer_time(self, payload_bytes: float) -> float:
        """Time to push ``payload_bytes`` across this link, one direction."""
        return self.latency_s + 8.0 * payload_bytes / self.bandwidth_bps


#: Defaults reflecting the paper's premise: edge links are fast and stable,
#: the WAN hop to the cloud is the expensive one.
DEFAULT_CLIENT_EDGE = LinkParams(latency_s=0.005, bandwidth_bps=100e6)
DEFAULT_EDGE_CLOUD = LinkParams(latency_s=0.050, bandwidth_bps=20e6)


class HierarchicalTopology:
    """The client-edge-cloud structure of Fig. 1.

    Parameters
    ----------
    num_clients / num_edges:
        Clients are split across edges either evenly (default) or by an
        explicit assignment array.
    assignment:
        Optional array of length ``num_clients`` mapping client -> edge.
    client_edge / edge_cloud:
        Link parameters per tier.
    """

    def __init__(
        self,
        num_clients: int,
        num_edges: int,
        assignment: np.ndarray | None = None,
        client_edge: LinkParams = DEFAULT_CLIENT_EDGE,
        edge_cloud: LinkParams = DEFAULT_EDGE_CLOUD,
        rng: np.random.Generator | int | None = None,
    ):
        if num_clients < 1 or num_edges < 1:
            raise ValueError("need at least one client and one edge server")
        if num_edges > num_clients:
            raise ValueError(f"more edges ({num_edges}) than clients ({num_clients})")
        self.num_clients = int(num_clients)
        self.num_edges = int(num_edges)
        self.client_edge = client_edge
        self.edge_cloud = edge_cloud

        if assignment is None:
            # Even contiguous split: client i -> edge i*num_edges//num_clients.
            assignment = (np.arange(num_clients) * num_edges) // num_clients
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (num_clients,):
            raise ValueError(f"assignment shape {assignment.shape} != ({num_clients},)")
        if assignment.min() < 0 or assignment.max() >= num_edges:
            raise ValueError("assignment references an unknown edge server")
        self.assignment = assignment

        self.cloud = Cloud()
        self.edges = [
            EdgeServer(edge_id=j, client_ids=np.flatnonzero(assignment == j))
            for j in range(num_edges)
        ]
        for edge in self.edges:
            if edge.num_clients == 0:
                raise ValueError(f"edge server {edge.edge_id} has no clients")
        self.clients = [
            Client(client_id=i, edge_id=int(assignment[i])) for i in range(num_clients)
        ]
        self.graph = self._build_graph()

    def _build_graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_node(self.cloud.node_name, tier="cloud")
        for edge in self.edges:
            g.add_node(edge.node_name, tier="edge")
            g.add_edge(
                self.cloud.node_name,
                edge.node_name,
                latency_s=self.edge_cloud.latency_s,
                bandwidth_bps=self.edge_cloud.bandwidth_bps,
            )
        for client in self.clients:
            g.add_node(client.node_name, tier="client")
            g.add_edge(
                f"edge:{client.edge_id}",
                client.node_name,
                latency_s=self.client_edge.latency_s,
                bandwidth_bps=self.client_edge.bandwidth_bps,
            )
        return g

    def edge_assignment(self) -> list[np.ndarray]:
        """Client-id arrays per edge — the C_j inputs of Algorithm 1."""
        return [edge.client_ids for edge in self.edges]

    def edge_of(self, client_id: int) -> int:
        """Edge server managing a client."""
        return int(self.assignment[client_id])

    @property
    def diameter_hops(self) -> int:
        """Graph diameter in hops (client -> edge -> cloud -> edge -> client = 4)."""
        return nx.diameter(self.graph)

    def __repr__(self) -> str:
        return (
            f"HierarchicalTopology(clients={self.num_clients}, edges={self.num_edges})"
        )
