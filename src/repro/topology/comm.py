"""Communication accounting for one Group-FEL global round.

Message flows per Algorithm 1, for one sampled group g on edge j:

1. cloud -> edge -> clients : global model download (once per global round)
2. clients -> edge          : local model upload       (K times)
3. edge -> clients          : group model distribution (K−1 times; the last
                              group model goes up, not back down)
4. edge -> cloud            : group model upload (once per global round)

Wall-clock per tier assumes intra-group transfers are parallel across
clients but serialized at the edge uplink (the usual access-network model);
traffic totals count every byte.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grouping.base import Group
from repro.topology.network import HierarchicalTopology

__all__ = ["RoundTraffic", "CommModel"]


@dataclass
class RoundTraffic:
    """Bytes and wall-clock seconds for one global round's communication."""

    download_bytes: float
    upload_bytes: float
    wall_clock_s: float

    @property
    def total_bytes(self) -> float:
        return self.download_bytes + self.upload_bytes


class CommModel:
    """Costs Algorithm 1's message flows over a topology.

    Parameters
    ----------
    topology:
        The cloud-edge-client graph.
    model_bytes:
        Serialized model size (float64 params × 8 bytes, unless overridden).
    payload_factor:
        Upload multiplier for methods shipping extra state (SCAFFOLD = 2).
    """

    def __init__(
        self,
        topology: HierarchicalTopology,
        model_bytes: float,
        payload_factor: float = 1.0,
    ):
        if model_bytes <= 0:
            raise ValueError(f"model_bytes must be positive, got {model_bytes}")
        self.topology = topology
        self.model_bytes = float(model_bytes)
        self.payload_factor = float(payload_factor)

    @classmethod
    def for_model(
        cls,
        topology: HierarchicalTopology,
        num_params: int,
        payload_factor: float = 1.0,
    ) -> "CommModel":
        """Build from a parameter count (float64 wire format)."""
        return cls(topology, model_bytes=8.0 * num_params, payload_factor=payload_factor)

    def round_traffic(
        self,
        groups: list[Group],
        group_rounds: int,
        retries_per_group: dict | None = None,
    ) -> RoundTraffic:
        """Traffic for one global round over the sampled groups.

        ``retries_per_group`` maps group_id → number of client uploads the
        lossy edge uplink had to resend (see ``repro.faults.MessageLoss``);
        each retry re-ships one upload payload and re-serializes on the
        uplink, so retries inflate both byte totals and wall clock.
        """
        ce = self.topology.client_edge
        ec = self.topology.edge_cloud
        up_bytes = self.model_bytes * self.payload_factor
        down_bytes = self.model_bytes

        total_down = 0.0
        total_up = 0.0
        slowest_group = 0.0
        edges_seen: set[int] = set()
        for g in groups:
            s = g.size
            retries = int(retries_per_group.get(g.group_id, 0)) if retries_per_group else 0
            # 1. global model to each client (via its edge). The cloud→edge
            # copy ships once per distinct edge per global round (flow 1) —
            # groups sharing an edge reuse the edge's cached copy.
            if g.edge_id not in edges_seen:
                edges_seen.add(g.edge_id)
                total_down += down_bytes
            total_down += down_bytes * s  # s client copies
            # 2. K uploads from each client to the edge (+ resends).
            total_up += up_bytes * (s * group_rounds + retries)
            # 3. K-1 group-model redistributions to each client.
            total_down += down_bytes * s * (group_rounds - 1)
            # 4. one group model to the cloud.
            total_up += up_bytes

            # Wall clock: edge serializes its clients' uploads; downloads
            # broadcast in parallel. Groups run in parallel across edges.
            t_download = ec.transfer_time(down_bytes) + ce.transfer_time(down_bytes)
            t_group_round = s * ce.transfer_time(up_bytes) + ce.transfer_time(down_bytes)
            t_upload = ec.transfer_time(up_bytes)
            t_total = (
                t_download
                + group_rounds * t_group_round
                + retries * ce.transfer_time(up_bytes)
                + t_upload
            )
            slowest_group = max(slowest_group, t_total)

        return RoundTraffic(
            download_bytes=total_down,
            upload_bytes=total_up,
            wall_clock_s=slowest_group,
        )

    def round_traffic_columnar(
        self,
        group_sizes: np.ndarray,
        edge_ids: np.ndarray,
        group_rounds: int,
        retries: np.ndarray | None = None,
    ) -> RoundTraffic:
        """Round traffic from per-group (|g|, edge) arrays — the columnar
        twin of :meth:`round_traffic` (same flows 1–4, same dedup of the
        cloud→edge download per distinct edge), vectorized so 10⁵⁺ sampled
        groups are accounted without building :class:`Group` objects.
        Byte totals differ from the loop only by float summation order.
        """
        s = np.asarray(group_sizes, dtype=np.float64)
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if s.shape != edge_ids.shape:
            raise ValueError(
                f"group_sizes {s.shape} and edge_ids {edge_ids.shape} differ"
            )
        r = (
            np.zeros_like(s)
            if retries is None
            else np.asarray(retries, dtype=np.float64)
        )
        if r.shape != s.shape:
            raise ValueError(f"retries {r.shape} and group_sizes {s.shape} differ")
        ce = self.topology.client_edge
        ec = self.topology.edge_cloud
        up_bytes = self.model_bytes * self.payload_factor
        down_bytes = self.model_bytes
        K = group_rounds

        num_edges = np.unique(edge_ids).size if edge_ids.size else 0
        # flows 1+3: one cloud→edge copy per distinct edge, then K·s client
        # copies per group (the initial broadcast plus K−1 redistributions).
        total_down = down_bytes * num_edges + float((down_bytes * s * K).sum())
        # flows 2+4: K client uploads each (+resends), one group upload.
        total_up = float((up_bytes * (s * K + r)).sum()) + up_bytes * s.size

        if s.size:
            t_download = ec.transfer_time(down_bytes) + ce.transfer_time(down_bytes)
            t_group_round = s * ce.transfer_time(up_bytes) + ce.transfer_time(down_bytes)
            t_upload = ec.transfer_time(up_bytes)
            t_total = (
                t_download
                + K * t_group_round
                + r * ce.transfer_time(up_bytes)
                + t_upload
            )
            slowest = float(t_total.max())
        else:
            slowest = 0.0
        return RoundTraffic(
            download_bytes=total_down,
            upload_bytes=total_up,
            wall_clock_s=slowest,
        )

    def training_traffic(
        self, per_round_groups: list[list[Group]], group_rounds: int
    ) -> RoundTraffic:
        """Accumulate traffic over a whole training run."""
        down = up = wall = 0.0
        for groups in per_round_groups:
            t = self.round_traffic(groups, group_rounds)
            down += t.download_bytes
            up += t.upload_bytes
            wall += t.wall_clock_s
        return RoundTraffic(download_bytes=down, upload_bytes=up, wall_clock_s=wall)
