"""Entity records for the three-tier hierarchy."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Client", "EdgeServer", "Cloud"]


@dataclass
class Client:
    """A mobile/IoT client device.

    ``compute_factor`` scales local training time (device heterogeneity);
    1.0 = the reference RPi-4-class device.
    """

    client_id: int
    edge_id: int
    num_samples: int = 0
    compute_factor: float = 1.0

    @property
    def node_name(self) -> str:
        return f"client:{self.client_id}"


@dataclass
class EdgeServer:
    """An edge server managing a set of clients and forming their groups."""

    edge_id: int
    client_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def __post_init__(self) -> None:
        self.client_ids = np.asarray(self.client_ids, dtype=np.int64)

    @property
    def num_clients(self) -> int:
        return int(self.client_ids.size)

    @property
    def node_name(self) -> str:
        return f"edge:{self.edge_id}"


@dataclass
class Cloud:
    """The cloud parameter server performing group sampling + global aggregation."""

    name: str = "cloud"

    @property
    def node_name(self) -> str:
        return self.name
