"""Cloud–edge–client hierarchy (Fig. 1) and communication accounting.

The hierarchy assigns clients to edge servers (Algorithm 1's client sets
C_j), builds a NetworkX graph with per-link latency/bandwidth, and costs
the message flows of one global round: global-model download, per-group-
round local uploads + group-model distribution at the edge, and the final
group-model upload to the cloud.
"""

from repro.topology.entities import Client, Cloud, EdgeServer
from repro.topology.network import HierarchicalTopology, LinkParams
from repro.topology.comm import CommModel, RoundTraffic

__all__ = [
    "Client",
    "EdgeServer",
    "Cloud",
    "LinkParams",
    "HierarchicalTopology",
    "CommModel",
    "RoundTraffic",
]
