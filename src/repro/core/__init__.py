"""Group-FEL core: Algorithm 1 plus the local-update strategies.

``GroupFELTrainer`` orchestrates the three nested loops — global rounds
``T``, group rounds ``K``, local rounds ``E`` — with probabilistic group
sampling at the cloud, weighted group aggregation at the edges, and cost
accounting per Eq. (5). Local-update behaviour (plain SGD, FedProx's
proximal term, SCAFFOLD's control variates) is pluggable via
``LocalStrategy`` so every baseline runs through the same hierarchy.
"""

from repro.core.strategies import (
    FedProxStrategy,
    LocalStrategy,
    PlainSGDStrategy,
    ScaffoldStrategy,
)
from repro.core.callbacks import (
    Callback,
    Checkpointer,
    EarlyStopping,
    MetricTracker,
    RoundLogger,
    TelemetryCallback,
    TimeBudget,
)
from repro.core.client import run_local_rounds
from repro.core.group import run_group_round
from repro.core.aggregation import weighted_average
from repro.core.trainer import GroupFELTrainer, TrainerConfig

__all__ = [
    "LocalStrategy",
    "PlainSGDStrategy",
    "FedProxStrategy",
    "ScaffoldStrategy",
    "run_local_rounds",
    "run_group_round",
    "weighted_average",
    "GroupFELTrainer",
    "TrainerConfig",
    "Callback",
    "RoundLogger",
    "EarlyStopping",
    "Checkpointer",
    "TimeBudget",
    "MetricTracker",
    "TelemetryCallback",
]
