"""Client-side local training (Algorithm 1, Lines 11–13)."""

from __future__ import annotations

import numpy as np

from repro.core.strategies import LocalStrategy, PlainSGDStrategy
from repro.data.client_data import ClientDataset
from repro.nn.model import Model
from repro.nn.optim import SGD
from repro.rng import make_rng
from repro.telemetry import Telemetry, resolve as resolve_telemetry

__all__ = ["run_local_rounds"]


def run_local_rounds(
    model: Model,
    optimizer: SGD,
    client: ClientDataset,
    start_params: np.ndarray,
    local_rounds: int,
    batch_size: int,
    rng: np.random.Generator | int | None = None,
    strategy: LocalStrategy | None = None,
    anchor: np.ndarray | None = None,
    step_mode: str = "epoch",
    telemetry: Telemetry | None = None,
) -> tuple[np.ndarray, int]:
    """Run E local rounds of SGD on one client's shard.

    Parameters
    ----------
    model / optimizer:
        Shared model instance; parameters are loaded from ``start_params``
        first (the group model x^g_{t,k}), optimizer momentum is reset —
        clients are stateless between rounds.
    local_rounds:
        The paper's E.
    step_mode:
        ``"epoch"`` — each local round is one pass over the shard in
        shuffled minibatches (matches the cost model's E·H_i(n_i), H = one
        full pass); ``"batch"`` — each local round is a single minibatch
        step on a sampled ξ (Algorithm 1's literal Line 13).
    strategy / anchor:
        Local-update strategy and the model it anchors to (defaults to
        ``start_params``).
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; records the
        ``local_steps`` / ``client_updates`` counters (span timing is the
        caller's ``client_update`` span — no per-step instrumentation in
        the hot loop).

    Returns (final flat parameters, number of SGD steps taken).
    """
    if local_rounds < 1:
        raise ValueError(f"local_rounds must be >= 1, got {local_rounds}")
    if step_mode not in ("epoch", "batch"):
        raise ValueError(f"step_mode must be 'epoch' or 'batch', got {step_mode!r}")
    rng = make_rng(rng)
    strategy = strategy or PlainSGDStrategy()
    anchor = start_params if anchor is None else anchor

    model.set_params(start_params)
    optimizer.reset_state()
    steps = 0
    samples = 0
    uses_offset = not isinstance(strategy, PlainSGDStrategy)
    for _ in range(local_rounds):
        if step_mode == "epoch":
            batches = client.batches(batch_size, rng)
        else:
            batches = [client.sample_batch(batch_size, rng)]
        for xb, yb in batches:
            samples += xb.shape[0]
            model.loss_and_grad(xb, yb)
            offset = (
                strategy.grad_offset(client.client_id, model.get_params(), anchor)
                if uses_offset
                else None
            )
            optimizer.step(grad_offset=offset)
            steps += 1
    end_params = model.get_params()
    strategy.after_local(
        client.client_id, start_params, end_params, steps, optimizer.effective_lr
    )
    tel = resolve_telemetry(telemetry)
    if tel.enabled:
        tel.inc("local_steps", float(steps))
        tel.inc("client_updates")
        tel.inc("samples_trained", float(samples))
    return end_params, steps
