"""Edge-side group round (Algorithm 1, Lines 8–14).

One call = the K group rounds for one sampled group: every client starts
from the current group model, runs E local rounds, and the edge server
aggregates the client models weighted by n_i/n_g. Optionally, the group
aggregation actually runs through secure aggregation + backdoor detection
(the group operations the cost model charges for), and a
:class:`repro.faults.FaultPlan` injects client dropouts, stragglers, and
lossy uplinks into the round.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import weighted_average
from repro.core.client import run_local_rounds
from repro.core.strategies import (
    FedProxStrategy,
    LocalStrategy,
    PlainSGDStrategy,
    ScaffoldStrategy,
)
from repro.data.client_data import ClientDataset
from repro.faults.trace import FaultEvent
from repro.grouping.base import Group
from repro.nn.batched import batched_local_rounds, supports_batched_training
from repro.nn.model import Model
from repro.nn.optim import SGD
from repro.rng import make_rng
from repro.secure.backdoor import BackdoorDetector
from repro.secure.secagg import SecureAggregator
from repro.telemetry import Telemetry, resolve as resolve_telemetry

__all__ = ["run_group_round", "resolve_engine"]

#: strategies whose batched hooks are verified bit-identical to the scalar
#: path — ``engine="auto"`` only batches these; custom strategies must opt
#: in explicitly with ``engine="batched"`` (their default
#: ``batched_grad_offset`` delegates row-by-row, but ``after_local``
#: ordering moves to after the lockstep loop, which a cross-client-coupled
#: strategy could observe).
_AUTO_BATCHED_STRATEGIES = (PlainSGDStrategy, FedProxStrategy, ScaffoldStrategy)


def resolve_engine(
    engine: str, model: Model, strategy: LocalStrategy | None
) -> bool:
    """Decide whether the batched engine replaces the per-client loop.

    ``"reference"`` → never; ``"batched"`` → always (raises if the model
    has layers the engine cannot stack); ``"auto"`` → only when the model
    is stackable *and* the strategy is one of the in-tree trio.
    """
    if engine == "reference":
        return False
    if engine == "batched":
        if not supports_batched_training(model):
            raise ValueError(
                "engine='batched' requires a Dense/ReLU/LeakyReLU model; "
                "use engine='auto' or 'reference' for other architectures"
            )
        return True
    if engine != "auto":
        raise ValueError(
            f"engine must be 'auto', 'batched' or 'reference', got {engine!r}"
        )
    return supports_batched_training(model) and (
        strategy is None or type(strategy) in _AUTO_BATCHED_STRATEGIES
    )


def run_group_round(
    model: Model,
    optimizer: SGD,
    group: Group,
    clients: list[ClientDataset],
    global_params: np.ndarray,
    group_rounds: int,
    local_rounds: int,
    batch_size: int,
    rng: np.random.Generator | int | None = None,
    strategy: LocalStrategy | None = None,
    step_mode: str = "epoch",
    secure_aggregator: SecureAggregator | None = None,
    backdoor_detector: BackdoorDetector | None = None,
    round_id: int = 0,
    compressor=None,
    dropout_prob: float = 0.0,
    dropout_aggregator=None,
    update_transforms: dict | None = None,
    telemetry: Telemetry | None = None,
    parent_span_id: int | None = None,
    fault_plan=None,
    fault_events: list | None = None,
    engine: str = "auto",
) -> np.ndarray:
    """Run the K×(clients×E) loop for one group; returns the group model.

    Parameters
    ----------
    clients:
        The full client list, indexed by the group's member ids.
    secure_aggregator:
        When set, each group aggregation is performed through pairwise-
        masked secure aggregation (clients pre-scale by n_i/n_g) instead of
        a plain weighted average — functionally identical up to fixed-point
        rounding, but exercising the real group operation.
    backdoor_detector:
        When set, client *updates* (delta from the group model) pass the
        clustering defense before aggregation; flagged clients are dropped
        from this group round.
    compressor:
        Optional update compressor (``repro.compression``): each client's
        update is compressed (lossy) before leaving the device, and the
        decoded reconstruction is what the edge aggregates. An
        ``ErrorFeedback`` wrapper is also accepted (keyed by client id).
    dropout_prob:
        Per-client, per-group-round probability of dropping after local
        training (device failure / connectivity loss). At least one client
        always survives. Dropped clients' updates are excluded and the
        surviving weights renormalized.
    dropout_aggregator:
        Optional :class:`repro.secure.DropoutTolerantAggregator`: when set
        (and dropouts occur), the aggregation runs the full seed-share
        reconstruction protocol instead of silently skipping the dropped
        clients — exercising the real recovery path.
    telemetry / parent_span_id:
        Optional :class:`repro.telemetry.Telemetry`: the whole call is
        timed as a ``group`` span with ``client_update`` / ``secagg`` /
        ``backdoor`` / ``aggregate`` children. ``parent_span_id`` stitches
        the span under the trainer's ``round`` span when this call runs on
        a pool worker thread (thread-local nesting covers the serial path).
    fault_plan / fault_events:
        Optional :class:`repro.faults.FaultPlan`: every group round asks
        the plan (pure, keyed decisions) which clients drop — ``before``
        (no compute), ``mid`` (compute burned, no upload) or ``after``
        (upload masked then lost, forcing Shamir mask reconstruction when
        ``dropout_aggregator`` is set) — which uploads straggle, and which
        are lost on the uplink after retries. Injected faults are appended
        to ``fault_events`` (a plain list; the trainer merges and meters).
    engine:
        ``"auto"`` (default) trains the whole group through the stacked
        :func:`repro.nn.batched.batched_local_rounds` engine whenever the
        model and strategy support it — bit-identical to the per-client
        loop; ``"batched"`` forces it (raising on unsupported models);
        ``"reference"`` keeps the per-client loop (the retained slow path
        differential tests compare against).
    """
    if not 0.0 <= dropout_prob < 1.0:
        raise ValueError(f"dropout_prob must be in [0, 1), got {dropout_prob}")
    use_batched = resolve_engine(engine, model, strategy)
    tel = resolve_telemetry(telemetry)
    rng = make_rng(rng)
    members = [clients[int(cid)] for cid in group.members]
    n_i = np.array([c.n for c in members], dtype=np.float64)
    n_g = n_i.sum()
    if n_g <= 0:
        raise ValueError(f"group {group.group_id} has no data")
    data_weights = n_i / n_g
    gid = group.group_id

    # A caller-supplied optimizer may have been used before; clear any
    # momentum/step state up front so nothing leaks into this group's first
    # client update (run_local_rounds also resets per client — this guards
    # direct call sites and custom strategies that bypass it).
    optimizer.reset_state()

    group_params = global_params.copy()  # Line 8: x^g_{t,0} = x_t
    num_params = group_params.shape[0]
    client_params = np.empty((len(members), num_params))
    client_rngs = rng.spawn(len(members))
    #: clients the defense flagged earlier in this group session
    banned: set[int] = set()
    #: minimum clients that must deliver an update for aggregation (and for
    #: the recovery protocol's Shamir threshold, when in use)
    min_alive = 1
    if dropout_aggregator is not None:
        min_alive = min(dropout_aggregator.threshold, len(members))

    with tel.span(
        "group",
        parent_id=parent_span_id,
        group_id=gid,
        edge_id=group.edge_id,
        size=len(members),
    ):
        for k in range(group_rounds):
            # ---------------- fault-plan decisions (pure, keyed by ids) ----
            # Decided before training so a 'before' dropout skips compute.
            drop_phase: dict[int, str] = {}
            if fault_plan is not None:
                for idx, client in enumerate(members):
                    phase = fault_plan.client_dropout(
                        round_id, gid, k, client.client_id
                    )
                    if phase is not None:
                        drop_phase[idx] = phase
                # Never let dropouts kill the whole aggregation: spare
                # clients (lowest member index first — deterministic on any
                # backend) until min_alive can deliver.
                while len(members) - len(drop_phase) < min_alive and drop_phase:
                    del drop_phase[min(drop_phase)]

            if use_batched:
                # 'before'-drops never train (and never touch their RNG —
                # same consumption as the reference loop); 'mid'-drops
                # train, then their update is discarded below.
                train_idx = [
                    i for i in range(len(members))
                    if drop_phase.get(i) != "before"
                ]
                if train_idx:
                    with tel.span(
                        "client_update", k=k, clients=len(train_idx),
                        batched=True,
                    ):
                        ends = batched_local_rounds(
                            model,
                            optimizer,
                            [members[i] for i in train_idx],
                            start_params=group_params,
                            local_rounds=local_rounds,
                            batch_size=batch_size,
                            rngs=[client_rngs[i] for i in train_idx],
                            strategy=strategy,
                            anchor=group_params,
                            step_mode=step_mode,
                            telemetry=tel,
                        )
                    for j, i in enumerate(train_idx):
                        client_params[i] = ends[j]
                # Fault events land in member order, 'before'/'mid'
                # interleaved by index — the order the reference loop
                # appends them in, so FaultTrace signatures match.
                for idx, client in enumerate(members):
                    phase = drop_phase.get(idx)
                    if phase in ("before", "mid"):
                        client_params[idx] = group_params
                        if fault_events is not None:
                            fault_events.append(FaultEvent(
                                "dropout", round_id, gid, client.client_id,
                                k, phase,
                            ))
            else:
                for idx, client in enumerate(members):
                    if drop_phase.get(idx) == "before":
                        # Device died before training: no compute, no
                        # upload. Zero update keeps downstream buffers
                        # well-defined.
                        client_params[idx] = group_params
                        if fault_events is not None:
                            fault_events.append(FaultEvent(
                                "dropout", round_id, gid, client.client_id,
                                k, "before",
                            ))
                        continue
                    with tel.span(
                        "client_update", client_id=client.client_id, k=k
                    ):
                        end, _ = run_local_rounds(
                            model,
                            optimizer,
                            client,
                            start_params=group_params,
                            local_rounds=local_rounds,
                            batch_size=batch_size,
                            rng=client_rngs[idx],
                            strategy=strategy,
                            anchor=group_params,
                            step_mode=step_mode,
                            telemetry=tel,
                        )
                    client_params[idx] = end
                    if drop_phase.get(idx) == "mid":
                        # Died during local steps: compute burned, nothing
                        # uploaded (the ledger still charges the group —
                        # that wasted work is the point of the fault).
                        client_params[idx] = group_params
                        if fault_events is not None:
                            fault_events.append(FaultEvent(
                                "dropout", round_id, gid, client.client_id,
                                k, "mid",
                            ))

            # Per-round working views (the persistent client_params buffer
            # must never be rebound — the next k iteration refills it for
            # all members).
            params_k = client_params
            weights = data_weights
            updates = client_params - group_params
            #: members that never reach the uplink this round (before/mid)
            pre_dead = {i for i, p in drop_phase.items() if p != "after"}
            # Adversarial clients manipulate their upload (repro.attacks).
            if update_transforms:
                for idx, client in enumerate(members):
                    if idx in pre_dead:
                        continue
                    attack = update_transforms.get(client.client_id)
                    if attack is not None:
                        updates[idx] = attack.transform_update(updates[idx], rng=rng)
                params_k = group_params + updates
            if compressor is not None:
                from repro.compression.error_feedback import ErrorFeedback

                for idx, client in enumerate(members):
                    if idx in pre_dead:
                        continue
                    if isinstance(compressor, ErrorFeedback):
                        out = compressor.compress(
                            client.client_id, updates[idx], rng=rng
                        )
                    else:
                        out = compressor.compress(updates[idx], rng=rng)
                    updates[idx] = out.decoded
                params_k = group_params + updates

            # ---------------- uplink faults: stragglers + message loss ----
            cur_members = members
            if fault_plan is not None:
                after_dead: set[int] = {
                    i for i, p in drop_phase.items() if p == "after"
                }
                for idx, client in enumerate(members):
                    if idx in pre_dead or idx in after_dead:
                        continue
                    delay = fault_plan.straggler_delay(
                        round_id, gid, k, client.client_id
                    )
                    if delay > 0.0 and fault_events is not None:
                        fault_events.append(FaultEvent(
                            "straggler", round_id, gid, client.client_id, k,
                            delay_s=delay,
                        ))
                    up = fault_plan.uplink(round_id, gid, k, client.client_id)
                    if (up.retries or not up.delivered) and fault_events is not None:
                        fault_events.append(FaultEvent(
                            "message_loss", round_id, gid, client.client_id, k,
                            phase="lost" if not up.delivered else "retried",
                            delay_s=up.delay_s,
                            retries=up.retries,
                        ))
                    if not up.delivered:
                        # All retries exhausted: equivalent to dropping
                        # after masking — the update is gone but its masks
                        # are in flight.
                        after_dead.add(idx)
                for idx, client in enumerate(members):
                    if idx in after_dead and drop_phase.get(idx) == "after":
                        if fault_events is not None:
                            fault_events.append(FaultEvent(
                                "dropout", round_id, gid, client.client_id, k,
                                "after",
                            ))
                # Keep the aggregation (and Shamir reconstruction) viable.
                while (
                    len(members) - len(pre_dead) - len(after_dead) < min_alive
                    and after_dead
                ):
                    after_dead.discard(min(after_dead))

                if pre_dead:
                    keep = np.array(
                        [i not in pre_dead for i in range(len(members))], dtype=bool
                    )
                    updates = updates[keep]
                    params_k = params_k[keep]
                    weights = weights[keep] / weights[keep].sum()
                    cur_members = [
                        m for i, m in enumerate(members) if i not in pre_dead
                    ]
                    # Re-index the after-death set into the filtered frame.
                    old_to_new = np.cumsum(keep) - 1
                    after_dead = {int(old_to_new[i]) for i in after_dead}

                if after_dead:
                    if dropout_aggregator is not None:
                        # Real recovery: reconstruct the dropped clients'
                        # masks from survivor seed shares and cancel them.
                        alive = np.array(
                            [i not in after_dead for i in range(len(cur_members))],
                            dtype=bool,
                        )
                        w = weights / weights[alive].sum()
                        with tel.span("secagg", k=k, recovery=True):
                            res = dropout_aggregator.aggregate(
                                updates * w[:, None],
                                dropped=after_dead,
                                round_id=round_id * group_rounds + k,
                                rng=rng,
                            )
                        if fault_events is not None:
                            fault_events.append(FaultEvent(
                                "secagg_recovery", round_id, gid, None, k,
                                retries=res.reconstructed_pairs,
                            ))
                        group_params = group_params + res.total
                        continue
                    keep = np.array(
                        [i not in after_dead for i in range(len(cur_members))],
                        dtype=bool,
                    )
                    updates = updates[keep]
                    params_k = params_k[keep]
                    weights = weights[keep] / weights[keep].sum()
                    cur_members = [
                        m for i, m in enumerate(cur_members) if i not in after_dead
                    ]

            # Simulated client dropout: failed clients never submit this round.
            if dropout_prob > 0.0 and len(cur_members) > 1:
                alive = rng.random(len(cur_members)) >= dropout_prob
                # Keep enough survivors for aggregation (and for the recovery
                # protocol's Shamir threshold, when in use).
                while alive.sum() < min(min_alive, len(cur_members)):
                    dead = np.flatnonzero(~alive)
                    alive[dead[int(rng.integers(dead.size))]] = True
                if not alive.all():
                    if tel.enabled:
                        tel.inc("clients_dropped", float((~alive).sum()))
                    if dropout_aggregator is not None:
                        # Real recovery: reconstruct the dropped clients'
                        # masks from survivor seed shares and cancel them.
                        dropped = set(np.flatnonzero(~alive).tolist())
                        w = weights / weights[alive].sum()
                        with tel.span("secagg", k=k, recovery=True):
                            res = dropout_aggregator.aggregate(
                                updates * w[:, None],
                                dropped=dropped,
                                round_id=round_id * group_rounds + k,
                                rng=rng,
                            )
                        if fault_events is not None:
                            fault_events.append(FaultEvent(
                                "secagg_recovery", round_id, gid, None, k,
                                retries=res.reconstructed_pairs,
                            ))
                        group_params = group_params + res.total
                        continue
                    updates = updates[alive]
                    params_k = params_k[alive]
                    weights = weights[alive] / weights[alive].sum()
                    members_round = [m for m, a in zip(cur_members, alive) if a]
                else:
                    members_round = cur_members
            else:
                members_round = cur_members

            # Clients flagged in an earlier group round of this session stay
            # banned — re-admitting a detected attacker at k+1 would
            # re-implant whatever the defense just removed.
            if banned:
                keep_mask = np.array(
                    [m.client_id not in banned for m in members_round], dtype=bool
                )
                if not keep_mask.all() and keep_mask.any():
                    updates = updates[keep_mask]
                    params_k = params_k[keep_mask]
                    weights = weights[keep_mask] / weights[keep_mask].sum()
                    members_round = [
                        m for m, kp in zip(members_round, keep_mask) if kp
                    ]

            if backdoor_detector is not None and len(members_round) > 1:
                with tel.span("backdoor", k=k, clients=len(members_round)):
                    report = backdoor_detector.detect(updates, rng=rng)
                kept = report.admitted
                for f in report.flagged:
                    banned.add(members_round[int(f)].client_id)
                if tel.enabled and len(report.flagged):
                    tel.inc("clients_banned", float(len(report.flagged)))
                # Aggregate the defended (clipped) updates of admitted
                # clients.
                kept_weights = weights[kept]
                kept_weights = kept_weights / kept_weights.sum()
                if secure_aggregator is not None:
                    with tel.span("secagg", k=k, clients=int(kept.size)):
                        agg_update = secure_aggregator.aggregate_weighted(
                            report.filtered,
                            kept_weights,
                            round_id=round_id * group_rounds + k,
                        )
                else:
                    with tel.span("aggregate", k=k):
                        agg_update = weighted_average(report.filtered, kept_weights)
                group_params = group_params + agg_update
            elif secure_aggregator is not None:
                with tel.span("secagg", k=k, clients=len(members_round)):
                    agg_update = secure_aggregator.aggregate_weighted(
                        updates, weights, round_id=round_id * group_rounds + k
                    )
                group_params = group_params + agg_update
            else:
                # Line 14: x^g_{t,k+1} = Σ_i (n_i/n_g) x^i.
                with tel.span("aggregate", k=k):
                    group_params = weighted_average(params_k, weights)
    return group_params
