"""Local-update strategies: plain SGD, FedProx, SCAFFOLD.

A strategy customizes the client's gradient step and carries any cross-
round state. All three run inside the same hierarchical loop, which is how
the paper compares them ("they are all modified to a hierarchical version
... with uniform group sampling", §7.3).

Cost coupling: ``training_factor`` scales H_i (FedProx's proximal term adds
per-step compute) and ``payload_factor`` scales the group-operation payload
(SCAFFOLD masks model + control variate), matching the Fig. 8 calibrations.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "LocalStrategy",
    "PlainSGDStrategy",
    "FedProxStrategy",
    "ScaffoldStrategy",
]


class LocalStrategy:
    """Hook interface around the client's local SGD steps."""

    name = "sgd"
    #: multiplier on training cost H (extra per-step compute)
    training_factor: float = 1.0
    #: multiplier on group-op payload (extra masked state)
    payload_factor: int = 1

    def init_run(self, num_params: int, num_clients: int) -> None:
        """Called once before training starts."""

    def grad_offset(
        self, client_id: int, params: np.ndarray, anchor: np.ndarray
    ) -> np.ndarray | None:
        """Extra term added to the gradient at every local step.

        ``params`` is the client's current flat parameter vector, ``anchor``
        the model it started the group round from.
        """
        return None

    def batched_grad_offset(
        self, client_ids: list[int], params: np.ndarray, anchor: np.ndarray
    ) -> np.ndarray | None:
        """Per-step offsets for B clients at once — the batched-engine hook.

        ``params`` is the stacked ``(B, P)`` parameter matrix, row j
        belonging to ``client_ids[j]``. Returns ``(B, P)`` offsets or None
        when no client has one. The default delegates to
        :meth:`grad_offset` row by row, so custom strategies batch
        correctly (if slowly) without overriding; the built-ins override
        with vectorized forms that match the scalar path bit for bit.
        """
        rows = [
            self.grad_offset(cid, params[j], anchor)
            for j, cid in enumerate(client_ids)
        ]
        if all(row is None for row in rows):
            return None
        return np.stack([
            np.zeros_like(anchor) if row is None else row for row in rows
        ])

    def after_local(
        self,
        client_id: int,
        start: np.ndarray,
        end: np.ndarray,
        steps: int,
        lr: float,
    ) -> None:
        """Called after a client finishes its E local rounds."""

    def after_global_round(self) -> None:
        """Called after each global aggregation."""

    def state_dict(self) -> dict:
        """Evolving cross-round state, for checkpointing (stateless: {})."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (no-op for stateless strategies)."""


class PlainSGDStrategy(LocalStrategy):
    """Vanilla local SGD — FedAvg/Group-FEL local behaviour."""

    name = "sgd"


class FedProxStrategy(LocalStrategy):
    """FedProx: adds μ·(x − x_anchor) to every local gradient.

    The proximal term tethers local iterates to the model the client
    received, limiting client drift under non-IID data (Li et al., 2020).
    """

    name = "fedprox"
    training_factor = 1.3  # proximal term costs an extra vector op per step

    def __init__(self, mu: float = 0.01):
        if mu < 0:
            raise ValueError(f"mu must be >= 0, got {mu}")
        self.mu = float(mu)

    def grad_offset(
        self, client_id: int, params: np.ndarray, anchor: np.ndarray
    ) -> np.ndarray | None:
        if self.mu == 0.0:
            return None
        return self.mu * (params - anchor)

    def batched_grad_offset(
        self, client_ids: list[int], params: np.ndarray, anchor: np.ndarray
    ) -> np.ndarray | None:
        # μ·(x − anchor) broadcasts over the stacked rows; elementwise, so
        # identical bits to the per-client form.
        if self.mu == 0.0:
            return None
        return self.mu * (params - anchor)


class ScaffoldStrategy(LocalStrategy):
    """SCAFFOLD: control variates correct the local descent direction.

    Each client keeps a control variate c_i, the server keeps c; local
    steps use gradient − c_i + c, and after local training

        c_i⁺ = c_i − c + (x_start − x_end) / (steps · lr)

    (option II of Karimireddy et al., 2020). The server folds participating
    clients' deltas into c after each global round. Ships 2× payload
    (model + variate), hence ``payload_factor = 2``.
    """

    name = "scaffold"
    training_factor = 1.2
    payload_factor = 2

    def __init__(self):
        self.c_global: np.ndarray | None = None
        self.c_clients: dict[int, np.ndarray] = {}
        self._pending_deltas: list[np.ndarray] = []
        self._num_clients = 0
        self._num_params = 0

    def init_run(self, num_params: int, num_clients: int) -> None:
        self.c_global = np.zeros(num_params)
        self.c_clients = {}
        self._pending_deltas = []
        self._num_clients = num_clients
        self._num_params = num_params

    def _client_variate(self, client_id: int) -> np.ndarray:
        if client_id not in self.c_clients:
            self.c_clients[client_id] = np.zeros(self._num_params)
        return self.c_clients[client_id]

    def grad_offset(
        self, client_id: int, params: np.ndarray, anchor: np.ndarray
    ) -> np.ndarray | None:
        if self.c_global is None:
            raise RuntimeError("init_run was not called before training")
        return self.c_global - self._client_variate(client_id)

    def batched_grad_offset(
        self, client_ids: list[int], params: np.ndarray, anchor: np.ndarray
    ) -> np.ndarray | None:
        # c − c_i is constant over a client's local run and independent of
        # ``params``; stacking the per-client rows reproduces the scalar
        # path exactly.
        if self.c_global is None:
            raise RuntimeError("init_run was not called before training")
        return np.stack([
            self.c_global - self._client_variate(cid) for cid in client_ids
        ])

    def after_local(
        self,
        client_id: int,
        start: np.ndarray,
        end: np.ndarray,
        steps: int,
        lr: float,
    ) -> None:
        if self.c_global is None:
            raise RuntimeError("init_run was not called before training")
        if steps <= 0 or lr <= 0:
            return
        c_i = self._client_variate(client_id)
        c_new = c_i - self.c_global + (start - end) / (steps * lr)
        self._pending_deltas.append(c_new - c_i)
        self.c_clients[client_id] = c_new

    def after_global_round(self) -> None:
        if self.c_global is None or not self._pending_deltas:
            return
        # c ← c + (1/N) Σ Δc_i over this round's participants.
        self.c_global += np.sum(self._pending_deltas, axis=0) / max(self._num_clients, 1)
        self._pending_deltas = []

    def state_dict(self) -> dict:
        return {
            "c_global": None if self.c_global is None else self.c_global.copy(),
            "c_clients": {cid: c.copy() for cid, c in self.c_clients.items()},
            "pending_deltas": [d.copy() for d in self._pending_deltas],
            "num_clients": self._num_clients,
            "num_params": self._num_params,
        }

    def load_state_dict(self, state: dict) -> None:
        c_global = state["c_global"]
        self.c_global = None if c_global is None else np.array(c_global, copy=True)
        self.c_clients = {
            int(cid): np.array(c, copy=True)
            for cid, c in state["c_clients"].items()
        }
        self._pending_deltas = [
            np.array(d, copy=True) for d in state["pending_deltas"]
        ]
        self._num_clients = int(state["num_clients"])
        self._num_params = int(state["num_params"])
