"""GroupFELTrainer — Algorithm 1 end to end.

The trainer wires together every subsystem: the federated dataset, the
formed groups, the cloud sampler, the local-update strategy, the cost
ledger, (optionally) the real secure-aggregation/backdoor-detection group
operations, a parallel group executor, and a fault-injection plan.

Stopping is by global-round count and/or cost budget — the paper's
evaluations fix a cost budget ("The budget is set as 10⁶ unit", §7.2) and
compare accuracy reached within it.
"""

from __future__ import annotations

import copy
import itertools
import os
import warnings
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

import numpy as np

from repro.checkpoint import (
    CheckpointError,
    CheckpointManager,
    capture_state,
    config_fingerprint,
    get_active_policy as get_active_checkpoint_policy,
    manager_for_label,
    read_checkpoint,
    restore_state,
    write_checkpoint,
)
from repro.core.aggregation import weighted_average
from repro.core.group import run_group_round
from repro.core.strategies import LocalStrategy, PlainSGDStrategy
from repro.costs.ledger import CostLedger
from repro.costs.model import CostModel, LinearCost, QuadraticCost
from repro.data.client_data import FederatedDataset
from repro.faults import FaultEvent, FaultPlan, FaultTrace, get_active_plan
from repro.grouping.base import Group, Grouper, group_clients_per_edge
from repro.metrics.history import TrainingHistory
from repro.nn.model import Model
from repro.nn.optim import SGD
from repro.parallel import (
    ParallelMap,
    available_backends,
    get_active as get_active_parallel,
    worker_state,
)
from repro.population import (
    ColumnarPopulation,
    PopulationEngine,
    PopulationModel,
    PopulationTrace,
    get_active_population,
)
from repro.rng import derive_seed, make_rng
from repro.shm import ShmChannel, ShmView
from repro.sampling.probability import WEIGHT_FUNCTIONS
from repro.sampling.sampler import ADAPTIVE_METHODS, AggregationMode, GroupSampler
from repro.sampling.schemes import SCHEMES
from repro.secure.backdoor import BackdoorDetector
from repro.secure.secagg import SecureAggregator
from repro.telemetry import NULL_TELEMETRY, Telemetry, resolve as resolve_telemetry

__all__ = ["TrainerConfig", "GroupFELTrainer", "engine_overrides_activated"]

#: ambient round-engine overrides (see :func:`engine_overrides_activated`)
_active_engine_overrides: dict | None = None


@contextmanager
def engine_overrides_activated(
    *,
    engine: str | None = None,
    shared_memory: bool | None = None,
    pipeline_rounds: bool | None = None,
    sampling_scheme: str | None = None,
):
    """Override round-engine knobs on every trainer built in the block.

    The experiment generators construct their own :class:`TrainerConfig`;
    this is how the CLI's ``--engine`` / ``--no-shared-memory`` /
    ``--pipeline-rounds`` / ``--sampling-scheme`` flags reach them without
    the generators knowing about any of it (the same ambient pattern as
    ``parallel.activated``). Only the knobs passed non-None are
    overridden; the trainer applies them with ``dataclasses.replace``,
    never mutating the caller's config.
    """
    global _active_engine_overrides
    overrides = {
        k: v
        for k, v in {
            "engine": engine,
            "shared_memory": shared_memory,
            "pipeline_rounds": pipeline_rounds,
            "sampling_scheme": sampling_scheme,
        }.items()
        if v is not None
    }
    previous = _active_engine_overrides
    _active_engine_overrides = overrides
    try:
        yield overrides
    finally:
        _active_engine_overrides = previous


@dataclass
class TrainerConfig:
    """Hyperparameters of one Group-FEL run (Algorithm 1's inputs).

    Attributes mirror the paper's notation: ``group_rounds`` = K,
    ``local_rounds`` = E, ``num_sampled`` = S = |S_t|.

    ``faults`` accepts a :class:`repro.faults.FaultPlan` or a spec string
    (the CLI grammar, e.g. ``"dropout:0.2,straggler:0.1:2.0"``) — a string
    is parsed with a plan seed derived from ``seed``, so the whole faulted
    run replays from the one config.

    ``population`` accepts a :class:`repro.population.PopulationModel` or a
    spec string (e.g. ``"start:0.7,join:1.0,leave:0.02,drift:0.1:0.4"``)
    scheduling client churn and label drift; the trainer then needs its
    ``grouper=``/``edge_assignment=`` parameters so groups can be
    maintained online as the population evolves.

    ``checkpoint_every`` sets the auto-save cadence (in global rounds) used
    when the trainer has a checkpoint directory (its ``checkpoint_dir=``
    parameter, or the ambient :class:`repro.checkpoint.CheckpointPolicy`);
    None defers to the policy's cadence, defaulting to every round.
    """

    group_rounds: int = 5
    local_rounds: int = 2
    num_sampled: int = 4
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    sampling_method: str = "esrcov"
    #: how S_t is drawn from p: "sequential_wor" (the paper's sequential
    #: renormalized draw, default), "multinomial" (with replacement — the
    #: scheme under which Eq. 4's S·p_g weights are provably exact), or
    #: "stratified" (one draw per p-mass-balanced stratum; Fraboni's
    #: clustered sampling). Unbiased weights always divide by the scheme's
    #: true expected multiplicity (see repro.sampling.schemes).
    sampling_scheme: str = "sequential_wor"
    aggregation_mode: AggregationMode | str = AggregationMode.BIASED
    min_prob: float = 0.0
    step_mode: str = "epoch"
    eval_every: int = 1
    max_rounds: int = 100
    cost_budget: float | None = None
    regroup_every: int | None = None
    use_secure_aggregation: bool = False
    use_backdoor_defense: bool = False
    client_dropout_prob: float = 0.0
    parallel_backend: str = "serial"
    #: local-training engine: "auto" uses the stacked batched engine
    #: (repro.nn.batched) whenever the model/strategy support it,
    #: "batched" forces it, "reference" keeps the per-client loop
    engine: str = "auto"
    #: process backend only: move global params and group results through
    #: multiprocessing.shared_memory rings instead of per-task pickles
    #: (falls back to pickling transparently if shared memory is
    #: unavailable)
    shared_memory: bool = True
    #: overlap round t's evaluation + checkpoint writes with round t+1's
    #: group compute on a single background thread (bit-identical history;
    #: opt-in)
    pipeline_rounds: bool = False
    faults: FaultPlan | str | None = None
    population: PopulationModel | str | None = None
    checkpoint_every: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.group_rounds < 1:
            raise ValueError(f"group_rounds (K) must be >= 1, got {self.group_rounds}")
        if self.local_rounds < 1:
            raise ValueError(f"local_rounds (E) must be >= 1, got {self.local_rounds}")
        if self.num_sampled < 1:
            raise ValueError(f"num_sampled (S) must be >= 1, got {self.num_sampled}")
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds (T) must be >= 1, got {self.max_rounds}")
        if self.lr <= 0:
            raise ValueError(f"lr must be > 0, got {self.lr}")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {self.momentum}")
        if self.weight_decay < 0.0:
            raise ValueError(
                f"weight_decay must be >= 0, got {self.weight_decay}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.eval_every < 1:
            raise ValueError(f"eval_every must be >= 1, got {self.eval_every}")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1 or None, got {self.checkpoint_every}"
            )
        if not 0.0 <= self.client_dropout_prob < 1.0:
            raise ValueError(
                f"client_dropout_prob must be in [0, 1), got {self.client_dropout_prob}"
            )
        if self.parallel_backend not in available_backends():
            raise ValueError(
                f"parallel_backend must be one of {available_backends()}, "
                f"got {self.parallel_backend!r}"
            )
        if self.engine not in ("auto", "batched", "reference"):
            raise ValueError(
                f"engine must be 'auto', 'batched' or 'reference', "
                f"got {self.engine!r}"
            )
        known_sampling = ("random", *sorted(WEIGHT_FUNCTIONS), *ADAPTIVE_METHODS)
        if self.sampling_method not in known_sampling:
            raise ValueError(
                f"sampling_method must be one of {sorted(known_sampling)}, "
                f"got {self.sampling_method!r}"
            )
        if self.sampling_scheme not in SCHEMES:
            raise ValueError(
                f"sampling_scheme must be one of {sorted(SCHEMES)}, "
                f"got {self.sampling_scheme!r}"
            )
        self.aggregation_mode = AggregationMode(self.aggregation_mode)
        if isinstance(self.faults, str):
            self.faults = FaultPlan.from_spec(
                self.faults, seed=derive_seed(self.seed, "faults")
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan or spec string, got {self.faults!r}"
            )
        if isinstance(self.population, str):
            self.population = PopulationModel.from_spec(
                self.population, seed=derive_seed(self.seed, "population")
            )
        if self.population is not None and not isinstance(
            self.population, PopulationModel
        ):
            raise TypeError(
                f"population must be a PopulationModel or spec string, "
                f"got {self.population!r}"
            )


@dataclass
class _WorkerContext:
    """Round-invariant state shipped to pool workers **once per pool**.

    The trainer registers one context per pool lifetime under a unique
    token (``ParallelMap.register_worker_state``); the process-pool
    initializer installs it in every worker, so per-round dispatch never
    re-pickles the federated dataset or the model factory. Group operations
    are *reconstructed* in the worker from these config flags (the trainer
    holds unpicklable state — live telemetry, pools), so custom
    ``backdoor_detector`` / secure-aggregator instances only ride along on
    the serial/thread backends.
    """

    model_fn: object
    #: the full client list (object path) or None (columnar path — the
    #: sampled clients ride in each round's :class:`_GroupTask` instead)
    clients: list | None
    lr: float
    momentum: float
    weight_decay: float
    group_rounds: int
    local_rounds: int
    batch_size: int
    step_mode: str
    strategy: LocalStrategy
    use_secagg: bool
    use_backdoor: bool
    dropout_threshold: int | None
    dropout_prob: float
    payload_factor: int
    compressor: object = None
    attackers: dict = field(default_factory=dict)
    fault_plan: FaultPlan | None = None
    engine: str = "auto"


@dataclass
class _GroupTask:
    """The per-round delta a worker needs on top of its registered context:
    the current global model, which group to run, and the round's RNG."""

    token: str
    group: Group
    rng: np.random.Generator
    #: the round's global model — a plain array (pickled with the task) or,
    #: on the shared-memory path, a :class:`repro.shm.ShmView` descriptor
    #: the worker resolves against the params ring
    global_params: np.ndarray | ShmView
    round_idx: int
    #: columnar path only: this group's lazily-materialized clients
    #: (zero-copy views in-process; pickled by the pool for workers —
    #: only the ~|g| sampled clients cross, never the population)
    clients: dict | None = None
    #: shared-memory path only: the result-ring slot this task's group
    #: model is written to (the worker then returns ``None`` params)
    result: ShmView | None = None


def _process_group_worker(task: _GroupTask) -> tuple[np.ndarray, list[FaultEvent]]:
    """Run one group round in a worker process (module-level: picklable)."""
    ctx: _WorkerContext = worker_state(task.token)
    model = ctx.model_fn()
    optimizer = SGD(
        model, lr=ctx.lr, momentum=ctx.momentum, weight_decay=ctx.weight_decay
    )
    secure_aggregator = (
        SecureAggregator(payload_factor=ctx.payload_factor, telemetry=NULL_TELEMETRY)
        if ctx.use_secagg
        else None
    )
    backdoor_detector = (
        BackdoorDetector(telemetry=NULL_TELEMETRY) if ctx.use_backdoor else None
    )
    dropout_aggregator = None
    if ctx.dropout_threshold is not None:
        from repro.secure.dropout import DropoutTolerantAggregator

        dropout_aggregator = DropoutTolerantAggregator(threshold=ctx.dropout_threshold)
    # The context persists across this worker's tasks, but per-task
    # semantics must match a freshly-pickled payload: stateful compressors
    # (ErrorFeedback residuals) must not accumulate across groups here when
    # they would not have under per-task shipping.
    compressor = copy.deepcopy(ctx.compressor) if ctx.compressor is not None else None
    events: list[FaultEvent] = []
    clients = task.clients if task.clients is not None else ctx.clients
    global_params = task.global_params
    if isinstance(global_params, ShmView):
        # Zero-copy receive: map the parent's params ring instead of
        # unpickling a P-sized array (run_group_round copies immediately,
        # so the view never outlives the slot's validity).
        global_params = global_params.resolve()
    params = run_group_round(
        model,
        optimizer,
        task.group,
        clients,
        global_params,
        group_rounds=ctx.group_rounds,
        local_rounds=ctx.local_rounds,
        batch_size=ctx.batch_size,
        rng=task.rng,
        strategy=ctx.strategy,
        step_mode=ctx.step_mode,
        secure_aggregator=secure_aggregator,
        backdoor_detector=backdoor_detector,
        round_id=task.round_idx,
        compressor=compressor,
        dropout_prob=ctx.dropout_prob,
        dropout_aggregator=dropout_aggregator,
        update_transforms=ctx.attackers or None,
        telemetry=NULL_TELEMETRY,
        fault_plan=ctx.fault_plan,
        fault_events=events,
        engine=ctx.engine,
    )
    if task.result is not None:
        # Zero-copy return: write the group model into this task's shared-
        # memory slot; only the (slot descriptor, events) pickle crosses
        # back to the parent.
        task.result.resolve()[:] = params
        return None, events
    return params, events


#: unique worker-state registration tokens (one per trainer instance)
_TOKEN_COUNTER = itertools.count()


class GroupFELTrainer:
    """Run group-based federated edge learning (Algorithm 1).

    Parameters
    ----------
    model_fn:
        Zero-argument factory producing a fresh model (fresh instances are
        needed per parallel worker; the serial path builds one). Must be
        picklable (a module-level function) for the ``process`` backend.
    fed:
        The federated dataset (clients, shards, global test set) — either
        a :class:`FederatedDataset` or a data-bearing
        :class:`repro.population.ColumnarPopulation`
        (``fed.to_columnar()``). The columnar path materializes only the
        sampled ~S·|g| clients per round as zero-copy views and is
        bit-identical to the object path on every backend
        (``tests/population/test_columnar_equivalence.py``).
    groups:
        The formed groups G (from ``group_clients_per_edge``).
    config:
        Hyperparameters.
    cost_model:
        Eq. (5) calibration; defaults to unit costs (H(n)=n, O(s)=s²).
    strategy:
        Local-update strategy (plain / FedProx / SCAFFOLD).
    grouper / edge_assignment:
        Only needed when ``config.regroup_every`` is set: the trainer
        re-runs group formation on this grouper every R rounds (§6.1's
        remark on utilizing leftover data via regrouping).
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` facade. When given (or
        ambiently activated via ``repro.telemetry.activated``), every round
        emits nested wall-clock spans (``round > group > client_update /
        secagg / backdoor / aggregate``) plus cost/sampling/aggregation
        metrics — and, under a fault plan, the ``faults.*`` /
        ``secagg.reconstructions`` counters.
    parallel:
        Optional shared :class:`repro.parallel.ParallelMap` to run group
        rounds on (it stays open when this trainer closes). Defaults to
        the ambient instance (``repro.parallel.activated``), else a fresh
        persistent pool built from ``config.parallel_backend`` that this
        trainer owns and shuts down in :meth:`close`. On the ``process``
        backend the federated dataset and model factory are registered as
        one-time worker state, so per-round dispatch ships only the global
        parameters, the group, and the round RNG.
    checkpoint_dir:
        Directory for crash-safe auto-checkpoints: :meth:`run` saves
        complete trainer state every ``config.checkpoint_every`` rounds
        (default: every round) via :class:`repro.checkpoint.CheckpointManager`.
        Omitted, the ambient :class:`repro.checkpoint.CheckpointPolicy`
        (``repro.checkpoint.checkpointing_activated``) applies, each trainer
        writing under ``policy.dir/<label>/`` — and auto-resuming from the
        latest checkpoint at construction when the policy says so.

    Fault injection
    ---------------
    ``config.faults`` (or an ambient plan installed via
    ``repro.faults.plan_activated``) schedules client dropouts, stragglers,
    uplink message loss, and whole-group failures. Decisions are pure
    functions of the plan seed and the site ids, so a faulted run replays
    bit-identically on any parallel backend. Injected events accumulate in
    :attr:`fault_trace`; straggler/retry wall-clock folds into the cost
    ledger's fault-overhead series and the wall-clock simulator.
    """

    def __init__(
        self,
        model_fn,
        fed: FederatedDataset,
        groups: list[Group],
        config: TrainerConfig | None = None,
        cost_model: CostModel | None = None,
        strategy: LocalStrategy | None = None,
        grouper: Grouper | None = None,
        edge_assignment: list[np.ndarray] | None = None,
        label: str = "group-fel",
        callbacks: list | None = None,
        compressor=None,
        wallclock=None,
        attackers: dict | None = None,
        backdoor_detector: BackdoorDetector | None = None,
        telemetry: Telemetry | None = None,
        parallel: ParallelMap | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
    ):
        #: resolved once at construction: the explicit instance, the
        #: ambient one (``repro.telemetry.activated``), or the no-op null.
        self.telemetry = resolve_telemetry(telemetry)
        self.model_fn = model_fn
        self.fed = fed
        #: columnar populations materialize clients lazily per round; the
        #: object path ships the full client list into workers once.
        self._columnar = isinstance(fed, ColumnarPopulation)
        if self._columnar and not fed.has_data:
            raise ValueError(
                "cannot train on a metadata-only ColumnarPopulation — build "
                "it from a FederatedDataset (fed.to_columnar()) so clients "
                "can be materialized"
            )
        self.groups = list(groups)
        self.config = config or TrainerConfig()
        if _active_engine_overrides:
            # CLI-level round-engine knobs (see engine_overrides_activated);
            # replace() keeps the caller's config object untouched.
            self.config = replace(self.config, **_active_engine_overrides)
        self.cost_model = cost_model or CostModel(
            training=LinearCost(c1=1.0), group_op=QuadraticCost(c2=1.0)
        )
        self.strategy = strategy or PlainSGDStrategy()
        self.grouper = grouper
        self.edge_assignment = edge_assignment
        self.label = label
        if self.config.regroup_every is not None and (
            grouper is None or edge_assignment is None
        ):
            raise ValueError("regroup_every requires grouper and edge_assignment")

        #: resolved fault plan: the config's, else the ambient one (see
        #: ``repro.faults.plan_activated``), else None. An empty plan
        #: (no injectors) counts as no plan.
        plan = (
            self.config.faults
            if self.config.faults is not None
            else get_active_plan()
        )
        self.fault_plan: FaultPlan | None = plan if plan else None
        #: every fault injected so far (see ``FaultTrace.signature`` for
        #: the deterministic-replay fingerprint)
        self.fault_trace = FaultTrace()

        #: resolved population model: the config's, else the ambient one
        #: (see ``repro.population.population_activated``), else None. An
        #: empty model (no dynamics) counts as no model.
        population = (
            self.config.population
            if self.config.population is not None
            else get_active_population()
        )
        self.population: PopulationModel | None = population if population else None
        if self.population is not None and (
            grouper is None or edge_assignment is None
        ):
            if self.config.population is not None:
                raise ValueError(
                    "population dynamics require grouper and edge_assignment "
                    "(online group maintenance re-forms groups as clients "
                    "churn)"
                )
            # Ambient model, but this trainer cannot maintain groups —
            # skip rather than silently corrupt the static partition.
            warnings.warn(
                "ambient population model ignored: trainer has no "
                "grouper/edge_assignment",
                RuntimeWarning,
                stacklevel=2,
            )
            self.population = None

        self.rng = make_rng(self.config.seed)
        self.model: Model = model_fn()
        self.optimizer = SGD(
            self.model,
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        self.global_params = self.model.get_params()
        self.ledger = CostLedger(
            self._effective_cost_model(), fed.client_sizes(),
            telemetry=self.telemetry,
        )
        self.history = TrainingHistory(label=label)
        #: population engine (None for a static population): applies churn
        #: and drift at round boundaries, maintains the groups online, and
        #: records the replayable population trace.
        self.population_engine: PopulationEngine | None = None
        if self.population is not None:
            self.population_engine = PopulationEngine(
                self.population,
                fed,
                grouper,
                edge_assignment,
                self.groups,
                telemetry=self.telemetry,
            )
            # The model's start fraction may shrink the initial partition.
            self.groups = self.population_engine.groups
            self.history.extra["population_active"] = []
        self.sampler = self._make_sampler()
        self.secure_aggregator = (
            SecureAggregator(
                payload_factor=self.strategy.payload_factor,
                telemetry=self.telemetry,
            )
            if self.config.use_secure_aggregation
            else None
        )
        if backdoor_detector is not None:
            self.backdoor_detector: BackdoorDetector | None = backdoor_detector
        else:
            self.backdoor_detector = (
                BackdoorDetector(telemetry=self.telemetry)
                if self.config.use_backdoor_defense
                else None
            )
        # Dropouts + secure aggregation together require the recovery
        # protocol (survivors reconstruct dropped clients' masks). A fault
        # plan that can lose uploads post-masking needs it too.
        self.dropout_aggregator = None
        plan_drops = self.fault_plan is not None and (
            self.fault_plan.has_dropout or self.fault_plan.has_message_loss
        )
        if self.config.use_secure_aggregation and (
            self.config.client_dropout_prob > 0 or plan_drops
        ):
            from repro.secure.dropout import DropoutTolerantAggregator

            self.dropout_aggregator = DropoutTolerantAggregator(threshold=2)
        self.strategy.init_run(self.model.num_params, fed.num_clients)
        self.callbacks = list(callbacks or [])
        #: optional update compressor / ErrorFeedback (repro.compression)
        self.compressor = compressor
        #: optional WallClockSimulator: records per-round simulated latency
        #: into history.extra["wall_clock_s"]
        self.wallclock = wallclock
        if wallclock is not None:
            self.history.extra["wall_clock_s"] = []
        if self.fault_plan is not None:
            self.history.extra["fault_delay_s"] = []
        #: client_id -> Attack (model-poisoning transforms; repro.attacks)
        self.attackers = dict(attackers or {})
        #: groups sampled each round (feeds participation/fairness metrics)
        self.sampled_history: list[list[Group]] = []
        self.round_idx = 0

        # ---------------------------------------------------- parallel pool
        # Explicit pool > ambient pool > own persistent pool. Shared pools
        # are never closed here; owned ones are (see close()).
        ambient_pmap = get_active_parallel()
        if parallel is not None:
            self._pmap = parallel
            self._owns_pool = False
        elif ambient_pmap is not None:
            self._pmap = ambient_pmap
            self._owns_pool = False
        else:
            self._pmap = ParallelMap(
                self.config.parallel_backend, telemetry=self.telemetry
            )
            self._owns_pool = True
        self._closed = False
        #: shared-memory dispatch channel (process backend, built lazily on
        #: first process-pool round; None after a setup failure)
        self._shm: ShmChannel | None = None
        self._shm_failed = False
        #: pipelined-rounds state: the single background worker (created
        #: per run()) and its not-yet-joined futures
        self._pipeline_pending: list = []
        self._eval_model: Model | None = None
        #: span id of the most recently *finished* round — the async
        #: evaluation of round t parents its span here so the span tree
        #: stays per-round even when the eval overlaps round t+1
        self._last_round_span_id: int | None = None
        #: worker-state registration token; unique per trainer instance
        self._worker_token = f"trainer/{label}/{next(_TOKEN_COUNTER)}"
        if self._pmap.backend == "process":
            # One-time shipment of the round-invariant heavy state: the
            # dataset and model factory cross into workers once per pool,
            # not once per task.
            self._pmap.register_worker_state(
                self._worker_token, self._worker_context()
            )

        # ------------------------------------------------- checkpointing
        # Explicit directory > ambient policy > none. Under a policy each
        # trainer namespaces its own subdirectory by label; auto-resume
        # (policy.resume) must run after the pool is set up because it
        # re-registers worker state.
        policy = get_active_checkpoint_policy()
        self.checkpoint_manager: CheckpointManager | None = None
        if checkpoint_dir is not None:
            self.checkpoint_manager = CheckpointManager(
                checkpoint_dir,
                every=self.config.checkpoint_every or 1,
                telemetry=self.telemetry,
            )
        elif policy is not None:
            self.checkpoint_manager = manager_for_label(
                policy,
                label,
                every=self.config.checkpoint_every,
                telemetry=self.telemetry,
            )
            if policy.resume:
                latest = self.checkpoint_manager.latest()
                if latest is not None:
                    self.load_checkpoint(latest)

    # ------------------------------------------------------------------ plumbing
    def _worker_context(self) -> _WorkerContext:
        """The round-invariant payload process workers receive once."""
        cfg = self.config
        return _WorkerContext(
            model_fn=self.model_fn,
            clients=None if self._columnar else self.fed.clients,
            lr=cfg.lr,
            momentum=cfg.momentum,
            weight_decay=cfg.weight_decay,
            group_rounds=cfg.group_rounds,
            local_rounds=cfg.local_rounds,
            batch_size=cfg.batch_size,
            step_mode=cfg.step_mode,
            strategy=self.strategy,
            use_secagg=cfg.use_secure_aggregation,
            use_backdoor=cfg.use_backdoor_defense,
            dropout_threshold=(
                self.dropout_aggregator.threshold
                if self.dropout_aggregator is not None
                else None
            ),
            dropout_prob=cfg.client_dropout_prob,
            payload_factor=self.strategy.payload_factor,
            compressor=self.compressor,
            attackers=self.attackers,
            fault_plan=self.fault_plan,
            engine=cfg.engine,
        )

    def _fresh_model_and_optimizer(self) -> tuple[Model, SGD]:
        """A fresh model+optimizer pair for one group round.

        Every backend builds a new pair per group so no optimizer state
        (SGD momentum buffers, step counters) can leak between groups or
        across rounds — the serial path used to reuse one shared pair,
        silently diverging from the pooled backends.
        """
        model = self.model_fn()
        optimizer = SGD(
            model,
            lr=self.config.lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        return model, optimizer

    def close(self) -> None:
        """Release the parallel pool (shut down if owned) and any
        shared-memory dispatch segments. Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._owns_pool:
            self._pmap.close()
        else:
            self._pmap.unregister_worker_state(self._worker_token)
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def __enter__(self) -> "GroupFELTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _effective_cost_model(self) -> CostModel:
        """Fold the strategy's compute/payload factors into the cost model."""
        cm = self.cost_model
        t = cm.training
        g = cm.group_op
        tf = self.strategy.training_factor
        pf = self.strategy.payload_factor
        if tf == 1.0 and pf == 1:
            return cm
        return CostModel(
            training=LinearCost(c0=t.c0 * tf, c1=t.c1 * tf),
            group_op=QuadraticCost(c0=g.c0 * pf, c1=g.c1 * pf, c2=g.c2 * pf),
            name=f"{cm.name}×{self.strategy.name}",
        )

    def _make_sampler(self) -> GroupSampler:
        sampler = GroupSampler(
            self.groups,
            method=self.config.sampling_method,
            num_sampled=min(self.config.num_sampled, len(self.groups)),
            mode=self.config.aggregation_mode,
            min_prob=self.config.min_prob,
            rng=self.rng.spawn(1)[0],
            telemetry=self.telemetry,
            scheme=self.config.sampling_scheme,
        )
        if (
            sampler.adaptive is not None
            and getattr(self, "sampler", None) is not None
            and self.sampler.adaptive is not None
        ):
            # Regrouping/churn rebuilt the partition: group identities are
            # new, but the learned norm *scale* carries over as the prior.
            state = self.sampler.adaptive.state_dict()
            sampler.adaptive.load_state_dict(state)
            sampler.adaptive.resize(len(self.groups))
        return sampler

    @property
    def population_trace(self) -> PopulationTrace:
        """Every population event so far (empty for a static population);
        see ``PopulationTrace.signature`` for the replay fingerprint."""
        if self.population_engine is not None:
            return self.population_engine.trace
        return PopulationTrace()

    def _regroup(self) -> None:
        """Re-run group formation (random seeds make new groupings differ)."""
        assert self.grouper is not None and self.edge_assignment is not None
        if self.population_engine is not None:
            # Regroup only the *active* population — the full-pool path
            # below would resurrect departed clients.
            self.population_engine.force_repartition(self.round_idx)
            self.groups = self.population_engine.groups
        else:
            self.groups = group_clients_per_edge(
                self.grouper, self.fed.L, self.edge_assignment,
                rng=self.rng.spawn(1)[0],
            )
        self.sampler = self._make_sampler()
        self._on_groups_changed()

    # ------------------------------------------------------------------ faults
    def _apply_group_failures(
        self, selected: list[Group], weights: np.ndarray
    ) -> tuple[list[Group], np.ndarray, list[FaultEvent]]:
        """Drop whole groups per the fault plan, with graceful degradation.

        Surviving weights are renormalized to preserve the original total
        mass — for biased/stabilized weights (which sum to 1) this is the
        Eq. (35) renormalization over survivors; for unbiased weights it
        keeps the estimator's scale while redistributing the failed
        groups' share. At least one group always survives (the one with
        the largest survival margin, deterministically).
        """
        plan = self.fault_plan
        draws = np.array(
            [plan.group_failure_draw(self.round_idx, g.group_id) for g in selected]
        )
        alive = draws >= 0.0
        if not alive.any():
            alive[int(np.argmax(draws))] = True
        if alive.all():
            return selected, weights, []
        events = [
            FaultEvent("group_failure", self.round_idx, g.group_id)
            for g, a in zip(selected, alive) if not a
        ]
        survivors = [g for g, a in zip(selected, alive) if a]
        weights = weights[alive] * (weights.sum() / weights[alive].sum())
        return survivors, weights, events

    def _meter_faults(self, events: list[FaultEvent]) -> float:
        """Record events in the trace + telemetry; returns their delay sum."""
        if not events:
            return 0.0
        self.fault_trace.extend(events)
        delay = 0.0
        tel = self.telemetry
        for e in events:
            delay += e.delay_s
            if not tel.enabled:
                continue
            if e.kind == "secagg_recovery":
                tel.inc("secagg.reconstructions", float(e.retries))
                continue
            tel.inc("faults.injected")
            tel.inc(f"faults.{e.kind}")
            if e.retries:
                tel.observe("faults.retries", float(e.retries))
            if e.delay_s:
                tel.observe("faults.delay_s", e.delay_s)
        return delay

    # ------------------------------------------------------------------ training
    def _run_one_group(
        self,
        group: Group,
        rng: np.random.Generator,
        model: Model,
        optimizer: SGD,
        parent_span_id: int | None = None,
        start_params: np.ndarray | None = None,
    ) -> tuple[np.ndarray, list[FaultEvent]]:
        events: list[FaultEvent] = []
        params = run_group_round(
            model,
            optimizer,
            group,
            self._clients_for(group),
            self.global_params if start_params is None else start_params,
            group_rounds=self.config.group_rounds,
            local_rounds=self.config.local_rounds,
            batch_size=self.config.batch_size,
            rng=rng,
            strategy=self.strategy,
            step_mode=self.config.step_mode,
            secure_aggregator=self.secure_aggregator,
            backdoor_detector=self.backdoor_detector,
            round_id=self.round_idx,
            compressor=self.compressor,
            dropout_prob=self.config.client_dropout_prob,
            dropout_aggregator=self.dropout_aggregator,
            update_transforms=self.attackers or None,
            telemetry=self.telemetry,
            parent_span_id=parent_span_id,
            fault_plan=self.fault_plan,
            fault_events=events,
            engine=self.config.engine,
        )
        return params, events

    def _clients_for(self, group: Group):
        """What ``run_group_round`` indexes member ids into: the full list
        (object path) or just this group's materialized views (columnar)."""
        if self._columnar:
            return self.fed.materialize(group.members)
        return self.fed.clients

    def _group_task(
        self,
        group: Group,
        rng: np.random.Generator,
        global_params: "np.ndarray | ShmView | None" = None,
        result: ShmView | None = None,
    ) -> _GroupTask:
        """The small per-round dispatch delta (see :class:`_WorkerContext`).

        On the columnar path the task also carries the group's materialized
        clients — current as of this round, so label drift needs no worker
        re-shipping — and only those ~|g| clients ever cross the pool. On
        the shared-memory path ``global_params`` is a ring descriptor and
        ``result`` names the slot the worker writes the group model to.
        """
        return _GroupTask(
            token=self._worker_token,
            group=group,
            rng=rng,
            global_params=(
                self.global_params if global_params is None else global_params
            ),
            round_idx=self.round_idx,
            clients=self.fed.materialize(group.members) if self._columnar else None,
            result=result,
        )

    def _shm_channel(self) -> ShmChannel | None:
        """The lazily-built shared-memory dispatch channel, or None when
        disabled by config or unavailable on this platform (in which case
        dispatch transparently falls back to per-task pickles)."""
        if not self.config.shared_memory or self._shm_failed:
            return None
        if self._shm is None:
            try:
                self._shm = ShmChannel(self.model.num_params)
            except Exception as exc:
                self._shm_failed = True
                warnings.warn(
                    f"shared-memory dispatch unavailable ({exc!r}); process "
                    "backend falls back to per-task pickles",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return None
        return self._shm

    def _execute_groups(
        self,
        selected: list[Group],
        group_rngs: list[np.random.Generator],
        start_params: np.ndarray,
        round_span_id: int | None,
    ) -> list[tuple[np.ndarray, list[FaultEvent]]]:
        """Train ``selected`` from ``start_params`` on the configured backend.

        Returns one ``(group_params, fault_events)`` pair per group, in
        order. Shared-memory results are copied out of the ring before
        returning, so callers may invoke this several times per round
        (clustered trainers do — once per cluster, each from a different
        start vector) without slot-reuse hazards.
        """
        # SCAFFOLD mutates shared control-variate state per client; run
        # its groups serially regardless of the configured backend.
        # Single-group rounds also run serially: pool dispatch buys
        # nothing, and the process path would route group ops through
        # NULL_TELEMETRY, losing their spans and counters.
        stateful = self.strategy.name == "scaffold"
        if (
            self._pmap.backend == "serial"
            or stateful
            or len(selected) <= 1
        ):
            results = []
            for g, r in zip(selected, group_rngs):
                model, opt = self._fresh_model_and_optimizer()
                results.append(
                    self._run_one_group(g, r, model, opt, start_params=start_params)
                )
        elif self._pmap.backend == "thread":
            def work(args):
                group, grng = args
                model, opt = self._fresh_model_and_optimizer()
                return self._run_one_group(
                    group,
                    grng,
                    model,
                    opt,
                    parent_span_id=round_span_id,
                    start_params=start_params,
                )

            results = self._pmap.map(work, list(zip(selected, group_rngs)))
        else:
            # Process pool: the dataset/model factory already live in
            # the workers (one-time registration); ship only the small
            # per-round deltas (group ops are rebuilt in the worker;
            # spans stay parent-side). With shared memory, the start
            # params go out and the group models come back through shm
            # rings — each task pickle carries two ~100-byte slot
            # descriptors instead of two P-sized float64 arrays.
            channel = self._shm_channel()
            if channel is not None:
                params_ref: np.ndarray | ShmView = channel.publish_params(
                    start_params
                )
                slots: list[ShmView | None] = channel.result_slots(
                    len(selected)
                )
            else:
                params_ref = start_params
                slots = [None] * len(selected)
            tasks = [
                self._group_task(g, r, global_params=params_ref, result=s)
                for g, r, s in zip(selected, group_rngs, slots)
            ]
            results = self._pmap.map(_process_group_worker, tasks)
            if channel is not None:
                # Workers signalled the zero-copy path with None params;
                # copy their slots out of the ring so a later dispatch
                # (same round or next) can reuse it safely.
                results = [
                    (
                        np.array(channel.result_array(i))
                        if params is None
                        else params,
                        events,
                    )
                    for i, (params, events) in enumerate(results)
                ]
        return results

    def _train_selected(
        self,
        selected: list[Group],
        weights: np.ndarray,
        group_rngs: list[np.random.Generator],
        round_span_id: int | None,
        round_events: list[FaultEvent],
    ) -> None:
        """Run the sampled groups and fold their models into the global one.

        The default implementation starts every group from
        ``self.global_params`` and replaces it with the Eq. (4) weighted
        average. Clustered trainers override this to route groups through
        per-cluster center models instead.
        """
        tel = self.telemetry
        results = self._execute_groups(
            selected, group_rngs, self.global_params, round_span_id
        )
        group_models = [params for params, _ in results]
        for _, events in results:
            round_events.extend(events)

        stacked = np.vstack(group_models)
        if self.sampler.adaptive is not None:
            # Heterogeneity-guided feedback: observed ‖Δ_g‖ refines the
            # variance-optimal p for the *next* round's draw. Norms are
            # pure functions of the (bit-identical) group models, so
            # the p trajectory replays on every backend.
            self.sampler.observe_update_norms(
                selected,
                np.linalg.norm(stacked - self.global_params, axis=1),
            )
        normalize = self.config.aggregation_mode is not AggregationMode.UNBIASED
        with tel.span("cloud_aggregate", num_groups=len(selected)):
            self.global_params = weighted_average(
                stacked, weights, normalize=normalize
            )
        if tel.enabled:
            tel.inc("cloud_bytes_aggregated", float(stacked.nbytes))
            tel.inc("cloud_params_averaged", float(stacked.size))

    def _on_groups_changed(self) -> None:
        """Hook: the group partition was rebuilt (population churn or a
        scheduled regroup). Clustered trainers refresh cluster
        assignments here; the base trainer needs nothing."""

    # ----------------------------------------------------- subclass checkpoints
    def extra_state_dict(self) -> dict | None:
        """Subclass-owned evolving state to fold into checkpoints (cluster
        centers, assignments, ...). ``None`` means nothing extra."""
        return None

    def load_extra_state_dict(self, state: dict | None) -> None:
        """Restore what :meth:`extra_state_dict` captured. The base trainer
        has no extra state, so a truthy payload means the checkpoint came
        from a different trainer class."""
        if state:
            raise ValueError(
                f"checkpoint carries extra trainer state {sorted(state)} but "
                f"{type(self).__name__} does not define load_extra_state_dict"
            )

    def train_round(self) -> float:
        """Execute one global round (Lines 6–15); returns its cost."""
        tel = self.telemetry
        with tel.span("round", index=self.round_idx):
            if self.population_engine is not None:
                with tel.span("population", index=self.round_idx):
                    pop_step = self.population_engine.step(self.round_idx)
                if pop_step.groups_changed:
                    # Membership or counts changed: sampling probabilities
                    # and the Eq. (4) weights are pure functions of the
                    # groups, so rebuild the sampler — and only then.
                    self.groups = self.population_engine.groups
                    self.sampler = self._make_sampler()
                    self._on_groups_changed()
                if (
                    pop_step.data_changed
                    and self._pmap.backend == "process"
                    and not self._columnar
                ):
                    # Label drift mutated client shards; pool workers hold
                    # pickled copies and must be re-shipped the new data.
                    # (Columnar runs skip this: each round's tasks carry
                    # freshly-materialized views of the drifted store.)
                    self._pmap.register_worker_state(
                        self._worker_token, self._worker_context()
                    )
                self.history.extra["population_active"].append(
                    self.population_engine.num_active
                )
            with tel.span("sample"):
                selected, weights = self.sampler.sample()
            round_events: list[FaultEvent] = []
            if self.fault_plan is not None:
                selected, weights, failures = self._apply_group_failures(
                    selected, weights
                )
                round_events.extend(failures)
            self.sampled_history.append(selected)
            group_rngs = self.rng.spawn(len(selected))
            # Worker threads have their own span stacks; hand them the round
            # span's id so group spans still parent correctly. The pipeline
            # thread later parents this round's deferred evaluation here
            # too, keeping the span tree per-round under overlap.
            round_span_id = tel.current_span_id()
            self._last_round_span_id = round_span_id

            self._train_selected(
                selected, weights, group_rngs, round_span_id, round_events
            )
            fault_delay = self._meter_faults(round_events)
            self.strategy.after_global_round()
            cost = self.ledger.charge_round(
                selected, self.config.group_rounds, self.config.local_rounds
            )
            if self.fault_plan is not None:
                self.ledger.record_fault_overhead(fault_delay, len(round_events))
                self.history.extra["fault_delay_s"].append(fault_delay)
            if self.wallclock is not None:
                extra = None
                if round_events:
                    extra = {}
                    for e in round_events:
                        if e.delay_s:
                            extra[e.group_id] = extra.get(e.group_id, 0.0) + e.delay_s
                timing = self.wallclock.round_timing(
                    selected,
                    self.ledger.client_sizes,
                    self.config.group_rounds,
                    self.config.local_rounds,
                    extra_group_delay_s=extra,
                )
                self.history.extra["wall_clock_s"].append(timing.total_s)
            self.round_idx += 1
            if (
                self.config.regroup_every
                and self.round_idx % self.config.regroup_every == 0
            ):
                self._regroup()
        return cost

    def evaluate(self) -> tuple[float, float]:
        """(loss, accuracy) of the current global model on the test set."""
        self.model.set_params(self.global_params)
        return self.model.evaluate(self.fed.test.x, self.fed.test.y)

    # ------------------------------------------------------------ checkpointing
    def save_checkpoint(self, path: str | os.PathLike | None = None) -> str:
        """Atomically write complete trainer state; returns the file path.

        With ``path`` the checkpoint goes exactly there; without it, the
        configured :class:`repro.checkpoint.CheckpointManager` stamps the
        file by round under its directory. Either way the write is
        temp-then-rename atomic, and ``checkpoint.saves`` /
        ``checkpoint.bytes`` are recorded when telemetry is enabled.
        """
        tel = self.telemetry
        meta = {
            "label": self.label,
            "round_idx": self.round_idx,
            "config": config_fingerprint(self.config, grouper=self.grouper),
        }
        with tel.span("checkpoint_save", round=self.round_idx):
            state = capture_state(self)
            if path is not None:
                nbytes = write_checkpoint(path, state, meta=meta)
                if tel.enabled:
                    tel.inc("checkpoint.saves")
                    tel.inc("checkpoint.bytes", float(nbytes))
                return os.fspath(path)
            if self.checkpoint_manager is None:
                raise ValueError(
                    "save_checkpoint() needs a path when the trainer has no "
                    "checkpoint_dir (and no ambient checkpoint policy)"
                )
            return self.checkpoint_manager.save(state, self.round_idx, meta=meta)

    def load_checkpoint(
        self, path: str | os.PathLike, strict: bool = True
    ) -> "GroupFELTrainer":
        """Resume from a checkpoint file (or the latest in a directory).

        Restores every piece of evolving state — model, RNG streams
        (including spawn counters), strategy state, history, ledger, fault
        trace, sampler — so continuing :meth:`run` reproduces the
        uninterrupted run bit for bit on any backend. On the ``process``
        backend the worker pool's one-time state is re-registered so pool
        workers see the restored strategy/compressor state too.

        With ``strict`` (default) the checkpoint's recorded config
        fingerprint must match this trainer's config exactly.
        """
        path = os.fspath(path)
        if os.path.isdir(path):
            latest = CheckpointManager(path).latest()
            if latest is None:
                raise FileNotFoundError(f"no checkpoints under {path!r}")
            path = latest
        tel = self.telemetry
        with tel.span("resume", path=path):
            header, state = read_checkpoint(path)
            if strict:
                saved = header.get("config")
                current = config_fingerprint(self.config, grouper=self.grouper)
                if saved is not None and saved != current:
                    diverged = sorted(
                        k
                        for k in set(saved) | set(current)
                        if saved.get(k) != current.get(k)
                    )
                    raise CheckpointError(
                        f"checkpoint {path!r} was written under a different "
                        f"config (fields {diverged}); resuming it would break "
                        "deterministic replay — pass strict=False to override"
                    )
            restore_state(self, state)
            if self._pmap.backend == "process":
                # The restore replaced strategy/compressor/fault state; the
                # pool's registered worker context must follow or workers
                # would train against the pre-crash state.
                self._pmap.register_worker_state(
                    self._worker_token, self._worker_context()
                )
        return self

    def _record_checkpoint(self, budget: float | None, final: bool = False) -> None:
        """Evaluate and record — unless the point would land past the budget.

        The paper's evaluations compare accuracy reached *within* a fixed
        budget (§7.2), so the accuracy-vs-cost curve must never report a
        point whose cumulative cost exceeds it. The round that crosses the
        budget still trains (its cost stays in the ledger and is surfaced
        via ``history.extra["budget_overshoot"]``), but its checkpoint is
        not recorded. Degenerate case: if the very first round overshoots,
        the final checkpoint is recorded with the cost clamped to the
        budget (flagged as ``budget_clamped``) so the curve is non-empty.
        """
        cost = self.ledger.total
        if budget is not None and cost > budget:
            if not (final and not self.history.rounds):
                return
            cost = budget
            self.history.extra["budget_clamped"] = True
        loss, acc = self.evaluate()
        self.history.record(self.round_idx, cost, acc, loss)

    # ------------------------------------------------------------ pipelining
    def _drain_pipeline(self) -> None:
        """Join all in-flight pipeline work, re-raising its exceptions."""
        pending, self._pipeline_pending = self._pipeline_pending, []
        for future in pending:
            future.result()

    def _pipeline_record(
        self,
        round_idx: int,
        cost: float,
        params: np.ndarray,
        budget: float | None,
        parent_id: int | None,
    ) -> None:
        """Round-t evaluation, run on the pipeline thread during round t+1.

        ``cost`` and ``params`` were snapshotted at round-t's boundary, so
        the recorded point is identical to the synchronous path's; a
        dedicated eval model keeps ``self.model`` untouched while the main
        thread trains. Budget-overshooting points are skipped exactly like
        :meth:`_record_checkpoint` (the degenerate clamped-first-round case
        is final-only and always handled synchronously after the drain).
        """
        if budget is not None and cost > budget:
            return
        if self._eval_model is None:
            self._eval_model = self.model_fn()
        with self.telemetry.span(
            "evaluate", parent_id=parent_id, round=round_idx, pipelined=True
        ):
            self._eval_model.set_params(params)
            loss, acc = self._eval_model.evaluate(self.fed.test.x, self.fed.test.y)
        self.history.record(round_idx, cost, acc, loss)

    def _pipeline_save(
        self, state: dict, meta: dict, round_idx: int, parent_id: int | None
    ) -> str:
        """Round-t checkpoint write, run on the pipeline thread.

        Only the file I/O overlaps; :func:`capture_state` already ran
        synchronously at the round boundary (the snapshot must precede any
        round-t+1 mutation)."""
        with self.telemetry.span(
            "checkpoint_save", parent_id=parent_id, round=round_idx, pipelined=True
        ):
            return self.checkpoint_manager.save(state, round_idx, meta=meta)

    def run(
        self,
        max_rounds: int | None = None,
        cost_budget: float | None = None,
    ) -> TrainingHistory:
        """Train until the round limit, cost budget, or a callback stops.

        When a cost budget is active and the final round overshoots it,
        ``history.extra`` carries ``budget_exhausted`` (True) and
        ``budget_overshoot`` (how far past the budget the ledger ran); the
        overshooting checkpoint itself is not recorded, so accuracy-vs-cost
        curves end within the budget.

        With a checkpoint directory configured (``checkpoint_dir=`` or the
        ambient policy), complete trainer state is saved atomically every
        ``config.checkpoint_every`` rounds — a crashed run resumes from the
        last boundary via :meth:`load_checkpoint` with bit-identical curves.
        """
        max_rounds = max_rounds if max_rounds is not None else self.config.max_rounds
        budget = cost_budget if cost_budget is not None else self.config.cost_budget
        for cb in self.callbacks:
            cb.on_train_start(self)
        # Pipelined rounds: round t's evaluation and checkpoint file write
        # run on this single background thread while round t+1's group
        # compute proceeds on the main thread. One worker keeps the deferred
        # work FIFO, so history points land in round order and curves are
        # bit-identical to the synchronous path.
        executor: ThreadPoolExecutor | None = None
        if self.config.pipeline_rounds:
            executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-pipeline"
            )
        try:
            stopped = False
            while self.round_idx < max_rounds and not stopped:
                if budget is not None and self.ledger.total >= budget:
                    break
                self.train_round()
                if (
                    self.round_idx % self.config.eval_every == 0
                    or self.round_idx >= max_rounds
                ):
                    if executor is not None:
                        # Snapshot the round boundary now; the next round
                        # rebinds global_params and charges the ledger.
                        self._pipeline_pending.append(
                            executor.submit(
                                self._pipeline_record,
                                self.round_idx,
                                self.ledger.total,
                                self.global_params,
                                budget,
                                self._last_round_span_id,
                            )
                        )
                    else:
                        self._record_checkpoint(budget)
                if (
                    self.checkpoint_manager is not None
                    and self.checkpoint_manager.should_save(self.round_idx)
                ):
                    if executor is not None:
                        # State capture cannot overlap training; only the
                        # atomic file write is deferred. A deferred history
                        # record may still be in flight — it belongs in this
                        # checkpoint (the synchronous path records before
                        # saving), so join it before capturing.
                        self._drain_pipeline()
                        meta = {
                            "label": self.label,
                            "round_idx": self.round_idx,
                            "config": config_fingerprint(
                                self.config, grouper=self.grouper
                            ),
                        }
                        state = capture_state(self)
                        self._pipeline_pending.append(
                            executor.submit(
                                self._pipeline_save,
                                state,
                                meta,
                                self.round_idx,
                                self._last_round_span_id,
                            )
                        )
                    else:
                        self.save_checkpoint()
                if self.callbacks:
                    # Callbacks observe the trainer (history included); give
                    # them the fully-recorded state the serial path would.
                    self._drain_pipeline()
                for cb in self.callbacks:
                    if cb.on_round_end(self, self.round_idx):
                        stopped = True
            self._drain_pipeline()
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
                # Surface any async failure even on an exceptional exit —
                # without masking an exception already in flight.
                pending, self._pipeline_pending = self._pipeline_pending, []
                for future in pending:
                    try:
                        future.result()
                    except Exception:
                        pass
        if budget is not None and self.ledger.total >= budget:
            self.history.extra["budget_exhausted"] = True
            self.history.extra["budget_overshoot"] = max(
                0.0, self.ledger.total - budget
            )
        if not self.history.rounds or self.history.rounds[-1] != self.round_idx:
            self._record_checkpoint(budget, final=True)
        if (
            self.checkpoint_manager is not None
            and self.checkpoint_manager.last_saved_round != self.round_idx
        ):
            # Off-cadence final round: persist it anyway so a later resume
            # can extend the run from its true end state.
            self.save_checkpoint()
        for cb in self.callbacks:
            cb.on_train_end(self)
        return self.history
