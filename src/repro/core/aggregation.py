"""Weighted model aggregation (Lines 14–15 of Algorithm 1)."""

from __future__ import annotations

import numpy as np

__all__ = ["weighted_average"]


def weighted_average(
    param_matrix: np.ndarray,
    weights: np.ndarray,
    normalize: bool = False,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Σ_k w_k · params_k over rows of ``param_matrix``.

    One GEMV over the stacked parameter matrix — the single hot loop of
    every aggregation in the system (group and global), kept allocation-
    free via the optional ``out`` buffer.

    Parameters
    ----------
    param_matrix:
        Shape (models, num_params).
    weights:
        Shape (models,). With ``normalize`` they are scaled to sum to 1
        first (biased / stabilized modes); without, used verbatim
        (unbiased mode, where weights deliberately may not sum to 1).
    """
    param_matrix = np.asarray(param_matrix, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if param_matrix.ndim != 2:
        raise ValueError(f"param_matrix must be 2-D, got shape {param_matrix.shape}")
    if weights.shape != (param_matrix.shape[0],):
        raise ValueError(
            f"weights shape {weights.shape} != ({param_matrix.shape[0]},)"
        )
    if normalize:
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must have positive sum to normalize")
        weights = weights / total
    result = weights @ param_matrix
    if out is not None:
        out[:] = result
        return out
    return result
