"""Callback hooks for GroupFELTrainer.

Callbacks observe (and can stop) a training run without subclassing the
trainer: per-round logging, early stopping on plateau, periodic model
checkpointing, and wall-clock budgets. The trainer invokes them in
registration order after every global round.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.telemetry import NULL_TELEMETRY, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.trainer import GroupFELTrainer

__all__ = [
    "Callback",
    "RoundLogger",
    "EarlyStopping",
    "Checkpointer",
    "TimeBudget",
    "MetricTracker",
    "TelemetryCallback",
]


class Callback:
    """Observer interface; return ``True`` from ``on_round_end`` to stop."""

    def on_train_start(self, trainer: "GroupFELTrainer") -> None:
        """Called once before the first round."""

    def on_round_end(self, trainer: "GroupFELTrainer", round_idx: int) -> bool:
        """Called after each global round; truthy return stops training."""
        return False

    def on_train_end(self, trainer: "GroupFELTrainer") -> None:
        """Called once after the final round."""


class RoundLogger(Callback):
    """Print one line per round (or every ``every`` rounds)."""

    def __init__(self, every: int = 1, printer=print):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = int(every)
        self.printer = printer

    def on_round_end(self, trainer, round_idx):
        if round_idx % self.every == 0:
            loss, acc = trainer.evaluate()
            self.printer(
                f"[{trainer.label}] round {round_idx:4d} "
                f"cost {trainer.ledger.total:12.0f} acc {acc:.4f} loss {loss:.4f}"
            )
        return False


class EarlyStopping(Callback):
    """Stop when test accuracy hasn't improved by ``min_delta`` for
    ``patience`` consecutive evaluations."""

    def __init__(self, patience: int = 5, min_delta: float = 1e-3):
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best = -np.inf
        self.stale = 0
        self.stopped_at: int | None = None

    def on_train_start(self, trainer):
        self.best = -np.inf
        self.stale = 0
        self.stopped_at = None

    def on_round_end(self, trainer, round_idx):
        _, acc = trainer.evaluate()
        if acc > self.best + self.min_delta:
            self.best = acc
            self.stale = 0
            return False
        self.stale += 1
        if self.stale >= self.patience:
            self.stopped_at = round_idx
            return True
        return False


class Checkpointer(Callback):
    """Keep snapshots of the global model every ``every`` rounds.

    Snapshots are in-memory flat parameter vectors (cheap: one array per
    checkpoint); ``best_params`` additionally tracks the best-accuracy
    model seen.
    """

    def __init__(self, every: int = 5, keep_best: bool = True):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = int(every)
        self.keep_best = bool(keep_best)
        self.snapshots: dict[int, np.ndarray] = {}
        self.best_params: np.ndarray | None = None
        self.best_acc = -np.inf

    def on_round_end(self, trainer, round_idx):
        if round_idx % self.every == 0:
            self.snapshots[round_idx] = trainer.global_params.copy()
        if self.keep_best:
            _, acc = trainer.evaluate()
            if acc > self.best_acc:
                self.best_acc = acc
                self.best_params = trainer.global_params.copy()
        return False


class TimeBudget(Callback):
    """Stop after ``seconds`` of wall-clock time."""

    def __init__(self, seconds: float):
        if seconds <= 0:
            raise ValueError(f"seconds must be positive, got {seconds}")
        self.seconds = float(seconds)
        self._start = 0.0

    def on_train_start(self, trainer):
        self._start = time.perf_counter()

    def on_round_end(self, trainer, round_idx):
        return (time.perf_counter() - self._start) >= self.seconds


class TelemetryCallback(Callback):
    """Bridge a training run to its telemetry: lifecycle events, per-round
    progress gauges, and optional exports when training ends.

    Parameters
    ----------
    telemetry:
        Explicit :class:`repro.telemetry.Telemetry`; default None uses the
        trainer's own (``trainer.telemetry``). A disabled telemetry makes
        every hook a no-op.
    jsonl_path / csv_path / prometheus_path:
        When set, the corresponding export is written on ``on_train_end``.
    summary_printer:
        Callable receiving the ASCII span/metric summary at train end
        (e.g. ``print``).
    """

    def __init__(
        self,
        telemetry: Telemetry | None = None,
        jsonl_path: str | None = None,
        csv_path: str | None = None,
        prometheus_path: str | None = None,
        summary_printer=None,
    ):
        self.telemetry = telemetry
        self.jsonl_path = jsonl_path
        self.csv_path = csv_path
        self.prometheus_path = prometheus_path
        self.summary_printer = summary_printer

    def _tel(self, trainer) -> Telemetry:
        if self.telemetry is not None:
            return self.telemetry
        return getattr(trainer, "telemetry", NULL_TELEMETRY)

    def on_train_start(self, trainer):
        tel = self._tel(trainer)
        if not tel.enabled:
            return
        tel.event(
            "train_start",
            label=trainer.label,
            num_groups=len(trainer.groups),
            num_clients=trainer.fed.num_clients,
            strategy=trainer.strategy.name,
        )

    def on_round_end(self, trainer, round_idx):
        tel = self._tel(trainer)
        if tel.enabled:
            tel.set_gauge("rounds_completed", float(round_idx))
            fields = {"round": round_idx, "cost": trainer.ledger.total}
            # Reuse the trainer's own checkpoint instead of re-evaluating.
            if trainer.history.rounds and trainer.history.rounds[-1] == round_idx:
                fields["accuracy"] = trainer.history.test_acc[-1]
                fields["loss"] = trainer.history.test_loss[-1]
            tel.event("round_end", **fields)
        return False

    def on_train_end(self, trainer):
        tel = self._tel(trainer)
        if not tel.enabled:
            return
        tel.event(
            "train_end",
            label=trainer.label,
            rounds=trainer.round_idx,
            cost=trainer.ledger.total,
        )
        if self.jsonl_path:
            tel.to_jsonl(self.jsonl_path)
        if self.csv_path:
            tel.to_csv(self.csv_path)
        if self.prometheus_path:
            with open(self.prometheus_path, "w") as fh:
                fh.write(tel.to_prometheus())
        if self.summary_printer is not None:
            self.summary_printer(tel.summary())


class MetricTracker(Callback):
    """Record arbitrary per-round metrics via user functions.

    Example::

        tracker = MetricTracker({
            "grad_norm": lambda tr: float(np.linalg.norm(tr.global_params)),
        })
    """

    def __init__(self, metrics: dict):
        self.metric_fns = dict(metrics)
        self.records: dict[str, list[float]] = {k: [] for k in metrics}

    def on_round_end(self, trainer, round_idx):
        for name, fn in self.metric_fns.items():
            self.records[name].append(float(fn(trainer)))
        return False
