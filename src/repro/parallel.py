"""Execution backends for group-parallel simulation.

Algorithm 1 trains the sampled groups of a global round *in parallel*
("for group g in S_t do ⊲ in parallel"). In this simulator each group's
round is an independent pure function of ``(global model, group state)``,
so it maps cleanly onto an executor. Three backends are provided:

* ``serial``  — plain loop; the default, fully deterministic, zero overhead.
* ``thread``  — ``ThreadPoolExecutor``; NumPy's BLAS kernels release the GIL,
  so matrix-heavy local training overlaps well.
* ``process`` — ``ProcessPoolExecutor``; true multiprocess fan-out for large
  models (work items must be picklable).

Results are always returned **in submission order** regardless of backend so
that aggregation order — and therefore floating-point results — is stable.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ParallelMap", "available_backends"]

_BACKENDS = ("serial", "thread", "process")


def available_backends() -> tuple[str, ...]:
    """Names of the supported execution backends."""
    return _BACKENDS


class _StarCall:
    """Picklable adapter that unpacks a tuple into positional arguments.

    A lambda would work for the serial/thread backends but cannot be sent
    to a ``ProcessPoolExecutor`` worker; a module-level class instance can
    (as long as ``fn`` itself is picklable).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[..., R]):
        self.fn = fn

    def __call__(self, args: tuple) -> R:
        return self.fn(*args)


class ParallelMap:
    """Ordered ``map`` over an execution backend.

    Parameters
    ----------
    backend:
        One of ``"serial"``, ``"thread"``, ``"process"``.
    max_workers:
        Worker count for pooled backends. Defaults to ``os.cpu_count()``
        capped at 8 (group counts per round are small; more workers only add
        startup cost — profile before raising, per the optimization guide).
    """

    def __init__(self, backend: str = "serial", max_workers: int | None = None):
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
        self.backend = backend
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item, returning results in input order."""
        if self.backend == "serial" or len(items) <= 1:
            return [fn(item) for item in items]
        if self.backend == "thread":
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(fn, items))
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, items))

    def starmap(self, fn: Callable[..., R], arg_tuples: Sequence[tuple]) -> list[R]:
        """Like :meth:`map` but unpacks each item as positional arguments."""
        return self.map(_StarCall(fn), arg_tuples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelMap(backend={self.backend!r}, max_workers={self.max_workers})"
