"""Execution backends for group-parallel simulation.

Algorithm 1 trains the sampled groups of a global round *in parallel*
("for group g in S_t do ⊲ in parallel"). In this simulator each group's
round is an independent pure function of ``(global model, group state)``,
so it maps cleanly onto an executor. Three backends are provided:

* ``serial``  — plain loop; the default, fully deterministic, zero overhead.
* ``thread``  — ``ThreadPoolExecutor``; NumPy's BLAS kernels release the GIL,
  so matrix-heavy local training overlaps well.
* ``process`` — ``ProcessPoolExecutor``; true multiprocess fan-out for large
  models (work items must be picklable).

Results are always returned **in submission order** regardless of backend so
that aggregation order — and therefore floating-point results — is stable.

Pool lifetime
-------------
A :class:`ParallelMap` is a **long-lived** object: the executor is created
lazily on the first pooled :meth:`map` call and then reused by every
subsequent call until :meth:`close` (or the ``with`` block) shuts it down.
Per-round pool startup — historically the dominant dispatch cost — is paid
once per pool lifetime. Constructing with ``persistent=False`` restores the
old build-map-teardown behaviour; the scaling benchmark uses it as the
pre-change baseline.

Worker state
------------
Large, round-invariant payloads (the federated dataset, the model factory)
should not ride on every task. :meth:`ParallelMap.register_worker_state`
ships a payload to every worker **once per pool lifetime** via the process
pool's initializer; tasks then carry only a registration token and call
:func:`worker_state` inside the worker to look the payload up. The parent
process keeps a mirror of the registry, so the same lookup works on the
serial and thread backends (shared memory) without special-casing.

Telemetry
---------
When a :class:`repro.telemetry.Telemetry` is attached, pooled calls record
``pool.init_s`` (executor construction, once per pool), ``pool.dispatch_s``
(per-call task submission time — the serialization/enqueue overhead, not
the compute), ``pool.tasks`` and ``pool.map_calls`` counters.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Sequence, TypeVar

from repro.telemetry import Telemetry, resolve as resolve_telemetry

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "ParallelMap",
    "available_backends",
    "worker_state",
    "worker_init_count",
    "activated",
    "get_active",
    "set_active",
]

_BACKENDS = ("serial", "thread", "process")


def available_backends() -> tuple[str, ...]:
    """Names of the supported execution backends."""
    return _BACKENDS


# --------------------------------------------------------------------------
# Worker-side state registry.
#
# In a worker process this dict is populated exactly once, by
# ``_pool_initializer`` when the pool spawns the worker. In the parent
# process ``ParallelMap.register_worker_state`` keeps a mirror so lookups
# also resolve on the serial/thread backends.
_WORKER_STATE: dict[str, Any] = {}

#: times ``_pool_initializer`` ran in *this* process — 0 in the parent,
#: and exactly 1 in a healthy pool worker (the one-time-init contract).
_WORKER_INIT_COUNT = 0


def _pool_initializer(state: dict[str, Any]) -> None:
    """Install registered worker state; runs once per worker per pool."""
    global _WORKER_INIT_COUNT
    _WORKER_INIT_COUNT += 1
    _WORKER_STATE.update(state)


def worker_state(token: str) -> Any:
    """Look up a payload registered under ``token`` (worker or parent side)."""
    try:
        return _WORKER_STATE[token]
    except KeyError:
        raise RuntimeError(
            f"no worker state registered under {token!r}; call "
            "ParallelMap.register_worker_state(token, payload) before "
            "dispatching tasks that reference it"
        ) from None


def worker_init_count(_: Any = None) -> int:
    """Initializer invocations in the calling process (test/debug probe).

    Mapping this over a process pool returns one count per executed task;
    every value must be 1 when workers are initialized exactly once. The
    ignored argument lets it ride through ``ParallelMap.map`` unchanged.
    """
    return _WORKER_INIT_COUNT


class _StarCall:
    """Picklable adapter that unpacks a tuple into positional arguments.

    A lambda would work for the serial/thread backends but cannot be sent
    to a ``ProcessPoolExecutor`` worker; a module-level class instance can
    (as long as ``fn`` itself is picklable).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[..., R]):
        self.fn = fn

    def __call__(self, args: tuple) -> R:
        return self.fn(*args)


class ParallelMap:
    """Ordered ``map`` over a lazily-created, reusable execution backend.

    Parameters
    ----------
    backend:
        One of ``"serial"``, ``"thread"``, ``"process"``.
    max_workers:
        Worker count for pooled backends. Defaults to ``os.cpu_count()``
        capped at 8 (group counts per round are small; more workers only add
        startup cost — profile before raising, per the optimization guide).
    persistent:
        When True (default), the executor is created on first use and
        reused across ``map`` calls until :meth:`close`. When False, a
        fresh executor is built and torn down around every pooled call —
        the pre-persistent-pool behaviour, kept as a benchmark baseline.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; defaults to the
        ambient instance. Records the ``pool.*`` counters described in the
        module docstring. Assignable after construction.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int | None = None,
        persistent: bool = True,
        telemetry: Telemetry | None = None,
    ):
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
        self.backend = backend
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.persistent = bool(persistent)
        self.telemetry = resolve_telemetry(telemetry)
        self._executor: Executor | None = None
        self._state: dict[str, Any] = {}
        self._closed = False
        self._lock = threading.Lock()
        #: executors built over this object's lifetime (1 after any number
        #: of persistent ``map`` calls; grows per call when persistent=False)
        self.pools_created = 0

    # ------------------------------------------------------------ lifecycle
    @property
    def has_live_pool(self) -> bool:
        """True while a (persistent) executor is alive."""
        return self._executor is not None

    def _new_executor(self) -> Executor:
        t0 = time.perf_counter()
        if self.backend == "thread":
            ex: Executor = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-pmap"
            )
        else:
            # Worker state ships once, through the initializer, to every
            # worker this pool ever spawns. (Executor construction is cheap;
            # actual process spawn cost lands in the first dispatch.)
            ex = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_pool_initializer,
                initargs=(dict(self._state),),
            )
        self.pools_created += 1
        tel = self.telemetry
        if tel.enabled:
            tel.observe("pool.init_s", time.perf_counter() - t0)
            tel.inc("pool.created")
        return ex

    def _ensure_executor(self) -> Executor:
        with self._lock:
            if self._closed:
                raise RuntimeError("ParallelMap is closed")
            if self._executor is None:
                self._executor = self._new_executor()
            return self._executor

    def register_worker_state(self, token: str, payload: Any) -> None:
        """Register a one-time payload shipped to every worker of this pool.

        The payload is also mirrored into the parent-side registry so
        :func:`worker_state` resolves on the serial/thread backends. If a
        process pool is already live, it is shut down and lazily rebuilt on
        the next ``map`` so the new state reaches fresh workers — register
        *before* the first dispatch to keep the one-startup guarantee.

        The closed-check, state write, and executor swap-out all happen
        under the pool lock: ``_ensure_executor`` snapshots the state dict
        under the same lock, so a concurrent ``map`` can no longer lazily
        build a stale-state executor between this method's check and its
        swap (it either builds before the swap — and the swap tears that
        executor down — or after, seeing the new state). Only the blocking
        ``shutdown`` runs outside the lock.
        """
        stale = None
        with self._lock:
            if self._closed:
                raise RuntimeError("ParallelMap is closed")
            self._state[token] = payload
            _WORKER_STATE[token] = payload
            if self.backend == "process":
                stale, self._executor = self._executor, None
        if stale is not None:
            stale.shutdown(wait=True)

    def unregister_worker_state(self, token: str) -> None:
        """Drop a registered payload (live workers keep a harmless copy)."""
        self._state.pop(token, None)
        _WORKER_STATE.pop(token, None)

    def close(self, wait: bool = True) -> None:
        """Shut the executor down and unregister state. Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            ex, self._executor = self._executor, None
        if ex is not None:
            ex.shutdown(wait=wait)
        for token in list(self._state):
            _WORKER_STATE.pop(token, None)
        self._state.clear()

    def __enter__(self) -> "ParallelMap":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close(wait=False)
        except Exception:
            pass

    # ------------------------------------------------------------- mapping
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item, returning results in input order.

        Pooled backends always dispatch to the pool — there is no silent
        in-process fallback for short item lists, so worker-side effects
        (telemetry routing, worker-state lookups) are the same for one task
        as for many. Callers that want live-telemetry semantics for tiny
        rounds should route them through their own serial path instead.
        """
        if self._closed:
            raise RuntimeError("ParallelMap is closed")
        items = list(items)
        if self.backend == "serial" or not items:
            return [fn(item) for item in items]
        if self.persistent:
            return self._dispatch(self._ensure_executor(), fn, items)
        ex = self._new_executor()
        try:
            return self._dispatch(ex, fn, items)
        finally:
            ex.shutdown(wait=True)

    def _dispatch(self, ex: Executor, fn, items: list) -> list:
        tel = self.telemetry
        t0 = time.perf_counter()
        futures = [ex.submit(fn, item) for item in items]
        if tel.enabled:
            tel.observe("pool.dispatch_s", time.perf_counter() - t0)
            tel.inc("pool.tasks", float(len(items)))
            tel.inc("pool.map_calls")
        return [f.result() for f in futures]

    def starmap(self, fn: Callable[..., R], arg_tuples: Sequence[tuple]) -> list[R]:
        """Like :meth:`map` but unpacks each item as positional arguments."""
        return self.map(_StarCall(fn), arg_tuples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("live" if self.has_live_pool else "idle")
        return (
            f"ParallelMap(backend={self.backend!r}, max_workers={self.max_workers}, "
            f"persistent={self.persistent}, {state})"
        )


# --------------------------------------------------------------------------
# Ambient instance, mirroring repro.telemetry.activated: the CLI installs
# one shared pool so every trainer a figure generator constructs reuses it.
_active: ParallelMap | None = None


def get_active() -> ParallelMap | None:
    """The ambient shared pool, or None when none is installed."""
    return _active


def set_active(pmap: ParallelMap | None) -> ParallelMap | None:
    """Install ``pmap`` ambiently; returns the previous instance."""
    global _active
    previous = _active
    _active = pmap
    return previous


@contextmanager
def activated(pmap: ParallelMap):
    """Install ``pmap`` ambiently for the duration of the block."""
    previous = set_active(pmap)
    try:
        yield pmap
    finally:
        set_active(previous)
