"""Fault injection for Group-FEL simulations.

Seeded, composable failure modes — client dropout (before/mid/after local
steps), stragglers, lossy retrying uplinks, whole-group failures — threaded
through the trainer so the dropout-tolerant SecAgg recovery path, the
Eq. (35) weight renormalization, and the cost/latency accounting are
exercised under realistic edge conditions. Same plan seed ⇒ same fault
trace, on any parallel backend.
"""

from repro.faults.injectors import (
    DROPOUT_PHASES,
    ClientDropout,
    GroupFailure,
    Injector,
    MessageLoss,
    RetryPolicy,
    Straggler,
)
from repro.faults.plan import (
    FaultPlan,
    UplinkOutcome,
    get_active_plan,
    plan_activated,
    set_active_plan,
)
from repro.faults.trace import FaultEvent, FaultTrace

__all__ = [
    "DROPOUT_PHASES",
    "Injector",
    "ClientDropout",
    "Straggler",
    "RetryPolicy",
    "MessageLoss",
    "GroupFailure",
    "FaultPlan",
    "UplinkOutcome",
    "FaultEvent",
    "FaultTrace",
    "get_active_plan",
    "set_active_plan",
    "plan_activated",
]
