"""Fault-event recording with deterministic replay signatures.

Every injected fault becomes a :class:`FaultEvent` appended to the run's
:class:`FaultTrace`. Because injector decisions are pure functions of
``(plan seed, kind, round, group, k, client)`` (see ``repro.faults.plan``),
two runs with the same seed produce the same event *set* regardless of the
execution backend — only the append order differs across thread/process
schedules. :meth:`FaultTrace.signature` therefore hashes the canonically
sorted events, giving a backend-independent replay fingerprint.
"""

from __future__ import annotations

import hashlib
import threading
from collections import Counter
from dataclasses import dataclass, field

__all__ = ["FaultEvent", "FaultTrace"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault.

    ``kind`` is the injector family (``dropout`` / ``straggler`` /
    ``message_loss`` / ``group_failure``); ``phase`` qualifies dropouts
    (``before`` / ``mid`` / ``after``) and message loss (``lost`` when every
    retry failed, ``retried`` when a retry eventually delivered).
    """

    kind: str
    round: int
    group_id: int
    client_id: int | None = None
    k: int | None = None
    phase: str | None = None
    delay_s: float = 0.0
    retries: int = 0

    def key(self) -> tuple:
        """Total ordering key — canonical across execution backends."""
        return (
            self.round,
            self.group_id,
            -1 if self.k is None else self.k,
            -1 if self.client_id is None else self.client_id,
            self.kind,
            self.phase or "",
        )


@dataclass
class FaultTrace:
    """Thread-safe accumulator of the faults injected during a run."""

    events: list[FaultEvent] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __getstate__(self) -> dict:
        """Pickle/checkpoint support: the lock is process-local, drop it."""
        with self._lock:
            return {"events": list(self.events)}

    def __setstate__(self, state: dict) -> None:
        self.events = list(state["events"])
        self._lock = threading.Lock()

    def record(self, event: FaultEvent) -> None:
        with self._lock:
            self.events.append(event)

    def extend(self, events: list[FaultEvent]) -> None:
        with self._lock:
            self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)

    def sorted(self) -> list[FaultEvent]:
        """Events in canonical order (independent of recording order)."""
        return sorted(self.events, key=FaultEvent.key)

    def counts(self) -> Counter:
        """Event count per ``kind`` (``faults.injected`` breakdown)."""
        return Counter(e.kind for e in self.events)

    def total_delay_s(self) -> float:
        """Wall-clock seconds all faults added (stragglers + retries)."""
        return float(sum(e.delay_s for e in self.events))

    def signature(self) -> str:
        """Hex digest of the canonically-sorted trace.

        Equal signatures ⇒ the two runs injected exactly the same faults —
        the deterministic-replay contract (same seed, same signature, on
        any backend).
        """
        h = hashlib.sha256()
        for e in self.sorted():
            h.update(
                f"{e.kind}|{e.round}|{e.group_id}|{e.client_id}|{e.k}|"
                f"{e.phase}|{e.delay_s:.9f}|{e.retries}\n".encode()
            )
        return h.hexdigest()
