"""`FaultPlan` — seeded, composable fault schedules with pure decisions.

Every decision ("does client c drop in group g, group-round k of global
round t?") is computed by deriving a dedicated RNG from the plan seed and
the stable identifiers of the site::

    rng = make_rng(derive_seed(seed, kind, round, group_id, k, client_id))

so decisions are pure functions of *where* they are asked, never of *when*
or *in which order*. That single property buys all three hard guarantees:

* **deterministic replay** — same seed ⇒ same fault trace, bit for bit;
* **backend independence** — serial / thread / process executors ask in
  different orders and from different workers, and still get identical
  answers;
* **composability** — injectors draw from disjoint streams, so adding a
  straggler injector does not reshuffle the dropout schedule.

A plan is picklable (seed + frozen injector dataclasses), so it crosses
process-pool boundaries intact.

Spec grammar (the CLI's ``--faults`` flag)
------------------------------------------
Comma-separated ``name:prob[:param][@phase]`` terms::

    dropout:0.2            20% per-client dropout after local steps
    dropout:0.1@mid        10% dropout mid-training (compute burned)
    straggler:0.3:2.5      30% of uploads straggle by ~2.5 s
    loss:0.15              15% uplink message loss (default retry policy)
    groupfail:0.05         5% whole-group failure per round

e.g. ``--faults dropout:0.2,straggler:0.1:2.0,groupfail:0.05``.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.faults.injectors import (
    ClientDropout,
    GroupFailure,
    Injector,
    MessageLoss,
    RetryPolicy,
    Straggler,
)
from repro.rng import derive_seed, make_rng

__all__ = [
    "FaultPlan",
    "UplinkOutcome",
    "get_active_plan",
    "set_active_plan",
    "plan_activated",
]


class UplinkOutcome:
    """Result of one client upload through a lossy, retrying uplink."""

    __slots__ = ("delivered", "retries", "delay_s")

    def __init__(self, delivered: bool, retries: int, delay_s: float):
        self.delivered = delivered
        self.retries = retries
        self.delay_s = delay_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UplinkOutcome(delivered={self.delivered}, retries={self.retries}, "
            f"delay_s={self.delay_s:.3f})"
        )


class FaultPlan:
    """A seeded bundle of fault injectors applied across a training run.

    Parameters
    ----------
    seed:
        Root seed of the fault schedule — independent of the trainer's seed
        so the *same* faults can be replayed against different training
        randomness (and vice versa).
    injectors:
        Any mix of :class:`ClientDropout`, :class:`Straggler`,
        :class:`MessageLoss`, :class:`GroupFailure`. Multiple injectors of
        the same kind compose (e.g. a ``before`` and an ``after`` dropout).
    """

    def __init__(self, seed: int = 0, injectors: list[Injector] | tuple = ()):
        self.seed = int(seed)
        self.injectors = list(injectors)
        for inj in self.injectors:
            if not isinstance(inj, Injector):
                raise TypeError(f"not an Injector: {inj!r}")

    # ------------------------------------------------------------- inspection
    def of_kind(self, kind: str) -> list[Injector]:
        return [i for i in self.injectors if i.kind == kind]

    @property
    def has_dropout(self) -> bool:
        return bool(self.of_kind("dropout"))

    @property
    def has_message_loss(self) -> bool:
        return bool(self.of_kind("message_loss"))

    def __bool__(self) -> bool:
        return bool(self.injectors)

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, injectors={self.injectors!r})"

    # -------------------------------------------------------------- decisions
    def _draw(self, kind: str, index: int, *key: int) -> float:
        """Uniform [0,1) draw unique to (injector, site) — the pure core."""
        return float(
            make_rng(derive_seed(self.seed, kind, index, *key)).random()
        )

    def _rng(self, kind: str, index: int, *key: int):
        return make_rng(derive_seed(self.seed, kind, index, *key))

    def client_dropout(
        self, round_idx: int, group_id: int, k: int, client_id: int
    ) -> str | None:
        """Dropout phase striking this client this group round, or None.

        When several dropout injectors fire at once, the earliest phase
        wins (a device that dies before training cannot also die after).
        """
        struck: list[str] = []
        for idx, inj in enumerate(self.injectors):
            if inj.kind != "dropout" or not inj.active(round_idx):
                continue
            if self._draw("dropout", idx, round_idx, group_id, k, client_id) < inj.prob:
                struck.append(inj.phase)
        if not struck:
            return None
        order = {"before": 0, "mid": 1, "after": 2}
        return min(struck, key=order.__getitem__)

    def straggler_delay(
        self, round_idx: int, group_id: int, k: int, client_id: int
    ) -> float:
        """Total straggler delay (seconds) for this client this group round."""
        delay = 0.0
        for idx, inj in enumerate(self.injectors):
            if inj.kind != "straggler" or not inj.active(round_idx):
                continue
            rng = self._rng("straggler", idx, round_idx, group_id, k, client_id)
            if rng.random() < inj.prob:
                delay += inj.draw_delay(rng)
        return delay

    def uplink(
        self, round_idx: int, group_id: int, k: int, client_id: int
    ) -> UplinkOutcome:
        """Simulate this client's upload through every message-loss injector.

        Each injector runs its own attempt/retry loop; the upload is
        delivered only if it survives all of them. Retry counts and
        timeout/backoff delays accumulate across injectors.
        """
        delivered = True
        retries = 0
        delay = 0.0
        for idx, inj in enumerate(self.injectors):
            if inj.kind != "message_loss" or not inj.active(round_idx):
                continue
            rng = self._rng("message_loss", idx, round_idx, group_id, k, client_id)
            ok = False
            for attempt in range(inj.retry.max_retries + 1):
                if rng.random() >= inj.prob:
                    ok = True
                    break
                delay += inj.retry.attempt_delay_s(attempt)
                if attempt < inj.retry.max_retries:
                    retries += 1
            if not ok:
                delivered = False
        return UplinkOutcome(delivered, retries, delay)

    def group_failure_draw(self, round_idx: int, group_id: int) -> float:
        """Smallest survival draw over the group-failure injectors.

        The group fails iff this draw is below the (largest applicable)
        failure probability — exposed as a draw, not a bool, so the trainer
        can deterministically spare the most-surviving group when every
        sampled group would fail.
        """
        worst = 1.0
        for idx, inj in enumerate(self.injectors):
            if inj.kind != "group_failure" or not inj.active(round_idx):
                continue
            d = self._draw("group_failure", idx, round_idx, group_id)
            # Normalize each injector's draw to a survival margin: how far
            # above its own threshold the draw landed (negative = failed).
            worst = min(worst, d - inj.prob)
        return worst

    def group_failed(self, round_idx: int, group_id: int) -> bool:
        return self.group_failure_draw(round_idx, group_id) < 0.0

    # ------------------------------------------------------------------ spec
    #: spec grammar arity: term name → max ``:``-separated values
    _SPEC_ARITY = {
        "dropout": 1,
        "straggler": 2,
        "loss": 2,
        "msgloss": 2,
        "groupfail": 1,
        "group": 1,
    }

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse the CLI grammar (see module docstring) into a plan.

        Fail-fast: every malformed term — missing or non-numeric
        probability, unknown kind, surplus fields, out-of-range rates, a
        ``@phase`` on anything but ``dropout`` — raises a ``ValueError``
        naming the offending token, so a typo in a long comma-separated
        spec is pinpointed instead of silently ignored.
        """
        injectors: list[Injector] = []
        for raw in spec.split(","):
            term = raw.strip()
            if not term:
                continue
            phase = None
            if "@" in term:
                term, phase = term.rsplit("@", 1)
            parts = term.split(":")
            name = parts[0].lower()
            if name not in cls._SPEC_ARITY:
                raise ValueError(
                    f"unknown fault kind {name!r} in term {raw!r}; known: "
                    "dropout, straggler, loss, groupfail"
                )
            if len(parts) < 2:
                raise ValueError(
                    f"fault term {raw!r} needs a probability, e.g. 'dropout:0.2'"
                )
            if len(parts) - 1 > cls._SPEC_ARITY[name]:
                raise ValueError(
                    f"fault term {raw!r} has {len(parts) - 1} values; "
                    f"{name!r} takes at most {cls._SPEC_ARITY[name]}"
                )
            if phase is not None and name != "dropout":
                raise ValueError(
                    f"fault term {raw!r}: only dropout takes an @phase"
                )
            try:
                prob = float(parts[1])
            except ValueError:
                raise ValueError(f"bad probability in fault term {raw!r}") from None
            try:
                if name == "dropout":
                    injectors.append(ClientDropout(prob=prob, phase=phase or "after"))
                elif name == "straggler":
                    delay = float(parts[2]) if len(parts) > 2 else 1.0
                    injectors.append(Straggler(prob=prob, delay_s=delay))
                elif name in ("loss", "msgloss"):
                    retry = (
                        RetryPolicy(max_retries=int(parts[2]))
                        if len(parts) > 2
                        else RetryPolicy()
                    )
                    injectors.append(MessageLoss(prob=prob, retry=retry))
                else:  # groupfail / group
                    injectors.append(GroupFailure(prob=prob))
            except ValueError as exc:
                # Injector range validation (prob/delay/retries) — point at
                # the term, keep the dataclass's precise reason.
                raise ValueError(f"bad fault term {raw!r}: {exc}") from None
        if not injectors:
            raise ValueError(f"fault spec {spec!r} defines no injectors")
        return cls(seed=seed, injectors=injectors)


#: Ambient plan (mirrors ``repro.telemetry``'s activation pattern): the CLI
#: installs a plan here so trainers buried inside figure generators pick it
#: up without every generator growing a ``faults=`` parameter.
_active_plan: FaultPlan | None = None


def get_active_plan() -> FaultPlan | None:
    """The ambient fault plan, or None when no faults are scheduled."""
    return _active_plan


def set_active_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` ambiently; returns the previous plan."""
    global _active_plan
    previous = _active_plan
    _active_plan = plan
    return previous


@contextmanager
def plan_activated(plan: FaultPlan):
    """Install ``plan`` ambiently for the duration of the block."""
    previous = set_active_plan(plan)
    try:
        yield plan
    finally:
        set_active_plan(previous)
