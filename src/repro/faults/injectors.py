"""Fault injectors — the composable failure modes of a :class:`FaultPlan`.

Each injector is a small picklable dataclass describing *what* can fail and
with which parameters; *when* it fires is decided by the plan, which hands
every decision a dedicated RNG derived from stable keys (round, group, k,
client). Injectors therefore never hold mutable state, which is what makes
fault schedules replayable and independent of the execution backend.

An injector may be restricted to a round window via ``start_round`` /
``end_round`` (``end_round`` exclusive; ``None`` = open-ended) — the
"per-round schedule" knob of the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "DROPOUT_PHASES",
    "Injector",
    "ClientDropout",
    "Straggler",
    "RetryPolicy",
    "MessageLoss",
    "GroupFailure",
]

#: When a dropout strikes relative to the client's local steps:
#: ``before`` — the device dies before training (no compute, no upload);
#: ``mid``    — it dies during training (compute burned, no upload);
#: ``after``  — it dies after uploading its *masked* vector, the Bonawitz
#: case that forces the Shamir share-reconstruction path under SecAgg.
DROPOUT_PHASES = ("before", "mid", "after")


@dataclass(frozen=True)
class Injector:
    """Base injector: a probability plus an optional round window."""

    prob: float = 0.0
    start_round: int = 0
    end_round: int | None = None

    kind = "base"

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {self.prob}")
        if self.start_round < 0:
            raise ValueError(f"start_round must be >= 0, got {self.start_round}")
        if self.end_round is not None and self.end_round <= self.start_round:
            raise ValueError(
                f"end_round {self.end_round} must be > start_round {self.start_round}"
            )

    def active(self, round_idx: int) -> bool:
        """Whether this injector is scheduled for the given global round."""
        if round_idx < self.start_round:
            return False
        return self.end_round is None or round_idx < self.end_round


@dataclass(frozen=True)
class ClientDropout(Injector):
    """A client drops out of one group round with probability ``prob``."""

    phase: str = "after"

    kind = "dropout"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.phase not in DROPOUT_PHASES:
            raise ValueError(
                f"phase must be one of {DROPOUT_PHASES}, got {self.phase!r}"
            )


@dataclass(frozen=True)
class Straggler(Injector):
    """A client finishes late: adds ``delay_s`` (± jitter) of wall clock.

    The delay never changes the aggregate — stragglers are a latency fault,
    folded into the wall-clock simulation and the cost ledger's fault
    overhead series.
    """

    delay_s: float = 1.0
    jitter: float = 0.5

    kind = "straggler"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.delay_s <= 0:
            raise ValueError(f"delay_s must be > 0, got {self.delay_s}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def draw_delay(self, rng: np.random.Generator) -> float:
        """Delay seconds for one straggling upload (uniform jitter band)."""
        lo = self.delay_s * (1.0 - self.jitter)
        hi = self.delay_s * (1.0 + self.jitter)
        return float(rng.uniform(lo, hi))


@dataclass(frozen=True)
class RetryPolicy:
    """How an edge uplink retries a lost message.

    Attempt ``a`` (0-indexed) that fails costs ``timeout_s · backoff^a``
    seconds before the next try; after ``max_retries`` retries the message
    is abandoned and the client counts as dropped after masking.
    """

    max_retries: int = 3
    timeout_s: float = 0.5
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")

    def attempt_delay_s(self, attempt: int) -> float:
        """Timeout + backoff wait burned by failed attempt ``attempt``."""
        return self.timeout_s * self.backoff**attempt


@dataclass(frozen=True)
class MessageLoss(Injector):
    """Each client→edge upload attempt is lost with probability ``prob``."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)

    kind = "message_loss"


@dataclass(frozen=True)
class GroupFailure(Injector):
    """An entire sampled group fails for one global round.

    The trainer degrades gracefully: the failed group's model is excluded
    and the Eq. (35) aggregation weights are renormalized over the
    surviving groups (at least one group is always spared).
    """

    kind = "group_failure"
