"""Regenerators for every figure in the paper's evaluation.

Each function returns a dict with a ``series`` (label → {x, y}) or ``rows``
payload plus enough metadata to print the same axes the paper plots. The
benchmark suite calls these and checks the paper's qualitative claims
(orderings, shapes, crossovers); EXPERIMENTS.md records the outcomes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.costs.rpi import RPiEmulator
from repro.experiments.configs import (
    ExperimentScale,
    Workload,
    get_scale,
    make_audio_workload,
    make_image_workload,
    make_tta_workload,
)
from repro.experiments.runner import run_combo, run_method, run_methods
from repro.grouping import (
    CDGGrouping,
    CoVGrouping,
    KLDGrouping,
    RandomGrouping,
    evaluate_grouping,
    group_clients_per_edge,
)
from repro.rng import derive_seed, make_rng

__all__ = [
    "fig2a_group_overheads",
    "fig2b_group_size",
    "fig5_grouping_runtime",
    "fig6_cov_vs_overhead",
    "fig7_sampling_methods",
    "fig8_rpi_measurement",
    "fig9_fig10_all_methods_cifar",
    "fig11_all_methods_sc",
    "fig12_grouping_x_sampling",
    "fig_tta_continual",
]

#: Display order of the §7.3 method comparison, extended with the
#: clustered-FL suite from the related work.
ALL_METHODS = [
    "fedavg", "fedprox", "scaffold", "group_fel", "ouea", "share", "fedclar",
    "ifca", "fedgroup",
]


def _history_series(histories: dict) -> dict:
    return {
        label: {
            "round": list(h.rounds),
            "cost": list(h.costs),
            "accuracy": list(h.test_acc),
        }
        for label, h in histories.items()
    }


# --------------------------------------------------------------------- Fig. 2a
def fig2a_group_overheads(scale: str | ExperimentScale | None = None) -> dict:
    """Per-client overhead vs data size (training) / group size (group ops).

    Paper claim: group-operation overheads are comparable to or exceed the
    training cost as group size grows.
    """
    s = get_scale(scale)
    sizes = (5, 10, 20, 35, 50) if s.name == "paper" else (4, 8, 16, 32)
    emu = RPiEmulator(model_dim=2000 if s.name == "paper" else 1000, repeats=3)
    training = emu.measure_training(sizes, task="cifar")
    secagg = emu.measure_secagg(sizes, task="cifar")
    backdoor = emu.measure_backdoor(sizes, task="cifar")
    return {
        "figure": "2a",
        "series": {
            m.label: {"x": m.sizes.tolist(), "seconds": m.seconds.tolist(),
                      "fit": m.fit_kind, "fit_params": list(m.fit_params), "r2": m.fit_r2}
            for m in (training, secagg, backdoor)
        },
    }


# --------------------------------------------------------------------- Fig. 2b
def fig2b_group_size(
    scale: str | ExperimentScale | None = None,
    group_sizes: tuple[int, ...] = (5, 10, 15, 20),
    seed: int = 0,
) -> dict:
    """Accuracy vs cost at fixed random group sizes.

    Paper claim: shrinking the group size does not, by itself, reduce the
    total cost to a given accuracy — smaller random groups are more skewed.
    """
    s = get_scale(scale)
    if s.name == "fast":
        group_sizes = tuple(gs for gs in group_sizes if gs <= s.num_clients // s.num_edges)
    histories = {}
    for gs in group_sizes:
        wl = make_image_workload(s, alpha=0.1, seed=seed)
        histories[f"GS={gs}"] = run_combo(
            RandomGrouping(group_size=gs), "random", wl, label=f"GS={gs}"
        )
    return {"figure": "2b", "series": _history_series(histories)}


# ---------------------------------------------------------------------- Fig. 5
def fig5_grouping_runtime(
    scale: str | ExperimentScale | None = None,
    client_counts: tuple[int, ...] | None = None,
    num_classes: int = 10,
    seed: int = 0,
) -> dict:
    """Wall-clock of each grouping algorithm vs client count.

    Paper claim: RG ≈ free, CDG cheap, CoVG a few seconds at 1000 clients,
    KLDG far slower (quartic + expensive log).
    """
    s = get_scale(scale)
    if client_counts is None:
        client_counts = (200, 400, 600, 800, 1000) if s.name == "paper" else (50, 100, 200)
    rng = make_rng(seed)
    groupers = {
        "RG": RandomGrouping(group_size=s.min_group_size),
        "CDG": CDGGrouping(group_size=s.min_group_size),
        "KLDG": KLDGrouping(min_group_size=s.min_group_size),
        "CoVG": CoVGrouping(min_group_size=s.min_group_size, max_cov=s.max_cov),
    }
    series: dict = {name: {"clients": [], "seconds": []} for name in groupers}
    for n in client_counts:
        # A synthetic skewed label matrix (grouping only ever sees L).
        props = rng.dirichlet(np.full(num_classes, 0.1), size=n)
        L = np.stack([rng.multinomial(100, props[i]) for i in range(n)])
        for name, grouper in groupers.items():
            t0 = time.perf_counter()
            grouper.group(L, np.arange(n), rng=rng.spawn(1)[0])
            series[name]["clients"].append(int(n))
            series[name]["seconds"].append(time.perf_counter() - t0)
    return {"figure": "5", "series": series}


# ---------------------------------------------------------------------- Fig. 6
def fig6_cov_vs_overhead(
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    size_knobs: tuple[int, ...] = (3, 5, 8, 12, 16),
) -> dict:
    """Average CoV vs average group overhead frontier per algorithm.

    Paper claim: at matched overhead CoVG yields the lowest CoV (CoVG's
    frontier dominates RG/CDG/KLDG).
    """
    s = get_scale(scale)
    wl = make_image_workload(s, alpha=0.1, seed=seed)
    series: dict = {}
    for name, factory in {
        "RG": lambda k: RandomGrouping(group_size=k),
        "CDG": lambda k: CDGGrouping(group_size=k),
        "KLDG": lambda k: KLDGrouping(min_group_size=k),
        "CoVG": lambda k: CoVGrouping(min_group_size=k, max_cov=s.max_cov),
    }.items():
        points = {"avg_cov": [], "avg_overhead": [], "knob": []}
        for knob in size_knobs:
            if knob > s.num_clients // s.num_edges:
                continue
            groups = group_clients_per_edge(
                factory(knob), wl.fed.L, wl.edge_assignment,
                rng=derive_seed(seed, "fig6", name, knob),
            )
            rep = evaluate_grouping(groups)
            points["avg_cov"].append(rep.avg_cov)
            points["avg_overhead"].append(rep.avg_overhead)
            points["knob"].append(knob)
        series[name] = points
    return {"figure": "6", "series": series}


# ---------------------------------------------------------------------- Fig. 7
def fig7_sampling_methods(
    scale: str | ExperimentScale | None = None, seed: int = 0
) -> dict:
    """Accuracy vs cost for Random / RCoV / SRCoV / ESRCoV sampling.

    Paper claim: the harder sampling leans on CoV, the faster and smoother
    the convergence (ESRCoV best).
    """
    s = get_scale(scale)
    histories = {}
    for method, label in [
        ("random", "Random"),
        ("rcov", "RCoV"),
        ("srcov", "SRCoV"),
        ("esrcov", "ESRCoV"),
    ]:
        wl = make_image_workload(s, alpha=0.1, seed=seed)
        histories[label] = run_combo(
            CoVGrouping(min_group_size=s.min_group_size, max_cov=s.max_cov),
            method,
            wl,
            label=label,
        )
    return {"figure": "7", "series": _history_series(histories)}


# ---------------------------------------------------------------------- Fig. 8
def fig8_rpi_measurement(scale: str | ExperimentScale | None = None) -> dict:
    """All eight RPi overhead curves ({cifar, sc} × 4 operations)."""
    s = get_scale(scale)
    sizes = (5, 10, 20, 35, 50) if s.name == "paper" else (4, 8, 16, 32)
    emu = RPiEmulator(model_dim=2000 if s.name == "paper" else 1000, repeats=3)
    table = emu.measurement_table(sizes=sizes)
    return {
        "figure": "8",
        "series": {
            m.label: {
                "x": m.sizes.tolist(),
                "seconds": m.seconds.tolist(),
                "fit": m.fit_kind,
                "fit_params": list(m.fit_params),
                "r2": m.fit_r2,
            }
            for m in table
        },
    }


# ----------------------------------------------------------------- Figs. 9, 10
def fig9_fig10_all_methods_cifar(
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    methods: list[str] | None = None,
) -> dict:
    """All methods over the image task: accuracy vs round (9) and cost (10).

    Paper claims: Group-FEL best on both axes; the gap widens under the
    cost axis; FedCLAR's accuracy drops after its clustering round.
    """
    s = get_scale(scale)
    methods = methods or ALL_METHODS
    histories = {}
    for name in methods:
        wl = make_image_workload(s, alpha=0.1, seed=seed)
        histories[name] = run_method(name, wl)
    return {"figure": "9+10", "series": _history_series(histories)}


# --------------------------------------------------------------------- Fig. 11
def fig11_all_methods_sc(
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    methods: list[str] | None = None,
) -> dict:
    """All methods over the Speech-Commands-like task, extreme skew (α=0.01).

    Paper claims: convergence is unstable (large ζ); ordering matches the
    image task with Group-FEL on top. MinGS=15 at paper scale.
    """
    s = get_scale(scale)
    methods = methods or ALL_METHODS
    mings = 15 if s.name == "paper" else max(3, s.min_group_size)
    histories = {}
    for name in methods:
        wl = make_audio_workload(s, alpha=0.01, seed=seed)
        histories[name] = run_method(
            name, wl, group_size_knob=mings, max_cov=float("inf")
        )
    return {"figure": "11", "series": _history_series(histories)}


# --------------------------------------------------------------------- Fig. 12
def fig12_grouping_x_sampling(
    scale: str | ExperimentScale | None = None, seed: int = 0
) -> dict:
    """Grouping × sampling ablation.

    Paper claims: CoVG+CoVS clearly best; either ingredient alone
    (CoVG+RS, RG+CoVS, KLDG+CoVS) gives much less.
    """
    s = get_scale(scale)
    combos = [
        ("CoVG+RS", lambda: CoVGrouping(s.min_group_size, s.max_cov), "random"),
        ("RG+CoVS", lambda: RandomGrouping(group_size=s.min_group_size), "esrcov"),
        ("CoVG+CoVS", lambda: CoVGrouping(s.min_group_size, s.max_cov), "esrcov"),
        ("KLDG+RS", lambda: KLDGrouping(min_group_size=s.min_group_size), "random"),
        ("KLDG+CoVS", lambda: KLDGrouping(min_group_size=s.min_group_size), "esrcov"),
    ]
    histories = {}
    for label, grouper_fn, sampling in combos:
        wl = make_image_workload(s, alpha=0.1, seed=seed)
        histories[label] = run_combo(grouper_fn(), sampling, wl, label=label)
    return {"figure": "12", "series": _history_series(histories)}


# ---------------------------------------------------------------- TTA scenario
def fig_tta_continual(
    scale: str | ExperimentScale | None = None,
    seed: int = 0,
    methods: list[str] | None = None,
) -> dict:
    """All methods under continual test-time corruption (FedCTTA scenario).

    Accuracy-vs-cost under the unchanged cost model while every client's
    features stream through a seeded corruption-severity schedule. A fresh
    workload is built per method, so each sees the identical pristine data
    and corruption stream regardless of sweep order.
    """
    s = get_scale(scale)
    methods = methods or ALL_METHODS
    histories = {}
    for name in methods:
        wl = make_tta_workload(s, alpha=0.1, seed=seed)
        histories[name] = run_method(name, wl)
    return {"figure": "tta", "series": _history_series(histories)}
