"""Run named methods (or custom grouping×sampling combos) over a workload."""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.registry import build_method
from repro.core.strategies import PlainSGDStrategy
from repro.core.trainer import GroupFELTrainer
from repro.experiments.configs import Workload
from repro.grouping import Grouper, group_clients_per_edge
from repro.metrics.history import TrainingHistory
from repro.parallel import ParallelMap, get_active as get_active_parallel
from repro.population import PopulationModel, get_active_population
from repro.rng import derive_seed

__all__ = ["run_method", "run_methods", "run_combo"]


def run_method(
    name: str,
    workload: Workload,
    max_rounds: int | None = None,
    cost_budget: float | None = None,
    group_size_knob: int | None = None,
    max_cov: float | None = None,
    telemetry=None,
    faults=None,
    population=None,
    parallel: ParallelMap | None = None,
    checkpoint_dir: str | None = None,
    resume_from: str | None = None,
    sampling_scheme: str | None = None,
) -> TrainingHistory:
    """Run one named method (see ``repro.baselines.METHODS``) to completion.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) is forwarded to the
    trainer; omit it to use the ambient instance (see
    ``repro.telemetry.activated``), which defaults to a no-op. ``faults`` (a
    :class:`repro.faults.FaultPlan` or spec string) overrides the workload
    config's plan; omit it to use the config's, falling back to the ambient
    plan (see ``repro.faults.plan_activated``). ``parallel`` (a
    :class:`repro.parallel.ParallelMap`) shares one persistent worker pool
    across calls; omit it to let the trainer build (and close) its own.
    The trainer is always closed before returning, so pooled backends never
    leak worker processes.

    ``checkpoint_dir`` turns on crash-safe auto-checkpointing every
    ``trainer_config.checkpoint_every`` rounds (default every round);
    ``resume_from`` (a checkpoint file, or a directory whose latest
    checkpoint is taken) restores complete trainer state before running, so
    the returned history is bit-identical to the uninterrupted run's.

    ``population`` (a :class:`repro.population.PopulationModel` or spec
    string) schedules client churn, label drift, and feature corruption;
    omit it to use the config's model, falling back to the ambient one
    (see ``repro.population.population_activated``). Note that drift and
    corruption mutate client shards in place — when calling this directly
    for several methods over *one* workload, restore pristine shards
    between calls (``fed.snapshot_shards``/``restore_shards``) or build a
    fresh workload per method; :func:`run_methods` does the restore
    automatically.

    ``sampling_scheme`` overrides the draw mechanics
    (``sequential_wor``/``multinomial``/``stratified``); None keeps the
    method spec's scheme, falling back to the workload config's.
    """
    s = workload.scale
    cfg = workload.trainer_config
    if faults is not None:
        cfg = replace(cfg, faults=faults)
    if population is not None:
        cfg = replace(cfg, population=population)
    trainer = build_method(
        name,
        workload.model_fn,
        workload.fed,
        workload.edge_assignment,
        cfg,
        cost_model=workload.cost_model,
        group_size_knob=group_size_knob if group_size_knob is not None else s.min_group_size,
        max_cov=max_cov if max_cov is not None else s.max_cov,
        rng=derive_seed(workload.seed, "grouping", name),
        telemetry=telemetry,
        parallel=parallel,
        checkpoint_dir=checkpoint_dir,
        sampling_scheme=sampling_scheme,
    )
    try:
        if resume_from is not None:
            trainer.load_checkpoint(resume_from)
        return trainer.run(max_rounds=max_rounds, cost_budget=cost_budget)
    finally:
        trainer.close()


def _resolve_population(workload: Workload, population) -> PopulationModel | None:
    """The population model a sweep will actually run under — argument >
    workload config > ambient — parsed exactly as ``TrainerConfig`` would,
    so the sweep's mutation check matches the trainers'."""
    model = population if population is not None else workload.trainer_config.population
    if model is None:
        model = get_active_population()
    if isinstance(model, str):
        model = PopulationModel.from_spec(
            model, seed=derive_seed(workload.trainer_config.seed, "population")
        )
    return model


def run_methods(
    names: list[str],
    workload: Workload,
    max_rounds: int | None = None,
    cost_budget: float | None = None,
    telemetry=None,
    faults=None,
    population=None,
    parallel: ParallelMap | None = None,
    sampling_scheme: str | None = None,
) -> dict[str, TrainingHistory]:
    """Run several methods over the same workload (same data, same budget).

    On a pooled backend (``workload.trainer_config.parallel_backend`` of
    ``thread``/``process``) one shared :class:`ParallelMap` is built for the
    whole sweep — workers start once, not once per method — and closed at
    the end. Pass ``parallel`` to reuse an even longer-lived pool.

    With an active population model that mutates shard data (label drift
    or feature corruption), pristine shards are snapshotted before the
    first method and restored between methods (and after the last), so
    every method sees the identical starting data and per-method histories
    are independent of sweep order. The workload is left pristine when the
    sweep returns.

    To checkpoint/resume a whole sweep, install an ambient
    :class:`repro.checkpoint.CheckpointPolicy`
    (``repro.checkpoint.checkpointing_activated``): each method's trainer
    then checkpoints under its own label subdirectory — per-method
    ``checkpoint_dir`` arguments would collide on one directory.
    """
    owns_pool = (
        parallel is None
        and get_active_parallel() is None
        and workload.trainer_config.parallel_backend != "serial"
    )
    if owns_pool:
        parallel = ParallelMap(workload.trainer_config.parallel_backend)
    model = _resolve_population(workload, population)
    pristine = None
    if model is not None and (model.has_drift or model.has_corruption):
        pristine = workload.fed.snapshot_shards(
            include_features=model.has_corruption
        )
    try:
        results: dict[str, TrainingHistory] = {}
        for name in names:
            if pristine is not None and results:
                workload.fed.restore_shards(pristine)
            results[name] = run_method(
                name,
                workload,
                max_rounds=max_rounds,
                cost_budget=cost_budget,
                telemetry=telemetry,
                faults=faults,
                population=population,
                parallel=parallel,
                sampling_scheme=sampling_scheme,
            )
        return results
    finally:
        if pristine is not None:
            workload.fed.restore_shards(pristine)
        if owns_pool:
            parallel.close()


def run_combo(
    grouper: Grouper,
    sampling_method: str,
    workload: Workload,
    label: str,
    max_rounds: int | None = None,
    cost_budget: float | None = None,
    telemetry=None,
    faults=None,
    population=None,
    parallel: ParallelMap | None = None,
    checkpoint_dir: str | None = None,
    resume_from: str | None = None,
    sampling_scheme: str | None = None,
) -> TrainingHistory:
    """Run an arbitrary grouping × sampling combination (Fig. 12's axes).

    ``sampling_method`` picks the probability construction (Eq. 34 CoV
    weights, ``varopt``, or ``adaptive``); ``sampling_scheme`` the draw
    mechanics (``sequential_wor``/``multinomial``/``stratified`` — None
    keeps the workload config's scheme).
    """
    groups = group_clients_per_edge(
        grouper,
        workload.fed.L,
        workload.edge_assignment,
        rng=derive_seed(workload.seed, "grouping", label),
    )
    cfg = replace(workload.trainer_config, sampling_method=sampling_method)
    if sampling_scheme is not None:
        cfg = replace(cfg, sampling_scheme=sampling_scheme)
    if faults is not None:
        cfg = replace(cfg, faults=faults)
    if population is not None:
        cfg = replace(cfg, population=population)
    trainer = GroupFELTrainer(
        workload.model_fn,
        workload.fed,
        groups,
        cfg,
        cost_model=workload.cost_model,
        strategy=PlainSGDStrategy(),
        grouper=grouper,
        edge_assignment=workload.edge_assignment,
        label=label,
        telemetry=telemetry,
        parallel=parallel,
        checkpoint_dir=checkpoint_dir,
    )
    try:
        if resume_from is not None:
            trainer.load_checkpoint(resume_from)
        return trainer.run(max_rounds=max_rounds, cost_budget=cost_budget)
    finally:
        trainer.close()
