"""Command-line entry point: regenerate any paper figure or table.

Usage::

    python -m repro.experiments fig9 --scale fast --seed 0
    python -m repro.experiments table1 --scale paper
    python -m repro.experiments fig7 --telemetry trace.jsonl
    python -m repro.experiments fig9 --faults dropout:0.2,straggler:0.1:2.0
    python -m repro.experiments fig9 --population start:0.8,join:0.5,leave:0.02
    python -m repro.experiments fig9 --parallel process:4
    python -m repro.experiments fig9 --engine reference --pipeline-rounds
    python -m repro.experiments fig7 --sampling-scheme stratified
    python -m repro.experiments fig9 --checkpoint-dir ckpts/fig9
    python -m repro.experiments fig9 --checkpoint-dir ckpts/fig9 --resume
    python -m repro.experiments tta --scale fast
    python -m repro.experiments list
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import ExitStack

from repro.checkpoint import CheckpointPolicy, checkpointing_activated
from repro.core.trainer import engine_overrides_activated
from repro.faults import FaultPlan, plan_activated
from repro.parallel import ParallelMap, activated as parallel_activated
from repro.population import PopulationModel, population_activated
from repro.telemetry import Telemetry, activated

from repro.experiments.figures import (
    fig2a_group_overheads,
    fig2b_group_size,
    fig5_grouping_runtime,
    fig6_cov_vs_overhead,
    fig7_sampling_methods,
    fig8_rpi_measurement,
    fig9_fig10_all_methods_cifar,
    fig11_all_methods_sc,
    fig12_grouping_x_sampling,
    fig_tta_continual,
)
from repro.experiments.report import format_series, format_table
from repro.experiments.tables import table1_maxcov_alpha

__all__ = ["main", "GENERATORS"]

#: name -> (generator, takes_seed, (x_key, y_key) for series printing)
GENERATORS = {
    "fig2a": (fig2a_group_overheads, False, ("x", "seconds")),
    "fig2b": (fig2b_group_size, True, ("cost", "accuracy")),
    "fig5": (fig5_grouping_runtime, True, ("clients", "seconds")),
    "fig6": (fig6_cov_vs_overhead, True, ("avg_overhead", "avg_cov")),
    "fig7": (fig7_sampling_methods, True, ("cost", "accuracy")),
    "fig8": (fig8_rpi_measurement, False, ("x", "seconds")),
    "fig9": (fig9_fig10_all_methods_cifar, True, ("round", "accuracy")),
    "fig10": (fig9_fig10_all_methods_cifar, True, ("cost", "accuracy")),
    "fig11": (fig11_all_methods_sc, True, ("cost", "accuracy")),
    "fig12": (fig12_grouping_x_sampling, True, ("cost", "accuracy")),
    "tta": (fig_tta_continual, True, ("cost", "accuracy")),
    "table1": (table1_maxcov_alpha, True, None),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a figure/table from the Group-FEL paper.",
    )
    parser.add_argument("target", help="fig2a|fig2b|fig5|...|table1, or 'list'")
    parser.add_argument("--scale", default=None, help="fast (default) or paper")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true", help="emit raw JSON")
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="enable run telemetry: write the JSONL trace to PATH and print "
        "a span/metric summary to stderr",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="inject faults into every trainer the target constructs: "
        "comma-separated name:prob[:param][@phase] terms, e.g. "
        "'dropout:0.2,straggler:0.1:2.0,loss:0.1,groupfail:0.05' "
        "(see repro.faults.FaultPlan.from_spec)",
    )
    parser.add_argument(
        "--population",
        metavar="SPEC",
        default=None,
        help="run every trainer the target constructs over a dynamic client "
        "population: comma-separated start:frac / join:rate / leave:prob / "
        "drift:prob[:fraction][:rho][@mode] terms, e.g. "
        "'start:0.8,join:0.5,leave:0.02,drift:0.1:0.3@step' "
        "(see repro.population.PopulationModel.from_spec)",
    )
    parser.add_argument(
        "--parallel",
        metavar="BACKEND[:N]",
        default=None,
        help="run group rounds on one shared persistent worker pool: "
        "'serial', 'thread', 'process', optionally with a worker count "
        "(e.g. 'process:4'). Every trainer the target constructs reuses "
        "the pool; it is closed when the run finishes.",
    )
    parser.add_argument(
        "--engine",
        choices=["auto", "batched", "reference"],
        default=None,
        help="local-training engine for every trainer the target constructs: "
        "'auto' (default) stacks same-architecture client updates into one "
        "batched forward/backward when the model/strategy support it, "
        "'batched' forces that and errors if unsupported, 'reference' keeps "
        "the per-client loop (the bit-identical golden path)",
    )
    parser.add_argument(
        "--sampling-scheme",
        choices=["sequential_wor", "multinomial", "stratified"],
        default=None,
        help="how every trainer the target constructs draws S_t from p: "
        "'sequential_wor' (the paper's sequential renormalized draw; "
        "unbiased weights divide by the exact inclusion probabilities "
        "pi_g), 'multinomial' (with replacement — Eq. 4's S*p_g weights "
        "are exact here), or 'stratified' (one draw per p-mass-balanced "
        "stratum; lowest variance)",
    )
    parser.add_argument(
        "--pipeline-rounds",
        action="store_true",
        help="overlap each round's evaluation and checkpoint write with the "
        "next round's group compute on a background thread; histories and "
        "checkpoints stay bit-identical to the synchronous schedule",
    )
    parser.add_argument(
        "--no-shared-memory",
        action="store_true",
        help="process backend only: disable the shared-memory rings that "
        "carry global params and group results, falling back to per-task "
        "pickles (the pre-fix dispatch path; useful for debugging)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="PATH",
        default=None,
        help="crash-safe checkpointing: every trainer the target constructs "
        "saves complete state under PATH/<method-label>/ at each round "
        "boundary (atomic write-temp-then-rename)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        default=1,
        help="save cadence in global rounds (default 1; with --checkpoint-dir)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume each trainer from its latest checkpoint under "
        "--checkpoint-dir; the resumed curves are bit-identical to an "
        "uninterrupted run",
    )
    args = parser.parse_args(argv)

    if args.target == "list":
        for name in GENERATORS:
            print(name)
        return 0
    try:
        fn, takes_seed, keys = GENERATORS[args.target]
    except KeyError:
        print(f"unknown target {args.target!r}; run 'list' to see options",
              file=sys.stderr)
        return 2

    pmap = None
    if args.parallel:
        # Fail on a malformed backend spec *before* the (possibly long) run.
        backend, _, workers = args.parallel.partition(":")
        try:
            max_workers = int(workers) if workers else None
        except ValueError:
            print(f"bad --parallel spec {args.parallel!r}: worker count "
                  "must be an integer", file=sys.stderr)
            return 2
        try:
            pmap = ParallelMap(backend, max_workers=max_workers)
        except ValueError as exc:
            print(f"bad --parallel spec: {exc}", file=sys.stderr)
            return 2

    checkpoint_policy = None
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.checkpoint_dir:
        if args.checkpoint_every < 1:
            print(f"bad --checkpoint-every {args.checkpoint_every}: must be >= 1",
                  file=sys.stderr)
            return 2
        checkpoint_policy = CheckpointPolicy(
            dir=args.checkpoint_dir,
            every=args.checkpoint_every,
            resume=args.resume,
        )

    fault_plan = None
    if args.faults:
        # Fail on a malformed spec *before* the (possibly long) run.
        try:
            fault_plan = FaultPlan.from_spec(args.faults, seed=args.seed)
        except ValueError as exc:
            print(f"bad --faults spec: {exc}", file=sys.stderr)
            return 2

    population_model = None
    if args.population:
        # Fail on a malformed spec *before* the (possibly long) run.
        try:
            population_model = PopulationModel.from_spec(args.population, seed=args.seed)
        except ValueError as exc:
            print(f"bad --population spec: {exc}", file=sys.stderr)
            return 2

    telemetry = None
    if args.telemetry:
        # Fail on an unwritable trace path *before* the (possibly long) run,
        # not after, so no results are thrown away over a typo.
        try:
            with open(args.telemetry, "w"):
                pass
        except OSError as exc:
            print(f"cannot write telemetry trace {args.telemetry!r}: {exc}",
                  file=sys.stderr)
            return 2
        telemetry = Telemetry(label=args.target)
        telemetry.meta.update({"scale": args.scale or "fast", "seed": args.seed})
        if args.faults:
            telemetry.meta["faults"] = args.faults
        if args.population:
            telemetry.meta["population"] = args.population

    # Ambient activation: every trainer the generator constructs picks up
    # the telemetry instance / fault plan / shared worker pool without the
    # generators knowing about any of them.
    with ExitStack() as stack:
        if (
            args.engine
            or args.pipeline_rounds
            or args.no_shared_memory
            or args.sampling_scheme
        ):
            stack.enter_context(engine_overrides_activated(
                engine=args.engine,
                pipeline_rounds=args.pipeline_rounds or None,
                shared_memory=False if args.no_shared_memory else None,
                sampling_scheme=args.sampling_scheme,
            ))
        if telemetry is not None:
            stack.enter_context(activated(telemetry))
        if fault_plan is not None:
            stack.enter_context(plan_activated(fault_plan))
        if population_model is not None:
            stack.enter_context(population_activated(population_model))
        if pmap is not None:
            if telemetry is not None:
                pmap.telemetry = telemetry
            stack.enter_context(pmap)  # closes the pool on the way out
            stack.enter_context(parallel_activated(pmap))
        if checkpoint_policy is not None:
            stack.enter_context(checkpointing_activated(checkpoint_policy))
        result = fn(args.scale, seed=args.seed) if takes_seed else fn(args.scale)
    if telemetry is not None:
        telemetry.to_jsonl(args.telemetry)
        print(telemetry.summary(), file=sys.stderr)
    if args.json:
        print(json.dumps(result, default=float, indent=1))
        return 0
    if "rows" in result:
        print(format_table(result["rows"], title=f"Table {result.get('table', '')}"))
    else:
        x_key, y_key = keys
        print(format_series(result["series"], x_key, y_key,
                            title=f"Figure {result.get('figure', '')}"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
