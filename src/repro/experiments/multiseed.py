"""Multi-seed experiment aggregation and result persistence.

Single-seed curves at the fast scale carry ≈ 2 accuracy points of noise
(EXPERIMENTS.md); these helpers run a method across seeds, aggregate the
curves onto a shared cost grid (mean ± std), and save/load result payloads
as JSON so long runs survive the process.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.experiments.configs import Workload
from repro.experiments.runner import run_method
from repro.metrics.history import TrainingHistory, accuracy_at_cost

__all__ = [
    "aggregate_histories",
    "run_method_multiseed",
    "save_result",
    "load_result",
]


def aggregate_histories(
    histories: list[TrainingHistory], num_grid: int = 25
) -> dict:
    """Mean ± std accuracy over a shared cost grid.

    Each history is evaluated with :func:`accuracy_at_cost` (best accuracy
    within budget — a monotone staircase), so curves with different
    checkpoint costs are comparable.
    """
    if not histories:
        raise ValueError("need at least one history")
    max_cost = min(h.total_cost for h in histories)
    if max_cost <= 0:
        raise ValueError("histories carry no cost information")
    grid = np.linspace(max_cost / num_grid, max_cost, num_grid)
    curves = np.empty((len(histories), num_grid))
    for i, h in enumerate(histories):
        costs = np.asarray(h.costs)
        accs = np.asarray(h.test_acc)
        curves[i] = [accuracy_at_cost(costs, accs, b) for b in grid]
    return {
        "cost": grid.tolist(),
        "acc_mean": curves.mean(axis=0).tolist(),
        "acc_std": curves.std(axis=0).tolist(),
        "seeds": len(histories),
        "final_mean": float(np.mean([h.final_accuracy for h in histories])),
        "final_std": float(np.std([h.final_accuracy for h in histories])),
    }


def run_method_multiseed(
    name: str,
    workload_factory,
    seeds: list[int],
    **run_kwargs,
) -> dict:
    """Run a named method over several seeds and aggregate.

    ``workload_factory(seed)`` must build a fresh workload per seed (data,
    partition, and grouping all re-randomized).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    histories = []
    for seed in seeds:
        workload = workload_factory(seed)
        histories.append(run_method(name, workload, **run_kwargs))
    agg = aggregate_histories(histories)
    agg["method"] = name
    return agg


def save_result(result: dict, path: str | os.PathLike) -> None:
    """Persist an experiment payload (figures dict or aggregate) as JSON."""
    with open(path, "w") as fh:
        json.dump(result, fh, default=float, indent=1)


def load_result(path: str | os.PathLike) -> dict:
    """Load a payload written by :func:`save_result`."""
    with open(path) as fh:
        return json.load(fh)
