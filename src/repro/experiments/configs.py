"""Canonical experiment workloads at two scales.

``paper`` mirrors §7.2's setup: 300 clients with 20–200 samples each on 3
edge servers, Dirichlet(α) label skew, K=5, E=2, MinGS=5, 10⁶-unit budget,
ResNetLite on the image task and the 5-layer AudioCNN on the command task.

``fast`` shrinks every axis (clients, samples, rounds, model) by roughly an
order of magnitude so the whole figure suite runs in minutes on one core,
while keeping the regime that produces the paper's effects: strong label
skew, group sizes of ~5, more groups than the per-round sample count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from repro.core.trainer import TrainerConfig
from repro.costs.calibration import paper_cost_model
from repro.costs.model import CostModel
from repro.data.client_data import FederatedDataset
from repro.data.datasets import SyntheticAudio, SyntheticImage
from repro.nn import make_audio_cnn, make_mlp, make_resnet_lite
from repro.rng import derive_seed, make_rng
from repro.topology.network import HierarchicalTopology

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "Workload",
    "make_image_workload",
    "make_audio_workload",
    "make_tta_workload",
]


@dataclass(frozen=True)
class ExperimentScale:
    """All size knobs of a figure run (algorithms never change with scale)."""

    name: str
    num_clients: int
    num_edges: int
    size_low: int
    size_high: int
    train_samples: int
    test_samples: int
    # model
    image_model: str  # "mlp" | "resnet"
    audio_model: str  # "mlp" | "cnn"
    # trainer
    group_rounds: int  # K
    local_rounds: int  # E
    num_sampled: int  # S
    max_rounds: int  # T
    lr: float
    batch_size: int
    min_group_size: int  # MinGS
    max_cov: float
    cost_budget: float
    eval_every: int
    # task difficulty
    image_noise: float
    audio_noise: float


SCALES: dict[str, ExperimentScale] = {
    "fast": ExperimentScale(
        name="fast",
        num_clients=60,
        num_edges=3,
        size_low=20,
        size_high=80,
        train_samples=12_000,
        test_samples=1_500,
        image_model="mlp",
        audio_model="mlp",
        group_rounds=3,
        local_rounds=2,
        num_sampled=4,
        max_rounds=30,
        lr=0.08,
        batch_size=16,
        min_group_size=4,
        max_cov=0.5,
        cost_budget=3.0e5,
        eval_every=1,
        image_noise=6.0,
        audio_noise=4.0,
    ),
    "paper": ExperimentScale(
        name="paper",
        num_clients=300,
        num_edges=3,
        size_low=20,
        size_high=200,
        train_samples=50_000,
        test_samples=5_000,
        image_model="resnet",
        audio_model="cnn",
        group_rounds=5,
        local_rounds=2,
        num_sampled=12,
        max_rounds=200,
        lr=0.05,
        batch_size=32,
        min_group_size=5,
        max_cov=0.5,
        cost_budget=1.0e6,
        eval_every=5,
        image_noise=6.0,
        audio_noise=4.0,
    ),
}


def get_scale(scale: str | ExperimentScale | None = None) -> ExperimentScale:
    """Resolve a scale name (or the REPRO_SCALE env var; default ``fast``)."""
    if isinstance(scale, ExperimentScale):
        return scale
    name = scale or os.environ.get("REPRO_SCALE", "fast")
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(f"unknown scale {name!r}; known: {sorted(SCALES)}") from None


@dataclass
class Workload:
    """A fully materialized experiment setup (one task, one scale)."""

    scale: ExperimentScale
    fed: FederatedDataset
    topology: HierarchicalTopology
    model_fn: Callable
    trainer_config: TrainerConfig
    cost_model: CostModel
    task: str  # "cifar" | "sc"
    alpha: float
    seed: int

    @property
    def edge_assignment(self) -> list[np.ndarray]:
        return self.topology.edge_assignment()


def _trainer_config(s: ExperimentScale, seed: int) -> TrainerConfig:
    return TrainerConfig(
        group_rounds=s.group_rounds,
        local_rounds=s.local_rounds,
        num_sampled=s.num_sampled,
        batch_size=s.batch_size,
        lr=s.lr,
        momentum=0.9,
        max_rounds=s.max_rounds,
        cost_budget=s.cost_budget,
        eval_every=s.eval_every,
        seed=seed,
    )


def make_image_workload(
    scale: str | ExperimentScale | None = None,
    alpha: float = 0.1,
    seed: int = 0,
) -> Workload:
    """The CIFAR-10-like workload of §7.2–7.3 (Figs. 2b, 7, 9, 10, 12, Table 1)."""
    s = get_scale(scale)
    rng = make_rng(derive_seed(seed, "image", s.name))
    data = SyntheticImage(noise_std=s.image_noise, seed=rng.spawn(1)[0])
    train, test = data.train_test(s.train_samples, s.test_samples)
    fed = FederatedDataset.from_dataset(
        train,
        test,
        num_clients=s.num_clients,
        alpha=alpha,
        size_low=s.size_low,
        size_high=s.size_high,
        rng=rng.spawn(1)[0],
    )
    topo = HierarchicalTopology(s.num_clients, s.num_edges)
    if s.image_model == "resnet":
        model_fn = lambda: make_resnet_lite(
            in_channels=3, num_classes=10, base_width=8, seed=derive_seed(seed, "model")
        )
    else:
        in_features = int(np.prod(train.feature_shape))
        model_fn = lambda: make_mlp(
            in_features, 10, hidden=(64,), seed=derive_seed(seed, "model")
        )
    return Workload(
        scale=s,
        fed=fed,
        topology=topo,
        model_fn=model_fn,
        trainer_config=_trainer_config(s, seed),
        cost_model=paper_cost_model("cifar", "secagg"),
        task="cifar",
        alpha=alpha,
        seed=seed,
    )


def make_tta_workload(
    scale: str | ExperimentScale | None = None,
    alpha: float = 0.1,
    seed: int = 0,
    corruption_prob: float = 1.0,
    severities: int = 4,
    period: int = 5,
) -> Workload:
    """The FedCTTA-style continual test-time adaptation workload.

    The image workload with a streaming feature-corruption schedule: every
    round each client's features are re-noised from pristine at a severity
    from its own seeded stream (severities ``1..severities``, advancing
    every ``period`` rounds, per-client phase offsets) — the CIFAR-C-style
    corruption loop that stresses grouping under non-stationarity. The
    schedule lives in the population idiom, so it replays bit-identically
    on every backend and composes with churn/drift/faults; the cost model
    is unchanged, so accuracy-vs-cost curves are directly comparable to
    the static workload's.
    """
    from repro.population import FeatureCorruption, PopulationModel

    wl = make_image_workload(scale, alpha=alpha, seed=seed)
    population = PopulationModel(
        seed=derive_seed(seed, "tta"),
        dynamics=[
            FeatureCorruption(
                prob=corruption_prob, severities=severities, period=period
            )
        ],
    )
    wl.trainer_config = replace(wl.trainer_config, population=population)
    wl.task = "cifar-tta"
    return wl


def make_audio_workload(
    scale: str | ExperimentScale | None = None,
    alpha: float = 0.01,
    seed: int = 0,
) -> Workload:
    """The Speech-Commands-like workload of §7.3.2 (Fig. 11): 35 classes,
    extreme skew (α=0.01), MinGS=15 at paper scale."""
    s = get_scale(scale)
    rng = make_rng(derive_seed(seed, "audio", s.name))
    data = SyntheticAudio(noise_std=s.audio_noise, seed=rng.spawn(1)[0])
    train, test = data.train_test(s.train_samples, s.test_samples)
    fed = FederatedDataset.from_dataset(
        train,
        test,
        num_clients=s.num_clients,
        alpha=alpha,
        size_low=s.size_low,
        size_high=s.size_high,
        rng=rng.spawn(1)[0],
    )
    topo = HierarchicalTopology(s.num_clients, s.num_edges)
    if s.audio_model == "cnn":
        model_fn = lambda: make_audio_cnn(
            num_classes=35, base_width=8, seed=derive_seed(seed, "model")
        )
    else:
        in_features = int(np.prod(train.feature_shape))
        model_fn = lambda: make_mlp(
            in_features, 35, hidden=(64,), seed=derive_seed(seed, "model")
        )
    cfg = _trainer_config(s, seed)
    # §7.3.2: MinGS = 15 at paper scale and "no MaxCoV constraint"; the fast
    # scale keeps the same *ratio* of MinGS to client count.
    return Workload(
        scale=s,
        fed=fed,
        topology=topo,
        model_fn=model_fn,
        trainer_config=cfg,
        cost_model=paper_cost_model("sc", "secagg"),
        task="sc",
        alpha=alpha,
        seed=seed,
    )
