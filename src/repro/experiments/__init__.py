"""Experiment harness: one entry point per paper table/figure.

Every evaluation artifact of the paper has a function here that regenerates
its rows/series (see DESIGN.md's per-experiment index). Each accepts a
``scale`` — ``"fast"`` (minutes, CI-friendly; the benchmark default) or
``"paper"`` (full §7 workloads) — that changes only workload sizes, never
the algorithms.
"""

from repro.experiments.configs import (
    SCALES,
    ExperimentScale,
    get_scale,
    make_audio_workload,
    make_image_workload,
    make_tta_workload,
)
from repro.experiments.multiseed import (
    aggregate_histories,
    load_result,
    run_method_multiseed,
    save_result,
)
from repro.experiments.runner import run_method, run_methods
from repro.experiments.figures import (
    fig2a_group_overheads,
    fig2b_group_size,
    fig5_grouping_runtime,
    fig6_cov_vs_overhead,
    fig7_sampling_methods,
    fig8_rpi_measurement,
    fig9_fig10_all_methods_cifar,
    fig11_all_methods_sc,
    fig12_grouping_x_sampling,
    fig_tta_continual,
)
from repro.experiments.tables import table1_maxcov_alpha
from repro.experiments.report import format_series, format_table

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "make_image_workload",
    "make_audio_workload",
    "make_tta_workload",
    "run_method",
    "run_methods",
    "run_method_multiseed",
    "aggregate_histories",
    "save_result",
    "load_result",
    "fig2a_group_overheads",
    "fig2b_group_size",
    "fig5_grouping_runtime",
    "fig6_cov_vs_overhead",
    "fig7_sampling_methods",
    "fig8_rpi_measurement",
    "fig9_fig10_all_methods_cifar",
    "fig11_all_methods_sc",
    "fig12_grouping_x_sampling",
    "fig_tta_continual",
    "table1_maxcov_alpha",
    "format_series",
    "format_table",
]
