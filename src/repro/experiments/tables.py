"""Table 1: Group-FEL performance across α × MaxCoV."""

from __future__ import annotations

import numpy as np

from repro.experiments.configs import ExperimentScale, get_scale, make_image_workload
from repro.experiments.runner import run_combo
from repro.grouping import CoVGrouping, evaluate_grouping, group_clients_per_edge
from repro.rng import derive_seed

__all__ = ["table1_maxcov_alpha"]


def table1_maxcov_alpha(
    scale: str | ExperimentScale | None = None,
    alphas: tuple[float, ...] = (0.1, 0.5, 1.0),
    max_covs: tuple[float, ...] = (0.1, 0.5, 1.0),
    seed: int = 0,
) -> dict:
    """Group size / CoV / accuracy for each (α, MaxCoV) cell.

    Paper claims (Table 1): larger MaxCoV ⇒ smaller groups with larger CoV;
    larger α (more IID data) ⇒ better accuracy overall; under skewed data a
    loose MaxCoV can win (small groups are cheap), under IID data a tight
    MaxCoV is fine because IID groups are small anyway.
    """
    s = get_scale(scale)
    rows = []
    for alpha in alphas:
        for max_cov in max_covs:
            wl = make_image_workload(s, alpha=alpha, seed=seed)
            grouper = CoVGrouping(min_group_size=s.min_group_size, max_cov=max_cov)
            groups = group_clients_per_edge(
                grouper, wl.fed.L, wl.edge_assignment,
                rng=derive_seed(seed, "table1", str(alpha), str(max_cov)),
            )
            rep = evaluate_grouping(groups)
            hist = run_combo(grouper, "esrcov", wl, label=f"a{alpha}-c{max_cov}")
            rows.append(
                {
                    "alpha": alpha,
                    "MaxCoV": max_cov,
                    "GS_min": rep.size_min,
                    "GS_max": rep.size_max,
                    "GS_avg": round(rep.size_avg, 2),
                    "avg_cov": round(rep.avg_cov, 3),
                    "accuracy": round(hist.best_accuracy, 4),
                }
            )
    return {"table": "1", "rows": rows}
