"""Plain-text rendering of experiment outputs (the paper's rows/series)."""

from __future__ import annotations

import numpy as np

__all__ = ["format_table", "format_series"]


def format_table(rows: list[dict], title: str = "") -> str:
    """Render a list of uniform dicts as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty)"
    headers = list(rows[0].keys())
    cells = [[_fmt(r.get(h, "")) for h in headers] for r in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: dict, x_key: str, y_key: str, title: str = "") -> str:
    """Render label → {x: [...], y: [...]} curves as aligned columns."""
    lines = [title] if title else []
    for label, data in series.items():
        xs = data.get(x_key, [])
        ys = data.get(y_key, [])
        pts = "  ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
        lines.append(f"{label:>14s}: {pts}")
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float) or isinstance(v, np.floating):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3g}"
        return f"{v:.4g}"
    return str(v)
