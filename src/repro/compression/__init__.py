"""Update compression for communication-efficient FL (§2.3's third axis).

The paper's related work surveys methods that trade convergence for
bandwidth via gradient/model compression ([26, 27]). This subsystem
provides the standard compressors — top-k / random-k sparsification and
uniform b-bit quantization — plus error-feedback residual accumulation,
wired so a compressed Group-FEL run is a one-line change.

All compressors operate on flat update vectors (the delta a client or
group ships), matching the library's flat-parameter convention.
"""

from repro.compression.codecs import (
    Compressor,
    IdentityCompressor,
    QuantizeCompressor,
    RandomKCompressor,
    TopKCompressor,
)
from repro.compression.error_feedback import ErrorFeedback

__all__ = [
    "Compressor",
    "IdentityCompressor",
    "TopKCompressor",
    "RandomKCompressor",
    "QuantizeCompressor",
    "ErrorFeedback",
]
