"""Update compressors: sparsification and quantization.

Each compressor maps a flat float64 vector to (compressed form, decoded
vector, wire bytes). The decoded vector is what aggregation actually uses;
``wire_bytes`` feeds communication accounting so compressed runs show up
in traffic metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import make_rng

__all__ = [
    "CompressedUpdate",
    "Compressor",
    "IdentityCompressor",
    "TopKCompressor",
    "RandomKCompressor",
    "QuantizeCompressor",
]


@dataclass
class CompressedUpdate:
    """A compressed vector plus its decoded reconstruction."""

    decoded: np.ndarray
    wire_bytes: float
    meta: dict


class Compressor:
    """Interface: compress a flat update vector."""

    name = "base"

    def compress(
        self, vec: np.ndarray, rng: np.random.Generator | int | None = None
    ) -> CompressedUpdate:
        raise NotImplementedError

    def compression_ratio(self, dim: int) -> float:
        """Uncompressed bytes / wire bytes for a vector of length dim."""
        probe = np.zeros(dim)
        return (8.0 * dim) / max(self.compress(probe).wire_bytes, 1e-12)


class IdentityCompressor(Compressor):
    """No-op baseline (full-precision float64 on the wire)."""

    name = "identity"

    def compress(self, vec, rng=None) -> CompressedUpdate:
        vec = np.asarray(vec, dtype=np.float64)
        return CompressedUpdate(
            decoded=vec.copy(), wire_bytes=8.0 * vec.size, meta={}
        )


class TopKCompressor(Compressor):
    """Keep the k largest-magnitude coordinates; zero the rest.

    Wire format: k (index, value) pairs → 12 bytes each (4-byte index +
    8-byte value).
    """

    name = "topk"

    def __init__(self, fraction: float = 0.1):
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)

    def _k(self, dim: int) -> int:
        return max(1, int(round(self.fraction * dim)))

    def compress(self, vec, rng=None) -> CompressedUpdate:
        vec = np.asarray(vec, dtype=np.float64)
        k = self._k(vec.size)
        idx = np.argpartition(np.abs(vec), -k)[-k:]
        decoded = np.zeros_like(vec)
        decoded[idx] = vec[idx]
        return CompressedUpdate(
            decoded=decoded, wire_bytes=12.0 * k, meta={"k": k, "indices": idx}
        )


class RandomKCompressor(Compressor):
    """Keep k uniformly random coordinates, unbiased via 1/p scaling.

    E[decoded] = vec because kept entries are scaled by dim/k.
    """

    name = "randk"

    def __init__(self, fraction: float = 0.1, unbiased: bool = True):
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)
        self.unbiased = bool(unbiased)

    def compress(self, vec, rng=None) -> CompressedUpdate:
        vec = np.asarray(vec, dtype=np.float64)
        rng = make_rng(rng)
        k = max(1, int(round(self.fraction * vec.size)))
        idx = rng.choice(vec.size, size=k, replace=False)
        decoded = np.zeros_like(vec)
        scale = vec.size / k if self.unbiased else 1.0
        decoded[idx] = vec[idx] * scale
        return CompressedUpdate(
            decoded=decoded, wire_bytes=12.0 * k, meta={"k": k, "indices": idx}
        )


class QuantizeCompressor(Compressor):
    """Uniform b-bit quantization over the vector's dynamic range.

    Wire format: dim·b/8 bytes of codes plus two float64 range endpoints.
    Optional stochastic rounding makes the codec unbiased.
    """

    name = "quantize"

    def __init__(self, bits: int = 8, stochastic: bool = False):
        if not 1 <= bits <= 16:
            raise ValueError(f"bits must be in [1, 16], got {bits}")
        self.bits = int(bits)
        self.stochastic = bool(stochastic)

    def compress(self, vec, rng=None) -> CompressedUpdate:
        vec = np.asarray(vec, dtype=np.float64)
        lo, hi = float(vec.min(initial=0.0)), float(vec.max(initial=0.0))
        levels = (1 << self.bits) - 1
        if hi <= lo:
            decoded = np.full_like(vec, lo)
            return CompressedUpdate(
                decoded=decoded,
                wire_bytes=vec.size * self.bits / 8.0 + 16.0,
                meta={"lo": lo, "hi": hi},
            )
        unit = (vec - lo) / (hi - lo) * levels
        if self.stochastic:
            rng = make_rng(rng)
            floor = np.floor(unit)
            codes = floor + (rng.random(vec.shape) < (unit - floor))
        else:
            codes = np.rint(unit)
        decoded = lo + codes / levels * (hi - lo)
        return CompressedUpdate(
            decoded=decoded,
            wire_bytes=vec.size * self.bits / 8.0 + 16.0,
            meta={"lo": lo, "hi": hi},
        )
