"""Error-feedback residual accumulation (EF-SGD / memory compensation).

Biased compressors (top-k, deterministic quantization) lose signal every
round; error feedback adds the previous round's compression residual to
the next update before compressing, which provably restores convergence
for contractive compressors (Stich et al., 2018; Karimireddy et al.,
2019).
"""

from __future__ import annotations

import numpy as np

from repro.compression.codecs import CompressedUpdate, Compressor
from repro.rng import make_rng

__all__ = ["ErrorFeedback"]


class ErrorFeedback:
    """Per-sender residual memory wrapped around any compressor.

    Usage::

        ef = ErrorFeedback(TopKCompressor(0.05), num_params)
        sent = ef.compress(sender_id, update)   # decoded vector to aggregate
    """

    def __init__(self, compressor: Compressor, num_params: int):
        if num_params < 1:
            raise ValueError(f"num_params must be >= 1, got {num_params}")
        self.compressor = compressor
        self.num_params = int(num_params)
        self.residuals: dict[int, np.ndarray] = {}

    def _residual(self, sender_id: int) -> np.ndarray:
        if sender_id not in self.residuals:
            self.residuals[sender_id] = np.zeros(self.num_params)
        return self.residuals[sender_id]

    def compress(
        self,
        sender_id: int,
        update: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> CompressedUpdate:
        """Compress ``update + residual`` and bank the new residual."""
        update = np.asarray(update, dtype=np.float64)
        if update.shape != (self.num_params,):
            raise ValueError(
                f"update shape {update.shape} != ({self.num_params},)"
            )
        residual = self._residual(sender_id)
        target = update + residual
        out = self.compressor.compress(target, rng=make_rng(rng))
        self.residuals[sender_id] = target - out.decoded
        return out

    def reset(self) -> None:
        """Clear all residual memories (e.g. after regrouping)."""
        self.residuals.clear()

    def total_residual_norm(self) -> float:
        """Σ‖residual‖ across senders (diagnostic for lost signal)."""
        return float(
            sum(np.linalg.norm(r) for r in self.residuals.values())
        )
