"""Fixed-point quantization for secure aggregation.

Secure aggregation works over a modular integer ring; floating-point model
parameters are encoded as scaled integers mod 2^64 (native uint64 wraparound
is exactly the ring arithmetic we need, and stays vectorized).
"""

from __future__ import annotations

import numpy as np

__all__ = ["FixedPointCodec"]


class FixedPointCodec:
    """Encode float vectors as uint64 fixed-point ring elements.

    Parameters
    ----------
    scale:
        Fixed-point scale (values are rounded to multiples of 1/scale).
        The default 2^24 keeps round-trip error ~6e-8 per element while
        leaving ~2^39 of headroom for sums over many clients.
    clip:
        Values are clipped to ±clip before encoding; prevents overflow for
        adversarially large updates (and bounds the ring usage).
    """

    def __init__(self, scale: float = float(2**24), clip: float = 1e6):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if clip <= 0:
            raise ValueError(f"clip must be positive, got {clip}")
        self.scale = float(scale)
        self.clip = float(clip)

    def encode(self, vec: np.ndarray) -> np.ndarray:
        """float64 -> uint64 ring elements (two's-complement embedding)."""
        clipped = np.clip(vec, -self.clip, self.clip)
        ints = np.rint(clipped * self.scale).astype(np.int64)
        return ints.view(np.uint64)

    def decode(self, ring: np.ndarray, count: int = 1) -> np.ndarray:
        """uint64 ring elements -> float64.

        ``count`` is the number of encoded vectors that were summed; it only
        matters for error intuition — decoding is the same either way as
        long as the true sum stays within ±2^63/scale.
        """
        return ring.view(np.int64).astype(np.float64) / self.scale

    def roundtrip_error_bound(self) -> float:
        """Max absolute error introduced per element by one encode/decode."""
        return 0.5 / self.scale
