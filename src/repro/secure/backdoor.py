"""FLAME-style backdoor detection for group aggregation.

The defense from "FLAME: Taming Backdoors in Federated Learning" adapted to
the group setting: (1) pairwise cosine distances between client updates —
the Θ(|g|²·d) step that makes this a quadratic group operation; (2)
agglomerative clustering on the distance matrix, keeping the majority
cluster; (3) median-norm clipping of the admitted updates; (4) optional
Gaussian noise for a DP-style guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from repro.rng import make_rng
from repro.telemetry import Telemetry, resolve as resolve_telemetry

__all__ = ["DefenseReport", "BackdoorDetector"]


@dataclass
class DefenseReport:
    """Outcome of one backdoor-detection pass.

    ``admitted`` indexes the updates kept; ``flagged`` the rejected ones;
    ``clip_norm`` is the median L2 norm used for clipping; ``filtered`` the
    defended update matrix ready for aggregation.
    """

    admitted: np.ndarray
    flagged: np.ndarray
    clip_norm: float
    filtered: np.ndarray


class BackdoorDetector:
    """Cluster-and-clip defense over a group's client updates.

    Parameters
    ----------
    distance_threshold:
        Cosine-distance cut for the agglomerative clustering (``distance``
        criterion); updates whose cluster is not the largest are flagged.
    noise_std_factor:
        Gaussian noise std as a fraction of the clip norm (0 disables).
    criterion:
        ``"distance"`` — flat clusters at ``distance_threshold`` (fragile
        when honest updates are mutually near-orthogonal, as with small
        local datasets). ``"split"`` — majority split with a coordination
        guard: cut the dendrogram into two clusters and flag the minority
        only when it is ``separation_factor``× tighter than the majority
        (coordinated sybils are mutually similar; honest updates are not).
    separation_factor:
        Tightness ratio required to flag the minority (``split`` mode).
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; each detection records
        ``backdoor_detect_calls`` / ``backdoor_clients_flagged`` /
        ``backdoor_pairwise_distances`` (the Θ(s²) work) counters.
    """

    def __init__(
        self,
        distance_threshold: float = 0.5,
        noise_std_factor: float = 0.0,
        criterion: str = "distance",
        separation_factor: float = 1.3,
        telemetry: Telemetry | None = None,
    ):
        if distance_threshold <= 0:
            raise ValueError(f"distance_threshold must be > 0, got {distance_threshold}")
        if noise_std_factor < 0:
            raise ValueError(f"noise_std_factor must be >= 0, got {noise_std_factor}")
        if criterion not in ("distance", "split"):
            raise ValueError(f"criterion must be 'distance' or 'split', got {criterion!r}")
        if separation_factor <= 1.0:
            raise ValueError(f"separation_factor must be > 1, got {separation_factor}")
        self.distance_threshold = float(distance_threshold)
        self.noise_std_factor = float(noise_std_factor)
        self.criterion = criterion
        self.separation_factor = float(separation_factor)
        self.telemetry = resolve_telemetry(telemetry)

    @staticmethod
    def cosine_distance_matrix(updates: np.ndarray) -> np.ndarray:
        """Pairwise cosine distances, shape (s, s). The Θ(s²·d) kernel.

        One Gram product ``updates @ updates.T`` normalized by the norm
        outer product — the norms fall out of the Gram diagonal, so the
        (s, d) matrix is read exactly once and never copied row-normalized.
        """
        updates = np.asarray(updates, dtype=np.float64)
        gram = updates @ updates.T
        norms = np.sqrt(np.diagonal(gram))
        safe = np.where(norms > 0, norms, 1.0)
        sim = np.clip(gram / np.outer(safe, safe), -1.0, 1.0)
        dist = 1.0 - sim
        np.fill_diagonal(dist, 0.0)
        # Guard tiny negative values from accumulated FP error.
        return np.maximum(dist, 0.0)

    def detect(
        self,
        updates: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> DefenseReport:
        """Run the defense over updates of shape (clients, dim)."""
        updates = np.asarray(updates, dtype=np.float64)
        if updates.ndim != 2:
            raise ValueError(f"expected (clients, dim), got {updates.shape}")
        s = updates.shape[0]
        rng = make_rng(rng)
        if s == 1:
            admitted = np.array([0])
            flagged = np.array([], dtype=np.int64)
        else:
            dist = self.cosine_distance_matrix(updates)
            condensed = squareform(dist, checks=False)
            tree = linkage(condensed, method="average")
            if self.criterion == "distance":
                labels = fcluster(tree, t=self.distance_threshold, criterion="distance")
                counts = np.bincount(labels)
                majority = int(np.argmax(counts))
                admitted = np.flatnonzero(labels == majority)
                flagged = np.flatnonzero(labels != majority)
            else:
                admitted, flagged = self._split_criterion(tree, dist, s)

        kept = updates[admitted]
        norms = np.linalg.norm(kept, axis=1)
        clip_norm = float(np.median(norms)) if norms.size else 0.0
        if clip_norm > 0:
            factors = np.minimum(1.0, clip_norm / np.where(norms > 0, norms, clip_norm))
            kept = kept * factors[:, None]
        if self.noise_std_factor > 0 and clip_norm > 0:
            kept = kept + rng.normal(
                0.0, self.noise_std_factor * clip_norm, size=kept.shape
            )
        if self.telemetry.enabled:
            self.telemetry.inc("backdoor_detect_calls")
            self.telemetry.inc("backdoor_clients_flagged", float(flagged.size))
            self.telemetry.inc("backdoor_pairwise_distances", float(s * (s - 1) / 2))
        return DefenseReport(
            admitted=admitted, flagged=flagged, clip_norm=clip_norm, filtered=kept
        )

    def _split_criterion(
        self, tree: np.ndarray, dist: np.ndarray, s: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Majority split with a coordination (tightness) guard.

        Cut the dendrogram into two clusters and flag the minority only
        when it is markedly *tighter* than the majority: coordinated
        poisoning produces mutually similar updates (their gradients share
        the injected objective), whereas honest small-shard updates are
        mutually near-orthogonal — the sybil signal of FoolsGold/FLAME.
        An attack-free group splits into two similarly-loose halves and is
        admitted wholesale.
        """
        labels = fcluster(tree, t=2, criterion="maxclust")
        counts = np.bincount(labels)
        majority = int(np.argmax(counts))
        minority_idx = np.flatnonzero(labels != majority)
        majority_idx = np.flatnonzero(labels == majority)
        # 50/50 is ambiguous: admit everyone rather than guess.
        if minority_idx.size == 0 or minority_idx.size >= majority_idx.size:
            return np.arange(s), np.array([], dtype=np.int64)

        def tightness(idx: np.ndarray) -> float:
            if idx.size < 2:
                return 0.0  # singletons count as maximally coordinated
            sub = dist[np.ix_(idx, idx)]
            return float(sub[np.triu_indices(idx.size, k=1)].mean())

        minority_tight = tightness(minority_idx)
        majority_tight = tightness(majority_idx)
        if majority_tight <= 0:
            return np.arange(s), np.array([], dtype=np.int64)
        if minority_tight < majority_tight / self.separation_factor:
            return majority_idx, minority_idx
        return np.arange(s), np.array([], dtype=np.int64)
