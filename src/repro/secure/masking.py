"""Pairwise mask derivation for secure aggregation.

Each ordered client pair (i, j) with i < j shares a seed; client i adds the
PRG expansion of that seed to its masked vector and client j subtracts it.
Summed over all clients, every mask cancels exactly (in ring arithmetic),
so the aggregate equals the true sum while individual vectors stay hidden.

Each client touches |g|−1 pairs and expands a length-d mask for each, so
per-client work is Θ(|g|·d) and group work is Θ(|g|²·d) — the quadratic
group overhead at the heart of the paper's cost model.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pairwise_seed", "pairwise_mask"]


def pairwise_seed(round_id: int, client_a: int, client_b: int, session: int = 0) -> int:
    """Deterministic shared seed for an unordered client pair in a round.

    In the real protocol this comes from a Diffie–Hellman key agreement;
    here it is a stable hash of (session, round, sorted pair), which gives
    the same privacy-irrelevant property we need for simulation: both
    endpoints derive the same seed, nobody else's masks collide.
    """
    lo, hi = (client_a, client_b) if client_a <= client_b else (client_b, client_a)
    seq = np.random.SeedSequence([int(session), int(round_id), int(lo), int(hi)])
    return int(seq.generate_state(1, dtype=np.uint64)[0])


def pairwise_mask(seed: int, dim: int) -> np.ndarray:
    """Expand a pair seed into a uint64 mask vector of length ``dim``."""
    rng = np.random.Generator(np.random.Philox(seed))
    return rng.integers(0, 2**64, size=dim, dtype=np.uint64)
