"""Pairwise mask derivation for secure aggregation.

Each ordered client pair (i, j) with i < j shares a seed; client i adds the
PRG expansion of that seed to its masked vector and client j subtracts it.
Summed over all clients, every mask cancels exactly (in ring arithmetic),
so the aggregate equals the true sum while individual vectors stay hidden.

Each client touches |g|−1 pairs and expands a length-d mask for each, so
per-client work is Θ(|g|·d) and group work is Θ(|g|²·d) — the quadratic
group overhead at the heart of the paper's cost model.

Two implementations coexist:

* :func:`pairwise_seed` / :func:`pairwise_mask` — the scalar reference
  path: one ``SeedSequence`` per pair, one ``Generator(Philox)`` per mask.
* :func:`pairwise_seed_table` / :func:`batched_pair_masks` /
  :func:`accumulate_pair_masks` — the hot path: all Θ(s²) pair seeds of a
  round are derived in one vectorized ``SeedSequence`` hash pass (the
  entropy-pool mix re-implemented as fused NumPy array ops), all Philox
  key schedules likewise, and one reusable counter-mode Philox stream is
  re-keyed per pair instead of constructing a ``Generator`` object per
  mask.  All of it is **bit-identical** to the reference functions
  element-for-element (``tests/secure/test_masking_batched.py`` pins the
  equivalence), so masked vectors and ring sums do not change.

Seed tables are cached per (session, round, group size) — every group
round re-derives the same table for its aggregation calls, and in the
simulator pair identity is positional (local client indices 0..s−1), so
the table depends on nothing else.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = [
    "pairwise_seed",
    "pairwise_mask",
    "pairwise_seed_table",
    "batched_pair_masks",
    "clear_seed_table_cache",
]


def pairwise_seed(round_id: int, client_a: int, client_b: int, session: int = 0) -> int:
    """Deterministic shared seed for an unordered client pair in a round.

    In the real protocol this comes from a Diffie–Hellman key agreement;
    here it is a stable hash of (session, round, sorted pair), which gives
    the same privacy-irrelevant property we need for simulation: both
    endpoints derive the same seed, nobody else's masks collide.
    """
    lo, hi = (client_a, client_b) if client_a <= client_b else (client_b, client_a)
    seq = np.random.SeedSequence([int(session), int(round_id), int(lo), int(hi)])
    return int(seq.generate_state(1, dtype=np.uint64)[0])


def pairwise_mask(seed: int, dim: int) -> np.ndarray:
    """Expand a pair seed into a uint64 mask vector of length ``dim``."""
    rng = np.random.Generator(np.random.Philox(seed))
    return rng.integers(0, 2**64, size=dim, dtype=np.uint64)


# --------------------------------------------------------------------------
# Vectorized SeedSequence (numpy's entropy-pool hash, pool_size=4).
#
# Constants and mixing steps mirror numpy.random.SeedSequence exactly; all
# arithmetic runs on uint64 arrays masked back to 32 bits so thousands of
# pair seeds hash in a handful of fused array ops.
# --------------------------------------------------------------------------

_M32 = 0xFFFFFFFF
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_L = 0xCA01F9DD
_MIX_R = 0x4973F715
_XSHIFT = np.uint64(16)
_U32 = np.uint64(32)
_LOW32 = np.uint64(_M32)


def _hashmix(values: np.ndarray, hash_const: int) -> tuple[np.ndarray, int]:
    """One SeedSequence hash step over an array of 32-bit words."""
    values = values ^ np.uint64(hash_const)
    hash_const = (hash_const * _MULT_A) & _M32
    values = (values * np.uint64(hash_const)) & _LOW32
    values = values ^ (values >> _XSHIFT)
    return values, hash_const


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    r = (x * np.uint64(_MIX_L) - y * np.uint64(_MIX_R)) & _LOW32
    return r ^ (r >> _XSHIFT)


def _seedseq_pools(entropy_cols: list[np.ndarray]) -> list[np.ndarray]:
    """Vectorized entropy-pool fill + mix for ≤ 4 one-word entropy columns.

    Each column holds one 32-bit entropy word per lane (stored in uint64).
    Matches ``SeedSequence(entropy).pool`` for entropy lists of ≤ 4 words;
    a trailing zero column is identical to omitting the word, which is how
    numpy coerces integers below 2³² (so callers may always pass the
    (low, high) split of a 64-bit value).
    """
    shape = entropy_cols[0].shape
    pool: list[np.ndarray] = [np.empty(0, np.uint64)] * 4
    hash_const = _INIT_A
    for i in range(4):
        col = entropy_cols[i] if i < len(entropy_cols) else np.zeros(shape, np.uint64)
        pool[i], hash_const = _hashmix(col, hash_const)
    for src in range(4):
        for dst in range(4):
            if src != dst:
                hashed, hash_const = _hashmix(pool[src], hash_const)
                pool[dst] = _mix(pool[dst], hashed)
    return pool


def _seedseq_generate(pool: list[np.ndarray], n_words32: int) -> list[np.ndarray]:
    """Vectorized ``SeedSequence.generate_state`` (32-bit word stream)."""
    hash_const = _INIT_B
    words = []
    for i in range(n_words32):
        v = pool[i % 4] ^ np.uint64(hash_const)
        hash_const = (hash_const * _MULT_B) & _M32
        v = (v * np.uint64(hash_const)) & _LOW32
        words.append(v ^ (v >> _XSHIFT))
    return words


# --------------------------------------------------------------------------
# Batched mask expansion: one reusable Philox bit generator for all pairs.
# --------------------------------------------------------------------------


def _philox_keys(seeds: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-seed Philox key pair, matching ``Philox(seed)``'s key schedule
    (``SeedSequence(seed).generate_state(2, uint64)``), vectorized."""
    seeds = np.asarray(seeds, dtype=np.uint64)
    pool = _seedseq_pools([seeds & _LOW32, seeds >> _U32])
    w = _seedseq_generate(pool, 4)
    return w[0] | (w[1] << _U32), w[2] | (w[3] << _U32)


class _MaskStream:
    """One Philox counter-mode stream reused across all pairs of a round.

    ``pairwise_mask`` pays a ``SeedSequence`` hash plus a fresh
    ``Philox``/``Generator`` object per expansion (~tens of µs before the
    first random byte).  Here the keys of all pairs are derived in one
    vectorized :func:`_philox_keys` pass and a single bit generator is
    re-keyed per pair through its ``state`` dict (~1 µs); the raw counter
    stream then equals ``Generator(Philox(seed)).integers(0, 2**64, dim,
    uint64)`` bit for bit (full-range integers are the unmasked raw
    stream).
    """

    def __init__(self, seeds: np.ndarray):
        self._k0, self._k1 = _philox_keys(seeds)
        self._bitgen = np.random.Philox()
        self._state = self._bitgen.state
        self._state["state"]["counter"][:] = 0
        self._key = self._state["state"]["key"]

    def mask(self, index: int, dim: int) -> np.ndarray:
        """The mask for pair ``index``: equals ``pairwise_mask(seeds[index], dim)``."""
        self._key[0] = self._k0[index]
        self._key[1] = self._k1[index]
        self._state["buffer_pos"] = 4  # flush the 4-word output buffer
        self._bitgen.state = self._state
        return self._bitgen.random_raw(dim)


def batched_pair_masks(seeds: np.ndarray, dim: int) -> np.ndarray:
    """Expand many pair seeds at once: (len(seeds), dim) uint64 masks.

    Row k is bit-identical to ``pairwise_mask(seeds[k], dim)``; all key
    schedules are derived in one vectorized pass and a single reusable
    Philox stream expands every row (see :class:`_MaskStream`).
    """
    seeds = np.asarray(seeds, dtype=np.uint64)
    n = seeds.shape[0]
    out = np.empty((n, int(dim)), dtype=np.uint64)
    if n == 0 or dim == 0:
        return out
    stream = _MaskStream(seeds)
    for k in range(n):
        out[k] = stream.mask(k, int(dim))
    return out


def accumulate_pair_masks(
    masked: np.ndarray, lo: np.ndarray, hi: np.ndarray, seeds: np.ndarray
) -> None:
    """Apply every pair mask to ``masked`` in place: row ``lo[k]`` gains
    ``+pairwise_mask(seeds[k], dim)`` and row ``hi[k]`` gains the same mask
    negated (uint64 wraparound = ring arithmetic).

    Each mask is expanded **once** and applied with both signs — ring
    addition commutes, so the resulting rows are bit-identical to the
    reference protocol where both endpoints expand the mask independently.
    Nothing quadratic is materialized: the peak extra memory is one
    ``dim``-length vector.
    """
    if masked.ndim != 2 or masked.dtype != np.uint64:
        raise ValueError("masked must be a 2-D uint64 matrix")
    n = len(seeds)
    if n == 0:
        return
    dim = masked.shape[1]
    stream = _MaskStream(np.asarray(seeds, dtype=np.uint64))
    for k in range(n):
        mask = stream.mask(k, dim)
        masked[lo[k]] += mask
        masked[hi[k]] -= mask


# --------------------------------------------------------------------------
# Per-round pair-seed tables, cached.
# --------------------------------------------------------------------------

_SEED_TABLE_CACHE: dict[tuple[int, int, int], tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
_SEED_TABLE_LOCK = threading.Lock()
_SEED_TABLE_CAPACITY = 16


def pairwise_seed_table(
    round_id: int, num_clients: int, session: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All pair seeds of one round: ``(lo, hi, seeds)`` in condensed order.

    ``lo``/``hi`` are the i < j index pairs in ``np.triu_indices`` order and
    ``seeds[k] == pairwise_seed(round_id, lo[k], hi[k], session)`` for every
    k — derived in one vectorized SeedSequence pass over all Θ(s²) pairs.
    Tables are memoized (capacity-bounded, thread-safe) on
    (session, round, group size): the simulator addresses clients by local
    index, so equal-sized groups in the same round share one table.
    """
    key = (int(session), int(round_id), int(num_clients))
    with _SEED_TABLE_LOCK:
        cached = _SEED_TABLE_CACHE.get(key)
    if cached is not None:
        return cached
    lo, hi = np.triu_indices(int(num_clients), k=1)
    lo = lo.astype(np.int64)
    hi = hi.astype(np.int64)
    if 0 <= key[0] <= _M32 and 0 <= key[1] <= _M32:
        cols = [
            np.full(lo.shape, key[0], np.uint64),
            np.full(lo.shape, key[1], np.uint64),
            lo.astype(np.uint64),
            hi.astype(np.uint64),
        ]
        w = _seedseq_generate(_seedseq_pools(cols), 2)
        seeds = w[0] | (w[1] << _U32)
    else:
        # Entropy words ≥ 2³² split into multiple 32-bit words in numpy's
        # coercion; fall back to the scalar reference for this rare shape.
        seeds = np.array(
            [pairwise_seed(round_id, int(a), int(b), session) for a, b in zip(lo, hi)],
            dtype=np.uint64,
        ).reshape(lo.shape)
    table = (lo, hi, seeds)
    with _SEED_TABLE_LOCK:
        if len(_SEED_TABLE_CACHE) >= _SEED_TABLE_CAPACITY:
            _SEED_TABLE_CACHE.pop(next(iter(_SEED_TABLE_CACHE)))
        _SEED_TABLE_CACHE[key] = table
    return table


def clear_seed_table_cache() -> None:
    """Drop all memoized pair-seed tables (mainly for tests)."""
    with _SEED_TABLE_LOCK:
        _SEED_TABLE_CACHE.clear()
