"""Bonawitz-style secure aggregation over a client group.

The protocol simulated here is the mask-cancellation core of
"Practical Secure Aggregation for Privacy-Preserving Machine Learning"
(CCS'17): fixed-point encoding, pairwise additive masks, server-side ring
summation. Dropout recovery (secret-sharing the seeds) is out of scope —
the simulator has no partial failures — but the cost structure (Θ(|g|²·d)
mask work per group) is exactly what the paper's O_g(|g|) quadratic
overhead models.

The hot path batches the whole round: one cached pair-seed table
(:func:`repro.secure.masking.pairwise_seed_table`), all Philox key
schedules derived in one vectorized hash pass, and a single reusable
counter-mode stream that expands each pair mask once and applies it ± in
place (:func:`repro.secure.masking.accumulate_pair_masks`).  Because ring
addition is commutative, the masked vectors — and therefore the ring sum —
are bit-identical to the scalar reference path (kept as
:meth:`SecureAggregator.aggregate_reference`).  ``mask_expansions`` keeps
counting the *protocol's* PRG work (two expansions per pair, the Θ(s²)
quantity), independent of the simulator's dedup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.secure.masking import (
    accumulate_pair_masks,
    pairwise_mask,
    pairwise_seed,
    pairwise_seed_table,
)
from repro.secure.quantize import FixedPointCodec
from repro.telemetry import Telemetry, resolve as resolve_telemetry

__all__ = ["SecAggResult", "SecureAggregator"]


@dataclass
class SecAggResult:
    """Outcome of one secure aggregation.

    ``total`` is the decoded sum of all client vectors; ``masked_inputs``
    are what the server actually saw (for tests asserting privacy);
    ``mask_expansions`` counts PRG mask vectors generated (2 per pair),
    the quantity that scales quadratically with group size.
    """

    total: np.ndarray
    masked_inputs: np.ndarray
    mask_expansions: int

    @property
    def mean(self) -> np.ndarray:
        return self.total / self.masked_inputs.shape[0]


class SecureAggregator:
    """Aggregate client vectors without revealing any individual vector.

    Parameters
    ----------
    codec:
        Fixed-point codec; default scale 2^24 (error ≤ 3e-8 per element).
    payload_factor:
        Multiplier on the vector length actually masked, modelling protocol
        variants that ship extra state — SCAFFOLD sends model + control
        variate, i.e. ``payload_factor=2`` (Fig. 8's "SCAFFOLD SecAgg"
        curve sits above plain SecAgg for exactly this reason).
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; every aggregation
        records ``secagg_calls`` / ``secagg_mask_expansions`` /
        ``secagg_bytes_masked`` counters — the Θ(s²) quantities of Eq. (5).
    """

    def __init__(
        self,
        codec: FixedPointCodec | None = None,
        payload_factor: int = 1,
        telemetry: Telemetry | None = None,
    ):
        if payload_factor < 1:
            raise ValueError(f"payload_factor must be >= 1, got {payload_factor}")
        self.codec = codec or FixedPointCodec()
        self.payload_factor = int(payload_factor)
        self.telemetry = resolve_telemetry(telemetry)

    def _validate(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError(f"expected (clients, dim), got shape {vectors.shape}")
        return vectors

    def _encode_masked(self, vectors: np.ndarray) -> np.ndarray:
        """Fixed-point encode all rows, tiled to the masked payload width."""
        enc = self.codec.encode(vectors)
        if self.payload_factor > 1:
            enc = np.tile(enc, (1, self.payload_factor))
        return enc

    def _finish(
        self, masked: np.ndarray, dim: int, s: int, expansions: int
    ) -> SecAggResult:
        ring_sum = masked.sum(axis=0, dtype=np.uint64)
        total = self.codec.decode(ring_sum[:dim], count=s)
        if self.telemetry.enabled:
            self.telemetry.inc("secagg_calls")
            self.telemetry.inc("secagg_mask_expansions", float(expansions))
            self.telemetry.inc("secagg_bytes_masked", float(masked.nbytes))
        return SecAggResult(total=total, masked_inputs=masked, mask_expansions=expansions)

    def aggregate(
        self,
        vectors: np.ndarray,
        round_id: int = 0,
        session: int = 0,
    ) -> SecAggResult:
        """Securely sum ``vectors`` of shape (clients, dim).

        Every client's submission is masked by the pairwise masks; the
        server sums the masked uint64 vectors (wraparound = ring addition)
        and decodes. The result equals the plain sum up to fixed-point
        rounding.
        """
        vectors = self._validate(vectors)
        s, dim = vectors.shape
        masked = self._encode_masked(vectors)
        if s > 1:
            lo, hi, seeds = pairwise_seed_table(round_id, s, session)
            accumulate_pair_masks(masked, lo, hi, seeds)
        return self._finish(masked, dim, s, s * (s - 1))

    def aggregate_reference(
        self,
        vectors: np.ndarray,
        round_id: int = 0,
        session: int = 0,
    ) -> SecAggResult:
        """The pre-vectorization implementation: one ``SeedSequence`` and
        one ``Generator`` per (client, partner) mask expansion.

        Kept as the golden reference — ``benchmarks/test_hotpaths.py``
        measures the speedup against it, and the equivalence tests assert
        that :meth:`aggregate` produces bit-identical masked matrices.
        """
        vectors = self._validate(vectors)
        s, dim = vectors.shape
        masked_dim = dim * self.payload_factor
        enc_all = self._encode_masked(vectors)
        masked = np.zeros((s, masked_dim), dtype=np.uint64)
        expansions = 0
        for i in range(s):
            acc = enc_all[i].copy()
            for j in range(s):
                if j == i:
                    continue
                mask = pairwise_mask(pairwise_seed(round_id, i, j, session), masked_dim)
                expansions += 1
                if i < j:
                    acc += mask  # uint64 wraparound == ring addition
                else:
                    acc -= mask
            masked[i] = acc
        return self._finish(masked, dim, s, expansions)

    def aggregate_weighted(
        self,
        vectors: np.ndarray,
        weights: np.ndarray,
        round_id: int = 0,
        session: int = 0,
    ) -> np.ndarray:
        """Securely compute Σ w_i · v_i (clients pre-scale locally)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (vectors.shape[0],):
            raise ValueError("one weight per client vector required")
        return self.aggregate(vectors * weights[:, None], round_id, session).total
