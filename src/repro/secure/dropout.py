"""Dropout-tolerant secure aggregation (Bonawitz et al.'s round 2).

Extends the mask-cancellation core with seed secret-sharing: before
masking, every client splits each of its pairwise seeds among the group
(threshold t). If a client drops after others already applied masks
against it, the server collects ≥ t shares from survivors, reconstructs
the dropped client's pairwise seeds, re-expands the masks, and cancels
them from the aggregate. The decoded sum then equals the plain sum of the
*surviving* clients' vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import make_rng
from repro.secure.masking import pairwise_mask, pairwise_seed
from repro.secure.quantize import FixedPointCodec
from repro.secure.shamir import reconstruct_secret, split_secret

__all__ = ["DropoutSecAggResult", "DropoutTolerantAggregator"]


@dataclass
class DropoutSecAggResult:
    """Outcome of a dropout-tolerant aggregation."""

    total: np.ndarray  # sum over surviving clients
    survivors: np.ndarray  # indices of clients whose data made it in
    reconstructed_pairs: int  # how many pair masks had to be reconstructed
    shares_used: int  # total Shamir shares consumed


class DropoutTolerantAggregator:
    """Pairwise-masked aggregation that survives client dropouts.

    Parameters
    ----------
    threshold:
        Shamir threshold t; reconstruction needs t surviving shareholders,
        so the protocol tolerates up to ``group_size − threshold`` drops.
    codec:
        Fixed-point codec shared with the basic aggregator.
    """

    def __init__(self, threshold: int = 2, codec: FixedPointCodec | None = None):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = int(threshold)
        self.codec = codec or FixedPointCodec()

    def aggregate(
        self,
        vectors: np.ndarray,
        dropped: set[int] | list[int] = (),
        round_id: int = 0,
        session: int = 0,
        rng: np.random.Generator | int | None = None,
    ) -> DropoutSecAggResult:
        """Aggregate with the given clients dropping after masking.

        ``dropped`` clients never deliver their masked vector, but the
        masks other clients applied against them must still be cancelled —
        that is the reconstruction step.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError(f"expected (clients, dim), got {vectors.shape}")
        s, dim = vectors.shape
        dropped_set = set(int(d) for d in dropped)
        if any(d < 0 or d >= s for d in dropped_set):
            raise ValueError("dropped indices out of range")
        survivors = [i for i in range(s) if i not in dropped_set]
        if len(survivors) < self.threshold:
            raise ValueError(
                f"only {len(survivors)} survivors but threshold is {self.threshold}: "
                "aggregate unrecoverable"
            )
        rng = make_rng(rng)

        # Round 0: every client Shamir-shares each pairwise seed among the
        # group (in the real protocol, encrypted peer-to-peer).
        seed_shares: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for i in range(s):
            for j in range(i + 1, s):
                seed = pairwise_seed(round_id, i, j, session)
                seed_shares[(i, j)] = split_secret(
                    seed, num_shares=s, threshold=self.threshold, rng=rng
                )

        # Round 1: survivors submit masked vectors.
        ring_sum = np.zeros(dim, dtype=np.uint64)
        for i in survivors:
            acc = self.codec.encode(vectors[i]).copy()
            for j in range(s):
                if j == i:
                    continue
                mask = pairwise_mask(pairwise_seed(round_id, i, j, session), dim)
                if i < j:
                    acc += mask
                else:
                    acc -= mask
            ring_sum += acc

        # Round 2: cancel the uncancelled masks — every (survivor, dropped)
        # pair left exactly one un-matched mask in the sum. Survivors hand
        # the server their shares of the dropped clients' seeds.
        reconstructed = 0
        shares_used = 0
        for d in dropped_set:
            for i in survivors:
                lo, hi = (i, d) if i < d else (d, i)
                shares = seed_shares[(lo, hi)]
                # Server queries `threshold` surviving shareholders.
                provider_ids = survivors[: self.threshold]
                subset = [shares[p] for p in provider_ids]
                seed = reconstruct_secret(subset)
                shares_used += len(subset)
                mask = pairwise_mask(seed, dim)
                reconstructed += 1
                # Survivor i applied +mask if i < d else −mask; remove it.
                if i < d:
                    ring_sum -= mask
                else:
                    ring_sum += mask

        total = self.codec.decode(ring_sum)
        return DropoutSecAggResult(
            total=total,
            survivors=np.array(survivors, dtype=np.int64),
            reconstructed_pairs=reconstructed,
            shares_used=shares_used,
        )
