"""Group operations: secure aggregation and backdoor detection.

These are the operations whose per-client cost is quadratic in group size
(Fig. 2a / Fig. 8) and which motivate the whole paper: groups must be small
for cost, yet IID for convergence. Both are real implementations, not
cost-model stubs — the RPi emulation (`repro.costs.rpi`) times them to
calibrate the cost model.

* ``secagg`` — Bonawitz-style pairwise-masked aggregation over fixed-point
  integers: each pair of clients derives a shared mask that cancels in the
  sum, so the server only ever sees masked vectors.
* ``backdoor`` — a FLAME-style defense: pairwise cosine distances between
  client updates, clustering to drop outliers, median-norm clipping, and
  optional noise.
"""

from repro.secure.quantize import FixedPointCodec
from repro.secure.masking import (
    batched_pair_masks,
    clear_seed_table_cache,
    pairwise_mask,
    pairwise_seed,
    pairwise_seed_table,
)
from repro.secure.secagg import SecureAggregator, SecAggResult
from repro.secure.backdoor import BackdoorDetector, DefenseReport
from repro.secure.shamir import PRIME, reconstruct_secret, split_secret
from repro.secure.dropout import DropoutSecAggResult, DropoutTolerantAggregator

__all__ = [
    "FixedPointCodec",
    "pairwise_mask",
    "pairwise_seed",
    "pairwise_seed_table",
    "batched_pair_masks",
    "clear_seed_table_cache",
    "SecureAggregator",
    "SecAggResult",
    "BackdoorDetector",
    "DefenseReport",
    "PRIME",
    "split_secret",
    "reconstruct_secret",
    "DropoutTolerantAggregator",
    "DropoutSecAggResult",
]
