"""Shamir secret sharing over a prime field (for SecAgg dropout recovery).

In Bonawitz et al.'s protocol each client secret-shares the seeds of its
pairwise masks among the group, so that if it drops out mid-round any t of
the surviving clients can hand the server enough shares to reconstruct —
and cancel — the dropped client's masks. Seeds are 64-bit integers, so the
field is a fixed 127-bit Mersenne prime (2¹²⁷ − 1) and all arithmetic uses
exact Python integers.
"""

from __future__ import annotations

import numpy as np

from repro.rng import make_rng

__all__ = ["PRIME", "split_secret", "reconstruct_secret"]

#: 2**127 - 1, a Mersenne prime comfortably above any 64-bit seed.
PRIME = (1 << 127) - 1


def split_secret(
    secret: int,
    num_shares: int,
    threshold: int,
    rng: np.random.Generator | int | None = None,
) -> list[tuple[int, int]]:
    """Split ``secret`` into ``num_shares`` shares, any ``threshold`` of
    which reconstruct it.

    Returns ``[(x, f(x)), ...]`` with distinct nonzero x's.
    """
    if not 0 <= secret < PRIME:
        raise ValueError(f"secret must be in [0, PRIME), got {secret}")
    if not 1 <= threshold <= num_shares:
        raise ValueError(
            f"need 1 <= threshold ({threshold}) <= num_shares ({num_shares})"
        )
    rng = make_rng(rng)
    # Random polynomial of degree threshold-1 with f(0) = secret.
    coeffs = [int(secret)] + [
        int.from_bytes(rng.bytes(16), "little") % PRIME for _ in range(threshold - 1)
    ]
    shares = []
    for x in range(1, num_shares + 1):
        y = 0
        for c in reversed(coeffs):  # Horner evaluation mod PRIME
            y = (y * x + c) % PRIME
        shares.append((x, y))
    return shares


def reconstruct_secret(shares: list[tuple[int, int]]) -> int:
    """Lagrange interpolation at 0 from ≥ threshold shares."""
    if not shares:
        raise ValueError("need at least one share")
    xs = [s[0] for s in shares]
    if len(set(xs)) != len(xs):
        raise ValueError("shares must have distinct x coordinates")
    secret = 0
    for i, (xi, yi) in enumerate(shares):
        num = den = 1
        for j, (xj, _) in enumerate(shares):
            if i == j:
                continue
            num = (num * (-xj)) % PRIME
            den = (den * (xi - xj)) % PRIME
        lagrange = num * pow(den, PRIME - 2, PRIME) % PRIME
        secret = (secret + yi * lagrange) % PRIME
    return secret
