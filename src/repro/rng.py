"""Deterministic random-number management for Group-FEL simulations.

Every stochastic component (data synthesis, Dirichlet partitioning, group
formation tie-breaking, group sampling, minibatch selection, weight
initialization) draws from a :class:`numpy.random.Generator` that is
*spawned* from a single root seed. Spawning follows NumPy's ``SeedSequence``
design so that independent components receive statistically independent
streams while the whole experiment stays reproducible from one integer.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "make_rng",
    "spawn",
    "spawn_many",
    "derive_seed",
    "generator_state",
    "restore_generator",
]


def make_rng(seed: int | None | np.random.Generator = None) -> np.random.Generator:
    """Return a Generator from a seed, None, or an existing Generator.

    Passing a Generator through unchanged lets APIs accept either a seed or
    a live stream without callers caring which.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Spawn one statistically independent child generator."""
    return rng.spawn(1)[0]


def spawn_many(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent child generators in one call."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return list(rng.spawn(n))


def derive_seed(root_seed: int, *path: int | str) -> int:
    """Derive a stable 63-bit integer seed from a root seed and a key path.

    Used when a component must be re-created from scratch (e.g. in a worker
    process) yet still align with the parent experiment's stream layout.
    The derivation hashes the path through ``SeedSequence`` entropy mixing,
    so ``derive_seed(s, "client", 3)`` is stable across runs and platforms.
    """
    tokens: list[int] = [int(root_seed) & 0xFFFFFFFFFFFFFFFF]
    for item in path:
        if isinstance(item, str):
            # Stable string -> int folding (FNV-1a, 64-bit).
            acc = 0xCBF29CE484222325
            for byte in item.encode("utf-8"):
                acc ^= byte
                acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            tokens.append(acc)
        else:
            tokens.append(int(item) & 0xFFFFFFFFFFFFFFFF)
    seq = np.random.SeedSequence(tokens)
    return int(seq.generate_state(1, dtype=np.uint64)[0] & 0x7FFFFFFFFFFFFFFF)


def generator_state(rng: np.random.Generator) -> dict:
    """Snapshot a Generator completely enough to resume it bit-for-bit.

    ``bit_generator.state`` alone is not enough: :meth:`Generator.spawn`
    consumes the *seed sequence's* child counter, which lives outside the
    bit-generator state. Both are captured, so a restored generator
    reproduces the original's future draws **and** future spawns.

    The returned dict contains only builtin types (ints, strings, lists),
    so it serializes under any format.
    """
    bg = rng.bit_generator
    seq = getattr(bg, "seed_seq", None)
    seq_state = None
    if isinstance(seq, np.random.SeedSequence):
        entropy = seq.entropy
        if isinstance(entropy, np.ndarray):  # normalize for serialization
            entropy = [int(e) for e in entropy]
        seq_state = {
            "entropy": entropy,
            "spawn_key": [int(k) for k in seq.spawn_key],
            "pool_size": int(seq.pool_size),
            "n_children_spawned": int(seq.n_children_spawned),
        }
    return {
        "bit_generator": type(bg).__name__,
        "state": bg.state,
        "seed_seq": seq_state,
    }


def restore_generator(state: dict) -> np.random.Generator:
    """Rebuild a Generator from a :func:`generator_state` snapshot."""
    try:
        bg_cls = getattr(np.random, state["bit_generator"])
    except AttributeError:
        raise ValueError(
            f"unknown bit generator {state['bit_generator']!r}"
        ) from None
    seq_state = state.get("seed_seq")
    if seq_state is not None:
        entropy = seq_state["entropy"]
        if isinstance(entropy, list):
            entropy = [int(e) for e in entropy]
        seq = np.random.SeedSequence(
            entropy=entropy,
            spawn_key=tuple(int(k) for k in seq_state["spawn_key"]),
            pool_size=int(seq_state["pool_size"]),
            n_children_spawned=int(seq_state["n_children_spawned"]),
        )
        bg = bg_cls(seq)
    else:
        # No seed sequence (exotic hand-built generator): the stream
        # position is restored below but future .spawn() calls are not
        # reproducible — see docs/API.md, "RNG-state caveats".
        bg = bg_cls()
    bg.state = state["state"]
    return np.random.Generator(bg)
