"""Deterministic random-number management for Group-FEL simulations.

Every stochastic component (data synthesis, Dirichlet partitioning, group
formation tie-breaking, group sampling, minibatch selection, weight
initialization) draws from a :class:`numpy.random.Generator` that is
*spawned* from a single root seed. Spawning follows NumPy's ``SeedSequence``
design so that independent components receive statistically independent
streams while the whole experiment stays reproducible from one integer.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["make_rng", "spawn", "spawn_many", "derive_seed"]


def make_rng(seed: int | None | np.random.Generator = None) -> np.random.Generator:
    """Return a Generator from a seed, None, or an existing Generator.

    Passing a Generator through unchanged lets APIs accept either a seed or
    a live stream without callers caring which.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Spawn one statistically independent child generator."""
    return rng.spawn(1)[0]


def spawn_many(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent child generators in one call."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return list(rng.spawn(n))


def derive_seed(root_seed: int, *path: int | str) -> int:
    """Derive a stable 63-bit integer seed from a root seed and a key path.

    Used when a component must be re-created from scratch (e.g. in a worker
    process) yet still align with the parent experiment's stream layout.
    The derivation hashes the path through ``SeedSequence`` entropy mixing,
    so ``derive_seed(s, "client", 3)`` is stable across runs and platforms.
    """
    tokens: list[int] = [int(root_seed) & 0xFFFFFFFFFFFFFFFF]
    for item in path:
        if isinstance(item, str):
            # Stable string -> int folding (FNV-1a, 64-bit).
            acc = 0xCBF29CE484222325
            for byte in item.encode("utf-8"):
                acc ^= byte
                acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            tokens.append(acc)
        else:
            tokens.append(int(item) & 0xFFFFFFFFFFFFFFFF)
    seq = np.random.SeedSequence(tokens)
    return int(seq.generate_state(1, dtype=np.uint64)[0] & 0x7FFFFFFFFFFFFFFF)
