"""Group-FEL: group-based hierarchical federated learning.

A complete reproduction of "Group-based Hierarchical Federated Learning:
Convergence, Group Formation, and Sampling" (Liu et al., ICPP 2023),
implemented from scratch on NumPy. See DESIGN.md for the system inventory
and EXPERIMENTS.md for the paper-vs-measured record.

Quick tour
----------
>>> from repro import (SyntheticImage, FederatedDataset, CoVGrouping,
...                    group_clients_per_edge, GroupFELTrainer, TrainerConfig,
...                    make_mlp, paper_cost_model)
>>> import numpy as np
>>> data = SyntheticImage(seed=0)
>>> train, test = data.train_test(8000, 1000)
>>> fed = FederatedDataset.from_dataset(train, test, num_clients=30, alpha=0.1, rng=0)
>>> groups = group_clients_per_edge(CoVGrouping(3, 0.5), fed.L, [np.arange(30)], rng=0)
>>> trainer = GroupFELTrainer(lambda: make_mlp(192, 10, seed=0), fed, groups,
...                           TrainerConfig(max_rounds=5), paper_cost_model())
>>> history = trainer.run()
"""

from repro.attacks import (
    LabelFlipAttack,
    ScalingAttack,
    SignFlipAttack,
    TriggerBackdoorAttack,
    attack_success_rate,
    poison_federation,
)
from repro.baselines import METHODS, FedCLARTrainer, build_method
from repro.checkpoint import (
    CheckpointError,
    CheckpointManager,
    CheckpointPolicy,
    CheckpointVersionError,
    CorruptCheckpointError,
    checkpointing_activated,
)
from repro.core import (
    Callback,
    Checkpointer,
    EarlyStopping,
    FedProxStrategy,
    GroupFELTrainer,
    MetricTracker,
    PlainSGDStrategy,
    RoundLogger,
    ScaffoldStrategy,
    TelemetryCallback,
    TimeBudget,
    TrainerConfig,
)
from repro.costs import (
    CostLedger,
    CostModel,
    LinearCost,
    QuadraticCost,
    RPiEmulator,
    paper_cost_model,
)
from repro.data import (
    ArrayDataset,
    ClientDataset,
    FederatedDataset,
    SyntheticAudio,
    SyntheticImage,
    dirichlet_partition,
    make_dataset,
)
from repro.faults import (
    ClientDropout,
    FaultEvent,
    FaultPlan,
    FaultTrace,
    GroupFailure,
    MessageLoss,
    RetryPolicy,
    Straggler,
    get_active_plan,
    plan_activated,
    set_active_plan,
)
from repro.grouping import (
    CDGGrouping,
    CoVGammaGrouping,
    CoVGrouping,
    Group,
    KLDGrouping,
    RandomGrouping,
    cov_of_counts,
    exhaustive_optimal_grouping,
    group_clients_per_edge,
)
from repro.metrics import (
    FairnessReport,
    TrainingHistory,
    participation_counts,
    per_client_accuracy,
)
from repro.nn import (
    MLP,
    Adam,
    AudioCNN,
    ResNetLite,
    SGD,
    Sequential,
    load_model,
    make_audio_cnn,
    make_mlp,
    make_resnet_lite,
    save_model,
)
from repro.population import (
    Arrivals,
    Departures,
    InitialActive,
    LabelDrift,
    OnlineGroupMaintainer,
    PopulationEngine,
    PopulationEvent,
    PopulationModel,
    PopulationTrace,
    get_active_population,
    population_activated,
    set_active_population,
)
from repro.sampling import AggregationMode, GroupSampler, sampling_probabilities
from repro.secure import (
    BackdoorDetector,
    DropoutTolerantAggregator,
    SecureAggregator,
)
from repro.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    activated,
    get_active,
    set_active,
)
from repro.theory import BoundInputs, convergence_bound
from repro.topology import CommModel, HierarchicalTopology

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data
    "ArrayDataset",
    "SyntheticImage",
    "SyntheticAudio",
    "make_dataset",
    "dirichlet_partition",
    "ClientDataset",
    "FederatedDataset",
    # nn
    "MLP",
    "ResNetLite",
    "AudioCNN",
    "Sequential",
    "SGD",
    "Adam",
    "make_mlp",
    "make_resnet_lite",
    "make_audio_cnn",
    "save_model",
    "load_model",
    # grouping
    "Group",
    "CoVGrouping",
    "RandomGrouping",
    "CDGGrouping",
    "KLDGrouping",
    "CoVGammaGrouping",
    "exhaustive_optimal_grouping",
    "cov_of_counts",
    "group_clients_per_edge",
    # sampling
    "GroupSampler",
    "AggregationMode",
    "sampling_probabilities",
    # core
    "GroupFELTrainer",
    "TrainerConfig",
    "PlainSGDStrategy",
    "FedProxStrategy",
    "ScaffoldStrategy",
    "Callback",
    "RoundLogger",
    "EarlyStopping",
    "Checkpointer",
    "TimeBudget",
    "MetricTracker",
    "TelemetryCallback",
    # baselines
    "METHODS",
    "build_method",
    "FedCLARTrainer",
    # checkpoint
    "CheckpointManager",
    "CheckpointPolicy",
    "CheckpointError",
    "CorruptCheckpointError",
    "CheckpointVersionError",
    "checkpointing_activated",
    # faults
    "FaultPlan",
    "FaultEvent",
    "FaultTrace",
    "ClientDropout",
    "Straggler",
    "MessageLoss",
    "RetryPolicy",
    "GroupFailure",
    "plan_activated",
    "get_active_plan",
    "set_active_plan",
    # population
    "PopulationModel",
    "PopulationEngine",
    "PopulationTrace",
    "PopulationEvent",
    "OnlineGroupMaintainer",
    "InitialActive",
    "Arrivals",
    "Departures",
    "LabelDrift",
    "population_activated",
    "get_active_population",
    "set_active_population",
    # costs
    "CostModel",
    "LinearCost",
    "QuadraticCost",
    "CostLedger",
    "RPiEmulator",
    "paper_cost_model",
    # secure
    "SecureAggregator",
    "DropoutTolerantAggregator",
    "BackdoorDetector",
    # attacks
    "LabelFlipAttack",
    "SignFlipAttack",
    "ScalingAttack",
    "TriggerBackdoorAttack",
    "poison_federation",
    "attack_success_rate",
    # telemetry
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "activated",
    "get_active",
    "set_active",
    # theory
    "BoundInputs",
    "convergence_bound",
    # topology
    "HierarchicalTopology",
    "CommModel",
    # metrics
    "TrainingHistory",
    "FairnessReport",
    "per_client_accuracy",
    "participation_counts",
]
