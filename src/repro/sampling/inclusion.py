"""Inclusion probabilities π_g of the sequential without-replacement draw.

The Eq. (4) weights ``n_g/(n·p_g·S)`` are unbiased only when each group's
expected multiplicity in S_t equals ``S·p_g``. That holds exactly for
multinomial (with-replacement) sampling, but **not** for the sequential
probability-proportional draw without replacement used by
:func:`repro.sampling.sample_without_replacement`: removing a drawn group
and renormalizing changes the conditional distribution of later draws, so
the marginal inclusion probability π_g deviates from ``S·p_g`` whenever
``S > 1`` and p is non-uniform. (High-p groups have π_g < S·p_g — they
cannot be drawn twice — and the freed mass flows to the low-p groups.)

This module computes the exact π_g by recursive enumeration over draw
orders when the ordered-sequence count ``|G|·(|G|-1)···(|G|-S+1)`` fits a
budget, and otherwise falls back to a *seeded* Monte-Carlo estimator
built on the Efraimidis–Spirakis exponential-race equivalence: drawing
``E_g ~ Exp(1)/p_g`` and keeping the S smallest keys is distributed
identically to S successive renormalized draws, so the estimator can be
fully vectorized (one (rounds × |G|) exponential matrix + a partial sort
per round) instead of looping ``rng.choice`` calls.

The corrected unbiased weight is then the Horvitz–Thompson form
``n_g/(n·π_g)`` — see :func:`repro.sampling.aggregation_weights`.
"""

from __future__ import annotations

import numpy as np

from repro.rng import derive_seed, make_rng

__all__ = [
    "num_ordered_sequences",
    "sequential_wor_inclusion",
    "sequential_wor_inclusion_exact",
    "sequential_wor_inclusion_mc",
]

#: default cap on the ordered-sequence count before the exact recursion
#: yields to the Monte-Carlo estimator (≈ a few hundred ms of Python)
DEFAULT_EXACT_BUDGET = 200_000

#: default Monte-Carlo sample count; the resulting π̂ has per-entry
#: standard error ≤ 0.5/√rounds ≈ 1.6e-3 at the default
DEFAULT_MC_ROUNDS = 100_000


def _validate(p: np.ndarray, size: int) -> np.ndarray:
    p = np.asarray(p, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ValueError(f"p must be a non-empty 1-D vector, got shape {p.shape}")
    if not 0 < size <= p.size:
        raise ValueError(f"cannot sample {size} from {p.size} groups")
    if np.any(p < 0) or not np.isclose(p.sum(), 1.0):
        raise ValueError("p must be a probability vector")
    if int(np.count_nonzero(p)) < size:
        raise ValueError(
            f"cannot draw {size} distinct groups: only "
            f"{int(np.count_nonzero(p))} have positive probability"
        )
    return p / p.sum()


def num_ordered_sequences(num_groups: int, size: int) -> int:
    """|G|·(|G|-1)···(|G|-S+1) — the exact recursion's leaf count."""
    total = 1
    for k in range(size):
        total *= num_groups - k
    return total


def sequential_wor_inclusion_exact(p: np.ndarray, size: int) -> np.ndarray:
    """Exact π_g by recursive enumeration over all ordered draw sequences.

    π_g sums, over every prefix in which g is still undrawn, the
    probability of reaching that prefix times the renormalized probability
    of drawing g next. Zero-probability branches are pruned, so sparse p
    vectors enumerate far fewer than ``num_ordered_sequences`` nodes.
    Cost is O(|G|^S); guard with :func:`num_ordered_sequences` or call
    :func:`sequential_wor_inclusion`, which budgets automatically.
    """
    p = _validate(p, size)
    n = p.size
    pi = np.zeros(n, dtype=np.float64)
    drawn = np.zeros(n, dtype=bool)

    def visit(prefix_prob: float, remaining_mass: float, depth: int) -> None:
        if remaining_mass <= 0.0:
            # A dominant group (p_g ≈ 1 after rounding) can cancel the
            # remaining mass to exactly 0.0; every continuation of such a
            # prefix has probability ~0, so prune instead of dividing.
            return
        for j in range(n):
            if drawn[j] or p[j] == 0.0:
                continue
            pj = prefix_prob * p[j] / remaining_mass
            if pj == 0.0:
                continue
            pi[j] += pj
            if depth + 1 < size:
                drawn[j] = True
                visit(pj, remaining_mass - p[j], depth + 1)
                drawn[j] = False

    visit(1.0, 1.0, 0)
    return np.minimum(pi, 1.0)


def sequential_wor_inclusion_mc(
    p: np.ndarray,
    size: int,
    rounds: int = DEFAULT_MC_ROUNDS,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Monte-Carlo π̂_g over ``rounds`` simulated draws (vectorized).

    Uses the exponential-race form of sequential PPS-WOR sampling
    (Efraimidis–Spirakis): the S indices with the smallest ``Exp(1)/p_g``
    keys are distributed exactly as S successive renormalized draws.
    ``rng`` seeds the estimator; the default (None) derives a fixed seed
    from (|G|, S, rounds), so the same p vector always yields the same π̂ —
    checkpoint resume rebuilds identical weights without storing them.
    """
    p = _validate(p, size)
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    n = p.size
    if rng is None:
        rng = derive_seed(0, "sequential-wor-inclusion", n, size, rounds)
    rng = make_rng(rng)
    counts = np.zeros(n, dtype=np.int64)
    # Chunk so the key matrix stays ~32 MB regardless of rounds·|G|.
    chunk = max(1, min(rounds, 4_000_000 // n))
    positive = p > 0
    done = 0
    while done < rounds:
        r = min(chunk, rounds - done)
        keys = np.full((r, n), np.inf)
        keys[:, positive] = rng.standard_exponential((r, int(positive.sum())))
        keys[:, positive] /= p[positive]
        winners = np.argpartition(keys, size - 1, axis=1)[:, :size]
        np.add.at(counts, winners.ravel(), 1)
        done += r
    return counts / float(rounds)


def sequential_wor_inclusion(
    p: np.ndarray,
    size: int,
    *,
    exact_budget: int = DEFAULT_EXACT_BUDGET,
    mc_rounds: int = DEFAULT_MC_ROUNDS,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """π_g for the sequential WOR draw: exact when affordable, else MC.

    The exact recursion runs when the ordered-sequence count
    ``|G|·(|G|-1)···(|G|-S+1)`` is at most ``exact_budget``; beyond that
    the seeded Monte-Carlo estimator takes over (see
    :func:`sequential_wor_inclusion_mc` for the seeding contract).
    S=1 short-circuits to π = p exactly.
    """
    p = _validate(p, size)
    if size == 1:
        return p.copy()
    if size == p.size:
        return np.ones_like(p)
    if num_ordered_sequences(p.size, size) <= exact_budget:
        return sequential_wor_inclusion_exact(p, size)
    return sequential_wor_inclusion_mc(p, size, rounds=mc_rounds, rng=rng)
