"""Group sampling and aggregation-weight computation.

Sampling S_t ⊆ G happens once per global round (Algorithm 1, Line 6)
through a pluggable :class:`~repro.sampling.schemes.SamplingScheme`:
``sequential_wor`` (the paper's sequential renormalized draw, default),
``multinomial`` (with replacement), or ``stratified`` (one draw per
p-mass-balanced stratum). Aggregation weights implement the three modes
discussed in §3.1/§6.2:

* ``biased``     — Line 15 verbatim: weight ∝ n_g (normalized over S_t).
* ``unbiased``   — the Horvitz–Thompson form ``n_g/(n·α_g)``, where
  α_g = E[#times g appears in S_t] is the scheme's expected multiplicity.
  The paper's Eq. (4) weight ``n_g/(n·p_g·S)`` is the α = S·p_g special
  case — exact for multinomial sampling and for S=1, but **biased** under
  the sequential WOR draw with S>1 and non-uniform p, whose true inclusion
  probability π_g deviates from S·p_g (see :mod:`repro.sampling.inclusion`
  for the exact computation that fixes it). Unbiased but numerically
  fragile when some 1/α_g is huge.
* ``stabilized`` — Eq. (35): the unbiased weights renormalized to sum to 1,
  trading exact unbiasedness for stability (the paper's recommendation
  when prioritized sampling and the unbiasedness factor are combined).

The probability vector p itself comes from the CoV weight functions of
Eq. (34) (``random``/``rcov``/``srcov``/``esrcov``), from the closed-form
variance minimizer p* ∝ n_g (``varopt``), or from the online
norm-adaptive refinement p* ∝ n_g·EMA‖Δ_g‖ (``adaptive`` — see
:mod:`repro.sampling.adaptive`).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.grouping.base import Group
from repro.rng import make_rng
from repro.sampling.adaptive import AdaptiveNormEstimator
from repro.sampling.probability import (
    sampling_probabilities,
    variance_optimal_probabilities,
)
from repro.sampling.schemes import make_scheme, sample_without_replacement
from repro.telemetry import Telemetry, resolve as resolve_telemetry

__all__ = [
    "AggregationMode",
    "ADAPTIVE_METHODS",
    "sample_without_replacement",
    "aggregation_weights",
    "GroupSampler",
]

#: sampling methods whose p comes from group sizes/update norms rather
#: than CoV weight functions (Eq. 34)
ADAPTIVE_METHODS = ("varopt", "adaptive")


class AggregationMode(str, Enum):
    """How sampled group models are combined at the cloud."""

    BIASED = "biased"
    UNBIASED = "unbiased"
    STABILIZED = "stabilized"


def aggregation_weights(
    selected_groups: list[Group],
    p_selected: np.ndarray,
    total_samples: int,
    mode: AggregationMode | str = AggregationMode.BIASED,
    *,
    inclusion: np.ndarray | None = None,
    multiplicity: np.ndarray | None = None,
) -> np.ndarray:
    """Aggregation weight per selected group (Line 15 / Eq. 4 / Eq. 35).

    Parameters
    ----------
    selected_groups:
        The *distinct* groups in S_t, in draw order.
    p_selected:
        Their sampling probabilities p_g (same order); any array-like.
    total_samples:
        The paper's n (all data across all groups); must be positive for
        the unbiased/stabilized modes, which divide by it.
    inclusion:
        The scheme's expected multiplicity α_g for each selected group.
        The unbiased weight is then ``multiplicity_g·n_g/(n·α_g)``.
        Omitted, the legacy Eq. (4) divisor ``S·p_g`` is used — exact
        only for multinomial sampling or S=1; under the sequential WOR
        draw with S>1 it is the *biased* pre-fix weighting (kept for
        comparison; pass the scheme's α for correctness).
    multiplicity:
        How many times each selected group was drawn (≥1; defaults to 1,
        which is always the case without replacement). With-replacement
        schemes fold repeat draws into the weight instead of training a
        group twice.
    """
    mode = AggregationMode(mode)
    n_g = np.array([g.n_g for g in selected_groups], dtype=np.float64)
    s = len(selected_groups)
    p_selected = np.asarray(p_selected, dtype=np.float64)
    if p_selected.shape != (s,):
        raise ValueError(f"p_selected shape {p_selected.shape} != ({s},)")
    if multiplicity is None:
        mult = np.ones(s, dtype=np.float64)
    else:
        mult = np.asarray(multiplicity, dtype=np.float64)
        if mult.shape != (s,):
            raise ValueError(f"multiplicity shape {mult.shape} != ({s},)")
        if np.any(mult < 1):
            raise ValueError(f"multiplicity entries must be >= 1, got {mult}")
    if mode is AggregationMode.BIASED:
        # Line 15: n_g / n_t where n_t is the data total over S_t
        # (with-replacement repeats count toward n_t).
        scaled = mult * n_g
        return scaled / scaled.sum()
    if total_samples <= 0:
        raise ValueError(
            f"total_samples must be positive for {mode.value} weights, "
            f"got {total_samples} (0 would yield inf/nan weights)"
        )
    if inclusion is None:
        # Legacy Eq. (4): α = S·p_g, with S the number of draws.
        alpha = p_selected * float(mult.sum())
    else:
        alpha = np.asarray(inclusion, dtype=np.float64)
        if alpha.shape != (s,):
            raise ValueError(f"inclusion shape {alpha.shape} != ({s},)")
    if np.any(alpha <= 0) or not np.all(np.isfinite(alpha)):
        raise ValueError(
            f"expected multiplicities must be finite and positive, got {alpha}"
        )
    raw = mult * n_g / (alpha * float(total_samples))
    if mode is AggregationMode.UNBIASED:
        return raw
    return raw / raw.sum()  # Eq. (35)


class GroupSampler:
    """Cloud-side sampler bound to a fixed group list.

    Computes p once (``Sampling-Prob`` — Algorithm 1 Line 4) from group
    CoVs (Eq. 34 methods), group sizes (``varopt``), or size×norm
    estimates (``adaptive``), binds a :class:`SamplingScheme` to it, and
    then draws S_t each round. Recreate the sampler after any regrouping.

    Parameters
    ----------
    scheme:
        ``sequential_wor`` (default — the paper's draw), ``multinomial``,
        or ``stratified``. Determines both the draw mechanics and the
        expected-multiplicity vector α the unbiased weights divide by.
    method:
        ``random``/``rcov``/``srcov``/``esrcov`` (Eq. 34), ``varopt``
        (p* ∝ n_g, the closed-form variance minimizer with unit norms), or
        ``adaptive`` (starts at varopt, then re-estimates p from observed
        group update norms — feed :meth:`observe_update_norms` each round).
    """

    def __init__(
        self,
        groups: list[Group],
        method: str = "esrcov",
        num_sampled: int = 1,
        mode: AggregationMode | str = AggregationMode.BIASED,
        min_prob: float = 0.0,
        rng: np.random.Generator | int | None = None,
        telemetry: Telemetry | None = None,
        scheme: str = "sequential_wor",
    ):
        if num_sampled < 1 or num_sampled > len(groups):
            raise ValueError(
                f"num_sampled {num_sampled} out of range for {len(groups)} groups"
            )
        self.groups = groups
        self.method = method
        self.num_sampled = int(num_sampled)
        self.mode = AggregationMode(mode)
        self.min_prob = float(min_prob)
        self.scheme_name = scheme
        self.adaptive: AdaptiveNormEstimator | None = None
        if method in ADAPTIVE_METHODS:
            self._n_g = np.array([g.n_g for g in groups], dtype=np.float64)
            if method == "adaptive":
                self.adaptive = AdaptiveNormEstimator(len(groups))
            self.p = variance_optimal_probabilities(self._n_g, min_prob=min_prob)
        else:
            self.p = sampling_probabilities(groups, method=method, min_prob=min_prob)
        self.scheme = make_scheme(scheme, self.p, self.num_sampled)
        self.rng = make_rng(rng)
        self.total_samples = int(sum(g.n_g for g in groups))
        #: per-draw sampling-dispersion metrics (Γ_p, inclusion probs)
        self.telemetry = resolve_telemetry(telemetry)

    def gamma_p(self) -> float:
        """Γ_p = Σ_g 1/p_g — the sampling-dispersion term of Theorem 1."""
        return float(np.sum(1.0 / self.p))

    def gamma_alpha(self) -> float:
        """Σ_g 1/α_g over the scheme's expected multiplicities.

        The scheme-corrected analogue of Γ_p: the dispersion the *actual*
        unbiased weights experience. Groups a scheme can never select
        (α_g = 0, possible under ``stratified`` with zero-p groups) are
        excluded — they never contribute a weight.
        """
        alpha = self.scheme.expected_multiplicity
        positive = alpha > 0
        return float(np.sum(1.0 / alpha[positive]))

    def observe_update_norms(
        self, selected: list[Group], norms: np.ndarray
    ) -> None:
        """Feed one round's observed ‖Δ_g‖ back into the adaptive method.

        No-op unless ``method="adaptive"``. Recomputes p from the updated
        norm EMAs and rebinds the scheme, so the *next* draw uses the
        refreshed probabilities. Deterministic given the observation
        sequence — the trainer's replay (and checkpoint resume, which
        restores the estimator state) reproduces the p trajectory exactly.
        """
        if self.adaptive is None:
            return
        index_by_id = {g.group_id: i for i, g in enumerate(self.groups)}
        indices = np.array([index_by_id[g.group_id] for g in selected], dtype=np.int64)
        self.adaptive.observe(indices, norms)
        self.p = variance_optimal_probabilities(
            self._n_g, self.adaptive.estimates(), min_prob=self.min_prob
        )
        self.scheme = make_scheme(self.scheme_name, self.p, self.num_sampled)

    def sample(self) -> tuple[list[Group], np.ndarray]:
        """Draw S_t; returns (distinct groups, their aggregation weights).

        With-replacement schemes can draw a group several times; repeats
        are folded into that group's weight (``multiplicity``) instead of
        returning — and training — the same group twice.
        """
        raw = self.scheme.draw(self.rng)
        idx, counts = _dedupe_in_draw_order(raw)
        selected = [self.groups[i] for i in idx]
        weights = aggregation_weights(
            selected,
            self.p[idx],
            self.total_samples,
            self.mode,
            inclusion=self.scheme.expected_multiplicity[idx],
            multiplicity=counts,
        )
        tel = self.telemetry
        if tel.enabled:
            # Fraboni et al. (PAPERS.md): sampling-induced variance is the
            # quantity to watch — record dispersion and participation.
            tel.set_gauge("gamma_p", self.gamma_p())
            tel.set_gauge("gamma_alpha", self.gamma_alpha())
            tel.inc("groups_sampled", float(len(selected)))
            tel.inc("clients_participating", float(sum(g.size for g in selected)))
            for p_g in self.p[idx]:
                tel.observe("sampled_group_prob", float(p_g))
        return selected, weights

    def adaptive_state_dict(self) -> dict | None:
        """The adaptive estimator's state (None for non-adaptive methods)."""
        if self.adaptive is None:
            return None
        return self.adaptive.state_dict()

    def load_adaptive_state_dict(self, state: dict | None) -> None:
        """Restore the adaptive estimator and recompute p/scheme from it."""
        if self.adaptive is None:
            if state is not None:
                raise ValueError(
                    "checkpoint carries adaptive-sampler state but this "
                    f"sampler's method is {self.method!r}"
                )
            return
        if state is None:
            raise ValueError(
                "adaptive sampler expects estimator state in the checkpoint"
            )
        self.adaptive.load_state_dict(state)
        self.p = variance_optimal_probabilities(
            self._n_g, self.adaptive.estimates(), min_prob=self.min_prob
        )
        self.scheme = make_scheme(self.scheme_name, self.p, self.num_sampled)

    def __repr__(self) -> str:
        return (
            f"GroupSampler(method={self.method!r}, scheme={self.scheme_name!r}, "
            f"S={self.num_sampled}, mode={self.mode.value}, |G|={len(self.groups)})"
        )


def _dedupe_in_draw_order(raw: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(distinct indices in first-draw order, their multiplicities)."""
    idx: list[int] = []
    counts: dict[int, int] = {}
    for i in raw.tolist():
        if i in counts:
            counts[i] += 1
        else:
            counts[i] = 1
            idx.append(i)
    index = np.array(idx, dtype=np.int64)
    return index, np.array([counts[i] for i in idx], dtype=np.float64)
