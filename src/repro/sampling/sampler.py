"""Group sampling and aggregation-weight computation.

Sampling S_t ⊆ G happens once per global round (Algorithm 1, Line 6) via
sequential probability-proportional draws *without replacement* — remove
the drawn group, renormalize, repeat. Aggregation weights implement the
three modes discussed in §3.1/§6.2:

* ``biased``     — Line 15 verbatim: weight ∝ n_g (normalized over S_t).
* ``unbiased``   — Eq. (4): weight = n_g / (n · p_g · S); an unbiased
  estimator of the full aggregation, but numerically fragile when some
  1/p_g is huge.
* ``stabilized`` — Eq. (35): the unbiased weights renormalized to sum to 1,
  trading exact unbiasedness for stability (the paper's recommendation
  when prioritized sampling and the unbiasedness factor are combined).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.grouping.base import Group
from repro.rng import make_rng
from repro.sampling.probability import sampling_probabilities
from repro.telemetry import Telemetry, resolve as resolve_telemetry

__all__ = [
    "AggregationMode",
    "sample_without_replacement",
    "aggregation_weights",
    "GroupSampler",
]


class AggregationMode(str, Enum):
    """How sampled group models are combined at the cloud."""

    BIASED = "biased"
    UNBIASED = "unbiased"
    STABILIZED = "stabilized"


def sample_without_replacement(
    p: np.ndarray, size: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Draw ``size`` distinct indices with probability ∝ p, sequentially.

    Equivalent to successive renormalized draws; implemented with NumPy's
    ``choice(replace=False, p=...)`` which uses the same scheme.
    """
    p = np.asarray(p, dtype=np.float64)
    n = p.shape[0]
    if not 0 < size <= n:
        raise ValueError(f"cannot sample {size} from {n} groups")
    if np.any(p < 0) or not np.isclose(p.sum(), 1.0):
        raise ValueError("p must be a probability vector")
    rng = make_rng(rng)
    # Our isclose tolerance (atol 1e-8, rtol 1e-5) is looser than
    # rng.choice's internal sum check (~sqrt(eps) with Kahan summation), so
    # a vector that drifted during floor renormalization can pass the guard
    # above yet still raise "probabilities do not sum to 1" inside choice.
    # Renormalize immediately before the draw.
    p = p / p.sum()
    return rng.choice(n, size=size, replace=False, p=p)


def aggregation_weights(
    selected_groups: list[Group],
    p_selected: np.ndarray,
    total_samples: int,
    mode: AggregationMode | str = AggregationMode.BIASED,
) -> np.ndarray:
    """Aggregation weight per selected group (weights of Line 15 / Eq. 4 / Eq. 35).

    Parameters
    ----------
    selected_groups:
        The groups in S_t, in draw order.
    p_selected:
        Their sampling probabilities p_g (same order).
    total_samples:
        The paper's n (all data across all groups).
    """
    mode = AggregationMode(mode)
    n_g = np.array([g.n_g for g in selected_groups], dtype=np.float64)
    s = len(selected_groups)
    if p_selected.shape != (s,):
        raise ValueError(f"p_selected shape {p_selected.shape} != ({s},)")
    if mode is AggregationMode.BIASED:
        # Line 15: n_g / n_t where n_t is the data total over S_t.
        return n_g / n_g.sum()
    raw = n_g / (np.asarray(p_selected) * s * float(total_samples))
    if mode is AggregationMode.UNBIASED:
        return raw
    return raw / raw.sum()  # Eq. (35)


class GroupSampler:
    """Cloud-side sampler bound to a fixed group list.

    Computes p once from group CoVs (``Sampling-Prob`` — Algorithm 1 Line 4)
    and then draws S_t each round. Recreate the sampler after any regrouping.
    """

    def __init__(
        self,
        groups: list[Group],
        method: str = "esrcov",
        num_sampled: int = 1,
        mode: AggregationMode | str = AggregationMode.BIASED,
        min_prob: float = 0.0,
        rng: np.random.Generator | int | None = None,
        telemetry: Telemetry | None = None,
    ):
        if num_sampled < 1 or num_sampled > len(groups):
            raise ValueError(
                f"num_sampled {num_sampled} out of range for {len(groups)} groups"
            )
        self.groups = groups
        self.method = method
        self.num_sampled = int(num_sampled)
        self.mode = AggregationMode(mode)
        self.p = sampling_probabilities(groups, method=method, min_prob=min_prob)
        self.rng = make_rng(rng)
        self.total_samples = int(sum(g.n_g for g in groups))
        #: per-draw sampling-dispersion metrics (Γ_p, inclusion probs)
        self.telemetry = resolve_telemetry(telemetry)

    def gamma_p(self) -> float:
        """Γ_p = Σ_g 1/p_g — the sampling-dispersion term of Theorem 1."""
        return float(np.sum(1.0 / self.p))

    def sample(self) -> tuple[list[Group], np.ndarray]:
        """Draw S_t; returns (groups, their aggregation weights)."""
        idx = sample_without_replacement(self.p, self.num_sampled, self.rng)
        selected = [self.groups[i] for i in idx]
        weights = aggregation_weights(
            selected, self.p[idx], self.total_samples, self.mode
        )
        tel = self.telemetry
        if tel.enabled:
            # Fraboni et al. (PAPERS.md): sampling-induced variance is the
            # quantity to watch — record dispersion and participation.
            tel.set_gauge("gamma_p", self.gamma_p())
            tel.inc("groups_sampled", float(len(selected)))
            tel.inc("clients_participating", float(sum(g.size for g in selected)))
            for p_g in self.p[idx]:
                tel.observe("sampled_group_prob", float(p_g))
        return selected, weights

    def __repr__(self) -> str:
        return (
            f"GroupSampler(method={self.method!r}, S={self.num_sampled}, "
            f"mode={self.mode.value}, |G|={len(self.groups)})"
        )
