"""Probabilistic group sampling at the cloud (§6) — the sampling lab.

``probability`` computes the sampling vector p from group CoVs (Eq. 34)
with the paper's three weight functions (RCoV, SRCoV, ESRCoV) or uniform,
plus the closed-form variance-optimal p* ∝ n_g·‖x_g‖; ``schemes`` defines
how S_t is drawn from p (sequential without replacement, multinomial with
replacement, or stratified one-per-stratum); ``inclusion`` computes the
exact inclusion probabilities π_g of the sequential WOR draw (recursive
enumeration with a seeded Monte-Carlo fallback); ``adaptive`` re-estimates
update-norm importance online; ``sampler`` binds it all into the
cloud-side :class:`GroupSampler` and the aggregation weights (plain,
unbiased Horvitz–Thompson ``n_g/(n·α_g)``, or the stabilized
normalization of Eq. 35).
"""

from repro.sampling.adaptive import AdaptiveNormEstimator
from repro.sampling.inclusion import (
    num_ordered_sequences,
    sequential_wor_inclusion,
    sequential_wor_inclusion_exact,
    sequential_wor_inclusion_mc,
)
from repro.sampling.probability import (
    WEIGHT_FUNCTIONS,
    gamma_p,
    sampling_probabilities,
    sampling_probabilities_from_counts,
    uniform_probabilities,
    variance_optimal_probabilities,
)
from repro.sampling.sampler import (
    ADAPTIVE_METHODS,
    AggregationMode,
    GroupSampler,
    aggregation_weights,
    sample_without_replacement,
)
from repro.sampling.schemes import (
    SCHEMES,
    MultinomialScheme,
    SamplingScheme,
    SequentialWORScheme,
    StratifiedScheme,
    make_scheme,
)

__all__ = [
    "WEIGHT_FUNCTIONS",
    "gamma_p",
    "sampling_probabilities",
    "sampling_probabilities_from_counts",
    "uniform_probabilities",
    "variance_optimal_probabilities",
    "GroupSampler",
    "AggregationMode",
    "ADAPTIVE_METHODS",
    "aggregation_weights",
    "sample_without_replacement",
    "AdaptiveNormEstimator",
    "SamplingScheme",
    "MultinomialScheme",
    "SequentialWORScheme",
    "StratifiedScheme",
    "SCHEMES",
    "make_scheme",
    "num_ordered_sequences",
    "sequential_wor_inclusion",
    "sequential_wor_inclusion_exact",
    "sequential_wor_inclusion_mc",
]
