"""Probabilistic group sampling at the cloud (§6).

``probability`` computes the sampling vector p from group CoVs (Eq. 34)
with the paper's three weight functions (RCoV, SRCoV, ESRCoV) or uniform;
``sampler`` draws S groups per round without replacement and produces the
aggregation weights (plain, unbiased with the 1/(p_g·S) factor, or the
stabilized normalization of Eq. 35).
"""

from repro.sampling.probability import (
    WEIGHT_FUNCTIONS,
    gamma_p,
    sampling_probabilities,
    sampling_probabilities_from_counts,
    uniform_probabilities,
)
from repro.sampling.sampler import (
    AggregationMode,
    GroupSampler,
    aggregation_weights,
    sample_without_replacement,
)

__all__ = [
    "WEIGHT_FUNCTIONS",
    "gamma_p",
    "sampling_probabilities",
    "sampling_probabilities_from_counts",
    "uniform_probabilities",
    "GroupSampler",
    "AggregationMode",
    "aggregation_weights",
    "sample_without_replacement",
]
