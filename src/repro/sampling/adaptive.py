"""Online re-estimation of importance weights from observed update norms.

Heterogeneity-Guided Client Sampling (PAPERS.md, arXiv 2310.00198) and
Fraboni et al.'s variance analysis both land on the same closed form: for
the unbiased estimator Σ_{g∈S_t} n_g/(n·α_g)·x_g, the sampling-variance
term Σ_g (n_g/n)²·‖x_g‖²/p_g is minimized over the simplex by

    p*_g ∝ n_g · ‖x_g‖            (Cauchy–Schwarz; see THEORY.md)

‖x_g‖ — the group's update magnitude — is unknown before training, so the
``varopt`` baseline takes ‖x_g‖ ≡ 1 (p* ∝ n_g, the size-optimal prior)
and the ``adaptive`` sampler refines it online: an exponential moving
average of each group's observed update norm feeds p*_g ∝ n_g·EMA_g every
round. Unobserved groups keep the pessimistic prior (the running mean of
observed norms), so a group never starves just because it has not been
sampled yet.

The estimator's state is a plain dict of floats — it is captured into
checkpoints (see :mod:`repro.checkpoint.state`) so a resumed adaptive run
replays its probability trajectory bit for bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AdaptiveNormEstimator"]


class AdaptiveNormEstimator:
    """EMA of per-group update norms, with a shared prior for the unseen.

    Parameters
    ----------
    num_groups:
        |G|; estimates() always returns a vector of this length.
    beta:
        EMA retention in [0, 1): ``ema ← beta·ema + (1-beta)·norm``.
        0 tracks the latest norm only; 0.8 (default) smooths over ~5
        observations.
    prior:
        Initial norm estimate for never-observed groups. Once any group
        has been observed, the prior is replaced by the mean of all
        observed EMAs — new/unseen groups are assumed *average*, not
        special.
    """

    def __init__(self, num_groups: int, beta: float = 0.8, prior: float = 1.0):
        if num_groups < 1:
            raise ValueError(f"num_groups must be >= 1, got {num_groups}")
        if not 0.0 <= beta < 1.0:
            raise ValueError(f"beta must be in [0, 1), got {beta}")
        if prior <= 0.0:
            raise ValueError(f"prior must be > 0, got {prior}")
        self.num_groups = int(num_groups)
        self.beta = float(beta)
        self.prior = float(prior)
        self._ema: dict[int, float] = {}
        self.observations = 0

    def observe(self, indices: np.ndarray, norms: np.ndarray) -> None:
        """Fold one round's observed ‖Δ_g‖ values into the EMAs.

        ``indices`` are positions in the sampler's group list; ``norms``
        the corresponding update magnitudes (non-negative; exact zeros are
        clamped to a tiny positive value so p* stays a valid probability
        vector even for a converged group).
        """
        indices = np.asarray(indices, dtype=np.int64)
        norms = np.asarray(norms, dtype=np.float64)
        if indices.shape != norms.shape:
            raise ValueError(
                f"indices shape {indices.shape} != norms shape {norms.shape}"
            )
        if np.any(norms < 0) or not np.all(np.isfinite(norms)):
            raise ValueError("update norms must be finite and non-negative")
        for i, norm in zip(indices.tolist(), norms.tolist()):
            if not 0 <= i < self.num_groups:
                raise ValueError(f"group index {i} out of range")
            norm = max(norm, 1e-12)
            if i in self._ema:
                self._ema[i] = self.beta * self._ema[i] + (1.0 - self.beta) * norm
            else:
                self._ema[i] = norm
            self.observations += 1

    def estimates(self) -> np.ndarray:
        """Current per-group norm estimates (prior-filled where unseen)."""
        if self._ema:
            fill = float(np.mean(list(self._ema.values())))
        else:
            fill = self.prior
        out = np.full(self.num_groups, fill, dtype=np.float64)
        for i, v in self._ema.items():
            out[i] = v
        return out

    def resize(self, num_groups: int) -> None:
        """Adopt a new group count after regrouping/churn.

        Group identities change wholesale when the partition is rebuilt,
        so per-group EMAs are dropped; the *scale* learned so far survives
        as the new prior (mean of the observed EMAs).
        """
        if num_groups < 1:
            raise ValueError(f"num_groups must be >= 1, got {num_groups}")
        if self._ema:
            self.prior = float(np.mean(list(self._ema.values())))
        self.num_groups = int(num_groups)
        self._ema = {}

    def state_dict(self) -> dict:
        return {
            "num_groups": self.num_groups,
            "beta": self.beta,
            "prior": self.prior,
            "ema": dict(self._ema),
            "observations": self.observations,
        }

    def load_state_dict(self, state: dict) -> None:
        self.num_groups = int(state["num_groups"])
        self.beta = float(state["beta"])
        self.prior = float(state["prior"])
        self._ema = {int(k): float(v) for k, v in state["ema"].items()}
        self.observations = int(state["observations"])

    def __repr__(self) -> str:
        return (
            f"AdaptiveNormEstimator(|G|={self.num_groups}, beta={self.beta}, "
            f"observed={len(self._ema)})"
        )
