"""Sampling-probability computation (Eq. 34).

p_g = w(1/CoV(g)) / Σ_g' w(1/CoV(g')), with w non-decreasing:

* ``random``  — uniform p (ignores CoV)
* ``rcov``    — w(x) = x        (reciprocal CoV)
* ``srcov``   — w(x) = x²       (squared reciprocal CoV)
* ``esrcov``  — w(x) = e^{x²}   (exponential squared reciprocal CoV)

The paper picks ESRCoV as the default ("it has the best performance",
§6.1). e^{x²} overflows for tiny CoV, so weights are computed in log space
and shifted by the max before exponentiating (softmax-style), which leaves
the normalized p unchanged.
"""

from __future__ import annotations

from numbers import Real

import numpy as np

from repro.grouping.base import Group
from repro.grouping.cov import cov_of_counts

__all__ = [
    "WEIGHT_FUNCTIONS",
    "gamma_p",
    "sampling_probabilities",
    "sampling_probabilities_from_counts",
    "uniform_probabilities",
    "variance_optimal_probabilities",
]

#: Weight functions expressed as log-weights of x = 1/CoV (log keeps
#: e^{x²} finite); each maps an array of x > 0 to log w(x).
WEIGHT_FUNCTIONS = {
    "rcov": lambda x: np.log(x),
    "srcov": lambda x: 2.0 * np.log(x),
    "esrcov": lambda x: x * x,
}

#: Floor on shifted log-weights. Without it, disparate CoVs (esrcov turns
#: a CoV gap into a *squared* gap in log space) make ``exp(log_w - max)``
#: underflow to exact 0.0, so p_g == 0: Γ_p = Σ 1/p_g blows up to inf and
#: Eq. 4 unbiased weights divide by zero. exp(-60) ≈ 8.8e-27 keeps every
#: p_g > 0 and 1/p_g comfortably finite while being far below any
#: probability that could affect a draw — an implicit floor of ~1e-26/|G|.
_LOG_WEIGHT_FLOOR = -60.0


def uniform_probabilities(num_groups: int) -> np.ndarray:
    """The ``random`` sampling vector: p_g = 1/|G|."""
    if num_groups <= 0:
        raise ValueError(f"num_groups must be positive, got {num_groups}")
    return np.full(num_groups, 1.0 / num_groups)


def _as_cov_array(groups: list[Group] | np.ndarray) -> np.ndarray:
    """Normalize the ``groups`` argument to a float CoV array.

    Accepts an ndarray of CoVs, any iterable of :class:`Group` objects, or
    any iterable of real numbers (precomputed CoVs). The old ``groups[0]``
    type sniff broke on non-indexable iterables (generators, sets) and
    silently mis-read mixed input; this is explicit and raises a clear
    ``TypeError`` for anything else.
    """
    if isinstance(groups, np.ndarray):
        if groups.dtype == object or not np.issubdtype(groups.dtype, np.number):
            raise TypeError(
                f"cov array must be numeric, got dtype {groups.dtype}"
            )
        return np.asarray(groups, dtype=np.float64)
    try:
        items = list(groups)
    except TypeError:
        raise TypeError(
            f"groups must be an iterable of Group objects or CoV floats, "
            f"got {type(groups).__name__}"
        ) from None
    if all(isinstance(g, Group) for g in items):
        return np.array([g.cov for g in items], dtype=np.float64)
    if all(isinstance(g, Real) and not isinstance(g, bool) for g in items):
        return np.array(items, dtype=np.float64)
    if any(isinstance(g, Group) for g in items):
        raise TypeError(
            "mixed input: pass either all Group objects or all CoV values, "
            "not a mixture"
        )
    offender = next(
        g for g in items if not isinstance(g, Real) or isinstance(g, bool)
    )
    raise TypeError(
        "groups must be Group objects or real CoV values; got element "
        f"{offender!r} of type {type(offender).__name__}"
    )


def sampling_probabilities(
    groups: list[Group] | np.ndarray,
    method: str = "esrcov",
    min_prob: float = 0.0,
    cov_floor: float = 1e-3,
) -> np.ndarray:
    """Compute p over groups from their CoV values.

    Parameters
    ----------
    groups:
        Group objects or a precomputed array of CoV values.
    method:
        ``random``, ``rcov``, ``srcov``, or ``esrcov``.
    min_prob:
        Optional floor on each p_g (then renormalized). Keeping every
        probability bounded away from zero bounds the paper's Γ_p ≥ Σ 1/p_g
        — the quantity Theorem 1 says must stay finite for unbiased
        aggregation to be stable (§4.3, second observation).
    cov_floor:
        CoV values below this are clamped before inversion: a perfectly
        balanced group (CoV = 0) would otherwise get infinite weight.

    Every returned probability is strictly positive: shifted log-weights
    are clamped at an implicit floor (``exp(-60)`` pre-normalization)
    before exponentiating, so extreme CoV disparity can no longer underflow
    a group to p_g = 0 — Γ_p and the Eq. 4 unbiased weights stay finite.
    """
    covs = _as_cov_array(groups)
    n = covs.shape[0]
    if n == 0:
        raise ValueError("cannot compute probabilities over zero groups")
    if method == "random":
        p = uniform_probabilities(n)
    else:
        try:
            log_w_fn = WEIGHT_FUNCTIONS[method]
        except KeyError:
            raise KeyError(
                f"unknown sampling method {method!r}; known: "
                f"{['random', *sorted(WEIGHT_FUNCTIONS)]}"
            ) from None
        x = 1.0 / np.maximum(covs, cov_floor)
        log_w = log_w_fn(x)
        # Shift-invariant normalization, clamped: exp of a very negative
        # shifted log-weight underflows to exact 0.0, which poisons Γ_p
        # (inf) and unbiased aggregation (division by p_g). The floor keeps
        # every weight a normal positive float without measurably changing
        # any sampleable probability.
        log_w = np.maximum(log_w - log_w.max(), _LOG_WEIGHT_FLOOR)
        w = np.exp(log_w)
        p = w / w.sum()
    if min_prob > 0.0:
        if min_prob * n > 1.0:
            raise ValueError(
                f"min_prob {min_prob} infeasible for {n} groups (needs ≤ {1.0 / n:.4f})"
            )
        p = _apply_floor(p, min_prob)
    return p


def sampling_probabilities_from_counts(
    group_counts: np.ndarray,
    method: str = "esrcov",
    min_prob: float = 0.0,
    cov_floor: float = 1e-3,
) -> np.ndarray:
    """p over groups given their label-count rows — the columnar hot path.

    ``group_counts`` is the (|G| × m) matrix of per-group class counts
    (e.g. from :func:`repro.population.group_label_counts` over a
    :class:`~repro.population.ColumnarPopulation`'s ``L``). One vectorized
    CoV pass feeds :func:`sampling_probabilities`, so 10⁵–10⁶-client
    populations get their sampling vector without materializing a single
    :class:`~repro.grouping.base.Group` attribute lookup per group.
    """
    counts = np.asarray(group_counts, dtype=np.float64)
    if counts.ndim != 2:
        raise ValueError(
            f"group_counts must be 2-D (groups × classes), got shape {counts.shape}"
        )
    covs = np.atleast_1d(cov_of_counts(counts))
    return sampling_probabilities(covs, method, min_prob=min_prob, cov_floor=cov_floor)


def variance_optimal_probabilities(
    group_sizes: np.ndarray,
    update_norms: np.ndarray | None = None,
    min_prob: float = 0.0,
) -> np.ndarray:
    """The closed-form variance minimizer p*_g ∝ n_g·‖x_g‖ (Fraboni et al.).

    Minimizes the sampling-variance term Σ_g (n_g/n)²·‖x_g‖²/p_g of the
    unbiased estimator over the probability simplex (Cauchy–Schwarz gives
    p*_g ∝ n_g·‖x_g‖). With ``update_norms`` omitted every norm is taken
    as 1, collapsing to the size-optimal prior p* ∝ n_g — the ``varopt``
    sampling method. The ``adaptive`` method feeds online norm estimates
    here instead (:class:`repro.sampling.adaptive.AdaptiveNormEstimator`).
    ``min_prob`` water-fills a floor exactly as in
    :func:`sampling_probabilities`, bounding Γ_p.
    """
    n_g = np.asarray(group_sizes, dtype=np.float64)
    if n_g.ndim != 1 or n_g.size == 0:
        raise ValueError(
            f"group_sizes must be a non-empty 1-D vector, got shape {n_g.shape}"
        )
    if np.any(n_g <= 0) or not np.all(np.isfinite(n_g)):
        raise ValueError("group sizes must be finite and positive")
    if update_norms is None:
        score = n_g
    else:
        norms = np.asarray(update_norms, dtype=np.float64)
        if norms.shape != n_g.shape:
            raise ValueError(
                f"update_norms shape {norms.shape} != group_sizes shape {n_g.shape}"
            )
        if np.any(norms <= 0) or not np.all(np.isfinite(norms)):
            raise ValueError("update norms must be finite and positive")
        score = n_g * norms
    p = score / score.sum()
    if min_prob > 0.0:
        if min_prob * p.size > 1.0:
            raise ValueError(
                f"min_prob {min_prob} infeasible for {p.size} groups "
                f"(needs ≤ {1.0 / p.size:.4f})"
            )
        p = _apply_floor(p, min_prob)
    return p


def gamma_p(p: np.ndarray) -> float:
    """Γ_p = Σ_g 1/p_g — the variance-controlling quantity of Theorem 1.

    Matches ``GroupSampler.gamma_p`` for the same p vector; exposed here so
    columnar pipelines can report Γ_p without building a sampler.
    """
    p = np.asarray(p, dtype=np.float64)
    if p.size == 0:
        raise ValueError("cannot compute gamma_p over zero groups")
    if (p <= 0.0).any():
        raise ValueError("gamma_p requires strictly positive probabilities")
    return float(np.sum(1.0 / p))


def _apply_floor(p: np.ndarray, floor: float) -> np.ndarray:
    """Raise every entry to ≥ floor, water-filling the deficit from the rest.

    Entries at the floor are pinned; the remaining probability mass is
    distributed proportionally among the others. Iterates because scaling
    the rest down can push new entries below the floor. The final vector
    is renormalized over the free entries before returning: each
    iteration's proportional rescale accumulates floating-point drift, and
    an off-by-1e-9 sum used to slip past our ``np.isclose`` guard only to
    be rejected by ``rng.choice``'s stricter internal check one call
    deeper. Pinned entries stay exactly ``floor``; the free entries absorb
    the drift, so the sum lands within one rounding of 1.0.
    """
    p = p.copy()
    pinned = np.zeros(p.shape, dtype=bool)
    for _ in range(p.shape[0]):
        low = (p < floor) & ~pinned
        if not low.any():
            break
        pinned |= low
        p[pinned] = floor
        free = ~pinned
        remaining = 1.0 - pinned.sum() * floor
        total_free = p[free].sum()
        if total_free > 0:
            p[free] *= remaining / total_free
        else:  # everything pinned
            break
    free = ~pinned
    total_free = p[free].sum() if free.any() else 0.0
    if total_free > 0.0:
        p[free] *= (1.0 - float(pinned.sum()) * floor) / total_free
    return p
