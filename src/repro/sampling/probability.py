"""Sampling-probability computation (Eq. 34).

p_g = w(1/CoV(g)) / Σ_g' w(1/CoV(g')), with w non-decreasing:

* ``random``  — uniform p (ignores CoV)
* ``rcov``    — w(x) = x        (reciprocal CoV)
* ``srcov``   — w(x) = x²       (squared reciprocal CoV)
* ``esrcov``  — w(x) = e^{x²}   (exponential squared reciprocal CoV)

The paper picks ESRCoV as the default ("it has the best performance",
§6.1). e^{x²} overflows for tiny CoV, so weights are computed in log space
and shifted by the max before exponentiating (softmax-style), which leaves
the normalized p unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.grouping.base import Group

__all__ = ["WEIGHT_FUNCTIONS", "sampling_probabilities", "uniform_probabilities"]

#: Weight functions expressed as log-weights of x = 1/CoV (log keeps
#: e^{x²} finite); each maps an array of x > 0 to log w(x).
WEIGHT_FUNCTIONS = {
    "rcov": lambda x: np.log(x),
    "srcov": lambda x: 2.0 * np.log(x),
    "esrcov": lambda x: x * x,
}


def uniform_probabilities(num_groups: int) -> np.ndarray:
    """The ``random`` sampling vector: p_g = 1/|G|."""
    if num_groups <= 0:
        raise ValueError(f"num_groups must be positive, got {num_groups}")
    return np.full(num_groups, 1.0 / num_groups)


def sampling_probabilities(
    groups: list[Group] | np.ndarray,
    method: str = "esrcov",
    min_prob: float = 0.0,
    cov_floor: float = 1e-3,
) -> np.ndarray:
    """Compute p over groups from their CoV values.

    Parameters
    ----------
    groups:
        Group objects or a precomputed array of CoV values.
    method:
        ``random``, ``rcov``, ``srcov``, or ``esrcov``.
    min_prob:
        Optional floor on each p_g (then renormalized). Keeping every
        probability bounded away from zero bounds the paper's Γ_p ≥ Σ 1/p_g
        — the quantity Theorem 1 says must stay finite for unbiased
        aggregation to be stable (§4.3, second observation).
    cov_floor:
        CoV values below this are clamped before inversion: a perfectly
        balanced group (CoV = 0) would otherwise get infinite weight.
    """
    if isinstance(groups, np.ndarray) or (
        len(groups) > 0 and not isinstance(groups[0], Group)
    ):
        covs = np.asarray(groups, dtype=np.float64)
    else:
        covs = np.array([g.cov for g in groups], dtype=np.float64)
    n = covs.shape[0]
    if n == 0:
        raise ValueError("cannot compute probabilities over zero groups")
    if method == "random":
        p = uniform_probabilities(n)
    else:
        try:
            log_w_fn = WEIGHT_FUNCTIONS[method]
        except KeyError:
            raise KeyError(
                f"unknown sampling method {method!r}; known: "
                f"{['random', *sorted(WEIGHT_FUNCTIONS)]}"
            ) from None
        x = 1.0 / np.maximum(covs, cov_floor)
        log_w = log_w_fn(x)
        log_w -= log_w.max()  # shift-invariant normalization
        w = np.exp(log_w)
        p = w / w.sum()
    if min_prob > 0.0:
        if min_prob * n > 1.0:
            raise ValueError(
                f"min_prob {min_prob} infeasible for {n} groups (needs ≤ {1.0 / n:.4f})"
            )
        p = _apply_floor(p, min_prob)
    return p


def _apply_floor(p: np.ndarray, floor: float) -> np.ndarray:
    """Raise every entry to ≥ floor, water-filling the deficit from the rest.

    Entries at the floor are pinned; the remaining probability mass is
    distributed proportionally among the others. Iterates because scaling
    the rest down can push new entries below the floor.
    """
    p = p.copy()
    pinned = np.zeros(p.shape, dtype=bool)
    for _ in range(p.shape[0]):
        low = (p < floor) & ~pinned
        if not low.any():
            break
        pinned |= low
        p[pinned] = floor
        free = ~pinned
        remaining = 1.0 - pinned.sum() * floor
        total_free = p[free].sum()
        if total_free > 0:
            p[free] *= remaining / total_free
        else:  # everything pinned
            break
    return p
