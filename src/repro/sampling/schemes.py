"""First-class sampling schemes: how S_t is drawn from p (§6 + Fraboni).

A :class:`SamplingScheme` is bound to one (p, S) pair and answers two
questions: how to draw S_t, and what each group's **expected multiplicity**
α_g = E[#times g appears in S_t] is. α is what unbiased aggregation
actually needs — the Horvitz–Thompson/Hansen–Hurwitz weight is
``n_g/(n·α_g)`` — and it is where the schemes differ:

* ``multinomial``     — S independent draws *with* replacement
  (Fraboni et al.'s MD sampling). α_g = S·p_g exactly, so the paper's
  Eq. (4) weight ``n_g/(n·p_g·S)`` is provably unbiased here.
* ``sequential_wor``  — the paper's sequential renormalized draw without
  replacement. α_g = π_g, the exact inclusion probability computed by
  :mod:`repro.sampling.inclusion` (recursive enumeration, seeded-MC
  fallback); π_g ≠ S·p_g for S > 1 and non-uniform p, which is the Eq. (4)
  bias this module fixes.
* ``stratified``      — Fraboni's clustered sampling: partition the groups
  into S strata of near-equal p-mass (greedy longest-processing-time over
  p descending) and draw exactly one group per stratum, proportional to p
  within it. α_g = p_g/P_k for g in stratum k; never more than one draw
  per stratum, so the estimator's variance drops below multinomial's.

Schemes are stateless after construction and deterministic given p, so a
checkpoint-resumed sampler rebuilds the identical scheme from the restored
groups — no scheme state needs to be serialized.
"""

from __future__ import annotations

import numpy as np

from repro.rng import make_rng
from repro.sampling.inclusion import (
    DEFAULT_EXACT_BUDGET,
    DEFAULT_MC_ROUNDS,
    sequential_wor_inclusion,
)

__all__ = [
    "SamplingScheme",
    "MultinomialScheme",
    "SequentialWORScheme",
    "StratifiedScheme",
    "SCHEMES",
    "make_scheme",
    "sample_without_replacement",
]


def sample_without_replacement(
    p: np.ndarray, size: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Draw ``size`` distinct indices with probability ∝ p, sequentially.

    Equivalent to successive renormalized draws; implemented with NumPy's
    ``choice(replace=False, p=...)`` which uses the same scheme. Note the
    resulting *inclusion* probability of each index is **not** ``size·p_g``
    for ``size > 1`` — see :mod:`repro.sampling.inclusion` for the exact
    π_g this draw induces.
    """
    p = np.asarray(p, dtype=np.float64)
    n = p.shape[0]
    if not 0 < size <= n:
        raise ValueError(f"cannot sample {size} from {n} groups")
    if np.any(p < 0) or not np.isclose(p.sum(), 1.0):
        raise ValueError("p must be a probability vector")
    rng = make_rng(rng)
    # Our isclose tolerance (atol 1e-8, rtol 1e-5) is looser than
    # rng.choice's internal sum check (~sqrt(eps) with Kahan summation), so
    # a vector that drifted during floor renormalization can pass the guard
    # above yet still raise "probabilities do not sum to 1" inside choice.
    # Renormalize immediately before the draw.
    p = p / p.sum()
    return rng.choice(n, size=size, replace=False, p=p)


class SamplingScheme:
    """One way of drawing S_t ⊆ G (with or without replacement) from p.

    Subclasses implement :meth:`draw` (returns S indices, repeats allowed)
    and :attr:`expected_multiplicity` (the α vector unbiased weights divide
    by). ``p`` is validated and renormalized once at construction.
    """

    name = "base"

    def __init__(self, p: np.ndarray, size: int):
        p = np.asarray(p, dtype=np.float64)
        if p.ndim != 1 or p.size == 0:
            raise ValueError(f"p must be a non-empty 1-D vector, got shape {p.shape}")
        if np.any(p < 0) or not np.isclose(p.sum(), 1.0):
            raise ValueError("p must be a probability vector")
        if not 0 < size <= p.size:
            raise ValueError(f"cannot sample {size} from {p.size} groups")
        self.p = p / p.sum()
        self.size = int(size)

    def draw(self, rng: np.random.Generator) -> np.ndarray:
        """S_t as an index array of length ``size`` (repeats allowed)."""
        raise NotImplementedError

    @property
    def expected_multiplicity(self) -> np.ndarray:
        """α_g = E[#times g appears in a draw] — the unbiased divisor."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(S={self.size}, |G|={self.p.size})"


class MultinomialScheme(SamplingScheme):
    """S independent with-replacement draws; α_g = S·p_g exactly."""

    name = "multinomial"

    def draw(self, rng: np.random.Generator) -> np.ndarray:
        return rng.choice(self.p.size, size=self.size, replace=True, p=self.p)

    @property
    def expected_multiplicity(self) -> np.ndarray:
        return self.size * self.p


class SequentialWORScheme(SamplingScheme):
    """The paper's sequential renormalized WOR draw; α_g = exact π_g.

    ``exact_budget`` / ``mc_rounds`` / ``mc_rng`` tune the π computation
    (see :func:`repro.sampling.inclusion.sequential_wor_inclusion`); π is
    computed lazily on first use and cached for the scheme's lifetime.
    """

    name = "sequential_wor"

    def __init__(
        self,
        p: np.ndarray,
        size: int,
        *,
        exact_budget: int = DEFAULT_EXACT_BUDGET,
        mc_rounds: int = DEFAULT_MC_ROUNDS,
        mc_rng: np.random.Generator | int | None = None,
    ):
        super().__init__(p, size)
        if int(np.count_nonzero(self.p)) < size:
            raise ValueError(
                f"cannot draw {size} distinct groups: only "
                f"{int(np.count_nonzero(self.p))} have positive probability"
            )
        self._exact_budget = exact_budget
        self._mc_rounds = mc_rounds
        self._mc_rng = mc_rng
        self._pi: np.ndarray | None = None

    def draw(self, rng: np.random.Generator) -> np.ndarray:
        return sample_without_replacement(self.p, self.size, rng)

    @property
    def expected_multiplicity(self) -> np.ndarray:
        if self._pi is None:
            self._pi = sequential_wor_inclusion(
                self.p,
                self.size,
                exact_budget=self._exact_budget,
                mc_rounds=self._mc_rounds,
                rng=self._mc_rng,
            )
        return self._pi


class StratifiedScheme(SamplingScheme):
    """One draw per stratum over an LPT mass-balanced S-partition of G.

    Groups are assigned greedily, largest p first, to the currently
    lightest stratum (ties to the lowest stratum index), so the partition
    is a pure function of p — a resumed sampler rebuilds it identically.
    Each stratum contributes exactly one group, drawn ∝ p within the
    stratum, so α_g = p_g/P_k ≤ 1 and no group repeats.
    """

    name = "stratified"

    def __init__(self, p: np.ndarray, size: int):
        super().__init__(p, size)
        order = np.argsort(-self.p, kind="stable")
        masses = np.zeros(size)
        assignment = np.empty(self.p.size, dtype=np.int64)
        for g in order:
            k = int(np.argmin(masses))
            assignment[g] = k
            masses[k] += self.p[g]
        if np.any(masses == 0.0):
            raise ValueError(
                f"cannot form {size} non-empty strata: only "
                f"{int(np.count_nonzero(self.p))} groups have positive "
                "probability"
            )
        self.assignment = assignment
        self.strata = [np.flatnonzero(assignment == k) for k in range(size)]
        self.stratum_mass = masses
        alpha = self.p / masses[assignment]
        self._alpha = np.minimum(alpha, 1.0)

    def draw(self, rng: np.random.Generator) -> np.ndarray:
        out = np.empty(self.size, dtype=np.int64)
        for k, members in enumerate(self.strata):
            q = self.p[members] / self.stratum_mass[k]
            out[k] = members[rng.choice(members.size, p=q / q.sum())]
        return out

    @property
    def expected_multiplicity(self) -> np.ndarray:
        return self._alpha


SCHEMES = {
    "multinomial": MultinomialScheme,
    "sequential_wor": SequentialWORScheme,
    "stratified": StratifiedScheme,
}


def make_scheme(name: str, p: np.ndarray, size: int, **kwargs) -> SamplingScheme:
    """Build a scheme by name (``multinomial``/``sequential_wor``/``stratified``)."""
    try:
        cls = SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown sampling scheme {name!r}; known: {sorted(SCHEMES)}"
        ) from None
    return cls(p, size, **kwargs)
