"""FedGroup — data-driven similarity clustering (arXiv 2010.06870).

FedGroup forms groups by clustering clients on the *Euclidean distance of
decomposed cosine similarity* (EDC): the client-statistic matrix (here the
normalized label distributions; FedGroup uses flattened update vectors,
which our label statistics proxy without a pre-training round) is
decomposed into its top-``d`` singular directions, every client is
projected onto them by cosine similarity, and k-means++ clusters the
resulting low-dimensional profiles. Unlike CDG — which *deals* similar
clients apart so each group tends toward IID — FedGroup keeps similar
clients together, so each group specializes.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.vq import kmeans2

from repro.grouping.base import Group, Grouper
from repro.rng import make_rng

__all__ = ["FedGroupGrouping"]


def decomposed_cosine_features(
    stats: np.ndarray, num_components: int
) -> np.ndarray:
    """EDC features: cosine similarity of each row to the top singular
    directions of the (row-centered) statistic matrix.

    Returns an ``(n, d)`` array with ``d <= num_components`` (capped by the
    matrix rank bound ``min(n, m)``). Euclidean distance between rows is
    FedGroup's EDC metric.
    """
    S = np.asarray(stats, dtype=np.float64)
    n, m = S.shape
    d = max(1, min(num_components, n, m))
    # Top-d right singular vectors of the centered matrix: the directions
    # along which clients differ most.
    _, _, vt = np.linalg.svd(S - S.mean(axis=0, keepdims=True), full_matrices=False)
    basis = vt[:d]
    norms = np.linalg.norm(S, axis=1, keepdims=True)
    unit = np.divide(S, norms, out=np.zeros_like(S), where=norms > 0)
    bnorms = np.linalg.norm(basis, axis=1, keepdims=True)
    bunit = np.divide(basis, bnorms, out=np.zeros_like(basis), where=bnorms > 0)
    return unit @ bunit.T


class FedGroupGrouping(Grouper):
    """Cluster similar clients together via decomposed cosine similarity.

    Parameters
    ----------
    group_size:
        Target clients per group; the number of groups is
        ``floor(n / group_size)`` (minimum 1).
    num_components:
        ``d`` for the SVD decomposition step. Defaults to the number of
        groups (FedGroup's choice: one direction per prospective group).
    """

    name = "fedgroup"

    def __init__(self, group_size: int = 5, num_components: int | None = None):
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        if num_components is not None and num_components < 1:
            raise ValueError(
                f"num_components must be >= 1, got {num_components}"
            )
        self.group_size = int(group_size)
        self.num_components = num_components

    def group(
        self,
        label_matrix: np.ndarray,
        client_ids: np.ndarray,
        edge_id: int = 0,
        rng: np.random.Generator | int | None = None,
    ) -> list[Group]:
        rng = make_rng(rng)
        L = np.asarray(label_matrix, dtype=np.float64)
        n, _ = L.shape
        num_groups = max(1, n // self.group_size)

        if num_groups == 1 or n <= num_groups:
            if num_groups == 1:
                partitions = [list(range(n))]
            else:
                partitions = [[i] for i in range(n)]
            return self._build_groups(partitions, L, client_ids, edge_id)

        totals = L.sum(axis=1, keepdims=True)
        dist = np.divide(L, totals, out=np.zeros_like(L), where=totals > 0)
        features = decomposed_cosine_features(
            dist, self.num_components or num_groups
        )
        seed = int(rng.integers(0, 2**31 - 1))
        _, assignment = kmeans2(features, num_groups, minit="++", seed=seed)
        partitions = [
            np.flatnonzero(assignment == c).tolist()
            for c in range(num_groups)
        ]
        partitions = [p for p in partitions if p]
        return self._build_groups(partitions, L, client_ids, edge_id)

    def __repr__(self) -> str:
        return (
            f"FedGroupGrouping(group_size={self.group_size}, "
            f"num_components={self.num_components})"
        )
