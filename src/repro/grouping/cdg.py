"""CDG — "clustering then distribution grouping", ported from OUEA [13].

OUEA first clusters *similar* clients together (similar label
distributions), then deals members of each cluster round-robin across the
groups, so every group receives a spread of client types and its combined
data tends toward IID. Originally an edge-assignment policy; here ported to
group formation (as the paper does for its experiments, §7.1).
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.vq import kmeans2

from repro.grouping.base import Group, Grouper
from repro.rng import make_rng

__all__ = ["CDGGrouping"]


class CDGGrouping(Grouper):
    """Cluster clients by label distribution, then distribute round-robin.

    Parameters
    ----------
    group_size:
        Target clients per group; the number of groups is
        ``floor(n / group_size)`` (minimum 1).
    num_clusters:
        K for the client-similarity clustering step. Defaults to the number
        of label classes (one cluster per dominant label under heavy skew).
    """

    name = "cdg"

    def __init__(self, group_size: int = 5, num_clusters: int | None = None):
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.group_size = int(group_size)
        self.num_clusters = num_clusters

    def group(
        self,
        label_matrix: np.ndarray,
        client_ids: np.ndarray,
        edge_id: int = 0,
        rng: np.random.Generator | int | None = None,
    ) -> list[Group]:
        rng = make_rng(rng)
        L = np.asarray(label_matrix, dtype=np.float64)
        n, m = L.shape
        num_groups = max(1, n // self.group_size)
        k = min(self.num_clusters or m, n)

        # Step 1: cluster clients on normalized label distributions.
        totals = L.sum(axis=1, keepdims=True)
        dist = np.divide(L, totals, out=np.zeros_like(L), where=totals > 0)
        if n > k:
            seed = int(rng.integers(0, 2**31 - 1))
            _, assignment = kmeans2(dist, k, minit="++", seed=seed)
        else:
            assignment = np.arange(n)

        # Step 2: deal each cluster's members across groups round-robin,
        # continuing the cursor between clusters so sizes stay balanced.
        partitions: list[list[int]] = [[] for _ in range(num_groups)]
        cursor = 0
        for cluster in np.unique(assignment):
            members = np.flatnonzero(assignment == cluster)
            rng.shuffle(members)
            for idx in members:
                partitions[cursor % num_groups].append(int(idx))
                cursor += 1
        partitions = [p for p in partitions if p]
        return self._build_groups(partitions, L, client_ids, edge_id)

    def __repr__(self) -> str:
        return f"CDGGrouping(group_size={self.group_size}, num_clusters={self.num_clusters})"
