"""Group container and the Grouper interface."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grouping.cov import cov_of_counts
from repro.rng import make_rng, spawn_many

__all__ = ["Group", "Grouper", "group_clients_per_edge"]


@dataclass
class Group:
    """A client group formed at one edge server.

    Attributes
    ----------
    group_id : global index of this group (assigned when pooled).
    edge_id : which edge server formed the group.
    members : client ids (global indexing) in this group.
    label_counts : summed per-class counts of the members (length m).
    """

    group_id: int
    edge_id: int
    members: np.ndarray
    label_counts: np.ndarray

    def __post_init__(self) -> None:
        self.members = np.asarray(self.members, dtype=np.int64)
        self.label_counts = np.asarray(self.label_counts, dtype=np.int64)

    @property
    def size(self) -> int:
        """Group size |g| (number of clients)."""
        return int(self.members.size)

    @property
    def n_g(self) -> int:
        """Total data samples in the group (the paper's n_g)."""
        return int(self.label_counts.sum())

    @property
    def cov(self) -> float:
        """Canonical CoV of the group's label counts."""
        return float(cov_of_counts(self.label_counts))

    def __repr__(self) -> str:
        return (
            f"Group(id={self.group_id}, edge={self.edge_id}, size={self.size}, "
            f"n_g={self.n_g}, cov={self.cov:.3f})"
        )


class Grouper:
    """Interface: partition one edge server's clients into groups.

    Subclasses implement :meth:`group` over the label matrix rows of the
    edge's clients. ``client_ids`` carries global client indices so groups
    can be pooled across edges.
    """

    name = "base"

    def group(
        self,
        label_matrix: np.ndarray,
        client_ids: np.ndarray,
        edge_id: int = 0,
        rng: np.random.Generator | int | None = None,
    ) -> list[Group]:
        raise NotImplementedError

    @staticmethod
    def _build_groups(
        partitions: list[list[int]],
        label_matrix: np.ndarray,
        client_ids: np.ndarray,
        edge_id: int,
    ) -> list[Group]:
        """Materialize Group objects from local-index partitions."""
        groups = []
        for local_members in partitions:
            local = np.asarray(local_members, dtype=np.int64)
            groups.append(
                Group(
                    group_id=-1,  # assigned when pooled globally
                    edge_id=edge_id,
                    members=client_ids[local],
                    label_counts=label_matrix[local].sum(axis=0),
                )
            )
        return groups


def group_clients_per_edge(
    grouper: Grouper,
    label_matrix: np.ndarray,
    edge_assignment: list[np.ndarray],
    rng: np.random.Generator | int | None = None,
) -> list[Group]:
    """Algorithm 1 lines 2–3: run group formation on every edge server.

    Parameters
    ----------
    label_matrix : full (clients × classes) label matrix L.
    edge_assignment : list of client-id arrays, one per edge server C_j.

    Returns the pooled global group list G with ``group_id`` assigned.
    """
    rng = make_rng(rng)
    child_rngs = spawn_many(rng, len(edge_assignment))
    all_groups: list[Group] = []
    for edge_id, (clients, child) in enumerate(zip(edge_assignment, child_rngs)):
        clients = np.asarray(clients, dtype=np.int64)
        groups = grouper.group(
            label_matrix[clients], clients, edge_id=edge_id, rng=child
        )
        all_groups.extend(groups)
    for gid, group in enumerate(all_groups):
        group.group_id = gid
    return all_groups
