"""Grouping-quality metrics and the grouper registry (Figs. 5 & 6)."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.grouping.base import Group, Grouper
from repro.grouping.cdg import CDGGrouping
from repro.grouping.cov_grouping import CoVGrouping
from repro.grouping.fedgroup import FedGroupGrouping
from repro.grouping.kldg import KLDGrouping
from repro.grouping.random_grouping import RandomGrouping

__all__ = ["GroupingReport", "evaluate_grouping", "make_grouper"]


@dataclass
class GroupingReport:
    """Summary statistics of a grouping result.

    ``avg_overhead`` is the mean per-client group-operation overhead under a
    unit quadratic cost (O_g(s) = s²·unit) — the y-axis proxy of Fig. 6.
    """

    num_groups: int
    size_min: int
    size_max: int
    size_avg: float
    avg_cov: float
    avg_overhead: float
    runtime_s: float = 0.0

    def row(self) -> dict:
        """Flat dict for tabular reports."""
        return {
            "groups": self.num_groups,
            "GS[min,max](avg)": f"[{self.size_min}, {self.size_max}]({self.size_avg:.2f})",
            "avg_cov": round(self.avg_cov, 3),
            "avg_overhead": round(self.avg_overhead, 3),
            "runtime_s": round(self.runtime_s, 4),
        }


def evaluate_grouping(
    groups: list[Group], overhead_unit: float = 1.0, runtime_s: float = 0.0
) -> GroupingReport:
    """Compute size/CoV/overhead statistics for a group list."""
    if not groups:
        raise ValueError("cannot evaluate an empty grouping")
    sizes = np.array([g.size for g in groups])
    covs = np.array([g.cov for g in groups])
    # Per-client quadratic overhead, averaged over clients (each of the s
    # clients in a group pays O(s²)·unit, so the client-weighted mean is
    # Σ s·s² / Σ s).
    overhead = float((sizes**3).sum() / sizes.sum() * overhead_unit)
    return GroupingReport(
        num_groups=len(groups),
        size_min=int(sizes.min()),
        size_max=int(sizes.max()),
        size_avg=float(sizes.mean()),
        avg_cov=float(covs.mean()),
        avg_overhead=overhead,
        runtime_s=runtime_s,
    )


def make_grouper(name: str, **kwargs) -> Grouper:
    """Grouper registry: ``covg``, ``rg``, ``cdg``, ``kldg``, ``fedgroup``.

    Keyword arguments are forwarded to the grouper constructor; each grouper
    accepts its own size-control knob (``min_group_size`` for the greedy
    algorithms, ``group_size`` for RG/CDG).
    """
    from repro.grouping.extensions import CoVGammaGrouping

    registry = {
        "covg": CoVGrouping,
        "rg": RandomGrouping,
        "cdg": CDGGrouping,
        "kldg": KLDGrouping,
        "covg_gamma": CoVGammaGrouping,
        "fedgroup": FedGroupGrouping,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise KeyError(f"unknown grouper {name!r}; known: {sorted(registry)}") from None
    return cls(**kwargs)
