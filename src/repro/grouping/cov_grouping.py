"""CoV-Grouping — the paper's Algorithm 2 (§5.3).

Greedy group formation: seed each group with a random client, then
repeatedly add the candidate that minimizes the group's CoV, until the
group's CoV ≤ MaxCoV and size ≥ MinGS (or no candidate improves the CoV
once the size floor is met).

Two engines implement the same algorithm:

* ``engine="reference"`` — the direct transcription: every greedy step
  rebuilds the (remaining × classes) candidate count matrix
  ``counts + L[remaining]`` and re-derives every CoV from scratch, then
  ``np.delete``-copies the remaining index array.
* ``engine="incremental"`` (default) — the hot path.  It maintains the
  running moments S1 = Σ_j c_j and S2 = Σ_j c_j² of the current group
  plus a per-client dot table z_i = Σ_j L_ij² + 2·(L_i · counts), so a
  candidate's moments are S1 + Σ_j L_ij and S2 + z_i — O(|remaining|)
  fused array work per greedy step into preallocated buffers, with an
  order-preserving in-place removal instead of ``np.delete`` copies.
  Adding a member updates z with one BLAS GEMV (``L @ L[chosen]``).

Bit-identity between the engines is *constructed*, not hoped for.  Label
counts are integers, so S1, S2 and z are exact in float64 and the
surrogate score q = S2c/S1c² (an exact monotone transform of CoV²:
CoV² = m·q − 1) carries at most one rounding.  The reference's float
path has its own last-ulp noise — it can even break *exactly tied*
candidates either way — so the engine never trusts the surrogate near a
tie: every step, candidates whose q lies within a conservative relative
window of the minimum are re-scored with the reference's own formula on
their actual count vectors, and the winner (and the accept/finalize
comparison) is decided on those reference floats.  Outside the window
the surrogate's margin exceeds every float-error bound, so the winner is
provably the reference's argmin.  Partitions therefore match the
reference engine exactly (pinned across seeds and parameter grids by
``tests/grouping/test_incremental_engine.py``).

Moment exactness needs integer counts with Σ n_g small enough that all
squares stay below 2⁵³; non-integer, negative, or astronomically large
label matrices silently fall back to the reference engine.

Removal preserves ascending index order — the group-seed draw indexes
``remaining`` positionally and ``np.argmin`` breaks ties by first index,
so a swap-with-last removal would change which client wins ties and
diverge from the reference.  The in-place left-shift of a preallocated
order buffer keeps the exact semantics of ``np.delete`` without
allocating.

``cov_metric`` selects the score: ``"cov"`` (canonical σ/μ, the default)
or ``"eq27"`` (the paper's literal printed formula).  The two are *not*
interchangeable inside a candidate scan — eq27 = CoV·√(n_g/m) and n_g
differs per candidate — see :mod:`repro.grouping.cov`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.grouping.base import Group, Grouper
from repro.grouping.cov import cov_of_counts, cov_paper_eq27
from repro.rng import make_rng

__all__ = ["CoVGrouping"]

#: Relative half-width of the near-tie window on the surrogate score.
#: Combined float error between the surrogate and the reference formula
#: is ≤ ~(2m+22)·ε ≈ 3e-14 for m ≤ 64; 1e-12 gives a ~30× safety margin
#: while still keeping the exact-rescore set empty except at real ties.
_TIE_REL = 1e-12

#: Σ n_g above this would push S1² past 2⁵³ where float64 stops being
#: exact on integers; such inputs use the reference engine instead.
_EXACT_SUM_MAX = float(2**26)


class CoVGrouping(Grouper):
    """Greedy CoV-minimizing grouper (Algorithm 2).

    Parameters
    ----------
    min_group_size:
        MinGS — the anonymity floor: every group (except possibly the final
        leftover group) has at least this many clients, so secure group
        operations have a large enough anonymity set.
    max_cov:
        MaxCoV — keep adding clients while the group CoV exceeds this value
        (soft constraint: if no candidate helps and size ≥ MinGS, the group
        is finalized anyway — footnote 4).
    engine:
        ``"incremental"`` (default) scores candidates from running moments;
        ``"reference"`` rebuilds the candidate count matrix every step.
        Both produce identical partitions.
    cov_metric:
        ``"cov"`` (default) uses the canonical σ/μ; ``"eq27"`` uses the
        paper's literal Eq. (27) — a different objective whose greedy
        choices can diverge from the canonical one.
    """

    name = "covg"

    _ENGINES = ("incremental", "reference")
    _METRICS = ("cov", "eq27")

    def __init__(
        self,
        min_group_size: int = 5,
        max_cov: float = 0.5,
        engine: str = "incremental",
        cov_metric: str = "cov",
    ):
        if min_group_size < 1:
            raise ValueError(f"min_group_size must be >= 1, got {min_group_size}")
        if max_cov < 0:
            raise ValueError(f"max_cov must be >= 0, got {max_cov}")
        if engine not in self._ENGINES:
            raise ValueError(f"engine must be one of {self._ENGINES}, got {engine!r}")
        if cov_metric not in self._METRICS:
            raise ValueError(f"cov_metric must be one of {self._METRICS}, got {cov_metric!r}")
        self.min_group_size = int(min_group_size)
        self.max_cov = float(max_cov)
        self.engine = engine
        self.cov_metric = cov_metric

    @property
    def _metric_fn(self):
        return cov_paper_eq27 if self.cov_metric == "eq27" else cov_of_counts

    def group(
        self,
        label_matrix: np.ndarray,
        client_ids: np.ndarray,
        edge_id: int = 0,
        rng: np.random.Generator | int | None = None,
    ) -> list[Group]:
        rng = make_rng(rng)
        L = np.asarray(label_matrix, dtype=np.float64)
        if L.ndim != 2:
            raise ValueError(
                f"label_matrix must be 2-D (clients × classes), got shape "
                f"{L.shape}"
            )
        n = L.shape[0]
        # An empty edge forms zero groups — nothing violates constraint (31).
        if 0 < n < self.min_group_size:
            raise ValueError(
                f"cannot form groups from {n} client(s) with "
                f"min_group_size={self.min_group_size}: every group needs at "
                "least MinGS members (constraint 31) — lower min_group_size "
                "or supply more clients"
            )
        client_ids = np.asarray(client_ids, dtype=np.int64)
        if client_ids.shape[0] != n:
            raise ValueError("client_ids length must match label_matrix rows")

        if self.engine == "reference":
            partitions = self._partition_reference(L, rng)
        else:
            partitions = self._partition_incremental(L, rng)
        self._repair_undersized(partitions, L)
        return self._build_groups(partitions, L, client_ids, edge_id)

    # ------------------------------------------------------------------
    # Reference engine: the pre-optimization transcription of Algorithm 2.
    # ------------------------------------------------------------------

    def _partition_reference(self, L: np.ndarray, rng: np.random.Generator) -> list[list[int]]:
        metric = self._metric_fn
        remaining = np.arange(L.shape[0])
        partitions: list[list[int]] = []
        while remaining.size > 0:
            # Line 3: a new group seeded with a random remaining client.
            pick = int(rng.integers(remaining.size))
            seed = int(remaining[pick])
            remaining = np.delete(remaining, pick)
            members = [seed]
            counts = L[seed].copy()
            cov = float(metric(counts))

            # Line 4: grow while constraints unmet and clients remain.
            while (cov > self.max_cov or len(members) < self.min_group_size) and remaining.size:
                cand_counts = counts[None, :] + L[remaining]
                cand_cov = metric(cand_counts)
                best = int(np.argmin(cand_cov))
                best_cov = float(cand_cov[best])
                # Line 6: accept if it improves CoV, or if we are still
                # below the anonymity floor.
                if best_cov < cov or len(members) < self.min_group_size:
                    chosen = int(remaining[best])
                    members.append(chosen)
                    counts += L[chosen]
                    cov = best_cov
                    remaining = np.delete(remaining, best)
                else:
                    break  # Line 9: finalize (size is large enough)
            partitions.append(members)
        return partitions

    # ------------------------------------------------------------------
    # Incremental engine: running moments, exact tie resolution.
    # ------------------------------------------------------------------

    def _metric_row(self, cnd: np.ndarray, m: int) -> float:
        """The configured metric of one candidate count row — bit-identical
        to the vectorized :func:`cov_of_counts` / :func:`cov_paper_eq27`
        applied to that row, without their batching overhead."""
        s = float(cnd.sum())
        mu = s / m
        if not mu > 0:
            return math.inf
        dev = cnd - mu
        ssum = float((dev * dev).sum())
        if self.cov_metric == "eq27":
            return math.sqrt(ssum / s)
        return math.sqrt(ssum / m) / mu

    def _partition_incremental(self, L: np.ndarray, rng: np.random.Generator) -> list[list[int]]:
        n, m = L.shape
        rs = L.sum(axis=1)  # per-client Σ_j L_ij (exact: integer counts)
        if (
            n == 0
            or L.min() < 0
            or float(rs.sum()) > _EXACT_SUM_MAX
            or not np.array_equal(L, np.floor(L))
        ):
            return self._partition_reference(L, rng)
        olderr = np.seterr(divide="ignore", invalid="ignore")
        try:
            return self._partition_incremental_inner(L, rng, rs)
        finally:
            np.seterr(**olderr)

    def _partition_incremental_inner(
        self, L: np.ndarray, rng: np.random.Generator, rs: np.ndarray
    ) -> list[list[int]]:
        n, m = L.shape
        eq27 = self.cov_metric == "eq27"
        mgs = self.min_group_size
        # Surrogate-space MaxCoV threshold (see _surrogate below).
        qmax = self.max_cov**2 if eq27 else (self.max_cov**2 + 1.0) / m
        rq = (L * L).sum(axis=1)  # per-client Σ_j L_ij²
        # z_i = rq_i + 2·(L_i · counts): candidate second moment = S2 + z_i.
        z = np.empty(n)
        gemv = np.empty(n)
        counts = np.empty(m)

        # Active clients are order[:count], always in ascending index order
        # (matching np.delete); removal is an in-place left shift.
        order = np.arange(n)
        count = n
        b_s1 = np.empty(n)
        b_s2 = np.empty(n)
        b_t = np.empty(n)
        b_q = np.empty(n)
        b_e = np.empty(n)

        def add_member(chosen: int) -> None:
            # Order matters: z/counts updates must see the pre-add state.
            np.matmul(L, L[chosen], out=gemv)
            np.multiply(gemv, 2.0, out=gemv)
            np.add(z, gemv, out=z)
            np.add(counts, L[chosen], out=counts)

        def surrogate(S1: float, S2: float) -> tuple[float, float]:
            """(q, margin): exact monotone transform of the metric plus the
            uncertainty half-width of comparisons against other q values.

            cov:  CoV² = m·q − 1 with q = S2/S1² (S1² exact ⇒ one rounding).
            eq27: eq27² = q = S2/S1 − S1/m (two roundings, absolute margin).
            """
            if S1 <= 0:
                return math.inf, 0.0
            if eq27:
                a = S2 / S1
                b = S1 / m
                return a - b, _TIE_REL * (a + b)
            q = S2 / (S1 * S1)
            return q, _TIE_REL * q

        partitions: list[list[int]] = []
        while count:
            # Line 3: a new group seeded with a random remaining client.
            pick = int(rng.integers(count))
            seed = int(order[pick])
            order[pick : count - 1] = order[pick + 1 : count]
            count -= 1
            members = [seed]
            S1 = float(rs[seed])
            S2 = float(rq[seed])
            np.copyto(z, rq)
            counts.fill(0.0)
            add_member(seed)
            q_cur, e_cur = surrogate(S1, S2)

            # Line 4: grow while constraints unmet and clients remain.
            while count:
                if len(members) >= mgs:
                    # "cov > MaxCoV?" on the surrogate; only a boundary
                    # within float noise needs the reference's own float.
                    if math.isinf(q_cur):
                        pass  # empty counts: CoV = inf > MaxCoV, keep going
                    elif q_cur <= qmax - (e_cur + _TIE_REL * qmax):
                        break  # Line 9: certainly satisfied
                    elif q_cur <= qmax + (e_cur + _TIE_REL * qmax):
                        if not self._metric_row(counts, m) > self.max_cov:
                            break
                act = order[:count]
                s1 = b_s1[:count]
                s2 = b_s2[:count]
                t = b_t[:count]
                q = b_q[:count]
                e = b_e[:count]
                rs.take(act, out=s1)
                s1 += S1  # candidate S1 = S1 + Σ_j L_ij (exact)
                z.take(act, out=s2)
                s2 += S2  # candidate S2 = S2 + z_i (exact)
                if eq27:
                    # Surrogate: eq27² = S2c/S1c − S1c/m, each term one
                    # rounding; near-ties need an absolute window.
                    np.divide(s2, s1, out=q)
                    np.divide(s1, m, out=t)
                    np.add(q, t, out=e)
                    e *= _TIE_REL
                    q -= t
                else:
                    # Surrogate: CoV² = m·q − 1 with q = S2c/S1c², and
                    # S1c² is exact, so q carries a single rounding.
                    np.multiply(s1, s1, out=t)
                    np.divide(s2, t, out=q)
                    np.multiply(q, _TIE_REL, out=e)
                if S1 == 0.0:
                    # S1c = 0 ⇒ 0/0 = NaN; the reference scores those inf.
                    np.nan_to_num(q, copy=False, nan=np.inf)
                    np.nan_to_num(e, copy=False, nan=0.0)
                b = int(q.argmin())
                q_b = float(q[b])
                e_b = float(e[b])
                thr = q_b + e_b
                near = np.isinf(q) if math.isinf(thr) else q - e <= thr
                best_cov = None  # reference float, computed lazily
                if int(np.count_nonzero(near)) > 1:
                    # Near-tie: let the reference formula decide, on exactly
                    # the float path `metric(counts + L[remaining])` takes.
                    wpos = np.flatnonzero(near)
                    cand = counts[None, :] + L[act[wpos]]
                    scores = self._metric_fn(cand)
                    j = int(np.argmin(scores))
                    best = int(wpos[j])
                    best_cov = float(scores[j])
                    q_b, e_b = surrogate(S1 + float(rs[act[best]]), S2 + float(z[act[best]]))
                else:
                    best = b
                # Line 6: accept if it improves CoV, or if we are still
                # below the anonymity floor — decided on surrogates unless
                # the two scores are within float noise of each other.
                if len(members) < mgs:
                    accept = True
                elif q_b < q_cur - (e_b + e_cur):
                    accept = True
                elif q_b < q_cur + (e_b + e_cur):
                    if best_cov is None:
                        best_cov = self._metric_row(counts + L[act[best]], m)
                    accept = best_cov < self._metric_row(counts, m)
                else:
                    accept = False
                if accept:
                    chosen = int(order[best])
                    members.append(chosen)
                    S1 += float(rs[chosen])
                    S2 += float(z[chosen])
                    add_member(chosen)
                    q_cur, e_cur = surrogate(S1, S2)
                    order[best : count - 1] = order[best + 1 : count]
                    count -= 1
                else:
                    break  # Line 9: finalize (size is large enough)
            partitions.append(members)
        return partitions

    def _repair_undersized(self, partitions: list[list[int]], L: np.ndarray) -> None:
        """Enforce constraint (31): merge leftover groups smaller than MinGS.

        When clients run out, the final group may be undersized; each of its
        members is folded into the finalized group whose CoV grows least.
        """
        if len(partitions) < 2:
            return
        undersized = [p for p in partitions if len(p) < self.min_group_size]
        if not undersized:
            return
        kept = [p for p in partitions if len(p) >= self.min_group_size]
        if not kept:
            return  # every group is undersized: nothing better available
        metric = self._metric_fn
        kept_counts = np.stack([L[p].sum(axis=0) for p in kept])
        for small in undersized:
            for member in small:
                cand = kept_counts + L[member]
                best = int(np.argmin(metric(cand)))
                kept[best].append(member)
                kept_counts[best] += L[member]
        partitions[:] = kept

    def __repr__(self) -> str:
        return (
            f"CoVGrouping(min_group_size={self.min_group_size}, max_cov={self.max_cov}, "
            f"engine={self.engine!r}, cov_metric={self.cov_metric!r})"
        )
