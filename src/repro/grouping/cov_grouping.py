"""CoV-Grouping — the paper's Algorithm 2 (§5.3).

Greedy group formation: seed each group with a random client, then
repeatedly add the candidate that minimizes the group's CoV, until the
group's CoV ≤ MaxCoV and size ≥ MinGS (or no candidate improves the CoV
once the size floor is met).

The inner "try every possible client" scan (Line 5) is vectorized: the
candidate group count vectors are ``current + L[remaining]`` — one matrix —
and the CoV of all rows is computed in a single NumPy expression. The
asymptotic complexity remains the paper's O(|K|³·|Y|), but the per-candidate
constant is a fused array op rather than a Python loop.
"""

from __future__ import annotations

import numpy as np

from repro.grouping.base import Group, Grouper
from repro.grouping.cov import cov_of_counts
from repro.rng import make_rng

__all__ = ["CoVGrouping"]


class CoVGrouping(Grouper):
    """Greedy CoV-minimizing grouper (Algorithm 2).

    Parameters
    ----------
    min_group_size:
        MinGS — the anonymity floor: every group (except possibly the final
        leftover group) has at least this many clients, so secure group
        operations have a large enough anonymity set.
    max_cov:
        MaxCoV — keep adding clients while the group CoV exceeds this value
        (soft constraint: if no candidate helps and size ≥ MinGS, the group
        is finalized anyway — footnote 4).
    """

    name = "covg"

    def __init__(self, min_group_size: int = 5, max_cov: float = 0.5):
        if min_group_size < 1:
            raise ValueError(f"min_group_size must be >= 1, got {min_group_size}")
        if max_cov < 0:
            raise ValueError(f"max_cov must be >= 0, got {max_cov}")
        self.min_group_size = int(min_group_size)
        self.max_cov = float(max_cov)

    def group(
        self,
        label_matrix: np.ndarray,
        client_ids: np.ndarray,
        edge_id: int = 0,
        rng: np.random.Generator | int | None = None,
    ) -> list[Group]:
        rng = make_rng(rng)
        L = np.asarray(label_matrix, dtype=np.float64)
        n = L.shape[0]
        client_ids = np.asarray(client_ids, dtype=np.int64)
        if client_ids.shape[0] != n:
            raise ValueError("client_ids length must match label_matrix rows")

        remaining = np.arange(n)
        partitions: list[list[int]] = []
        while remaining.size > 0:
            # Line 3: a new group seeded with a random remaining client.
            pick = int(rng.integers(remaining.size))
            seed = int(remaining[pick])
            remaining = np.delete(remaining, pick)
            members = [seed]
            counts = L[seed].copy()
            cov = float(cov_of_counts(counts))

            # Line 4: grow while constraints unmet and clients remain.
            while (cov > self.max_cov or len(members) < self.min_group_size) and remaining.size:
                cand_counts = counts[None, :] + L[remaining]
                cand_cov = cov_of_counts(cand_counts)
                best = int(np.argmin(cand_cov))
                best_cov = float(cand_cov[best])
                # Line 6: accept if it improves CoV, or if we are still
                # below the anonymity floor.
                if best_cov < cov or len(members) < self.min_group_size:
                    chosen = int(remaining[best])
                    members.append(chosen)
                    counts += L[chosen]
                    cov = best_cov
                    remaining = np.delete(remaining, best)
                else:
                    break  # Line 9: finalize (size is large enough)
            partitions.append(members)

        self._repair_undersized(partitions, L)
        return self._build_groups(partitions, L, client_ids, edge_id)

    def _repair_undersized(self, partitions: list[list[int]], L: np.ndarray) -> None:
        """Enforce constraint (31): merge leftover groups smaller than MinGS.

        When clients run out, the final group may be undersized; each of its
        members is folded into the finalized group whose CoV grows least.
        """
        if len(partitions) < 2:
            return
        undersized = [p for p in partitions if len(p) < self.min_group_size]
        if not undersized:
            return
        kept = [p for p in partitions if len(p) >= self.min_group_size]
        if not kept:
            return  # every group is undersized: nothing better available
        kept_counts = np.stack([L[p].sum(axis=0) for p in kept])
        for small in undersized:
            for member in small:
                cand = kept_counts + L[member]
                best = int(np.argmin(cov_of_counts(cand)))
                kept[best].append(member)
                kept_counts[best] += L[member]
        partitions[:] = kept

    def __repr__(self) -> str:
        return f"CoVGrouping(min_group_size={self.min_group_size}, max_cov={self.max_cov})"
