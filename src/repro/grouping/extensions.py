"""Grouping extensions beyond the paper's Algorithm 2.

Two pieces the paper points at but does not build:

* :class:`CoVGammaGrouping` — the conclusion's future-work item: also
  control γ, the dispersion of *data amounts* within a group (Theorem 1's
  third key observation: γ − 1 is the squared CoV of client sample counts).
  The greedy criterion becomes a weighted sum of the label CoV and the
  data-count CoV.
* :func:`exhaustive_optimal_grouping` — exact minimum-ΣCoV partition by
  brute force, feasible only for tiny client sets. Used by the test suite
  to measure CoV-Grouping's greedy optimality gap, and by anyone studying
  the grouping objective itself.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.grouping.base import Group, Grouper
from repro.grouping.cov import cov_of_counts
from repro.rng import make_rng

__all__ = ["CoVGammaGrouping", "exhaustive_optimal_grouping", "sum_cov_objective"]


class CoVGammaGrouping(Grouper):
    """Greedy grouping on ``CoV_labels + gamma_weight · CoV_counts``.

    ``CoV_counts`` is the coefficient of variation of the member clients'
    data sample counts — driving it down drives γ → 1 (Eq. 11), which
    Theorem 1 rewards on top of small ζ_g.

    Parameters
    ----------
    min_group_size / max_score:
        The same floor/threshold pattern as Algorithm 2, applied to the
        combined score.
    gamma_weight:
        Relative weight of the data-count CoV (0 recovers CoV-Grouping).
    """

    name = "covg_gamma"

    def __init__(
        self,
        min_group_size: int = 5,
        max_score: float = 0.5,
        gamma_weight: float = 0.5,
    ):
        if min_group_size < 1:
            raise ValueError(f"min_group_size must be >= 1, got {min_group_size}")
        if max_score < 0:
            raise ValueError(f"max_score must be >= 0, got {max_score}")
        if gamma_weight < 0:
            raise ValueError(f"gamma_weight must be >= 0, got {gamma_weight}")
        self.min_group_size = int(min_group_size)
        self.max_score = float(max_score)
        self.gamma_weight = float(gamma_weight)

    def _scores(
        self,
        counts: np.ndarray,
        sizes_sum: np.ndarray,
        sizes_sumsq: np.ndarray,
        k: int,
    ) -> np.ndarray:
        """Vectorized combined score for candidate groups.

        ``counts`` are candidate label-count rows; ``sizes_sum`` and
        ``sizes_sumsq`` the candidate groups' Σn_i and Σn_i² (so the count
        CoV comes from running moments — no per-candidate member scans).
        """
        label_cov = np.atleast_1d(cov_of_counts(counts))
        mean = sizes_sum / k
        var = np.maximum(sizes_sumsq / k - mean**2, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            count_cov = np.where(mean > 0, np.sqrt(var) / mean, np.inf)
        return label_cov + self.gamma_weight * count_cov

    def group(
        self,
        label_matrix: np.ndarray,
        client_ids: np.ndarray,
        edge_id: int = 0,
        rng: np.random.Generator | int | None = None,
    ) -> list[Group]:
        rng = make_rng(rng)
        L = np.asarray(label_matrix, dtype=np.float64)
        n = L.shape[0]
        client_ids = np.asarray(client_ids, dtype=np.int64)
        n_i = L.sum(axis=1)

        remaining = np.arange(n)
        partitions: list[list[int]] = []
        while remaining.size > 0:
            pick = int(rng.integers(remaining.size))
            seed = int(remaining[pick])
            remaining = np.delete(remaining, pick)
            members = [seed]
            counts = L[seed].copy()
            s_sum, s_sumsq = n_i[seed], n_i[seed] ** 2
            score = float(
                self._scores(counts[None, :], np.array([s_sum]),
                             np.array([s_sumsq]), 1)[0]
            )
            while (score > self.max_score or len(members) < self.min_group_size) and remaining.size:
                cand_counts = counts[None, :] + L[remaining]
                cand_sum = s_sum + n_i[remaining]
                cand_sumsq = s_sumsq + n_i[remaining] ** 2
                cand_scores = self._scores(
                    cand_counts, cand_sum, cand_sumsq, len(members) + 1
                )
                best = int(np.argmin(cand_scores))
                best_score = float(cand_scores[best])
                if best_score < score or len(members) < self.min_group_size:
                    chosen = int(remaining[best])
                    members.append(chosen)
                    counts += L[chosen]
                    s_sum += n_i[chosen]
                    s_sumsq += n_i[chosen] ** 2
                    score = best_score
                    remaining = np.delete(remaining, best)
                else:
                    break
            partitions.append(members)
        return self._build_groups(partitions, L, client_ids, edge_id)

    def __repr__(self) -> str:
        return (
            f"CoVGammaGrouping(min_group_size={self.min_group_size}, "
            f"max_score={self.max_score}, gamma_weight={self.gamma_weight})"
        )


def sum_cov_objective(L: np.ndarray, partition: list[list[int]]) -> float:
    """Σ_g CoV(g) — the objective of the §5.2 optimization problem."""
    total = 0.0
    for members in partition:
        counts = np.asarray(L, dtype=np.float64)[list(members)].sum(axis=0)
        total += float(cov_of_counts(counts))
    return total


def _partitions_into_groups(items: list[int], group_size: int):
    """Yield all partitions of ``items`` into groups of exactly group_size.

    Canonical recursion: the first remaining item always joins the next
    group, avoiding duplicate orderings.
    """
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for combo in itertools.combinations(rest, group_size - 1):
        group = [first, *combo]
        remaining = [x for x in rest if x not in combo]
        for tail in _partitions_into_groups(remaining, group_size):
            yield [group, *tail]


def exhaustive_optimal_grouping(
    label_matrix: np.ndarray, group_size: int, max_clients: int = 12
) -> tuple[list[list[int]], float]:
    """Exact minimizer of Σ CoV over equal-size partitions (tiny inputs).

    Raises on more than ``max_clients`` clients (the partition count grows
    super-exponentially) or when the client count is not divisible by
    ``group_size``.
    """
    L = np.asarray(label_matrix, dtype=np.float64)
    n = L.shape[0]
    if n > max_clients:
        raise ValueError(f"exhaustive search limited to {max_clients} clients, got {n}")
    if n % group_size:
        raise ValueError(f"{n} clients not divisible by group size {group_size}")
    best: tuple[float, list[list[int]]] | None = None
    for partition in _partitions_into_groups(list(range(n)), group_size):
        obj = sum_cov_objective(L, partition)
        if best is None or obj < best[0]:
            best = (obj, partition)
    assert best is not None
    return best[1], best[0]
