"""KLDG — KL-divergence grouping, ported from SHARE [14].

SHARE shapes the data distribution at each edge aggregator by minimizing
the Kullback–Leibler divergence between the aggregator's combined label
distribution and the global one. Ported to group formation: the same greedy
skeleton as CoV-Grouping, but the criterion is KLD and — faithful to the
paper's complexity discussion (§5.4: "its time complexity is O(|K|⁴|Y|)"
and "it frequently calculates the KLD, which needs the expensive operation
floating-point log()") — the candidate scan recomputes each candidate
group's KLD from its full member list with a per-candidate ``log`` call
rather than an incremental vectorized update. That reproduces both the
quartic scaling and the constant-factor gap of Fig. 5.
"""

from __future__ import annotations

import numpy as np

from repro.grouping.base import Group, Grouper
from repro.grouping.cov import kl_divergence
from repro.rng import make_rng

__all__ = ["KLDGrouping"]


class KLDGrouping(Grouper):
    """Greedy KLD-minimizing grouper (SHARE's criterion).

    Parameters
    ----------
    min_group_size:
        Size floor, mirroring CoV-Grouping's MinGS so comparisons are fair
        ("we tune all grouping algorithms so that they tend to generate
        similar group sizes" — §7.1).
    max_kld:
        Stop growing a group once its KLD to the reference distribution
        falls below this value and the size floor is met.
    reference:
        Global label distribution to match; None = uniform.
    """

    name = "kldg"

    def __init__(
        self,
        min_group_size: int = 5,
        max_kld: float = 0.05,
        reference: np.ndarray | None = None,
    ):
        if min_group_size < 1:
            raise ValueError(f"min_group_size must be >= 1, got {min_group_size}")
        if max_kld < 0:
            raise ValueError(f"max_kld must be >= 0, got {max_kld}")
        self.min_group_size = int(min_group_size)
        self.max_kld = float(max_kld)
        self.reference = reference

    def _group_kld(self, L: np.ndarray, members: list[int]) -> float:
        # Recomputed from scratch per candidate (SHARE's costly pattern).
        counts = L[members].sum(axis=0)
        return float(kl_divergence(counts, self.reference))

    def group(
        self,
        label_matrix: np.ndarray,
        client_ids: np.ndarray,
        edge_id: int = 0,
        rng: np.random.Generator | int | None = None,
    ) -> list[Group]:
        rng = make_rng(rng)
        L = np.asarray(label_matrix, dtype=np.float64)
        n = L.shape[0]
        remaining = list(range(n))
        rng.shuffle(remaining)

        partitions: list[list[int]] = []
        while remaining:
            members = [remaining.pop()]
            kld = self._group_kld(L, members)
            while (kld > self.max_kld or len(members) < self.min_group_size) and remaining:
                best_idx, best_kld = -1, np.inf
                for pos, cand in enumerate(remaining):
                    trial = self._group_kld(L, members + [cand])
                    if trial < best_kld:
                        best_idx, best_kld = pos, trial
                if best_kld < kld or len(members) < self.min_group_size:
                    members.append(remaining.pop(best_idx))
                    kld = best_kld
                else:
                    break
            partitions.append(members)
        return self._build_groups(partitions, L, client_ids, edge_id)

    def __repr__(self) -> str:
        return (
            f"KLDGrouping(min_group_size={self.min_group_size}, max_kld={self.max_kld})"
        )
