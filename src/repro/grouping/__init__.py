"""Group formation: the paper's CoV-Grouping plus all compared baselines.

Grouping operates purely on the label matrix ``L`` (clients × classes) —
never on raw data, models, or gradients (§5.1). Each edge server groups its
own clients; the resulting groups are pooled globally for sampling.
"""

from repro.grouping.cov import (
    cov_of_counts,
    cov_paper_eq27,
    group_cov,
    kl_divergence,
    sigma_mu,
)
from repro.grouping.base import Group, Grouper, group_clients_per_edge
from repro.grouping.cov_grouping import CoVGrouping
from repro.grouping.random_grouping import RandomGrouping
from repro.grouping.cdg import CDGGrouping
from repro.grouping.fedgroup import FedGroupGrouping
from repro.grouping.kldg import KLDGrouping
from repro.grouping.extensions import (
    CoVGammaGrouping,
    exhaustive_optimal_grouping,
    sum_cov_objective,
)
from repro.grouping.metrics import GroupingReport, evaluate_grouping, make_grouper

__all__ = [
    "cov_of_counts",
    "cov_paper_eq27",
    "group_cov",
    "sigma_mu",
    "kl_divergence",
    "Group",
    "Grouper",
    "group_clients_per_edge",
    "CoVGrouping",
    "RandomGrouping",
    "CDGGrouping",
    "FedGroupGrouping",
    "KLDGrouping",
    "CoVGammaGrouping",
    "exhaustive_optimal_grouping",
    "sum_cov_objective",
    "GroupingReport",
    "evaluate_grouping",
    "make_grouper",
]
