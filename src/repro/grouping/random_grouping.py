"""Random grouping (RG): shuffle clients, cut into fixed-size chunks.

The grouping used by the FedAvg / FedProx / SCAFFOLD baselines in §7.3 and
the reference point in Figs. 5, 6, and 12.
"""

from __future__ import annotations

import numpy as np

from repro.grouping.base import Group, Grouper
from repro.rng import make_rng

__all__ = ["RandomGrouping"]


class RandomGrouping(Grouper):
    """Uniform random partition into groups of ``group_size`` clients.

    The trailing remainder (fewer than ``group_size`` clients) is merged
    into the last full group when ``merge_remainder`` is set (default), so
    every group respects the size floor; otherwise it forms a smaller group.
    """

    name = "rg"

    def __init__(self, group_size: int = 5, merge_remainder: bool = True):
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.group_size = int(group_size)
        self.merge_remainder = bool(merge_remainder)

    def group(
        self,
        label_matrix: np.ndarray,
        client_ids: np.ndarray,
        edge_id: int = 0,
        rng: np.random.Generator | int | None = None,
    ) -> list[Group]:
        rng = make_rng(rng)
        n = label_matrix.shape[0]
        order = rng.permutation(n)
        size = self.group_size
        partitions = [order[i : i + size].tolist() for i in range(0, n, size)]
        if (
            self.merge_remainder
            and len(partitions) > 1
            and len(partitions[-1]) < size
        ):
            partitions[-2].extend(partitions.pop())
        return self._build_groups(partitions, label_matrix, client_ids, edge_id)

    def __repr__(self) -> str:
        return f"RandomGrouping(group_size={self.group_size})"
