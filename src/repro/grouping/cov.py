"""Coefficient-of-variation statistics over group label counts (§5.1).

For a group g with per-class sample counts ``c_j`` (j = 1..m, n_g = Σc_j):

* mean        μ(g) = n_g / m
* std-dev     σ(g) = sqrt( Σ_j (c_j − μ)² / m )          (paper Eq. 28)
* CoV         CoV(g) = σ(g) / μ(g)                        (canonical)

The paper's printed Eq. (27) reads ``sqrt(Σ_j (n_g/m − c_j)² / n_g)`` which
is not exactly σ/μ given Eq. (28) — a typesetting slip mixing the ``m`` and
``n_g`` denominators. We expose both: :func:`cov_of_counts` (canonical, used
everywhere by default) and :func:`cov_paper_eq27` (the literal formula),
selectable on ``CoVGrouping`` via ``cov_metric="eq27"``.

The two are related by ``eq27 = CoV · sqrt(n_g / m)`` — a monotone
rescaling only at *fixed* group size n_g. Inside a greedy candidate scan
n_g differs per candidate (each adds a different client's sample count),
so the √(n_g/m) factor reweights candidates and the argmins can diverge:
a larger, slightly-less-balanced candidate can beat a smaller, more
balanced one under one metric and lose under the other
(``tests/grouping/test_incremental_engine.py`` pins a counterexample).
The metrics are therefore different grouping objectives, not
interchangeable implementations of one.

All functions are vectorized over a leading batch axis so the grouping
algorithms can score *every remaining candidate client at once*.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sigma_mu",
    "cov_of_counts",
    "cov_paper_eq27",
    "group_cov",
    "kl_divergence",
]


def _as_count_matrix(counts: np.ndarray) -> np.ndarray:
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim == 1:
        counts = counts[None, :]
    if counts.ndim != 2:
        raise ValueError(f"counts must be 1-D or 2-D, got shape {counts.shape}")
    return counts


def sigma_mu(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(σ, μ) of per-class counts; vectorized over rows.

    μ = n_g/m, σ = sqrt(Σ(c_j − μ)²/m) — the paper's Eq. (28).
    """
    c = _as_count_matrix(counts)
    m = c.shape[1]
    mu = c.sum(axis=1) / m
    sigma = np.sqrt(((c - mu[:, None]) ** 2).sum(axis=1) / m)
    return sigma, mu


def cov_of_counts(counts: np.ndarray) -> np.ndarray | float:
    """Canonical CoV(g) = σ(g)/μ(g); 0 for a perfectly balanced group.

    An all-zero count vector (empty group) returns ``inf`` — an empty group
    is maximally unlike the (assumed balanced) global distribution.
    """
    c = _as_count_matrix(counts)
    sigma, mu = sigma_mu(c)
    out = np.full(c.shape[0], np.inf)
    nz = mu > 0
    out[nz] = sigma[nz] / mu[nz]
    if np.asarray(counts).ndim == 1:
        return float(out[0])
    return out


def cov_paper_eq27(counts: np.ndarray) -> np.ndarray | float:
    """The literal printed Eq. (27): sqrt( Σ_j (n_g/m − c_j)² / n_g )."""
    c = _as_count_matrix(counts)
    m = c.shape[1]
    n_g = c.sum(axis=1)
    mu = n_g / m
    ss = ((mu[:, None] - c) ** 2).sum(axis=1)
    out = np.full(c.shape[0], np.inf)
    nz = n_g > 0
    out[nz] = np.sqrt(ss[nz] / n_g[nz])
    if np.asarray(counts).ndim == 1:
        return float(out[0])
    return out


def group_cov(
    label_matrix: np.ndarray, members: np.ndarray | list[int]
) -> float:
    """CoV of the group formed by rows ``members`` of the label matrix L."""
    members = np.asarray(members, dtype=np.int64)
    counts = label_matrix[members].sum(axis=0)
    return float(cov_of_counts(counts))


def kl_divergence(
    counts: np.ndarray, reference: np.ndarray | None = None, eps: float = 1e-12
) -> np.ndarray | float:
    """KL(group distribution ‖ reference distribution), vectorized over rows.

    ``reference`` defaults to the uniform distribution (the paper assumes
    globally balanced data). Zero-count classes are smoothed by ``eps``.
    Used by the SHARE/KLDG baseline.
    """
    c = _as_count_matrix(counts)
    m = c.shape[1]
    p = c + eps
    p = p / p.sum(axis=1, keepdims=True)
    if reference is None:
        q = np.full(m, 1.0 / m)
    else:
        q = np.asarray(reference, dtype=np.float64) + eps
        q = q / q.sum()
    out = (p * np.log(p / q)).sum(axis=1)
    if np.asarray(counts).ndim == 1:
        return float(out[0])
    return out
