"""Per-round cost accounting attached to a training run."""

from __future__ import annotations

import numpy as np

from repro.costs.model import CostModel
from repro.grouping.base import Group
from repro.telemetry import Telemetry, resolve as resolve_telemetry

__all__ = ["CostLedger"]


class CostLedger:
    """Accumulates Eq. (5) costs round by round.

    The trainer calls :meth:`charge_round` with the sampled groups; the
    ledger keeps both the running total and the per-round series, so
    accuracy-vs-cost curves can be assembled after the fact. When a
    :class:`repro.telemetry.Telemetry` is attached, every charge also feeds
    the ``cost_total`` counter and ``round_cost`` histogram.
    """

    def __init__(
        self,
        cost_model: CostModel,
        client_sizes: np.ndarray,
        telemetry: Telemetry | None = None,
    ):
        self.cost_model = cost_model
        self.client_sizes = np.asarray(client_sizes, dtype=np.int64)
        self.round_costs: list[float] = []
        #: per-round wall-clock seconds added by injected faults
        #: (stragglers, retry timeouts) — see repro.faults
        self.fault_delay_s: list[float] = []
        #: per-round count of injected fault events
        self.fault_events: list[int] = []
        self.telemetry = resolve_telemetry(telemetry)

    @property
    def total(self) -> float:
        """Cumulative cost so far (the paper's O up to the current round)."""
        return float(sum(self.round_costs))

    def cumulative(self) -> np.ndarray:
        """Cumulative cost after each charged round."""
        return np.cumsum(self.round_costs) if self.round_costs else np.empty(0)

    def charge_round(
        self, groups: list[Group], group_rounds: int, local_rounds: int
    ) -> float:
        """Charge one global round over the sampled groups; returns its cost."""
        sizes = [g.size for g in groups]
        per_group_client_sizes = [self.client_sizes[g.members] for g in groups]
        cost = self.cost_model.global_round_cost(
            sizes, per_group_client_sizes, group_rounds, local_rounds
        )
        self.round_costs.append(cost)
        if self.telemetry.enabled:
            self.telemetry.inc("cost_total", cost)
            self.telemetry.observe("round_cost", cost)
        return cost

    def charge_round_columnar(
        self,
        group_sizes: np.ndarray,
        group_samples: np.ndarray,
        group_rounds: int,
        local_rounds: int,
    ) -> float:
        """Charge one round from per-group (|g|, n_g) arrays — no per-group
        member gathers, so a columnar store's sampled groups are charged in
        one vectorized pass at any population scale."""
        cost = self.cost_model.global_round_cost_columnar(
            group_sizes, group_samples, group_rounds, local_rounds
        )
        self.round_costs.append(cost)
        if self.telemetry.enabled:
            self.telemetry.inc("cost_total", cost)
            self.telemetry.observe("round_cost", cost)
        return cost

    @property
    def total_fault_delay_s(self) -> float:
        """Cumulative wall-clock seconds injected faults cost the run."""
        return float(sum(self.fault_delay_s))

    def record_fault_overhead(self, delay_s: float, num_events: int) -> None:
        """Record one round's fault overhead (latency, event count).

        Fault delay is *wall clock*, not Eq. (5) resource units, so it is
        kept as a parallel series rather than folded into ``round_costs`` —
        accuracy-vs-cost and accuracy-vs-latency degrade independently.
        """
        self.fault_delay_s.append(float(delay_s))
        self.fault_events.append(int(num_events))
        if self.telemetry.enabled and delay_s:
            self.telemetry.inc("faults.delay_total_s", float(delay_s))

    def estimate_round_cost(
        self, groups: list[Group], group_rounds: int, local_rounds: int
    ) -> float:
        """Cost a round *would* add, without charging it (budget checks)."""
        sizes = [g.size for g in groups]
        per_group_client_sizes = [self.client_sizes[g.members] for g in groups]
        return self.cost_model.global_round_cost(
            sizes, per_group_client_sizes, group_rounds, local_rounds
        )
