"""Wall-clock simulation of a Group-FEL round over the hierarchy.

Eq. (5) measures total resource cost; this module answers the complementary
systems question — how long a round *takes* — by combining per-client
compute time (cost model × the client's ``compute_factor``) with link
transfer times from the communication model, under the parallelism
structure of Algorithm 1: groups run in parallel, clients within a group
compute in parallel but serialize on the edge uplink, and group rounds are
sequential.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.costs.model import CostModel
from repro.grouping.base import Group
from repro.topology.comm import CommModel
from repro.topology.network import HierarchicalTopology

__all__ = ["RoundTiming", "WallClockSimulator"]


@dataclass
class RoundTiming:
    """Timing breakdown for one global round."""

    compute_s: float  # slowest group's total compute time
    comm_s: float  # slowest group's total communication time
    total_s: float  # slowest group's compute+comm pipeline
    per_group_s: dict  # group_id -> its pipeline time

    @property
    def bottleneck_group(self) -> int | None:
        """Group id of the straggler group this round, or ``None`` for an
        empty round (every sampled group faulted out before timing)."""
        if not self.per_group_s:
            return None
        return max(self.per_group_s, key=self.per_group_s.get)


class WallClockSimulator:
    """Simulate round latency for sampled groups.

    Parameters
    ----------
    topology / cost_model / comm_model:
        The hierarchy (with per-client compute factors), the Eq. (5) cost
        calibration interpreted as *seconds on the reference device*, and
        the link-level communication model.
    """

    def __init__(
        self,
        topology: HierarchicalTopology,
        cost_model: CostModel,
        comm_model: CommModel,
    ):
        self.topology = topology
        self.cost_model = cost_model
        self.comm_model = comm_model

    def client_compute_s(self, client_id: int, group_size: int, n_i: int,
                         local_rounds: int) -> float:
        """One client's compute seconds for one group round."""
        factor = self.topology.clients[client_id].compute_factor
        return factor * self.cost_model.client_round_cost(group_size, n_i, local_rounds)

    def round_timing(
        self,
        groups: list[Group],
        client_sizes: np.ndarray,
        group_rounds: int,
        local_rounds: int,
        extra_group_delay_s: dict | None = None,
    ) -> RoundTiming:
        """Simulate one global round's wall clock over the sampled groups.

        ``extra_group_delay_s`` maps group_id → injected fault latency
        (stragglers, uplink retry timeouts — see ``repro.faults``); a
        group's pipeline stretches by its delay, so a straggling group can
        become the round's bottleneck exactly as in a real deployment.
        """
        ce = self.topology.client_edge
        ec = self.topology.edge_cloud
        up = self.comm_model.model_bytes * self.comm_model.payload_factor
        down = self.comm_model.model_bytes

        per_group: dict[int, float] = {}
        worst_compute = worst_comm = 0.0
        for g in groups:
            # Per group round: all clients compute in parallel (slowest
            # wins), then uploads serialize on the edge uplink, then the
            # group model is broadcast back.
            compute_each = np.array([
                self.client_compute_s(int(c), g.size, int(client_sizes[c]), local_rounds)
                for c in g.members
            ])
            compute_round = float(compute_each.max())
            comm_round = g.size * ce.transfer_time(up) + ce.transfer_time(down)
            t_download = ec.transfer_time(down) + ce.transfer_time(down)
            t_upload = ec.transfer_time(up)
            total = (
                t_download
                + group_rounds * (compute_round + comm_round)
                + t_upload
            )
            if extra_group_delay_s:
                total += float(extra_group_delay_s.get(g.group_id, 0.0))
            per_group[g.group_id] = total
            worst_compute = max(worst_compute, group_rounds * compute_round)
            worst_comm = max(worst_comm, group_rounds * comm_round + t_download + t_upload)
        return RoundTiming(
            compute_s=worst_compute,
            comm_s=worst_comm,
            total_s=max(per_group.values()) if per_group else 0.0,
            per_group_s=per_group,
        )

    def training_time_s(
        self,
        per_round_groups: list[list[Group]],
        client_sizes: np.ndarray,
        group_rounds: int,
        local_rounds: int,
    ) -> float:
        """Total wall clock over a sequence of rounds (rounds are serial)."""
        return float(
            sum(
                self.round_timing(groups, client_sizes, group_rounds, local_rounds).total_s
                for groups in per_round_groups
            )
        )
