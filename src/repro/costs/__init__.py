"""The Group-FEL cost model (§3.2, Eq. 5).

Each client in a sampled group pays, per group round, a group-operation
overhead ``O_g(|g|)`` (quadratic in group size — secure aggregation and
backdoor detection both do pairwise work) plus ``E`` local-training passes
``H_i(n_i)`` (linear in local data). Total learning cost:

    O = Σ_t Σ_{g∈S_t} K · Σ_{c_i∈g} ( O_g(|g|) + E·H_i(n_i) )

All evaluation in the paper (and here) is *accuracy versus this cost*, not
accuracy versus round.
"""

from repro.costs.model import CostModel, LinearCost, QuadraticCost
from repro.costs.calibration import (
    PAPER_CALIBRATIONS,
    fit_linear,
    fit_quadratic,
    paper_cost_model,
)
from repro.costs.ledger import CostLedger
from repro.costs.rpi import RPiEmulator

__all__ = [
    "LinearCost",
    "QuadraticCost",
    "CostModel",
    "fit_linear",
    "fit_quadratic",
    "PAPER_CALIBRATIONS",
    "paper_cost_model",
    "CostLedger",
    "RPiEmulator",
]
