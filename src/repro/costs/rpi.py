"""Raspberry-Pi device emulation: regenerate Figs. 2(a) and 8 by measurement.

The paper parameterizes its cost model from wall-clock measurements of
training, secure aggregation, and backdoor detection on Raspberry Pi 4
devices. We have no RPi, but we have real implementations of all three
operations — so this module *times them here* at varying data/group sizes,
verifies the linear/quadratic shapes by least-squares fit, and rescales to
RPi-second magnitudes via a single device-speed factor.

That preserves exactly what the paper uses the measurements for: the shape
(training linear in n, group ops quadratic in |g|, SCAFFOLD SecAgg above
plain SecAgg above backdoor detection) and relative magnitudes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.costs.calibration import fit_linear, fit_quadratic
from repro.costs.model import LinearCost, QuadraticCost
from repro.nn import make_audio_cnn, make_resnet_lite
from repro.rng import make_rng
from repro.secure import BackdoorDetector, SecureAggregator

__all__ = ["MeasurementSeries", "RPiEmulator"]


def _safe_fit(kind: str, sizes: np.ndarray, secs: np.ndarray) -> tuple[tuple, float]:
    """Fit when enough points exist; otherwise report no fit (params ())."""
    try:
        if kind == "linear":
            fit, r2 = fit_linear(sizes, secs)
            return (fit.c0, fit.c1), r2
        fit, r2 = fit_quadratic(sizes, secs)
        return (fit.c0, fit.c1, fit.c2), r2
    except ValueError:
        return (), 0.0


@dataclass
class MeasurementSeries:
    """One measured overhead curve (a single line of Fig. 8)."""

    label: str
    sizes: np.ndarray
    seconds: np.ndarray
    fit_kind: str  # "linear" | "quadratic"
    fit_params: tuple = ()
    fit_r2: float = 0.0

    def as_rows(self) -> list[dict]:
        return [
            {"label": self.label, "x": int(s), "seconds": float(t)}
            for s, t in zip(self.sizes, self.seconds)
        ]


class RPiEmulator:
    """Measure group-operation and training costs on this machine.

    Parameters
    ----------
    model_dim:
        Vector length used for SecAgg / backdoor timing (stand-in for model
        size; the paper's models are O(10⁴–10⁵) params, default trimmed for
        quick measurement — shapes are size-independent).
    device_factor:
        Multiplier converting local seconds to RPi-4 seconds (an RPi 4 is
        roughly 30–100× slower than a server core on NumPy workloads).
    repeats:
        Timing repetitions per point (median taken).
    """

    def __init__(
        self,
        model_dim: int = 2000,
        device_factor: float = 50.0,
        repeats: int = 3,
        seed: int = 0,
    ):
        self.model_dim = int(model_dim)
        self.device_factor = float(device_factor)
        self.repeats = int(repeats)
        self.rng = make_rng(seed)

    def _task_dim(self, task: str) -> int:
        # SC's 5-layer CNN is far smaller than the CIFAR ResNet; its SecAgg
        # and defense payloads shrink accordingly (Fig. 8: SC curves sit
        # below the CIFAR ones).
        return self.model_dim if task == "cifar" else max(1, self.model_dim // 3)

    def _time(self, fn) -> float:
        # Min over repeats: the standard noise-robust timing estimator —
        # scheduler preemption and concurrent load only ever inflate a
        # sample, so the minimum best estimates the intrinsic cost.
        best = float("inf")
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best * self.device_factor

    # ------------------------------------------------------------------ training
    def measure_training(
        self, data_sizes: list[int] | np.ndarray, task: str = "cifar"
    ) -> MeasurementSeries:
        """Time one local pass over n samples for the task's model."""
        if task == "cifar":
            model = make_resnet_lite(base_width=8, seed=1)
            shape = (3, 8, 8)
            classes = 10
        elif task == "sc":
            model = make_audio_cnn(base_width=8, seed=1)
            shape = (8, 16)
            classes = 35
        else:
            raise KeyError(f"unknown task {task!r}; known: cifar, sc")
        sizes = np.asarray(data_sizes, dtype=np.int64)
        secs = np.empty(sizes.shape, dtype=np.float64)
        for k, n in enumerate(sizes):
            x = self.rng.normal(size=(int(n), *shape))
            y = self.rng.integers(0, classes, size=int(n))
            secs[k] = self._time(lambda: model.loss_and_grad(x, y))
        params, r2 = _safe_fit("linear", sizes, secs)
        return MeasurementSeries(
            label=f"{task} training",
            sizes=sizes,
            seconds=secs,
            fit_kind="linear",
            fit_params=params,
            fit_r2=r2,
        )

    # ------------------------------------------------------------ group operations
    def measure_secagg(
        self, group_sizes: list[int] | np.ndarray, payload_factor: int = 1, task: str = "cifar"
    ) -> MeasurementSeries:
        """Time secure aggregation for groups of each size.

        ``payload_factor=2`` gives the SCAFFOLD-SecAgg curve (model +
        control variate are both masked).

        Times :meth:`SecureAggregator.aggregate_reference` — the
        protocol-faithful path where every client expands each of its
        |g|−1 pair masks itself, which is the Θ(|g|²·d) per-device work
        the cost model calibrates.  The simulator's batched hot path
        dedups mask expansions across the group and would understate what
        one RPi actually computes.
        """
        agg = SecureAggregator(payload_factor=payload_factor)
        sizes = np.asarray(group_sizes, dtype=np.int64)
        secs = np.empty(sizes.shape, dtype=np.float64)
        dim = self._task_dim(task)
        for k, s in enumerate(sizes):
            vecs = self.rng.normal(size=(int(s), dim))
            secs[k] = self._time(lambda: agg.aggregate_reference(vecs, round_id=k))
        params, r2 = _safe_fit("quadratic", sizes, secs)
        name = "SCAFFOLD SecAgg" if payload_factor > 1 else "SecAgg"
        return MeasurementSeries(
            label=f"{task} {name}",
            sizes=sizes,
            seconds=secs,
            fit_kind="quadratic",
            fit_params=params,
            fit_r2=r2,
        )

    def measure_backdoor(
        self, group_sizes: list[int] | np.ndarray, task: str = "cifar"
    ) -> MeasurementSeries:
        """Time the backdoor-detection defense for groups of each size."""
        det = BackdoorDetector()
        sizes = np.asarray(group_sizes, dtype=np.int64)
        secs = np.empty(sizes.shape, dtype=np.float64)
        dim = self._task_dim(task)
        for k, s in enumerate(sizes):
            ups = self.rng.normal(size=(max(int(s), 2), dim))
            secs[k] = self._time(lambda: det.detect(ups, rng=0))
        params, r2 = _safe_fit("quadratic", sizes, secs)
        return MeasurementSeries(
            label=f"{task} Backdoor Detection",
            sizes=sizes,
            seconds=secs,
            fit_kind="quadratic",
            fit_params=params,
            fit_r2=r2,
        )

    # --------------------------------------------------------------------- Fig. 8
    def measurement_table(
        self,
        sizes: list[int] | np.ndarray = (2, 5, 10, 20, 35, 50),
        tasks: tuple[str, ...] = ("cifar", "sc"),
    ) -> list[MeasurementSeries]:
        """All eight Fig. 8 curves: {cifar, sc} × {training, backdoor, SecAgg, SCAFFOLD SecAgg}."""
        series = []
        for task in tasks:
            series.append(self.measure_training(sizes, task))
            series.append(self.measure_backdoor(sizes, task))
            series.append(self.measure_secagg(sizes, payload_factor=1, task=task))
            series.append(self.measure_secagg(sizes, payload_factor=2, task=task))
        return series
