"""Cost-curve fitting and the paper-scale calibrations (Fig. 8).

``PAPER_CALIBRATIONS`` encodes the magnitudes read off the paper's
Raspberry-Pi measurements (Fig. 8, units: seconds on an RPi 4):

* CIFAR training reaches ~50 s at 50 samples (≈1 s/sample); the SC model is
  the lightweight task (≈0.3 s/sample).
* SecAgg and backdoor detection are quadratic in group size, with
  SCAFFOLD's SecAgg the costliest (its payload is model + control variate,
  2× the masking work) and backdoor detection the cheapest.

Methods map to (training, group-op) pairs via :func:`paper_cost_model`.
"""

from __future__ import annotations

import numpy as np

from repro.costs.model import CostModel, LinearCost, QuadraticCost

__all__ = ["fit_linear", "fit_quadratic", "PAPER_CALIBRATIONS", "paper_cost_model"]


def fit_linear(x: np.ndarray, y: np.ndarray) -> tuple[LinearCost, float]:
    """Least-squares linear fit; returns (cost fn, R²)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size < 2:
        raise ValueError("need at least 2 points for a linear fit")
    c1, c0 = np.polyfit(x, y, 1)
    return LinearCost(c0=float(c0), c1=float(c1)), _r_squared(y, c0 + c1 * x)


def fit_quadratic(x: np.ndarray, y: np.ndarray) -> tuple[QuadraticCost, float]:
    """Least-squares quadratic fit; returns (cost fn, R²)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size < 3:
        raise ValueError("need at least 3 points for a quadratic fit")
    c2, c1, c0 = np.polyfit(x, y, 2)
    pred = c0 + c1 * x + c2 * x * x
    return QuadraticCost(c0=float(c0), c1=float(c1), c2=float(c2)), _r_squared(y, pred)


def _r_squared(y: np.ndarray, pred: np.ndarray) -> float:
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0


#: Paper-scale constants (RPi-4 seconds), keyed by (task, component).
PAPER_CALIBRATIONS: dict[tuple[str, str], LinearCost | QuadraticCost] = {
    ("cifar", "training"): LinearCost(c0=0.5, c1=1.0),
    ("sc", "training"): LinearCost(c0=0.3, c1=0.3),
    ("cifar", "secagg"): QuadraticCost(c0=0.5, c1=0.1, c2=0.014),
    ("sc", "secagg"): QuadraticCost(c0=0.4, c1=0.08, c2=0.010),
    ("cifar", "scaffold_secagg"): QuadraticCost(c0=0.8, c1=0.16, c2=0.022),
    ("sc", "scaffold_secagg"): QuadraticCost(c0=0.6, c1=0.13, c2=0.016),
    ("cifar", "backdoor"): QuadraticCost(c0=0.3, c1=0.05, c2=0.006),
    ("sc", "backdoor"): QuadraticCost(c0=0.2, c1=0.04, c2=0.004),
}


def paper_cost_model(
    task: str = "cifar",
    group_op: str = "secagg",
    training_factor: float = 1.0,
) -> CostModel:
    """Build a CostModel from the paper-scale calibrations.

    Parameters
    ----------
    task:
        ``cifar`` (heavy) or ``sc`` (lightweight).
    group_op:
        ``secagg``, ``scaffold_secagg``, or ``backdoor``; or ``secagg+backdoor``
        to stack both group operations.
    training_factor:
        Multiplier on the training cost — FedProx's proximal term adds
        compute per pass (the paper: "FedProx and SCAFFOLD demand more
        computation ... in each round").
    """
    try:
        training = PAPER_CALIBRATIONS[(task, "training")]
    except KeyError:
        raise KeyError(f"unknown task {task!r}; known: cifar, sc") from None
    ops = group_op.split("+")
    c0 = c1 = c2 = 0.0
    for op in ops:
        try:
            q = PAPER_CALIBRATIONS[(task, op)]
        except KeyError:
            raise KeyError(
                f"unknown group op {op!r}; known: secagg, scaffold_secagg, backdoor"
            ) from None
        c0 += q.c0
        c1 += q.c1
        c2 += q.c2
    assert isinstance(training, LinearCost)
    scaled = LinearCost(c0=training.c0 * training_factor, c1=training.c1 * training_factor)
    return CostModel(
        training=scaled,
        group_op=QuadraticCost(c0=c0, c1=c1, c2=c2),
        name=f"{task}/{group_op}",
    )
