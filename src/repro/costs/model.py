"""Cost-function primitives and the combined Eq. (5) model."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearCost", "QuadraticCost", "CostModel"]


@dataclass(frozen=True)
class LinearCost:
    """cost(n) = c0 + c1·n — the training cost H_i(n_i).

    "Given the hardware, model, and training hyperparameters are fixed,
    this cost is proportional to the data sample number" (§3.2); c0 covers
    fixed per-pass overhead (batch setup, model load).
    """

    c0: float = 0.0
    c1: float = 1.0

    def __call__(self, n: np.ndarray | float) -> np.ndarray | float:
        return self.c0 + self.c1 * np.asarray(n, dtype=np.float64)


@dataclass(frozen=True)
class QuadraticCost:
    """cost(s) = c0 + c1·s + c2·s² — the group overhead O_g(|g|) per client.

    Pairwise protocols (SecAgg mask agreement, FLAME distance matrices) do
    Θ(s) work *per client* for setup plus Θ(s) pairwise interactions whose
    per-interaction cost grows with s — measured per client the total is
    quadratic in s (§3.2, citing Bonawitz et al. and FLAME).
    """

    c0: float = 0.0
    c1: float = 0.0
    c2: float = 1.0

    def __call__(self, s: np.ndarray | float) -> np.ndarray | float:
        s = np.asarray(s, dtype=np.float64)
        return self.c0 + self.c1 * s + self.c2 * s * s


@dataclass(frozen=True)
class CostModel:
    """Combined Group-FEL cost model.

    Attributes
    ----------
    training:
        H(n) — one full pass over n local samples.
    group_op:
        O(s) — per-client group-operation overhead for a group of size s.
    name:
        Calibration label (e.g. ``cifar/secagg``).
    """

    training: LinearCost
    group_op: QuadraticCost
    name: str = "unit"

    def client_round_cost(self, group_size: int, n_i: int, local_rounds: int) -> float:
        """One client's cost for one group round: O_g(|g|) + E·H_i(n_i)."""
        return float(self.group_op(group_size) + local_rounds * self.training(n_i))

    def group_round_cost(
        self, group_size: int, client_sizes: np.ndarray, local_rounds: int
    ) -> float:
        """All clients of one group, one group round: Σ_i (O_g + E·H_i)."""
        client_sizes = np.asarray(client_sizes, dtype=np.float64)
        return float(
            group_size * self.group_op(group_size)
            + local_rounds * self.training(client_sizes).sum()
        )

    def global_round_cost(
        self,
        group_sizes: list[int] | np.ndarray,
        client_sizes_per_group: list[np.ndarray],
        group_rounds: int,
        local_rounds: int,
    ) -> float:
        """Eq. (5) inner sum for one global round t over the sampled S_t."""
        total = 0.0
        for size, sizes in zip(group_sizes, client_sizes_per_group):
            total += self.group_round_cost(int(size), sizes, local_rounds)
        return group_rounds * total

    def global_round_cost_columnar(
        self,
        group_sizes: np.ndarray,
        group_samples: np.ndarray,
        group_rounds: int,
        local_rounds: int,
    ) -> float:
        """Eq. (5) for one round from per-group aggregates alone.

        H is linear, so Σ_{i∈g} H(n_i) = |g|·c0 + c1·n_g — the per-client
        sum collapses onto (|g|, n_g), which a columnar store already holds
        as arrays. Algebraically identical to :meth:`global_round_cost`
        (float summation order differs, so compare with a tolerance); no
        per-client array is ever built, which is what lets the ledger
        charge 10⁶-client populations.
        """
        sizes = np.asarray(group_sizes, dtype=np.float64)
        n_g = np.asarray(group_samples, dtype=np.float64)
        if sizes.shape != n_g.shape:
            raise ValueError(
                f"group_sizes {sizes.shape} and group_samples {n_g.shape} differ"
            )
        per_group = sizes * self.group_op(sizes) + local_rounds * (
            self.training.c0 * sizes + self.training.c1 * n_g
        )
        return float(group_rounds * per_group.sum())
