"""Per-client fairness metrics (the conclusion's future-work direction).

The paper closes by noting CoV-prioritized sampling concentrates training
on well-balanced groups and leaves "maintaining client/data fairness" to
future work. These metrics quantify that concern: per-client accuracy of
the global model, its dispersion, and participation counts per client
under a sampling scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.client_data import ClientDataset, FederatedDataset
from repro.grouping.base import Group
from repro.nn.model import Model

__all__ = ["FairnessReport", "per_client_accuracy", "participation_counts"]


@dataclass
class FairnessReport:
    """Distributional summary of per-client accuracies."""

    accuracies: np.ndarray
    mean: float
    std: float
    min: float
    p10: float

    @property
    def cov(self) -> float:
        """Coefficient of variation of client accuracies (lower = fairer)."""
        return self.std / self.mean if self.mean > 0 else float("inf")


def per_client_accuracy(
    model: Model, clients: list[ClientDataset], params: np.ndarray | None = None
) -> FairnessReport:
    """Evaluate the global model on every client's local data."""
    if params is not None:
        model.set_params(params)
    accs = np.empty(len(clients))
    for k, c in enumerate(clients):
        _, accs[k] = model.evaluate(c.x, c.y)
    return FairnessReport(
        accuracies=accs,
        mean=float(accs.mean()),
        std=float(accs.std()),
        min=float(accs.min()),
        p10=float(np.percentile(accs, 10)),
    )


def participation_counts(
    sampled_rounds: list[list[Group]], num_clients: int
) -> np.ndarray:
    """How many rounds each client participated in.

    Feed it the per-round S_t lists to expose the coverage skew that CoV
    sampling introduces (and that regrouping mitigates).
    """
    counts = np.zeros(num_clients, dtype=np.int64)
    for groups in sampled_rounds:
        for g in groups:
            counts[g.members] += 1
    return counts
