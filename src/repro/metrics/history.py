"""Training history: the accuracy-vs-round and accuracy-vs-cost curves.

The paper's headline measurement is accuracy as a function of *total
learning cost* (Eq. 5), not rounds (§2.3); the history records both axes
for every evaluation point so any figure can be regenerated.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

__all__ = ["TrainingHistory", "accuracy_at_cost", "cost_to_accuracy"]


@dataclass
class TrainingHistory:
    """Evaluation checkpoints of one training run."""

    label: str = ""
    rounds: list[int] = field(default_factory=list)
    costs: list[float] = field(default_factory=list)
    test_acc: list[float] = field(default_factory=list)
    test_loss: list[float] = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    def record(self, round_idx: int, cost: float, acc: float, loss: float) -> None:
        """Append one evaluation checkpoint."""
        self.rounds.append(int(round_idx))
        self.costs.append(float(cost))
        self.test_acc.append(float(acc))
        self.test_loss.append(float(loss))

    def __len__(self) -> int:
        return len(self.rounds)

    def state_dict(self) -> dict:
        """Plain-container snapshot of every curve, for checkpointing."""
        return {
            "label": self.label,
            "rounds": list(self.rounds),
            "costs": list(self.costs),
            "test_acc": list(self.test_acc),
            "test_loss": list(self.test_loss),
            "extra": copy.deepcopy(self.extra),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        self.label = state["label"]
        self.rounds = [int(r) for r in state["rounds"]]
        self.costs = [float(c) for c in state["costs"]]
        self.test_acc = [float(a) for a in state["test_acc"]]
        self.test_loss = [float(l) for l in state["test_loss"]]
        self.extra = copy.deepcopy(state["extra"])

    @property
    def final_accuracy(self) -> float:
        """Accuracy at the last checkpoint (0 if none recorded)."""
        return self.test_acc[-1] if self.test_acc else 0.0

    @property
    def best_accuracy(self) -> float:
        return max(self.test_acc) if self.test_acc else 0.0

    @property
    def total_cost(self) -> float:
        return self.costs[-1] if self.costs else 0.0

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Column arrays for plotting/reporting."""
        return {
            "round": np.asarray(self.rounds),
            "cost": np.asarray(self.costs),
            "test_acc": np.asarray(self.test_acc),
            "test_loss": np.asarray(self.test_loss),
        }

    def accuracy_at_cost(self, budget: float) -> float:
        """Best accuracy achieved within a cost budget."""
        return accuracy_at_cost(np.asarray(self.costs), np.asarray(self.test_acc), budget)

    def cost_to_accuracy(self, target: float) -> float:
        """Cost at which accuracy first reached ``target`` (inf if never)."""
        return cost_to_accuracy(np.asarray(self.costs), np.asarray(self.test_acc), target)


def accuracy_at_cost(costs: np.ndarray, accs: np.ndarray, budget: float) -> float:
    """Best accuracy among checkpoints with cost ≤ budget (0 if none)."""
    costs = np.asarray(costs, dtype=np.float64)
    accs = np.asarray(accs, dtype=np.float64)
    mask = costs <= budget
    return float(accs[mask].max()) if mask.any() else 0.0


def cost_to_accuracy(costs: np.ndarray, accs: np.ndarray, target: float) -> float:
    """First cost at which accuracy ≥ target (inf if never reached)."""
    costs = np.asarray(costs, dtype=np.float64)
    accs = np.asarray(accs, dtype=np.float64)
    hits = np.flatnonzero(accs >= target)
    return float(costs[hits[0]]) if hits.size else float("inf")
