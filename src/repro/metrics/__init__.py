"""Evaluation metrics and training-history containers."""

from repro.metrics.fairness import (
    FairnessReport,
    participation_counts,
    per_client_accuracy,
)
from repro.metrics.history import TrainingHistory, accuracy_at_cost, cost_to_accuracy

__all__ = [
    "TrainingHistory",
    "accuracy_at_cost",
    "cost_to_accuracy",
    "FairnessReport",
    "per_client_accuracy",
    "participation_counts",
]
