"""Group formation side by side: RG vs CDG vs KLDG vs CoVG.

Builds a skewed federated population, runs all four grouping algorithms,
and prints each one's group-size distribution, average CoV, runtime, and
overhead proxy (a mini Figs. 5+6), then evaluates Theorem 1's group
constants (γ, Γ) and an empirical ζ_g for each grouping.

    python examples/grouping_playground.py
"""

import time

import numpy as np

from repro.data import FederatedDataset, SyntheticImage
from repro.grouping import (
    CDGGrouping,
    CoVGrouping,
    KLDGrouping,
    RandomGrouping,
    evaluate_grouping,
    group_clients_per_edge,
)
from repro.nn import make_mlp
from repro.theory import estimate_group_heterogeneity, gamma_big, gamma_of_group


def main() -> None:
    data = SyntheticImage(noise_std=4.0, seed=0)
    train, test = data.train_test(20_000, 1_000)
    fed = FederatedDataset.from_dataset(
        train, test, num_clients=90, alpha=0.1, size_low=20, size_high=100, rng=3
    )
    edges = [np.arange(j * 30, (j + 1) * 30) for j in range(3)]
    client_sizes = fed.client_sizes()

    model = make_mlp(int(np.prod(train.feature_shape)), 10, hidden=(32,), seed=0)
    params = model.get_params()

    print(f"{'algorithm':10s} {'groups':>6s} {'sizes':>14s} {'avgCoV':>7s} "
          f"{'overhead':>9s} {'time(s)':>8s} {'Γ':>6s} {'max γ':>6s} {'ζ_g²':>8s}")
    for name, grouper in [
        ("RG", RandomGrouping(group_size=5)),
        ("CDG", CDGGrouping(group_size=5)),
        ("KLDG", KLDGrouping(min_group_size=5)),
        ("CoVG", CoVGrouping(min_group_size=5, max_cov=0.5)),
    ]:
        t0 = time.perf_counter()
        groups = group_clients_per_edge(grouper, fed.L, edges, rng=1)
        dt = time.perf_counter() - t0
        rep = evaluate_grouping(groups, runtime_s=dt)
        zeta_g2, _ = estimate_group_heterogeneity(model, params, fed.clients, groups)
        gam = max(gamma_of_group(g, client_sizes) for g in groups)
        print(f"{name:10s} {rep.num_groups:6d} "
              f"[{rep.size_min},{rep.size_max}]({rep.size_avg:5.2f}) "
              f"{rep.avg_cov:7.3f} {rep.avg_overhead:9.1f} {dt:8.3f} "
              f"{gamma_big(groups):6.3f} {gam:6.3f} {zeta_g2:8.4f}")

    print("\nCoVG should show the lowest avg CoV — and the lowest empirical "
          "group heterogeneity ζ_g², the constant Theorem 1 says governs "
          "convergence.")


if __name__ == "__main__":
    main()
