"""Quickstart: train Group-FEL end to end on a synthetic image task.

Runs the full pipeline in under a minute: synthesize a 10-class dataset,
partition it over 30 clients with Dirichlet label skew, form CoV groups at
two edge servers, train with ESRCoV group sampling, and report accuracy
versus the Eq. (5) learning cost.

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    CoVGrouping,
    FederatedDataset,
    GroupFELTrainer,
    SyntheticImage,
    TrainerConfig,
    group_clients_per_edge,
    make_mlp,
    paper_cost_model,
)

NUM_CLIENTS = 30
NUM_EDGES = 2
ALPHA = 0.1  # Dirichlet skew: smaller = more non-IID


def main() -> None:
    # 1. Data: synthetic CIFAR-10 stand-in, partitioned non-IID.
    data = SyntheticImage(noise_std=4.0, seed=0)
    train, test = data.train_test(n_train=8_000, n_test=1_000)
    fed = FederatedDataset.from_dataset(
        train, test, num_clients=NUM_CLIENTS, alpha=ALPHA,
        size_low=20, size_high=80, rng=42,
    )
    print(f"clients: {fed.num_clients}, samples: {fed.total_samples}, "
          f"classes: {fed.num_classes}")

    # 2. Group formation at each edge server (Algorithm 2).
    per_edge = NUM_CLIENTS // NUM_EDGES
    edges = [np.arange(j * per_edge, (j + 1) * per_edge) for j in range(NUM_EDGES)]
    grouper = CoVGrouping(min_group_size=3, max_cov=0.5)
    groups = group_clients_per_edge(grouper, fed.L, edges, rng=1)
    print(f"groups: {len(groups)}; sizes: {[g.size for g in groups]}")
    print(f"group CoVs: {[round(g.cov, 2) for g in groups]}")

    # 3. Train with CoV-prioritized group sampling (Algorithm 1).
    in_features = int(np.prod(train.feature_shape))
    trainer = GroupFELTrainer(
        model_fn=lambda: make_mlp(in_features, 10, hidden=(64,), seed=7),
        fed=fed,
        groups=groups,
        config=TrainerConfig(
            group_rounds=3,       # K
            local_rounds=2,       # E
            num_sampled=3,        # S = |S_t|
            lr=0.08,
            momentum=0.9,
            sampling_method="esrcov",
            max_rounds=15,
            eval_every=3,
            seed=0,
        ),
        cost_model=paper_cost_model("cifar", "secagg"),
    )
    history = trainer.run()

    # 4. Report accuracy vs cost (the paper's headline measurement).
    print("\nround   cost        accuracy")
    for r, c, a in zip(history.rounds, history.costs, history.test_acc):
        print(f"{r:5d}   {c:9.0f}   {a:.3f}")
    print(f"\nfinal accuracy: {history.final_accuracy:.3f} "
          f"at total cost {history.total_cost:.0f}")


if __name__ == "__main__":
    main()
