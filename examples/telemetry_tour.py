"""Telemetry tour: trace, measure, and profile a Group-FEL run.

Trains a small federation twice. The first run passes a ``Telemetry``
facade straight to the trainer and inspects the span tree (``round >
group > client_update / secagg``), the run counters (bytes aggregated,
Γ_p, per-round cost), and the exports (JSONL / CSV / Prometheus text).
The second run shows the ambient style — ``with activated(tel):`` — that
the CLI's ``--telemetry`` flag uses to reach trainers buried inside
figure generators.

    python examples/telemetry_tour.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    CoVGrouping,
    FederatedDataset,
    GroupFELTrainer,
    SyntheticImage,
    TelemetryCallback,
    Telemetry,
    TrainerConfig,
    activated,
    group_clients_per_edge,
    make_mlp,
    paper_cost_model,
)
from repro.telemetry import load_jsonl, parse_prometheus

NUM_CLIENTS = 24
NUM_EDGES = 2


def build_trainer(fed, groups, telemetry=None, callbacks=None):
    in_features = int(np.prod(fed.clients[0].x.shape[1:]))
    return GroupFELTrainer(
        model_fn=lambda: make_mlp(in_features, 10, hidden=(32,), seed=7),
        fed=fed,
        groups=groups,
        config=TrainerConfig(
            group_rounds=2, local_rounds=1, num_sampled=3,
            lr=0.08, momentum=0.9, sampling_method="esrcov",
            use_secure_aggregation=True,  # real masked aggregation => secagg spans
            max_rounds=4, seed=0,
        ),
        cost_model=paper_cost_model("cifar", "secagg"),
        telemetry=telemetry,
        callbacks=callbacks,
    )


def main() -> None:
    # Setup: small non-IID federation, CoV groups at two edges.
    data = SyntheticImage(noise_std=4.0, seed=0)
    train, test = data.train_test(n_train=4_000, n_test=500)
    fed = FederatedDataset.from_dataset(
        train, test, num_clients=NUM_CLIENTS, alpha=0.1,
        size_low=20, size_high=60, rng=42,
    )
    per_edge = NUM_CLIENTS // NUM_EDGES
    edges = [np.arange(j * per_edge, (j + 1) * per_edge) for j in range(NUM_EDGES)]
    groups = group_clients_per_edge(CoVGrouping(3, 0.5), fed.L, edges, rng=1)

    # ---- 1. Explicit style: hand the facade to the trainer. ----------------
    tel = Telemetry(label="tour")
    trainer = build_trainer(fed, groups, telemetry=tel)
    trainer.run()

    print("=== span tree (round 0) ===")
    round0 = next(s for s in tel.tracer.spans() if s.name == "round")
    for child in tel.tracer.children(round0.span_id):
        print(f"  {child.name:16s} {child.duration * 1e3:8.2f} ms  {child.attrs}")
        for grandchild in tel.tracer.children(child.span_id)[:3]:
            print(f"      {grandchild.name:14s} {grandchild.duration * 1e3:6.2f} ms")

    print("\n=== where the wall-clock went ===")
    for name, (count, total) in sorted(
        tel.tracer.totals_by_name().items(), key=lambda kv: -kv[1][1]
    ):
        print(f"  {name:16s} x{count:<4d} {total * 1e3:9.2f} ms")

    print("\n=== run counters ===")
    for name, value in sorted(tel.metrics.counters().items()):
        print(f"  {name:28s} {value:14.0f}")
    print(f"  gamma_p (gauge)              {tel.metrics.gauges()['gamma_p']:14.3f}")
    cost = tel.metrics.histograms()["round_cost"]
    print(f"  round_cost (histogram)       mean {cost.mean:.0f}  "
          f"p100 {cost.percentile(100):.0f}")

    # ---- 2. Exports: JSONL (lossless), CSV, Prometheus text. ---------------
    with tempfile.TemporaryDirectory() as tmp:
        jsonl = Path(tmp) / "trace.jsonl"
        n = tel.to_jsonl(str(jsonl))
        records = load_jsonl(str(jsonl))
        print(f"\nJSONL: {n} records "
              f"({len(records['span'])} spans, {len(records['counter'])} counters)")
        prom = tel.to_prometheus()
        sampled = parse_prometheus(prom)["repro_groups_sampled"]
        print(f"Prometheus: repro_groups_sampled = {sampled:.0f}")

    # ---- 3. Ambient style + callback-driven summary. -----------------------
    # `activated` installs the instance process-wide; any trainer built
    # inside picks it up — this is what the CLI's --telemetry flag does.
    ambient = Telemetry(label="ambient")
    with activated(ambient):
        trainer = build_trainer(
            fed, groups,
            callbacks=[TelemetryCallback(summary_printer=None)],
        )
        trainer.run()
    events = [e.name for e in ambient.events.events()]
    print(f"\nambient run lifecycle events: {events}")
    print("\n" + ambient.summary())


if __name__ == "__main__":
    main()
