"""Compare Group-FEL against the paper's baselines (a mini Fig. 9/10).

Runs FedAvg, FedProx, SCAFFOLD, OUEA, SHARE, FedCLAR, and Group-FEL over
the same federated image workload and prints accuracy at matched cost
budgets — the comparison of §7.3, scaled to run in a couple of minutes.

    python examples/compare_methods.py
"""

from repro.experiments import make_image_workload, run_methods
from repro.experiments.figures import ALL_METHODS


def main() -> None:
    budgets = (5e4, 1e5, 2e5)
    histories = {}
    for name in ALL_METHODS:
        # Fresh workload per method: same seed -> identical data/partition.
        workload = make_image_workload("fast", alpha=0.1, seed=0)
        histories.update(run_methods([name], workload))
        h = histories[name]
        print(f"{name:10s} rounds={h.rounds[-1] if h.rounds else 0:3d} "
              f"final_acc={h.final_accuracy:.3f} total_cost={h.total_cost:.0f}")

    print("\naccuracy at matched budgets")
    header = "method".ljust(10) + "".join(f"  @{b:.0e}" for b in budgets)
    print(header)
    for name, h in histories.items():
        row = name.ljust(10) + "".join(
            f"  {h.accuracy_at_cost(b):5.3f}" for b in budgets
        )
        print(row)

    best = max(histories, key=lambda n: histories[n].accuracy_at_cost(budgets[-1]))
    print(f"\nbest at {budgets[-1]:.0e}: {best}")


if __name__ == "__main__":
    main()
