"""Fairness under CoV sampling, and regrouping as the remedy (§6.1).

CoV-prioritized sampling concentrates training on the best-balanced
groups; the paper flags client/data fairness as future work and suggests
periodic regrouping to fold the ignored clients back in. This example
quantifies both: client participation coverage and per-client accuracy
dispersion with and without regrouping.

    python examples/fairness_and_regrouping.py
"""

import numpy as np

from repro import (
    CoVGrouping,
    FederatedDataset,
    GroupFELTrainer,
    SyntheticImage,
    TrainerConfig,
    group_clients_per_edge,
    make_mlp,
    paper_cost_model,
    participation_counts,
    per_client_accuracy,
)


def run(regroup_every):
    data = SyntheticImage(noise_std=4.0, seed=0)
    train, test = data.train_test(10_000, 1_000)
    fed = FederatedDataset.from_dataset(
        train, test, num_clients=40, alpha=0.1, size_low=20, size_high=80, rng=3
    )
    edges = [np.arange(0, 20), np.arange(20, 40)]
    grouper = CoVGrouping(min_group_size=4, max_cov=0.5)
    groups = group_clients_per_edge(grouper, fed.L, edges, rng=1)

    trainer = GroupFELTrainer(
        model_fn=lambda: make_mlp(192, 10, hidden=(32,), seed=5),
        fed=fed,
        groups=groups,
        config=TrainerConfig(
            group_rounds=2, local_rounds=2, num_sampled=3, lr=0.08, momentum=0.9,
            sampling_method="esrcov", max_rounds=20, eval_every=5,
            regroup_every=regroup_every, seed=0,
        ),
        cost_model=paper_cost_model("cifar"),
        grouper=grouper if regroup_every else None,
        edge_assignment=edges if regroup_every else None,
    )
    history = trainer.run()
    counts = participation_counts(trainer.sampled_history, fed.num_clients)
    report = per_client_accuracy(trainer.model, fed.clients, trainer.global_params)
    return history, report, counts


def main() -> None:
    print(f"{'setting':>12s} {'final_acc':>9s} {'coverage':>9s} "
          f"{'acc mean':>8s} {'std':>6s} {'min':>6s} {'CoV':>6s}")
    for label, regroup in [("static", None), ("regroup@5", 5)]:
        history, report, counts = run(regroup)
        coverage = int((counts > 0).sum())
        print(f"{label:>12s} {history.final_accuracy:9.3f} {coverage:6d}/40 "
              f"{report.mean:8.3f} {report.std:6.3f} {report.min:6.3f} "
              f"{report.cov:6.3f}")
    print("\nHigher coverage and lower client-accuracy CoV = fairer training. "
          "Regrouping rotates the prioritized groups across the population "
          "(§6.1's suggestion — the random first-client pick makes each "
          "regrouping differ).")


if __name__ == "__main__":
    main()
