"""Crash-safe checkpoint/resume: kill a faulted run mid-flight, resume it,
and verify the result is bit-identical to never having crashed.

Three legs over the same workload and seed:

1. **Golden** — train 6 rounds straight through, no checkpointing.
2. **Crashed** — train with auto-checkpointing and simulate a hard crash
   after round 3 (an exception out of the training loop; the round-3
   checkpoint is already on disk at that point).
3. **Resumed** — build a fresh trainer from the same inputs, restore the
   latest checkpoint, and finish the remaining rounds.

The script asserts that the resumed run's accuracy/cost curves, final
model parameters, and fault-replay signature all match the golden run
exactly, and exits nonzero on any mismatch — CI runs it as a smoke test.

    python examples/resume_run.py [--backend serial|thread|process]
"""

import argparse
import functools
import hashlib
import sys
import tempfile

import numpy as np

from repro import (
    CoVGrouping,
    FederatedDataset,
    GroupFELTrainer,
    SyntheticImage,
    TrainerConfig,
    group_clients_per_edge,
    make_mlp,
    paper_cost_model,
)
from repro.core.callbacks import Callback

NUM_CLIENTS = 24
ROUNDS = 6
CRASH_AFTER = 3
FAULTS = "dropout:0.3@after,loss:0.2,straggler:0.3:0.5"

# Module-level so the process backend can pickle it.
model_fn = functools.partial(make_mlp, 192, 10, seed=0)


class CrashAfter(Callback):
    """Simulate a hard crash right after a round's checkpoint is saved."""

    def __init__(self, round_idx: int):
        self.round_idx = round_idx

    def on_round_end(self, trainer, round_idx: int) -> bool:
        if round_idx >= self.round_idx:
            raise KeyboardInterrupt(f"simulated crash after round {round_idx}")
        return False


def make_workload():
    data = SyntheticImage(noise_std=2.0, seed=0)
    train, test = data.train_test(4_000, 500)
    fed = FederatedDataset.from_dataset(
        train, test, num_clients=NUM_CLIENTS, alpha=0.1, rng=11
    )
    edges = [np.arange(0, 12), np.arange(12, 24)]
    groups = group_clients_per_edge(CoVGrouping(3, 1.0), fed.L, edges, rng=0)
    return fed, groups


def make_trainer(fed, groups, backend, checkpoint_dir=None):
    cfg = TrainerConfig(
        max_rounds=ROUNDS, group_rounds=1, local_rounds=1, num_sampled=2,
        momentum=0.9, seed=7, parallel_backend=backend, faults=FAULTS,
    )
    return GroupFELTrainer(
        model_fn, fed, groups, cfg, paper_cost_model(),
        label="resume-demo", checkpoint_dir=checkpoint_dir,
    )


def fingerprint(trainer, history):
    digest = hashlib.sha256(
        np.ascontiguousarray(trainer.global_params).tobytes()
    ).hexdigest()
    return {
        "rounds": history.rounds,
        "costs": history.costs,
        "accuracy": history.test_acc,
        "params_sha256": digest,
        "fault_signature": trainer.fault_trace.signature(),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", default="serial",
                        choices=["serial", "thread", "process"])
    args = parser.parse_args()

    fed, groups = make_workload()

    print(f"[1/3] golden: {ROUNDS} uninterrupted rounds ({args.backend})")
    with make_trainer(fed, groups, args.backend) as golden_trainer:
        golden = fingerprint(golden_trainer, golden_trainer.run())

    with tempfile.TemporaryDirectory(prefix="repro-ckpt-") as ckdir:
        print(f"[2/3] crashed: checkpointing to {ckdir}, killing after "
              f"round {CRASH_AFTER}")
        crashed = make_trainer(fed, groups, args.backend, checkpoint_dir=ckdir)
        crashed.callbacks.append(CrashAfter(CRASH_AFTER))
        try:
            crashed.run()
        except KeyboardInterrupt as exc:
            print(f"        crash: {exc}")
        finally:
            crashed.close()

        print("[3/3] resumed: fresh trainer + latest checkpoint")
        with make_trainer(fed, groups, args.backend) as resumed_trainer:
            resumed_trainer.load_checkpoint(ckdir)  # directory → latest
            print(f"        restored at round {resumed_trainer.round_idx}")
            resumed = fingerprint(resumed_trainer, resumed_trainer.run())

    mismatches = [k for k in golden if golden[k] != resumed[k]]
    acc = ", ".join(f"{a:.3f}" for a in resumed["accuracy"])
    print(f"\nresumed accuracy curve : [{acc}]")
    print(f"params sha256          : {resumed['params_sha256'][:16]}…")
    print(f"fault signature        : {resumed['fault_signature'][:16]}…")
    if mismatches:
        print(f"\nFAIL: resumed run diverged from golden in {mismatches}")
        return 1
    print("\nOK: interrupted-then-resumed run is bit-identical to the "
          "uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
