"""Dynamic population: churn + label drift with online group maintenance.

Trains one Group-FEL workload over a client population that evolves while
training runs: 80% of the pool is active at round 0, dormant clients join
at ~0.6/round, active clients leave with 3% chance per round, and clients
inside correlated drift episodes relabel 30% of their samples each round.
The group partition is maintained *online* — single-client moment updates
plus a MaxCoV watchdog — instead of re-forming from scratch.

The run prints the population timeline, the migration/regroup telemetry,
and then proves the two replay contracts:

1. re-running with the same population seed reproduces the exact same
   population trace signature (deterministic replay), and
2. checkpointing mid-churn and resuming in a fresh trainer over freshly
   built data reproduces the uninterrupted run bit for bit.

    python examples/dynamic_population.py
"""

import hashlib
import tempfile

import numpy as np

from repro import (
    CoVGrouping,
    FederatedDataset,
    GroupFELTrainer,
    PopulationModel,
    SyntheticImage,
    Telemetry,
    TrainerConfig,
    activated,
    group_clients_per_edge,
    make_mlp,
    paper_cost_model,
)

NUM_CLIENTS = 24
NUM_EDGES = 2
ROUNDS = 10
SPEC = "start:0.8,join:0.6,leave:0.03,drift:0.2:0.3:0.85@corr"


def build_trainer(checkpoint_dir: str | None = None) -> GroupFELTrainer:
    # Label drift relabels client samples in place, so every run (and the
    # resumed run in particular) starts from freshly built, pristine data.
    data = SyntheticImage(noise_std=4.0, seed=0)
    train, test = data.train_test(n_train=6_000, n_test=800)
    fed = FederatedDataset.from_dataset(
        train, test, num_clients=NUM_CLIENTS, alpha=0.1,
        size_low=20, size_high=80, rng=42,
    )
    per_edge = NUM_CLIENTS // NUM_EDGES
    edges = [np.arange(j * per_edge, (j + 1) * per_edge) for j in range(NUM_EDGES)]
    grouper = CoVGrouping(3, 0.5)
    groups = group_clients_per_edge(grouper, fed.L, edges, rng=1)

    in_features = int(np.prod(fed.test.feature_shape))
    return GroupFELTrainer(
        model_fn=lambda: make_mlp(in_features, 10, hidden=(64,), seed=7),
        fed=fed,
        groups=groups,
        config=TrainerConfig(
            group_rounds=2, local_rounds=2, num_sampled=3,
            lr=0.08, momentum=0.9, max_rounds=ROUNDS, eval_every=5,
            seed=0,
            population=PopulationModel.from_spec(SPEC, seed=9),
        ),
        cost_model=paper_cost_model(),
        grouper=grouper,              # formation context: the maintainer
        edge_assignment=edges,        # re-groups within these edges
        checkpoint_dir=checkpoint_dir,
    )


def model_hash(trainer: GroupFELTrainer) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(trainer.global_params).tobytes()
    ).hexdigest()


def main() -> None:
    tel = Telemetry(label="dynamic-population")
    with activated(tel):
        trainer = build_trainer()
        history = trainer.run()

    print(f"population spec: {SPEC}")
    print(f"final accuracy {history.final_accuracy:.3f} "
          f"at cost {history.total_cost:.0f}")
    active = history.extra["population_active"]
    print(f"active clients per round: {active}")
    print(f"population events: {dict(trainer.population_trace.counts())}")

    counters = tel.metrics.snapshot()["counters"]
    maintained = {
        k.split(".", 1)[1]: int(v)
        for k, v in counters.items()
        if k.startswith("population.")
    }
    print(f"maintenance telemetry: {maintained}")
    signature = trainer.population_trace.signature()
    print(f"replay signature: {signature[:16]}…")
    final_hash = model_hash(trainer)

    # Contract 1 — deterministic replay: same seeds, same population, same
    # model, on any backend.
    replay = build_trainer()
    replay.run()
    assert replay.population_trace.signature() == signature, "replay diverged"
    assert model_hash(replay) == final_hash, "model diverged"
    print("replay check: second run is bit-identical ✓")

    # Contract 2 — resume mid-churn: checkpoint halfway, restore into a
    # fresh trainer over pristine data (drift is re-derived and re-applied
    # from the recorded events), continue — bit-identical to the
    # uninterrupted run.
    with tempfile.TemporaryDirectory() as ckpt_dir:
        interrupted = build_trainer(checkpoint_dir=ckpt_dir)
        interrupted.run(max_rounds=ROUNDS // 2)   # "crash" at the halfway point
        resumed = build_trainer()
        resumed.load_checkpoint(ckpt_dir)
        resumed.run(max_rounds=ROUNDS)
    assert resumed.population_trace.signature() == signature, "resume diverged"
    assert model_hash(resumed) == final_hash, "resumed model diverged"
    print("resume check: interrupted + resumed run is bit-identical ✓")


if __name__ == "__main__":
    main()
