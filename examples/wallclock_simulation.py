"""Wall-clock simulation: stragglers and group-size effects on latency.

Eq. (5) charges resource cost; this example asks how long rounds *take*
on the cloud-edge-client hierarchy: large groups serialize more uploads at
the edge, and one slow device (compute_factor 10×) straggles its whole
group. SCAFFOLD's 2× payload shows up as communication time.

    python examples/wallclock_simulation.py
"""

import numpy as np

from repro import (
    CommModel,
    FederatedDataset,
    HierarchicalTopology,
    RandomGrouping,
    SyntheticImage,
    group_clients_per_edge,
    paper_cost_model,
)
from repro.costs.wallclock import WallClockSimulator


def main() -> None:
    data = SyntheticImage(seed=0)
    train, test = data.train_test(8_000, 500)
    fed = FederatedDataset.from_dataset(
        train, test, num_clients=24, alpha=0.5, size_low=20, size_high=80, rng=1
    )
    topo = HierarchicalTopology(num_clients=24, num_edges=2)
    sizes = fed.client_sizes()
    cost_model = paper_cost_model("sc")  # seconds on the reference device

    print("=== group size vs round latency ===")
    print(f"{'GS':>4s} {'compute(s)':>11s} {'comm(s)':>9s} {'total(s)':>9s}")
    for gs in (3, 6, 12):
        groups = group_clients_per_edge(
            RandomGrouping(group_size=gs), fed.L, topo.edge_assignment(), rng=0
        )
        comm = CommModel.for_model(topo, num_params=50_000)
        sim = WallClockSimulator(topo, cost_model, comm)
        t = sim.round_timing(groups[:2], sizes, group_rounds=3, local_rounds=2)
        print(f"{gs:4d} {t.compute_s:11.1f} {t.comm_s:9.2f} {t.total_s:9.1f}")

    print("\n=== a straggler device (10x slower) ===")
    groups = group_clients_per_edge(
        RandomGrouping(group_size=6), fed.L, topo.edge_assignment(), rng=0
    )
    comm = CommModel.for_model(topo, num_params=50_000)
    sim = WallClockSimulator(topo, cost_model, comm)
    base = sim.round_timing(groups[:2], sizes, 3, 2)
    straggler = int(groups[0].members[0])
    topo.clients[straggler].compute_factor = 10.0
    slow = sim.round_timing(groups[:2], sizes, 3, 2)
    print(f"baseline: {base.total_s:8.1f}s (bottleneck group {base.bottleneck_group})")
    print(f"straggler: {slow.total_s:8.1f}s (bottleneck group {slow.bottleneck_group})")
    topo.clients[straggler].compute_factor = 1.0

    print("\n=== payload factor (SCAFFOLD ships 2x) ===")
    for pf, name in [(1.0, "FedAvg"), (2.0, "SCAFFOLD")]:
        comm = CommModel.for_model(topo, num_params=50_000, payload_factor=pf)
        sim = WallClockSimulator(topo, cost_model, comm)
        t = sim.round_timing(groups[:2], sizes, 3, 2)
        traffic = comm.round_traffic(groups[:2], 3)
        print(f"{name:9s} comm {t.comm_s:7.2f}s  traffic {traffic.total_bytes/1e6:7.1f} MB")


if __name__ == "__main__":
    main()
