"""Scenario suite smoke: clustered-FL baselines + continual TTA workload.

Runs the clustered-FL baselines (IFCA, FedGroup) next to Group-FEL and
FedAvg over the continual test-time adaptation workload — every client's
features stream through a seeded corruption-severity schedule while
training runs — and proves the suite's two guarantees:

1. the corruption stream replays bit-identically (same trace signature and
   accuracy curve on a re-run), and
2. ``run_methods`` under a data-mutating population is independent of
   method order (pristine shards are restored between methods).

Writes the accuracy-vs-cost curves plus the replay signatures to a JSON
artifact (CI uploads it from the scenario-smoke job).

    python examples/scenario_suite.py [out.json]
"""

import json
import sys
from dataclasses import replace

from repro.baselines import build_method
from repro.experiments import SCALES, make_tta_workload, run_methods

METHODS = ["fedavg", "group_fel", "ifca", "fedgroup"]
ROUNDS = 4


def tiny_tta_workload():
    # Small enough for CI, big enough that every method trains groups.
    scale = replace(
        SCALES["fast"],
        num_clients=18, num_edges=2, size_low=15, size_high=40,
        train_samples=2_000, test_samples=300, max_rounds=ROUNDS,
        num_sampled=2, min_group_size=3, eval_every=1, cost_budget=None,
    )
    return make_tta_workload(scale, alpha=0.1, seed=0)


def run_suite(methods):
    wl = tiny_tta_workload()
    histories = run_methods(methods, wl)
    return {
        name: {
            "round": list(h.rounds),
            "cost": [float(c) for c in h.costs],
            "accuracy": [float(a) for a in h.test_acc],
            "sampling": h.extra["sampling"],
        }
        for name, h in histories.items()
    }


def replay_signature():
    wl = tiny_tta_workload()
    trainer = build_method(
        "ifca", wl.model_fn, wl.fed, wl.edge_assignment, wl.trainer_config,
        cost_model=wl.cost_model, group_size_knob=3, rng=0,
    )
    try:
        history = trainer.run()
        return trainer.population_trace.signature(), history.final_accuracy
    finally:
        trainer.close()


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "scenario_suite.json"

    print(f"scenario suite over TTA workload, methods: {METHODS}")
    series = run_suite(METHODS)
    for name, s in series.items():
        print(f"  {name:10s} final acc {s['accuracy'][-1]:.3f} "
              f"at cost {s['cost'][-1]:.0f}")

    # Guarantee 1 — the corruption stream replays bit-identically.
    sig1, acc1 = replay_signature()
    sig2, acc2 = replay_signature()
    assert sig1 == sig2, "corruption replay diverged"
    assert acc1 == acc2, "accuracy diverged across replays"
    print(f"replay check: signature {sig1[:16]}… reproduced ✓")

    # Guarantee 2 — sweep results independent of method order.
    reversed_series = run_suite(list(reversed(METHODS)))
    for name in METHODS:
        assert series[name]["accuracy"] == reversed_series[name]["accuracy"], (
            f"{name} diverged when the sweep order changed"
        )
    print("order check: reversed sweep is bit-identical per method ✓")

    artifact = {
        "workload": "cifar-tta",
        "methods": METHODS,
        "rounds": ROUNDS,
        "replay_signature": sig1,
        "series": series,
    }
    with open(out_path, "w") as f:
        json.dump(artifact, f, indent=1)
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
