"""Group operations in action: secure aggregation + backdoor defense.

Demonstrates why Group-FEL's cost model charges quadratic group overhead:
this script runs the *real* group operations — pairwise-masked secure
aggregation and the FLAME-style clustering defense — inside a training
round, shows the defense catching a label-flipping attacker, and times
both operations across group sizes to expose the s² scaling.

    python examples/secure_group_ops.py
"""

import time

import numpy as np

from repro.secure import BackdoorDetector, SecureAggregator


def demo_secagg() -> None:
    print("=== secure aggregation ===")
    rng = np.random.default_rng(0)
    group_size, dim = 6, 1000
    updates = rng.normal(size=(group_size, dim))

    agg = SecureAggregator()
    result = agg.aggregate(updates, round_id=0)
    true_sum = updates.sum(axis=0)
    err = np.abs(result.total - true_sum).max()
    print(f"group of {group_size}, dim {dim}")
    print(f"max error vs plain sum: {err:.2e} (fixed-point rounding only)")
    print(f"mask expansions: {result.mask_expansions} "
          f"(= |g|·(|g|−1) — the quadratic work)")

    # The server saw only masked vectors: none matches any raw update.
    masked = result.masked_inputs.view(np.int64).astype(np.float64) / agg.codec.scale
    leaked = min(
        np.abs(masked[i] - updates[j]).max()
        for i in range(group_size)
        for j in range(group_size)
    )
    print(f"closest masked-vs-raw distance: {leaked:.2e} (nothing leaked)\n")


def demo_backdoor() -> None:
    print("=== backdoor detection ===")
    rng = np.random.default_rng(1)
    dim = 500
    honest_direction = rng.normal(size=dim)
    honest = honest_direction + 0.2 * rng.normal(size=(9, dim))
    attackers = -3.0 * honest_direction + 0.2 * rng.normal(size=(2, dim))
    updates = np.vstack([honest, attackers])

    detector = BackdoorDetector(distance_threshold=0.5)
    report = detector.detect(updates, rng=0)
    print(f"clients: {updates.shape[0]} (last 2 are attackers)")
    print(f"flagged: {report.flagged.tolist()}")
    print(f"admitted: {report.admitted.tolist()}")
    print(f"clip norm (median of honest): {report.clip_norm:.2f}\n")


def demo_quadratic_scaling() -> None:
    print("=== quadratic group-size scaling (the paper's premise) ===")
    rng = np.random.default_rng(2)
    agg = SecureAggregator()
    print(f"{'|g|':>4s} {'secagg(s)':>10s} {'per-pair(ms)':>13s}")
    for s in (4, 8, 16, 32):
        vecs = rng.normal(size=(s, 2000))
        t0 = time.perf_counter()
        agg.aggregate(vecs, round_id=s)
        dt = time.perf_counter() - t0
        pairs = s * (s - 1)
        print(f"{s:4d} {dt:10.4f} {1e3 * dt / pairs:13.4f}")
    print("time per pair is ~constant -> total is Θ(|g|²)")


if __name__ == "__main__":
    demo_secagg()
    demo_backdoor()
    demo_quadratic_scaling()
