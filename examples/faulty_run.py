"""Fault injection: accuracy-vs-cost degradation under client dropout.

Trains the same Group-FEL workload three times — fault-free, with moderate
dropout, and with heavy dropout plus a lossy uplink — using the *same*
training seed throughout, so every difference between the curves is caused
by the injected faults alone. Dropouts strike *after* masking (the
Bonawitz case), so with secure aggregation on, every dropped upload forces
the Shamir mask-reconstruction path; the run prints how often that
happened, the fault mix, and the latency the faults injected.

    python examples/faulty_run.py
"""

import numpy as np

from repro import (
    CoVGrouping,
    FederatedDataset,
    GroupFELTrainer,
    SyntheticImage,
    Telemetry,
    TrainerConfig,
    activated,
    group_clients_per_edge,
    make_mlp,
    paper_cost_model,
)

NUM_CLIENTS = 30
NUM_EDGES = 2

#: label -> fault spec (None = the clean baseline)
SCENARIOS = {
    "clean": None,
    "dropout 20%": "dropout:0.2@after",
    "dropout 40% + lossy uplink": "dropout:0.4@after,loss:0.2,straggler:0.3:1.5",
}


def run_scenario(fed: FederatedDataset, faults: str | None):
    per_edge = NUM_CLIENTS // NUM_EDGES
    edges = [np.arange(j * per_edge, (j + 1) * per_edge) for j in range(NUM_EDGES)]
    groups = group_clients_per_edge(CoVGrouping(3, 0.5), fed.L, edges, rng=1)

    in_features = int(np.prod(fed.test.feature_shape))
    tel = Telemetry(label=faults or "clean")
    with activated(tel):
        trainer = GroupFELTrainer(
            model_fn=lambda: make_mlp(in_features, 10, hidden=(64,), seed=7),
            fed=fed,
            groups=groups,
            config=TrainerConfig(
                group_rounds=3, local_rounds=2, num_sampled=3,
                lr=0.08, momentum=0.9, max_rounds=12, eval_every=3,
                seed=0,                      # same training randomness...
                use_secure_aggregation=True,
                faults=faults,               # ...different fault schedules
            ),
            cost_model=paper_cost_model("cifar", "secagg"),
        )
        history = trainer.run()
    return trainer, history, tel


def main() -> None:
    data = SyntheticImage(noise_std=4.0, seed=0)
    train, test = data.train_test(n_train=8_000, n_test=1_000)
    fed = FederatedDataset.from_dataset(
        train, test, num_clients=NUM_CLIENTS, alpha=0.1,
        size_low=20, size_high=80, rng=42,
    )

    results = {}
    for label, spec in SCENARIOS.items():
        trainer, history, tel = run_scenario(fed, spec)
        results[label] = (trainer, history, tel)
        counts = trainer.fault_trace.counts()
        recon = tel.metrics.snapshot()["counters"].get("secagg.reconstructions", 0)
        print(f"\n=== {label} ===")
        print(f"final accuracy {history.final_accuracy:.3f} "
              f"at cost {history.total_cost:.0f}")
        if spec:
            print(f"faults injected: {dict(counts)}")
            print(f"Shamir mask pairs reconstructed: {recon:.0f}")
            print(f"latency injected: {trainer.ledger.total_fault_delay_s:.1f}s")
            print(f"replay signature: {trainer.fault_trace.signature()[:16]}… "
                  "(same seed ⇒ same signature, any backend)")

    # Accuracy-vs-cost table: early on, the same cost buys less accuracy as
    # the fault rate rises (lost uploads shrink effective participation) —
    # the degradation curve the fault subsystem exists to map. On this easy
    # synthetic task the gap closes once all runs near convergence.
    print("\ncost         " + "".join(f"{label:>30}" for label in SCENARIOS))
    clean_hist = results["clean"][1]
    for i, cost in enumerate(clean_hist.costs):
        row = f"{cost:9.0f}    "
        for label in SCENARIOS:
            hist = results[label][1]
            acc = hist.test_acc[i] if i < len(hist.test_acc) else float("nan")
            row += f"{acc:>30.3f}"
        print(row)


if __name__ == "__main__":
    main()
