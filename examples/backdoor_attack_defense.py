"""Backdoor attack vs the group defense — why groups pay for detection.

Three of sixteen clients plant a trigger backdoor (stamped corner patch →
target class 0) and boost their updates 6×. We train twice — with and
without the backdoor-detection group operation — and compare clean
accuracy and attack success rate (ASR). This is the security operation
whose quadratic cost the paper's Eq. (5) charges every group for.

The detector uses the coordination ("split") criterion: cut the update
dendrogram in two and flag the minority only when it is markedly tighter
than the majority — coordinated sybils produce mutually similar updates,
honest small-shard updates are near-orthogonal. A lone attacker hiding in
an otherwise-honest group can evade this (the known limitation that
motivates FLAME's added noise); coordinated groups are caught reliably.

    python examples/backdoor_attack_defense.py
"""

import numpy as np

from repro import (
    FederatedDataset,
    Group,
    GroupFELTrainer,
    SyntheticImage,
    TrainerConfig,
    TriggerBackdoorAttack,
    attack_success_rate,
    make_mlp,
    poison_federation,
)
from repro.secure import BackdoorDetector

ATTACKERS = [0, 1, 2]
TARGET = 0


def run(defended: bool):
    data = SyntheticImage(noise_std=2.5, seed=0)
    train, test = data.train_test(6_000, 800)
    fed = FederatedDataset.from_dataset(
        train, test, num_clients=16, alpha=0.5, size_low=40, size_high=80, rng=3
    )
    attack = TriggerBackdoorAttack(target_class=TARGET, poison_fraction=0.9, boost=6.0)
    attackers = poison_federation(fed, ATTACKERS, attack, rng=0)

    # Two fixed groups of 8; the attackers sit together in group 0 but are
    # still a within-group minority (the anonymity-set role of MinGS).
    members = [np.arange(0, 8), np.arange(8, 16)]
    groups = [
        Group(j, 0, m, fed.L[m].sum(axis=0)) for j, m in enumerate(members)
    ]

    trainer = GroupFELTrainer(
        lambda: make_mlp(192, 10, hidden=(32,), seed=3),
        fed,
        groups,
        TrainerConfig(group_rounds=2, local_rounds=2, num_sampled=2,
                      lr=0.1, momentum=0.9, max_rounds=10, seed=0),
        attackers=attackers,
        backdoor_detector=(
            BackdoorDetector(criterion="split", separation_factor=1.5)
            if defended else None
        ),
    )
    history = trainer.run()
    trainer.model.set_params(trainer.global_params)
    asr = attack_success_rate(trainer.model, fed.test.x, fed.test.y, TARGET)
    return history.final_accuracy, asr


def main() -> None:
    print(f"attackers: clients {ATTACKERS} -> trigger patch => class {TARGET}\n")
    print(f"{'setting':>12s} {'clean acc':>10s} {'attack success':>15s}")
    for label, defended in [("undefended", False), ("defended", True)]:
        acc, asr = run(defended)
        print(f"{label:>12s} {acc:10.3f} {asr:15.3f}")
    print("\nThe defense flags the coordinated minority cluster, bans it for "
          "the rest of the group session, and clips norms: clean accuracy is "
          "preserved and the attack success rate drops sharply (it does not "
          "hit zero — each new global round gives attackers one fresh shot "
          "before re-detection, the persistent-adversary gap that motivates "
          "cross-round reputation systems).")


if __name__ == "__main__":
    main()
