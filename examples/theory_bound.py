"""Evaluate Theorem 1's convergence bound on real groupings.

Shows the three key observations of §4.3 numerically:
1. larger group heterogeneity ζ_g ⇒ larger bound,
2. larger sampling dispersion Γ_p ⇒ larger bound,
3. larger γ/Γ (data-count dispersion) ⇒ larger bound,
and evaluates the bound for an actual CoVG vs RG grouping of a skewed
population, using empirical estimates of σ², ζ², ζ_g².

    python examples/theory_bound.py
"""

import numpy as np

from repro.data import FederatedDataset, SyntheticImage
from repro.grouping import CoVGrouping, RandomGrouping, group_clients_per_edge
from repro.nn import make_mlp
from repro.sampling import sampling_probabilities
from repro.theory import (
    BoundInputs,
    convergence_bound,
    estimate_gradient_noise,
    estimate_group_heterogeneity,
    estimate_local_heterogeneity,
    gamma_big,
    gamma_of_group,
    gamma_p,
)


def main() -> None:
    data = SyntheticImage(noise_std=4.0, seed=0)
    train, test = data.train_test(15_000, 1_000)
    fed = FederatedDataset.from_dataset(
        train, test, num_clients=60, alpha=0.1, size_low=20, size_high=80, rng=5
    )
    edges = [np.arange(j * 20, (j + 1) * 20) for j in range(3)]
    model = make_mlp(int(np.prod(train.feature_shape)), 10, hidden=(32,), seed=0)
    params = model.get_params()
    sizes = fed.client_sizes()

    # Shared empirical constants at the initialization point.
    sigma2 = estimate_gradient_noise(model, params, fed.clients[0], batch_size=16)
    zeta2 = estimate_local_heterogeneity(model, params, fed.clients)
    print(f"estimated σ² = {sigma2:.4f}, ζ² = {zeta2:.4f}\n")

    base = dict(
        f0_gap=2.3, eta=0.01, T=100, K=5, E=2, L=1.0,
        sigma2=sigma2, zeta2=zeta2, S=4,
    )

    print(f"{'grouping':8s} {'ζ_g²':>8s} {'γ(max)':>8s} {'Γ':>8s} "
          f"{'Γ_p(esr)':>9s} {'bound':>10s}")
    for name, grouper in [
        ("RG", RandomGrouping(group_size=5)),
        ("CoVG", CoVGrouping(min_group_size=5, max_cov=0.5)),
    ]:
        groups = group_clients_per_edge(grouper, fed.L, edges, rng=1)
        zg2, _ = estimate_group_heterogeneity(model, params, fed.clients, groups)
        gam = max(gamma_of_group(g, sizes) for g in groups)
        Gam = gamma_big(groups)
        p = sampling_probabilities(groups, "esrcov", min_prob=1e-3)
        Gp = gamma_p(p)
        inp = BoundInputs(
            **base, zeta_g2=zg2, gamma=gam, Gamma=Gam, Gamma_p=Gp,
            group_size=float(np.mean([g.size for g in groups])),
        )
        print(f"{name:8s} {zg2:8.4f} {gam:8.3f} {Gam:8.3f} {Gp:9.1f} "
              f"{convergence_bound(inp):10.4f}")

    # Observation sweeps on a fixed configuration.
    print("\nbound vs ζ_g² (observation 1):")
    fixed = BoundInputs(**base, zeta_g2=0.0, gamma=1.1, Gamma=1.2,
                        Gamma_p=100.0, group_size=5.0)
    for zg2 in (0.0, 0.5, 2.0, 8.0):
        inp = BoundInputs(**{**fixed.__dict__, "zeta_g2": zg2})
        print(f"  ζ_g²={zg2:5.1f} -> bound={convergence_bound(inp):.4f}")

    print("\nbound vs Γ_p (observation 2):")
    for gp in (50.0, 200.0, 1000.0, 5000.0):
        inp = BoundInputs(**{**fixed.__dict__, "Gamma_p": gp})
        print(f"  Γ_p={gp:7.0f} -> bound={convergence_bound(inp):.4f}")

    print("\nbound vs T (the rate itself):")
    for T in (10, 100, 1000, 10000):
        inp = BoundInputs(**{**fixed.__dict__, "T": T})
        print(f"  T={T:6d} -> bound={convergence_bound(inp):.4f}")


if __name__ == "__main__":
    main()
