"""Speech-Commands-style Group-FEL with the real system stack engaged.

The paper's second workload (§7.3.2): 35 command classes, extreme label
skew (α = 0.01 — each client mostly holds < 5 classes), a lightweight CNN.
This example runs it with everything turned on at once: secure aggregation
for group updates, update quantization on the wire, wall-clock simulation,
and a fairness report at the end.

    python examples/speech_commands_fl.py
"""

import numpy as np

from repro import (
    CommModel,
    CoVGrouping,
    FederatedDataset,
    HierarchicalTopology,
    GroupFELTrainer,
    SyntheticAudio,
    TrainerConfig,
    group_clients_per_edge,
    make_mlp,
    paper_cost_model,
    per_client_accuracy,
)
from repro.compression import QuantizeCompressor
from repro.costs.wallclock import WallClockSimulator


def main() -> None:
    # 35-class audio-like task, extremely skewed across 30 clients.
    data = SyntheticAudio(noise_std=2.5, seed=0)
    train, test = data.train_test(9_000, 1_400)
    fed = FederatedDataset.from_dataset(
        train, test, num_clients=30, alpha=0.01, size_low=20, size_high=80, rng=5
    )
    classes_per_client = (fed.L > 0).sum(axis=1)
    print(f"extreme skew: clients hold {classes_per_client.mean():.1f} of 35 "
          f"classes on average (paper: 'less than 5 types')")

    topo = HierarchicalTopology(num_clients=30, num_edges=2)
    grouper = CoVGrouping(min_group_size=5, max_cov=float("inf"))  # §7.3.2: no MaxCoV
    groups = group_clients_per_edge(grouper, fed.L, topo.edge_assignment(), rng=1)
    print(f"groups: {len(groups)}, sizes {[g.size for g in groups]}, "
          f"CoVs {[round(g.cov, 2) for g in groups]}")

    in_features = int(np.prod(train.feature_shape))
    model_fn = lambda: make_mlp(in_features, 35, hidden=(64,), seed=9)
    cost_model = paper_cost_model("sc", "secagg")
    comm = CommModel.for_model(topo, num_params=model_fn().num_params)

    trainer = GroupFELTrainer(
        model_fn=model_fn,
        fed=fed,
        groups=groups,
        config=TrainerConfig(
            group_rounds=3, local_rounds=2, num_sampled=3, lr=0.1, momentum=0.9,
            sampling_method="esrcov", max_rounds=20, eval_every=4,
            use_secure_aggregation=True, seed=0,
        ),
        cost_model=cost_model,
        compressor=QuantizeCompressor(bits=8),
        wallclock=WallClockSimulator(topo, cost_model, comm),
    )
    history = trainer.run()

    print("\nround   cost        sim-time(s)  accuracy")
    wall = np.cumsum(history.extra["wall_clock_s"])
    for i, (r, c, a) in enumerate(zip(history.rounds, history.costs, history.test_acc)):
        t = wall[r - 1] if r - 1 < len(wall) else wall[-1]
        print(f"{r:5d}   {c:9.0f}   {t:11.0f}  {a:.3f}")
    print(f"\nchance accuracy = {1/35:.3f}; final = {history.final_accuracy:.3f} "
          f"({history.final_accuracy * 35:.1f}x chance)")

    fairness = per_client_accuracy(trainer.model, fed.clients, trainer.global_params)
    print(f"per-client accuracy: mean {fairness.mean:.3f}, min {fairness.min:.3f}, "
          f"CoV {fairness.cov:.3f}")


if __name__ == "__main__":
    main()
