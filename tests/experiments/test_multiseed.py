"""Tests for multi-seed aggregation and result persistence."""

import numpy as np
import pytest
from dataclasses import replace

from repro.experiments import (
    SCALES,
    aggregate_histories,
    load_result,
    run_method_multiseed,
    save_result,
    make_image_workload,
)
from repro.metrics import TrainingHistory


def fake_history(costs, accs):
    h = TrainingHistory(label="x")
    for i, (c, a) in enumerate(zip(costs, accs)):
        h.record(i + 1, c, a, 1.0)
    return h


class TestAggregateHistories:
    def test_mean_and_std(self):
        h1 = fake_history([10, 20, 30], [0.1, 0.2, 0.3])
        h2 = fake_history([10, 20, 30], [0.3, 0.4, 0.5])
        agg = aggregate_histories([h1, h2], num_grid=3)
        assert agg["seeds"] == 2
        assert agg["final_mean"] == pytest.approx(0.4)
        assert agg["final_std"] == pytest.approx(0.1)
        assert agg["acc_mean"][-1] == pytest.approx(0.4)

    def test_grid_respects_shortest_run(self):
        h1 = fake_history([10, 20], [0.1, 0.2])
        h2 = fake_history([10, 20, 100], [0.1, 0.2, 0.9])
        agg = aggregate_histories([h1, h2], num_grid=5)
        assert max(agg["cost"]) <= 20

    def test_monotone_staircase(self):
        h = fake_history([10, 20, 30], [0.1, 0.3, 0.2])
        agg = aggregate_histories([h], num_grid=6)
        assert np.all(np.diff(agg["acc_mean"]) >= -1e-12)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_histories([])


class TestRunMethodMultiseed:
    def test_runs_and_aggregates(self):
        tiny = replace(
            SCALES["fast"], num_clients=16, num_edges=2, size_low=15,
            size_high=30, train_samples=1500, test_samples=200,
            max_rounds=2, num_sampled=2, min_group_size=3,
            cost_budget=None, eval_every=1,
        )
        agg = run_method_multiseed(
            "fedavg",
            lambda seed: make_image_workload(tiny, alpha=0.3, seed=seed),
            seeds=[0, 1],
        )
        assert agg["method"] == "fedavg"
        assert agg["seeds"] == 2
        assert 0 <= agg["final_mean"] <= 1

    def test_no_seeds_raises(self):
        with pytest.raises(ValueError):
            run_method_multiseed("fedavg", lambda s: None, seeds=[])


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        payload = {"figure": "9", "series": {"a": {"x": [1, 2], "y": [0.1, 0.2]}}}
        path = tmp_path / "fig9.json"
        save_result(payload, path)
        assert load_result(path) == payload

    def test_numpy_values_serialized(self, tmp_path):
        payload = {"v": np.float64(0.5), "arr": [np.float64(1.0)]}
        path = tmp_path / "r.json"
        save_result(payload, path)
        out = load_result(path)
        assert out["v"] == 0.5
