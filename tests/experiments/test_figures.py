"""Structural tests for every figure/table generator at a micro scale.

The benchmarks assert the paper's claims; these tests only assert payload
well-formedness, so generator code paths stay covered by `pytest tests/`
without benchmark runtimes.
"""

import numpy as np
import pytest
from dataclasses import replace

from repro.experiments import (
    SCALES,
    fig2a_group_overheads,
    fig2b_group_size,
    fig5_grouping_runtime,
    fig6_cov_vs_overhead,
    fig7_sampling_methods,
    fig8_rpi_measurement,
    fig9_fig10_all_methods_cifar,
    fig11_all_methods_sc,
    fig12_grouping_x_sampling,
    table1_maxcov_alpha,
)


@pytest.fixture(scope="module")
def micro():
    """Tiny scale: every figure generator finishes in a few seconds."""
    return replace(
        SCALES["fast"],
        num_clients=16,
        num_edges=2,
        size_low=15,
        size_high=30,
        train_samples=1_200,
        test_samples=200,
        group_rounds=1,
        local_rounds=1,
        num_sampled=2,
        max_rounds=2,
        min_group_size=3,
        cost_budget=None,
        eval_every=1,
    )


def assert_curve_series(result, figure, labels=None, x_key="cost"):
    assert result["figure"] == figure
    series = result["series"]
    assert series, "empty series"
    if labels:
        assert set(labels) <= set(series)
    for label, data in series.items():
        n = len(data["accuracy"])
        assert n >= 1
        assert len(data[x_key]) == n
        assert all(0.0 <= a <= 1.0 for a in data["accuracy"])


class TestTrainingFigures:
    def test_fig2b(self, micro):
        result = fig2b_group_size(micro, group_sizes=(3, 5), seed=0)
        assert_curve_series(result, "2b", ["GS=3", "GS=5"])

    def test_fig7(self, micro):
        result = fig7_sampling_methods(micro, seed=0)
        assert_curve_series(result, "7", ["Random", "RCoV", "SRCoV", "ESRCoV"])

    def test_fig9_fig10(self, micro):
        result = fig9_fig10_all_methods_cifar(
            micro, seed=0, methods=["fedavg", "group_fel"]
        )
        assert_curve_series(result, "9+10", ["fedavg", "group_fel"])
        # Both axes present for the two figures.
        assert "round" in result["series"]["fedavg"]

    def test_fig11(self, micro):
        result = fig11_all_methods_sc(micro, seed=0, methods=["fedavg", "group_fel"])
        assert_curve_series(result, "11")

    def test_fig12(self, micro):
        result = fig12_grouping_x_sampling(micro, seed=0)
        assert_curve_series(
            result, "12",
            ["CoVG+RS", "RG+CoVS", "CoVG+CoVS", "KLDG+RS", "KLDG+CoVS"],
        )


class TestMeasurementFigures:
    def test_fig2a(self, micro):
        result = fig2a_group_overheads(micro)
        assert result["figure"] == "2a"
        assert len(result["series"]) == 3
        for data in result["series"].values():
            assert len(data["x"]) == len(data["seconds"])
            assert data["fit"] in ("linear", "quadratic")

    def test_fig5(self, micro):
        result = fig5_grouping_runtime(micro, client_counts=(20, 40), seed=0)
        assert set(result["series"]) == {"RG", "CDG", "KLDG", "CoVG"}
        for data in result["series"].values():
            assert data["clients"] == [20, 40]
            assert all(t >= 0 for t in data["seconds"])

    def test_fig6(self, micro):
        result = fig6_cov_vs_overhead(micro, seed=0, size_knobs=(3, 5))
        for data in result["series"].values():
            assert len(data["avg_cov"]) == len(data["avg_overhead"]) >= 1

    def test_fig8(self, micro):
        result = fig8_rpi_measurement(micro)
        assert len(result["series"]) == 8


class TestTable1:
    def test_structure(self, micro):
        result = table1_maxcov_alpha(
            micro, alphas=(0.1, 1.0), max_covs=(0.2, 1.0), seed=0
        )
        rows = result["rows"]
        assert len(rows) == 4
        for row in rows:
            assert {"alpha", "MaxCoV", "GS_min", "GS_max", "GS_avg",
                    "avg_cov", "accuracy"} <= set(row)
            assert 0.0 <= row["accuracy"] <= 1.0
            assert row["GS_min"] <= row["GS_avg"] <= row["GS_max"]
