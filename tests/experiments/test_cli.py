"""Tests for the experiments CLI."""

import json

import pytest

from repro.experiments.cli import GENERATORS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2a", "fig9", "table1"):
            assert name in out

    def test_unknown_target(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_generators_cover_all_artifacts(self):
        assert set(GENERATORS) == {
            "fig2a", "fig2b", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "tta", "table1",
        }

    def test_fig5_text_output(self, capsys, monkeypatch):
        # fig5 is the cheapest real generator at fast scale.
        assert main(["fig5", "--scale", "fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "CoVG" in out and "KLDG" in out

    def test_json_output(self, capsys):
        assert main(["fig5", "--scale", "fast", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["figure"] == "5"
        assert "CoVG" in data["series"]

    def test_telemetry_flag_writes_trace(self, capsys, tmp_path):
        from repro.telemetry import get_active, load_jsonl

        path = str(tmp_path / "trace.jsonl")
        # fig7 actually trains (fig5 only times grouping), so real spans land.
        assert main(["fig7", "--scale", "fast", "--telemetry", path]) == 0
        captured = capsys.readouterr()
        assert "Figure 7" in captured.out          # normal output unchanged
        assert "Spans — fig7" in captured.err      # summary goes to stderr

        records = load_jsonl(path)
        assert records["meta"][0]["label"] == "fig7"
        assert records["meta"][0]["scale"] == "fast"
        span_names = {r["name"] for r in records["span"]}
        assert {"round", "group", "client_update"} <= span_names
        counters = {r["name"] for r in records["counter"]}
        assert "groups_sampled" in counters
        # The ambient instance was deactivated again on the way out.
        assert not get_active().enabled


class TestPopulationFlag:
    def test_bad_spec_fails_fast(self, capsys):
        assert main(["fig5", "--population", "walk:0.1"]) == 2
        assert "bad --population spec" in capsys.readouterr().err

    def test_ambient_model_deactivated_after_run(self, capsys):
        from repro.population import get_active_population

        # fig5 only times grouping (no trainers), so the run is cheap; the
        # point is that the model is installed for the run and gone after.
        assert main(["fig5", "--scale", "fast",
                     "--population", "leave:0.01"]) == 0
        capsys.readouterr()
        assert get_active_population() is None

    def test_telemetry_meta_records_spec(self, capsys, tmp_path):
        from repro.telemetry import load_jsonl

        path = str(tmp_path / "trace.jsonl")
        assert main(["fig5", "--scale", "fast", "--telemetry", path,
                     "--population", "leave:0.01"]) == 0
        capsys.readouterr()
        records = load_jsonl(path)
        assert records["meta"][0]["population"] == "leave:0.01"


class TestEngineFlags:
    def test_overrides_reach_trainer_and_leave_config_untouched(self):
        import repro.core.trainer as trainer_mod
        from repro.core.trainer import TrainerConfig, engine_overrides_activated

        cfg = TrainerConfig()
        with engine_overrides_activated(
            engine="reference", pipeline_rounds=True, shared_memory=False
        ):
            assert trainer_mod._active_engine_overrides == {
                "engine": "reference",
                "pipeline_rounds": True,
                "shared_memory": False,
            }
        # The block is the whole lifetime; outside, nothing lingers and the
        # caller's config object was never mutated.
        assert trainer_mod._active_engine_overrides is None
        assert cfg.engine == "auto"
        assert cfg.shared_memory and not cfg.pipeline_rounds

    def test_trainer_picks_up_overrides(self, small_fed, small_edges):
        import functools

        from repro.core.trainer import (
            GroupFELTrainer,
            TrainerConfig,
            engine_overrides_activated,
        )
        from repro.grouping import CoVGrouping, group_clients_per_edge
        from repro.nn import make_mlp

        groups = group_clients_per_edge(
            CoVGrouping(3, 1.0), small_fed.L, small_edges, rng=0
        )
        cfg = TrainerConfig(max_rounds=1)
        with engine_overrides_activated(engine="reference", pipeline_rounds=True):
            trainer = GroupFELTrainer(
                functools.partial(make_mlp, 192, 10, seed=0),
                small_fed, groups, cfg,
            )
        try:
            assert trainer.config.engine == "reference"
            assert trainer.config.pipeline_rounds is True
            assert trainer.config.shared_memory is True  # untouched knob
            assert cfg.engine == "auto"  # caller's object not mutated
        finally:
            trainer.close()

    def test_partial_override_keeps_other_knobs(self):
        from repro.core.trainer import engine_overrides_activated

        with engine_overrides_activated(engine="batched") as overrides:
            assert overrides == {"engine": "batched"}

    def test_cli_flags_deactivated_after_run(self, capsys):
        import repro.core.trainer as trainer_mod

        assert main(["fig5", "--scale", "fast", "--engine", "reference",
                     "--pipeline-rounds", "--no-shared-memory"]) == 0
        capsys.readouterr()
        assert trainer_mod._active_engine_overrides is None

    def test_bad_engine_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig5", "--engine", "turbo"])
        assert "invalid choice" in capsys.readouterr().err


class TestCheckpointFlags:
    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(["fig5", "--resume"]) == 2
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_checkpoint_every_must_be_positive(self, capsys, tmp_path):
        assert main(
            ["fig5", "--checkpoint-dir", str(tmp_path), "--checkpoint-every", "0"]
        ) == 2
        assert "--checkpoint-every" in capsys.readouterr().err

    def test_policy_deactivated_after_run(self, capsys, tmp_path):
        from repro.checkpoint import get_active_policy

        assert main(["fig5", "--scale", "fast", "--checkpoint-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert get_active_policy() is None

    @pytest.mark.slow
    def test_cli_resume_bit_identical(self, capsys, tmp_path):
        """fig7 run in two legs via --resume must emit the same JSON as one
        uninterrupted run."""
        ckdir = str(tmp_path / "ck")
        assert main(["fig7", "--scale", "fast", "--json",
                     "--checkpoint-dir", ckdir]) == 0
        full = json.loads(capsys.readouterr().out)
        # Second invocation resumes every method at its final round: no new
        # training happens, and the regenerated figure is identical.
        assert main(["fig7", "--scale", "fast", "--json",
                     "--checkpoint-dir", ckdir, "--resume"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed == full
