"""Validation of the paper-scale configuration (construction only).

Full paper-scale training takes hours; these tests verify the `paper`
profile builds the exact §7 setup — 300 clients on 3 edges, 20–200
samples, K=5/E=2/S=12, MinGS=5, 10⁶ budget, ResNet/AudioCNN models — and
that one tiny training step runs through the ResNet path.
"""

import numpy as np
import pytest

from repro.experiments import get_scale, make_audio_workload, make_image_workload
from repro.nn import AudioCNN, ResNetLite


@pytest.fixture(scope="module")
def paper_image_workload():
    return make_image_workload("paper", alpha=0.1, seed=0)


class TestPaperScaleConstruction:
    def test_image_workload_matches_section7(self, paper_image_workload):
        wl = paper_image_workload
        assert wl.fed.num_clients == 300
        assert len(wl.edge_assignment) == 3
        sizes = wl.fed.client_sizes()
        assert sizes.min() >= 20 and sizes.max() <= 200
        assert wl.trainer_config.group_rounds == 5
        assert wl.trainer_config.local_rounds == 2
        assert wl.trainer_config.num_sampled == 12
        assert wl.trainer_config.cost_budget == 1.0e6

    def test_image_model_is_resnet(self, paper_image_workload):
        model = paper_image_workload.model_fn()
        assert isinstance(model, ResNetLite)
        out = model.forward(np.zeros((2, 3, 8, 8)), training=False)
        assert out.shape == (2, 10)

    def test_audio_model_is_cnn(self):
        wl = make_audio_workload("paper", alpha=0.01, seed=0)
        model = wl.model_fn()
        assert isinstance(model, AudioCNN)
        assert model.num_classes == 35

    def test_groups_form_at_paper_scale(self, paper_image_workload):
        from repro.grouping import CoVGrouping, group_clients_per_edge

        wl = paper_image_workload
        groups = group_clients_per_edge(
            CoVGrouping(5, 0.5), wl.fed.L, wl.edge_assignment, rng=0
        )
        # ~300/5 = 60 groups, the paper's "60 client groups".
        assert 30 <= len(groups) <= 75
        assert all(g.size >= 5 for g in groups)

    def test_resnet_trains_one_step_at_paper_scale(self, paper_image_workload):
        """One group round through the full ResNet path stays finite."""
        from repro.core import run_group_round
        from repro.grouping import Group
        from repro.nn import SGD

        wl = paper_image_workload
        model = wl.model_fn()
        opt = SGD(model, lr=0.05, momentum=0.9)
        members = np.arange(3)
        group = Group(0, 0, members, wl.fed.L[members].sum(axis=0))
        out = run_group_round(
            model, opt, group, wl.fed.clients, model.get_params(),
            group_rounds=1, local_rounds=1, batch_size=32, rng=0,
        )
        assert np.isfinite(out).all()

    def test_cost_magnitude_sane(self, paper_image_workload):
        """A paper-scale round costs O(10⁴–10⁵) units, so the 10⁶ budget
        spans tens of rounds — the regime the paper's figures show."""
        from repro.costs import CostLedger
        from repro.grouping import CoVGrouping, group_clients_per_edge

        wl = paper_image_workload
        groups = group_clients_per_edge(
            CoVGrouping(5, 0.5), wl.fed.L, wl.edge_assignment, rng=0
        )
        ledger = CostLedger(wl.cost_model, wl.fed.client_sizes())
        cost = ledger.estimate_round_cost(groups[:12], 5, 2)
        assert 1e4 < cost < 1e6
