"""Tests for the experiment harness (configs, runner, report)."""

import numpy as np
import pytest
from dataclasses import replace

from repro.experiments import (
    SCALES,
    format_series,
    format_table,
    get_scale,
    make_audio_workload,
    make_image_workload,
    run_method,
    run_methods,
)
from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import run_combo
from repro.grouping import RandomGrouping


def tiny_scale() -> ExperimentScale:
    """A minimal scale so harness tests run in seconds."""
    return replace(
        SCALES["fast"],
        num_clients=18,
        num_edges=2,
        size_low=15,
        size_high=40,
        train_samples=2_000,
        test_samples=300,
        max_rounds=3,
        num_sampled=2,
        min_group_size=3,
        eval_every=1,
        cost_budget=None,
    )


class TestScales:
    def test_known_scales(self):
        assert {"fast", "paper"} <= set(SCALES)

    def test_get_scale_by_name(self):
        assert get_scale("paper").name == "paper"

    def test_get_scale_passthrough(self):
        s = tiny_scale()
        assert get_scale(s) is s

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale(None).name == "paper"

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_paper_scale_matches_section7(self):
        s = SCALES["paper"]
        assert s.num_clients == 300
        assert s.num_edges == 3
        assert (s.size_low, s.size_high) == (20, 200)
        assert s.group_rounds == 5 and s.local_rounds == 2
        assert s.min_group_size == 5
        assert s.cost_budget == 1.0e6


class TestWorkloads:
    def test_image_workload_shapes(self):
        wl = make_image_workload(tiny_scale(), alpha=0.1, seed=0)
        assert wl.fed.num_classes == 10
        assert wl.fed.num_clients == 18
        assert wl.task == "cifar"
        assert len(wl.edge_assignment) == 2

    def test_audio_workload_shapes(self):
        wl = make_audio_workload(tiny_scale(), alpha=0.01, seed=0)
        assert wl.fed.num_classes == 35
        assert wl.task == "sc"

    def test_same_seed_same_partition(self):
        a = make_image_workload(tiny_scale(), alpha=0.1, seed=3)
        b = make_image_workload(tiny_scale(), alpha=0.1, seed=3)
        assert np.array_equal(a.fed.L, b.fed.L)

    def test_different_seed_different_partition(self):
        a = make_image_workload(tiny_scale(), alpha=0.1, seed=3)
        b = make_image_workload(tiny_scale(), alpha=0.1, seed=4)
        assert not np.array_equal(a.fed.L, b.fed.L)

    def test_model_factory_fresh_instances(self):
        wl = make_image_workload(tiny_scale(), seed=0)
        m1, m2 = wl.model_fn(), wl.model_fn()
        assert m1 is not m2
        assert np.allclose(m1.get_params(), m2.get_params())


class TestRunner:
    def test_run_method_produces_history(self):
        wl = make_image_workload(tiny_scale(), seed=0)
        h = run_method("fedavg", wl)
        assert len(h) == 3
        assert h.label == "fedavg"

    def test_run_methods_multiple(self):
        wl = make_image_workload(tiny_scale(), seed=0)
        out = run_methods(["fedavg", "group_fel"], wl)
        assert set(out) == {"fedavg", "group_fel"}

    def test_run_combo(self):
        wl = make_image_workload(tiny_scale(), seed=0)
        h = run_combo(RandomGrouping(3), "esrcov", wl, label="rg+covs")
        assert h.label == "rg+covs"
        assert h.total_cost > 0


class TestReport:
    def test_format_table(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 22, "b": 0.25}]
        text = format_table(rows, title="T")
        assert "T" in text and "a" in text and "22" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_format_series(self):
        series = {"m": {"x": [1, 2], "y": [0.1, 0.2]}}
        text = format_series(series, "x", "y", title="S")
        assert "m" in text and "(1, 0.1)" in text
