"""Pipelined rounds: overlap without observable divergence.

``TrainerConfig(pipeline_rounds=True)`` moves round t's evaluation and
checkpoint file write onto a single background thread while round t+1
trains. The contract is that nothing observable changes:

* histories and final models are bit-identical to the synchronous path,
  on every backend, with and without SecAgg;
* the telemetry span tree stays per-round — a deferred evaluation's span
  parents under the round it evaluates, not whatever round is currently
  training;
* the SecAgg pair-seed table hands out correct per-round tables under
  concurrent access (round t+1's masking can race round t's deferred
  work);
* checkpoints written asynchronously resume exactly like synchronous ones;
* exceptions raised on the pipeline thread surface from ``run()``.
"""

from __future__ import annotations

import functools
import threading

import numpy as np
import pytest

from repro.checkpoint import read_checkpoint
from repro.core.trainer import GroupFELTrainer, TrainerConfig
from repro.grouping import CoVGrouping, group_clients_per_edge
from repro.nn import make_mlp
from repro.secure.masking import _SEED_TABLE_CACHE, pairwise_seed_table
from repro.telemetry import Telemetry

# Module-level so the process backend can pickle it.
model_fn = functools.partial(make_mlp, 192, 10, seed=0)


def _run(small_fed, small_edges, *, pipeline, backend="serial", secagg=False,
         checkpoint_dir=None, telemetry=None):
    groups = group_clients_per_edge(
        CoVGrouping(3, 1.0), small_fed.L, small_edges, rng=0
    )
    cfg = TrainerConfig(
        max_rounds=3, group_rounds=1, local_rounds=1, num_sampled=2,
        momentum=0.9, seed=5, parallel_backend=backend,
        pipeline_rounds=pipeline, use_secure_aggregation=secagg,
        checkpoint_every=1 if checkpoint_dir else None,
    )
    trainer = GroupFELTrainer(
        model_fn, small_fed, groups, cfg,
        telemetry=telemetry, checkpoint_dir=checkpoint_dir,
    )
    try:
        history = trainer.run()
        return trainer.global_params.copy(), history.state_dict(), trainer
    finally:
        trainer.close()


class TestPipelineGolden:
    def test_serial_bit_identical(self, small_fed, small_edges):
        params_sync, hist_sync, _ = _run(small_fed, small_edges, pipeline=False)
        params_pipe, hist_pipe, _ = _run(small_fed, small_edges, pipeline=True)
        assert np.array_equal(params_sync, params_pipe)
        assert hist_sync == hist_pipe

    def test_serial_secagg_bit_identical(self, small_fed, small_edges):
        params_sync, hist_sync, _ = _run(
            small_fed, small_edges, pipeline=False, secagg=True
        )
        params_pipe, hist_pipe, _ = _run(
            small_fed, small_edges, pipeline=True, secagg=True
        )
        assert np.array_equal(params_sync, params_pipe)
        assert hist_sync == hist_pipe

    @pytest.mark.slow
    def test_process_backend_bit_identical(self, small_fed, small_edges):
        params_sync, hist_sync, _ = _run(
            small_fed, small_edges, pipeline=False, backend="process"
        )
        params_pipe, hist_pipe, _ = _run(
            small_fed, small_edges, pipeline=True, backend="process"
        )
        assert np.array_equal(params_sync, params_pipe)
        assert hist_sync == hist_pipe


class TestPipelineSpanTree:
    def test_deferred_eval_parents_under_its_round(self, small_fed, small_edges):
        tel = Telemetry(label="pipeline")
        _run(small_fed, small_edges, pipeline=True, telemetry=tel)
        spans = tel.tracer.spans()
        round_span_ids = {
            s.attrs["index"]: s.span_id for s in spans if s.name == "round"
        }
        evals = [s for s in spans if s.name == "evaluate"]
        assert evals, "pipelined run recorded no deferred evaluations"
        for s in evals:
            assert s.attrs["pipelined"] is True
            # round_idx was already incremented when the eval was submitted,
            # so the eval of round t carries round=t+1 and must hang under
            # the round span whose index is t.
            want_parent = round_span_ids[s.attrs["round"] - 1]
            assert s.parent_id == want_parent, (
                f"evaluate span of round {s.attrs['round']} parented under "
                f"{s.parent_id}, expected round span {want_parent}"
            )

    def test_sync_run_has_no_pipelined_spans(self, small_fed, small_edges):
        tel = Telemetry(label="sync")
        _run(small_fed, small_edges, pipeline=False, telemetry=tel)
        assert not [s for s in tel.tracer.spans() if s.name == "evaluate"]


class TestPipelineCheckpoints:
    def test_async_checkpoints_match_sync(self, small_fed, small_edges, tmp_path):
        sync_dir = tmp_path / "sync"
        pipe_dir = tmp_path / "pipe"
        _run(small_fed, small_edges, pipeline=False, checkpoint_dir=sync_dir)
        _run(small_fed, small_edges, pipeline=True, checkpoint_dir=pipe_dir)
        sync_files = sorted(p.name for p in sync_dir.iterdir())
        pipe_files = sorted(p.name for p in pipe_dir.iterdir())
        assert sync_files == pipe_files and sync_files
        for name in sync_files:
            _, sync_state = read_checkpoint(sync_dir / name)
            _, pipe_state = read_checkpoint(pipe_dir / name)
            assert np.array_equal(
                sync_state["global_params"], pipe_state["global_params"]
            ), f"checkpoint {name} diverged"

    def test_resume_from_async_checkpoint(self, small_fed, small_edges, tmp_path):
        _, hist, _ = _run(
            small_fed, small_edges, pipeline=True, checkpoint_dir=tmp_path
        )
        groups = group_clients_per_edge(
            CoVGrouping(3, 1.0), small_fed.L, small_edges, rng=0
        )
        cfg = TrainerConfig(
            max_rounds=3, group_rounds=1, local_rounds=1, num_sampled=2,
            momentum=0.9, seed=5, pipeline_rounds=True, checkpoint_every=1,
        )
        resumed = GroupFELTrainer(model_fn, small_fed, groups, cfg)
        try:
            resumed.load_checkpoint(tmp_path)
            assert resumed.round_idx == 3
            assert resumed.history.state_dict() == hist
        finally:
            resumed.close()


class TestPipelineErrors:
    def test_async_exception_surfaces_from_run(self, small_fed, small_edges):
        groups = group_clients_per_edge(
            CoVGrouping(3, 1.0), small_fed.L, small_edges, rng=0
        )
        cfg = TrainerConfig(
            max_rounds=3, group_rounds=1, local_rounds=1, num_sampled=2,
            seed=5, pipeline_rounds=True,
        )
        trainer = GroupFELTrainer(model_fn, small_fed, groups, cfg)

        def boom(*args, **kwargs):
            raise RuntimeError("pipeline boom")

        trainer._pipeline_record = boom
        try:
            with pytest.raises(RuntimeError, match="pipeline boom"):
                trainer.run()
        finally:
            trainer.close()


class TestSeedTableConcurrency:
    def test_concurrent_rounds_get_correct_tables(self):
        """Round t's deferred work may race round t+1's masking; every
        thread must still see the exact per-round table."""
        rounds, size, session = range(8), 6, 1
        expected = {
            r: pairwise_seed_table(r, size, session)[2].copy() for r in rounds
        }
        _SEED_TABLE_CACHE.clear()
        mismatches: list[int] = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            for r in rounds:
                _, _, seeds = pairwise_seed_table(r, size, session)
                if not np.array_equal(seeds, expected[r]):
                    mismatches.append(r)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not mismatches
