"""Tests for client local training and the group round."""

import numpy as np
import pytest

from repro.core import run_group_round, run_local_rounds
from repro.core.strategies import PlainSGDStrategy
from repro.data import FederatedDataset, SyntheticImage
from repro.grouping import Group
from repro.nn import SGD, make_mlp
from repro.secure import BackdoorDetector, SecureAggregator


@pytest.fixture(scope="module")
def setting():
    data = SyntheticImage(noise_std=2.0, seed=0)
    train, test = data.train_test(2000, 200)
    fed = FederatedDataset.from_dataset(
        train, test, num_clients=8, alpha=0.3, size_low=20, size_high=50, rng=1
    )
    model = make_mlp(192, 10, hidden=(16,), seed=0)
    opt = SGD(model, lr=0.05, momentum=0.9)
    return fed, model, opt


class TestRunLocalRounds:
    def test_params_change(self, setting):
        fed, model, opt = setting
        start = model.get_params().copy()
        end, steps = run_local_rounds(model, opt, fed.clients[0], start, 2, 16, rng=0)
        assert steps > 0
        assert not np.allclose(end, start)

    def test_starts_from_given_params(self, setting):
        fed, model, opt = setting
        start = np.zeros(model.num_params)
        run_local_rounds(model, opt, fed.clients[0], start, 1, 16, rng=0)
        # Model was loaded from `start` before stepping; a fresh load of
        # `start` plus identical steps reproduces the same endpoint.
        end1, _ = run_local_rounds(model, opt, fed.clients[0], start, 1, 16, rng=5)
        end2, _ = run_local_rounds(model, opt, fed.clients[0], start, 1, 16, rng=5)
        assert np.allclose(end1, end2)

    def test_epoch_mode_step_count(self, setting):
        fed, model, opt = setting
        client = fed.clients[0]
        start = model.get_params()
        _, steps = run_local_rounds(model, opt, client, start, 2, 16, rng=0,
                                    step_mode="epoch")
        batches_per_epoch = int(np.ceil(client.n / 16))
        assert steps == 2 * batches_per_epoch

    def test_batch_mode_step_count(self, setting):
        fed, model, opt = setting
        start = model.get_params()
        _, steps = run_local_rounds(model, opt, fed.clients[0], start, 3, 16,
                                    rng=0, step_mode="batch")
        assert steps == 3  # one ξ per local round (Algorithm 1, Line 13)

    def test_training_reduces_local_loss(self, setting):
        fed, model, opt = setting
        client = fed.clients[0]
        start = model.get_params().copy()
        model.set_params(start)
        loss_before, _ = model.evaluate(client.x, client.y)
        end, _ = run_local_rounds(model, opt, client, start, 5, 16, rng=0)
        model.set_params(end)
        loss_after, _ = model.evaluate(client.x, client.y)
        assert loss_after < loss_before

    def test_invalid_args(self, setting):
        fed, model, opt = setting
        start = model.get_params()
        with pytest.raises(ValueError):
            run_local_rounds(model, opt, fed.clients[0], start, 0, 16)
        with pytest.raises(ValueError):
            run_local_rounds(model, opt, fed.clients[0], start, 1, 16,
                             step_mode="jump")


class TestRunGroupRound:
    def make_group(self, fed, members):
        members = np.asarray(members)
        return Group(0, 0, members, fed.L[members].sum(axis=0))

    def test_group_model_is_data_weighted(self, setting):
        """With K=1 the group model is exactly Σ (n_i/n_g)·x_i."""
        fed, model, opt = setting
        group = self.make_group(fed, [0, 1, 2])
        global_params = model.get_params().copy()
        out = run_group_round(model, opt, group, fed.clients, global_params,
                              group_rounds=1, local_rounds=1, batch_size=16, rng=42)
        # Recompute by hand with the same spawned RNG layout.
        rng = np.random.default_rng(42)
        # (can't easily replay inner rngs; instead check the output moved
        # and stayed finite, and a K=1 aggregate lies in the convex hull
        # direction of client updates)
        assert np.isfinite(out).all()
        assert not np.allclose(out, global_params)

    def test_deterministic(self, setting):
        fed, model, opt = setting
        group = self.make_group(fed, [0, 1])
        gp = model.get_params().copy()
        a = run_group_round(model, opt, group, fed.clients, gp, 2, 1, 16, rng=7)
        b = run_group_round(model, opt, group, fed.clients, gp, 2, 1, 16, rng=7)
        assert np.allclose(a, b)

    def test_more_group_rounds_more_drift(self, setting):
        fed, model, opt = setting
        group = self.make_group(fed, [0, 1])
        gp = model.get_params().copy()
        out1 = run_group_round(model, opt, group, fed.clients, gp, 1, 1, 16, rng=7)
        out5 = run_group_round(model, opt, group, fed.clients, gp, 5, 1, 16, rng=7)
        assert np.linalg.norm(out5 - gp) > np.linalg.norm(out1 - gp)

    def test_secure_aggregation_path_matches_plain(self, setting):
        """SecAgg group aggregation equals the plain path up to rounding."""
        fed, model, opt = setting
        group = self.make_group(fed, [0, 1, 2])
        gp = model.get_params().copy()
        plain = run_group_round(model, opt, group, fed.clients, gp, 2, 1, 16, rng=3)
        secure = run_group_round(model, opt, group, fed.clients, gp, 2, 1, 16,
                                 rng=3, secure_aggregator=SecureAggregator())
        assert np.allclose(plain, secure, atol=1e-4)

    def test_backdoor_defense_path_runs(self, setting):
        fed, model, opt = setting
        group = self.make_group(fed, [0, 1, 2, 3])
        gp = model.get_params().copy()
        out = run_group_round(model, opt, group, fed.clients, gp, 1, 1, 16,
                              rng=3, backdoor_detector=BackdoorDetector(2.0))
        assert np.isfinite(out).all()

    def test_dataless_group_raises(self, setting):
        from repro.data import ClientDataset

        fed, model, opt = setting
        empty_client = ClientDataset(
            client_id=0,
            x=np.zeros((0, 3, 8, 8)),
            y=np.zeros(0, dtype=np.int64),
            label_counts=np.zeros(10, dtype=np.int64),
        )
        group = Group(0, 0, np.array([0]), np.zeros(10, dtype=int))
        with pytest.raises(ValueError, match="no data"):
            run_group_round(model, opt, group, [empty_client],
                            model.get_params(), 1, 1, 16)
