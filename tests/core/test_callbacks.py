"""Tests for the trainer callback framework."""

import numpy as np
import pytest

from repro.core import (
    Callback,
    Checkpointer,
    EarlyStopping,
    GroupFELTrainer,
    MetricTracker,
    RoundLogger,
    TelemetryCallback,
    TimeBudget,
    TrainerConfig,
)
from repro.grouping import CoVGrouping, group_clients_per_edge
from repro.nn import make_mlp
from repro.telemetry import Telemetry


def make_trainer(small_fed, small_edges, callbacks, max_rounds=6):
    groups = group_clients_per_edge(
        CoVGrouping(3, 0.5), small_fed.L, small_edges, rng=0
    )
    cfg = TrainerConfig(group_rounds=1, local_rounds=1, num_sampled=2,
                        lr=0.08, momentum=0.9, max_rounds=max_rounds, seed=0)
    return GroupFELTrainer(
        lambda: make_mlp(192, 10, hidden=(16,), seed=3),
        small_fed, groups, cfg, callbacks=callbacks,
    )


class TestRoundLogger:
    def test_logs_every_round(self, small_fed, small_edges):
        lines = []
        trainer = make_trainer(small_fed, small_edges,
                               [RoundLogger(printer=lines.append)], max_rounds=3)
        trainer.run()
        assert len(lines) == 3
        assert "round" in lines[0] and "acc" in lines[0]

    def test_every_n(self, small_fed, small_edges):
        lines = []
        trainer = make_trainer(small_fed, small_edges,
                               [RoundLogger(every=2, printer=lines.append)],
                               max_rounds=4)
        trainer.run()
        assert len(lines) == 2

    def test_invalid_every(self):
        with pytest.raises(ValueError):
            RoundLogger(every=0)


class TestEarlyStopping:
    def test_stops_on_plateau(self, small_fed, small_edges):
        # min_delta=1.0 means nothing ever counts as improvement.
        cb = EarlyStopping(patience=2, min_delta=1.0)
        trainer = make_trainer(small_fed, small_edges, [cb], max_rounds=10)
        history = trainer.run()
        assert cb.stopped_at is not None
        assert history.rounds[-1] < 10

    def test_does_not_stop_while_improving(self, small_fed, small_edges):
        cb = EarlyStopping(patience=3, min_delta=0.0)
        trainer = make_trainer(small_fed, small_edges, [cb], max_rounds=5)
        history = trainer.run()
        # Early rounds improve quickly; run should reach the limit.
        assert history.rounds[-1] == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestCheckpointer:
    def test_snapshots_taken(self, small_fed, small_edges):
        cb = Checkpointer(every=2, keep_best=True)
        trainer = make_trainer(small_fed, small_edges, [cb], max_rounds=5)
        trainer.run()
        assert set(cb.snapshots) == {2, 4}
        assert cb.best_params is not None
        assert cb.best_acc > 0

    def test_snapshots_are_copies(self, small_fed, small_edges):
        cb = Checkpointer(every=1, keep_best=False)
        trainer = make_trainer(small_fed, small_edges, [cb], max_rounds=2)
        trainer.run()
        assert not np.shares_memory(cb.snapshots[1], trainer.global_params)


class TestTimeBudget:
    def test_stops_immediately_with_tiny_budget(self, small_fed, small_edges):
        trainer = make_trainer(small_fed, small_edges, [TimeBudget(1e-9)],
                               max_rounds=10)
        history = trainer.run()
        assert history.rounds[-1] == 1  # stops after the first round

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeBudget(0)


class _HookRecorder(Callback):
    """Appends ``(tag, hook)`` tuples to a shared journal."""

    def __init__(self, tag, journal):
        self.tag = tag
        self.journal = journal

    def on_train_start(self, trainer):
        self.journal.append((self.tag, "start"))

    def on_round_end(self, trainer, round_idx):
        self.journal.append((self.tag, f"round{round_idx}"))
        return False

    def on_train_end(self, trainer):
        self.journal.append((self.tag, "end"))


class TestCallbackInteractions:
    def test_registration_order_preserved_with_telemetry(
        self, small_fed, small_edges
    ):
        """All three callbacks fire per hook, in registration order."""
        journal = []
        tel = Telemetry()
        stopper = EarlyStopping(patience=2, min_delta=1.0)  # plateau at once
        checkpointer = Checkpointer(every=1, keep_best=True)

        class JournalingTelemetry(TelemetryCallback):
            def on_round_end(self, trainer, round_idx):
                journal.append(("tel", f"round{round_idx}"))
                return super().on_round_end(trainer, round_idx)

        trainer = make_trainer(
            small_fed, small_edges,
            [_HookRecorder("a", journal), stopper, checkpointer,
             JournalingTelemetry(telemetry=tel),
             _HookRecorder("z", journal)],
            max_rounds=10,
        )
        history = trainer.run()

        # Round 1 "improves" from -inf, then patience=2 stale rounds trip it.
        assert stopper.stopped_at == 3
        assert history.rounds[-1] == 3
        # ...but every callback still saw every completed round, in order.
        per_round = [e for e in journal if e[1].startswith("round")]
        assert per_round == [
            ("a", "round1"), ("tel", "round1"), ("z", "round1"),
            ("a", "round2"), ("tel", "round2"), ("z", "round2"),
            ("a", "round3"), ("tel", "round3"), ("z", "round3"),
        ]
        # Checkpointer ran alongside and captured every round.
        assert set(checkpointer.snapshots) == {1, 2, 3}
        # The telemetry callback recorded the same rounds as events.
        round_events = [
            e for e in tel.events.events() if e.name == "round_end"
        ]
        assert [e.fields["round"] for e in round_events] == [1, 2, 3]
        assert tel.metrics.gauges()["rounds_completed"] == 3.0

    def test_time_budget_stops_mid_training(self, small_fed, small_edges):
        """TimeBudget halts a long run early; later callbacks still close out."""
        journal = []
        # Any real round exceeds this, so training stops right after round 1
        # of 50 — the budget check runs between rounds, never inside one.
        budget = TimeBudget(seconds=1e-6)
        trainer = make_trainer(
            small_fed, small_edges,
            [budget, _HookRecorder("rec", journal)],
            max_rounds=50,
        )
        history = trainer.run()
        assert history.rounds[-1] == 1
        # The recorder registered after TimeBudget still got train_end.
        assert journal[-1] == ("rec", "end")

    def test_stop_vote_from_any_callback_wins(self, small_fed, small_edges):
        """A truthy on_round_end from one callback stops the whole run even
        when every other callback votes to continue."""
        journal = []

        class StopAtTwo(Callback):
            def on_round_end(self, trainer, round_idx):
                return round_idx >= 2

        trainer = make_trainer(
            small_fed, small_edges,
            [_HookRecorder("rec", journal), StopAtTwo(),
             TelemetryCallback(telemetry=Telemetry())],
            max_rounds=10,
        )
        history = trainer.run()
        assert history.rounds[-1] == 2


class TestMetricTracker:
    def test_tracks_custom_metric(self, small_fed, small_edges):
        cb = MetricTracker({
            "param_norm": lambda tr: float(np.linalg.norm(tr.global_params)),
            "total_cost": lambda tr: tr.ledger.total,
        })
        trainer = make_trainer(small_fed, small_edges, [cb], max_rounds=3)
        trainer.run()
        assert len(cb.records["param_norm"]) == 3
        assert cb.records["total_cost"] == sorted(cb.records["total_cost"])
