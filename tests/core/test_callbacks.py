"""Tests for the trainer callback framework."""

import numpy as np
import pytest

from repro.core import (
    Checkpointer,
    EarlyStopping,
    GroupFELTrainer,
    MetricTracker,
    RoundLogger,
    TimeBudget,
    TrainerConfig,
)
from repro.grouping import CoVGrouping, group_clients_per_edge
from repro.nn import make_mlp


def make_trainer(small_fed, small_edges, callbacks, max_rounds=6):
    groups = group_clients_per_edge(
        CoVGrouping(3, 0.5), small_fed.L, small_edges, rng=0
    )
    cfg = TrainerConfig(group_rounds=1, local_rounds=1, num_sampled=2,
                        lr=0.08, momentum=0.9, max_rounds=max_rounds, seed=0)
    return GroupFELTrainer(
        lambda: make_mlp(192, 10, hidden=(16,), seed=3),
        small_fed, groups, cfg, callbacks=callbacks,
    )


class TestRoundLogger:
    def test_logs_every_round(self, small_fed, small_edges):
        lines = []
        trainer = make_trainer(small_fed, small_edges,
                               [RoundLogger(printer=lines.append)], max_rounds=3)
        trainer.run()
        assert len(lines) == 3
        assert "round" in lines[0] and "acc" in lines[0]

    def test_every_n(self, small_fed, small_edges):
        lines = []
        trainer = make_trainer(small_fed, small_edges,
                               [RoundLogger(every=2, printer=lines.append)],
                               max_rounds=4)
        trainer.run()
        assert len(lines) == 2

    def test_invalid_every(self):
        with pytest.raises(ValueError):
            RoundLogger(every=0)


class TestEarlyStopping:
    def test_stops_on_plateau(self, small_fed, small_edges):
        # min_delta=1.0 means nothing ever counts as improvement.
        cb = EarlyStopping(patience=2, min_delta=1.0)
        trainer = make_trainer(small_fed, small_edges, [cb], max_rounds=10)
        history = trainer.run()
        assert cb.stopped_at is not None
        assert history.rounds[-1] < 10

    def test_does_not_stop_while_improving(self, small_fed, small_edges):
        cb = EarlyStopping(patience=3, min_delta=0.0)
        trainer = make_trainer(small_fed, small_edges, [cb], max_rounds=5)
        history = trainer.run()
        # Early rounds improve quickly; run should reach the limit.
        assert history.rounds[-1] == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestCheckpointer:
    def test_snapshots_taken(self, small_fed, small_edges):
        cb = Checkpointer(every=2, keep_best=True)
        trainer = make_trainer(small_fed, small_edges, [cb], max_rounds=5)
        trainer.run()
        assert set(cb.snapshots) == {2, 4}
        assert cb.best_params is not None
        assert cb.best_acc > 0

    def test_snapshots_are_copies(self, small_fed, small_edges):
        cb = Checkpointer(every=1, keep_best=False)
        trainer = make_trainer(small_fed, small_edges, [cb], max_rounds=2)
        trainer.run()
        assert not np.shares_memory(cb.snapshots[1], trainer.global_params)


class TestTimeBudget:
    def test_stops_immediately_with_tiny_budget(self, small_fed, small_edges):
        trainer = make_trainer(small_fed, small_edges, [TimeBudget(1e-9)],
                               max_rounds=10)
        history = trainer.run()
        assert history.rounds[-1] == 1  # stops after the first round

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeBudget(0)


class TestMetricTracker:
    def test_tracks_custom_metric(self, small_fed, small_edges):
        cb = MetricTracker({
            "param_norm": lambda tr: float(np.linalg.norm(tr.global_params)),
            "total_cost": lambda tr: tr.ledger.total,
        })
        trainer = make_trainer(small_fed, small_edges, [cb], max_rounds=3)
        trainer.run()
        assert len(cb.records["param_norm"]) == 3
        assert cb.records["total_cost"] == sorted(cb.records["total_cost"])
