"""Tests for the aggregation kernel (Lines 14–15's weighted averaging)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import weighted_average


class TestWeightedAverage:
    def test_simple_mean(self):
        params = np.array([[0.0, 0.0], [2.0, 4.0]])
        out = weighted_average(params, np.array([0.5, 0.5]))
        assert np.allclose(out, [1.0, 2.0])

    def test_weights_used_verbatim_without_normalize(self):
        params = np.array([[1.0], [1.0]])
        out = weighted_average(params, np.array([2.0, 3.0]))
        assert out[0] == pytest.approx(5.0)  # unbiased mode may exceed 1

    def test_normalize(self):
        params = np.array([[1.0], [3.0]])
        out = weighted_average(params, np.array([2.0, 2.0]), normalize=True)
        assert out[0] == pytest.approx(2.0)

    def test_out_buffer(self):
        params = np.ones((3, 4))
        buf = np.empty(4)
        out = weighted_average(params, np.full(3, 1 / 3), out=buf)
        assert out is buf
        assert np.allclose(buf, 1.0)

    def test_validations(self):
        with pytest.raises(ValueError):
            weighted_average(np.ones(3), np.ones(3))  # 1-D params
        with pytest.raises(ValueError):
            weighted_average(np.ones((2, 3)), np.ones(3))  # weight mismatch
        with pytest.raises(ValueError):
            weighted_average(np.ones((2, 3)), np.zeros(2), normalize=True)

    @given(
        st.integers(2, 8),
        st.integers(1, 20),
        st.lists(st.floats(0.01, 10.0), min_size=2, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_convex_hull_property(self, k, dim, raw_weights):
        """Normalized aggregation stays inside the models' bounding box —
        averaging can never extrapolate."""
        raw_weights = (raw_weights * k)[:k]
        rng = np.random.default_rng(k * 100 + dim)
        params = rng.normal(size=(k, dim))
        out = weighted_average(params, np.array(raw_weights), normalize=True)
        assert np.all(out <= params.max(axis=0) + 1e-9)
        assert np.all(out >= params.min(axis=0) - 1e-9)

    @given(st.integers(2, 6), st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_grouped_associativity(self, k, dim):
        """Σ w_i x_i computed hierarchically (group then global, as
        Algorithm 1 does) equals the flat weighted sum — the identity that
        makes Eq. (3) consistent with Eq. (1)."""
        rng = np.random.default_rng(k * 31 + dim)
        params = rng.normal(size=(2 * k, dim))
        n_i = rng.uniform(1, 10, size=2 * k)
        flat = weighted_average(params, n_i / n_i.sum())
        # Hierarchical: two groups of k, then combine by group mass.
        g1 = weighted_average(params[:k], n_i[:k] / n_i[:k].sum())
        g2 = weighted_average(params[k:], n_i[k:] / n_i[k:].sum())
        combined = weighted_average(
            np.stack([g1, g2]),
            np.array([n_i[:k].sum(), n_i[k:].sum()]) / n_i.sum(),
        )
        assert np.allclose(flat, combined, atol=1e-10)
