"""Tests for the local-update strategies (plain, FedProx, SCAFFOLD)."""

import numpy as np
import pytest

from repro.core import FedProxStrategy, PlainSGDStrategy, ScaffoldStrategy


class TestPlainSGD:
    def test_no_offset(self):
        s = PlainSGDStrategy()
        assert s.grad_offset(0, np.ones(3), np.zeros(3)) is None

    def test_unit_cost_factors(self):
        s = PlainSGDStrategy()
        assert s.training_factor == 1.0
        assert s.payload_factor == 1


class TestFedProx:
    def test_offset_points_to_anchor(self):
        s = FedProxStrategy(mu=0.1)
        params = np.array([2.0, 0.0])
        anchor = np.array([0.0, 0.0])
        offset = s.grad_offset(0, params, anchor)
        # Gradient ADDS mu·(x − anchor): descent pulls back toward anchor.
        assert np.allclose(offset, [0.2, 0.0])

    def test_zero_mu_is_plain(self):
        s = FedProxStrategy(mu=0.0)
        assert s.grad_offset(0, np.ones(2), np.zeros(2)) is None

    def test_negative_mu_rejected(self):
        with pytest.raises(ValueError):
            FedProxStrategy(mu=-0.1)

    def test_cost_factor_above_one(self):
        assert FedProxStrategy().training_factor > 1.0

    def test_proximal_limits_divergence(self):
        """With a huge mu, local params cannot move far from the anchor."""
        from repro.data import FederatedDataset, SyntheticImage
        from repro.core.client import run_local_rounds
        from repro.nn import SGD, make_mlp

        data = SyntheticImage(seed=0)
        train, test = data.train_test(500, 100)
        fed = FederatedDataset.from_dataset(train, test, 4, alpha=0.2,
                                            size_low=30, size_high=60, rng=0)
        model = make_mlp(192, 10, hidden=(8,), seed=0)
        opt = SGD(model, lr=0.1)
        start = model.get_params()

        free, _ = run_local_rounds(model, opt, fed.clients[0], start, 3, 16,
                                   rng=0, strategy=PlainSGDStrategy())
        prox, _ = run_local_rounds(model, opt, fed.clients[0], start, 3, 16,
                                   rng=0, strategy=FedProxStrategy(mu=10.0))
        assert np.linalg.norm(prox - start) < np.linalg.norm(free - start)


class TestScaffold:
    def test_requires_init(self):
        s = ScaffoldStrategy()
        with pytest.raises(RuntimeError):
            s.grad_offset(0, np.ones(2), np.zeros(2))

    def test_initial_offset_zero(self):
        s = ScaffoldStrategy()
        s.init_run(num_params=4, num_clients=3)
        offset = s.grad_offset(0, np.ones(4), np.zeros(4))
        assert np.allclose(offset, 0.0)

    def test_control_variate_update_rule(self):
        s = ScaffoldStrategy()
        s.init_run(num_params=2, num_clients=2)
        start = np.array([1.0, 1.0])
        end = np.array([0.0, 0.5])
        s.after_local(0, start, end, steps=5, lr=0.1)
        # c_i⁺ = 0 − 0 + (start − end)/(5·0.1) = [2.0, 1.0].
        assert np.allclose(s.c_clients[0], [2.0, 1.0])

    def test_global_variate_averages_deltas(self):
        s = ScaffoldStrategy()
        s.init_run(num_params=1, num_clients=4)
        s.after_local(0, np.array([1.0]), np.array([0.0]), steps=10, lr=0.1)
        s.after_local(1, np.array([2.0]), np.array([0.0]), steps=10, lr=0.1)
        s.after_global_round()
        # Δc_0 = 1.0, Δc_1 = 2.0; c = (1+2)/4.
        assert np.allclose(s.c_global, [0.75])
        assert s._pending_deltas == []

    def test_payload_factor_two(self):
        assert ScaffoldStrategy().payload_factor == 2

    def test_zero_steps_no_update(self):
        s = ScaffoldStrategy()
        s.init_run(2, 2)
        s.after_local(0, np.zeros(2), np.zeros(2), steps=0, lr=0.1)
        assert 0 not in s.c_clients or np.allclose(s.c_clients.get(0, 0), 0)

    def test_variance_reduction_effect(self):
        """Control variates pull two skewed clients' updates together."""
        rng = np.random.default_rng(0)
        s = ScaffoldStrategy()
        s.init_run(num_params=3, num_clients=2)
        # Simulate one round: both clients drift in opposite directions.
        start = np.zeros(3)
        s.after_local(0, start, np.array([1.0, 0, 0]), steps=10, lr=0.1)
        s.after_local(1, start, np.array([-1.0, 0, 0]), steps=10, lr=0.1)
        s.after_global_round()
        # Next round: offsets now push client 0 against its own drift.
        off0 = s.grad_offset(0, start, start)
        off1 = s.grad_offset(1, start, start)
        assert off0[0] > 0  # c − c_0 with c_0 negative-drift correction
        assert off1[0] < 0
