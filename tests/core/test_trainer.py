"""Integration tests for GroupFELTrainer (Algorithm 1 end to end)."""

import numpy as np
import pytest

from repro.core import (
    FedProxStrategy,
    GroupFELTrainer,
    ScaffoldStrategy,
    TrainerConfig,
)
from repro.costs import paper_cost_model
from repro.grouping import CoVGrouping, group_clients_per_edge
from repro.nn import make_mlp
from repro.sampling import AggregationMode


def make_trainer(small_fed, small_edges, config=None, **kwargs):
    groups = group_clients_per_edge(
        CoVGrouping(3, 0.5), small_fed.L, small_edges, rng=0
    )
    model_fn = lambda: make_mlp(192, 10, hidden=(16,), seed=3)
    return GroupFELTrainer(
        model_fn,
        small_fed,
        groups,
        config or TrainerConfig(group_rounds=2, local_rounds=1, num_sampled=2,
                                lr=0.08, momentum=0.9, max_rounds=6, seed=0),
        **kwargs,
    )


class TestTrainerBasics:
    def test_accuracy_improves(self, small_fed, small_edges):
        trainer = make_trainer(small_fed, small_edges)
        _, acc0 = trainer.evaluate()
        history = trainer.run()
        assert history.final_accuracy > acc0 + 0.2

    def test_history_recorded_per_round(self, small_fed, small_edges):
        trainer = make_trainer(small_fed, small_edges)
        history = trainer.run()
        assert history.rounds == [1, 2, 3, 4, 5, 6]
        assert len(history.costs) == 6
        assert all(c > 0 for c in np.diff(history.costs))

    def test_cost_budget_stops_early(self, small_fed, small_edges):
        trainer = make_trainer(small_fed, small_edges)
        est = trainer.ledger.estimate_round_cost(
            trainer.groups[:2], 2, 1
        )
        history = trainer.run(cost_budget=est * 2.5)
        assert history.rounds[-1] < 6
        assert history.total_cost <= est * 4  # at most one round overshoot

    def test_budget_curve_never_reports_point_past_budget(
        self, small_fed, small_edges
    ):
        """Accuracy-vs-cost curves must not contain a checkpoint whose cost
        exceeds the budget: the round that crosses it still trains, but its
        point is withheld and the overshoot is reported in history.extra."""
        cfg = TrainerConfig(group_rounds=2, local_rounds=1, num_sampled=2,
                            lr=0.08, max_rounds=6, eval_every=1, seed=0)
        trainer = make_trainer(small_fed, small_edges, cfg)
        est = trainer.ledger.estimate_round_cost(trainer.groups[:2], 2, 1)
        budget = est * 2.5
        history = trainer.run(cost_budget=budget)
        assert history.costs, "curve must not be empty"
        assert all(c <= budget for c in history.costs)
        assert history.extra["budget_exhausted"] is True
        assert history.extra["budget_overshoot"] >= 0.0
        # The ledger saw the full (overshooting) spend even though the
        # curve stops at the budget line.
        assert trainer.ledger.total >= budget
        assert history.extra["budget_overshoot"] == pytest.approx(
            trainer.ledger.total - budget
        )

    def test_budget_not_exhausted_leaves_no_flag(self, small_fed, small_edges):
        history = make_trainer(small_fed, small_edges).run()
        assert "budget_exhausted" not in history.extra

    def test_budget_smaller_than_one_round_still_yields_a_point(
        self, small_fed, small_edges
    ):
        """Degenerate case: the very first round overshoots. The curve keeps
        one clamped point instead of coming back empty."""
        cfg = TrainerConfig(group_rounds=2, local_rounds=1, num_sampled=2,
                            lr=0.08, max_rounds=6, eval_every=1, seed=0)
        trainer = make_trainer(small_fed, small_edges, cfg)
        budget = 1e-6
        history = trainer.run(cost_budget=budget)
        assert history.rounds == [1]
        assert history.costs == [budget]
        assert history.extra["budget_clamped"] is True
        assert history.extra["budget_exhausted"] is True

    def test_deterministic_given_seed(self, small_fed, small_edges):
        h1 = make_trainer(small_fed, small_edges).run()
        h2 = make_trainer(small_fed, small_edges).run()
        assert h1.test_acc == h2.test_acc
        assert h1.costs == h2.costs

    def test_different_seeds_differ(self, small_fed, small_edges):
        cfg1 = TrainerConfig(group_rounds=2, local_rounds=1, num_sampled=2,
                             lr=0.08, max_rounds=4, seed=0)
        cfg2 = TrainerConfig(group_rounds=2, local_rounds=1, num_sampled=2,
                             lr=0.08, max_rounds=4, seed=1)
        h1 = make_trainer(small_fed, small_edges, cfg1).run()
        h2 = make_trainer(small_fed, small_edges, cfg2).run()
        assert h1.test_acc != h2.test_acc

    def test_eval_every(self, small_fed, small_edges):
        cfg = TrainerConfig(group_rounds=1, local_rounds=1, num_sampled=2,
                            max_rounds=6, eval_every=3, seed=0)
        history = make_trainer(small_fed, small_edges, cfg).run()
        assert history.rounds == [3, 6]

    def test_final_round_always_evaluated(self, small_fed, small_edges):
        cfg = TrainerConfig(group_rounds=1, local_rounds=1, num_sampled=2,
                            max_rounds=5, eval_every=4, seed=0)
        history = make_trainer(small_fed, small_edges, cfg).run()
        assert history.rounds[-1] == 5


class TestAggregationModes:
    @pytest.mark.parametrize("mode", ["biased", "unbiased", "stabilized"])
    def test_all_modes_train(self, small_fed, small_edges, mode):
        cfg = TrainerConfig(group_rounds=2, local_rounds=1, num_sampled=2,
                            lr=0.08, max_rounds=4, aggregation_mode=mode,
                            sampling_method="esrcov", min_prob=0.02, seed=0)
        history = make_trainer(small_fed, small_edges, cfg).run()
        assert history.final_accuracy > 0.2

    def test_mode_coerced_from_string(self):
        cfg = TrainerConfig(aggregation_mode="stabilized")
        assert cfg.aggregation_mode is AggregationMode.STABILIZED


class TestStrategiesIntegration:
    def test_fedprox_trains(self, small_fed, small_edges):
        trainer = make_trainer(small_fed, small_edges,
                               strategy=FedProxStrategy(mu=0.05))
        assert trainer.run().final_accuracy > 0.3

    def test_scaffold_trains(self, small_fed, small_edges):
        trainer = make_trainer(small_fed, small_edges, strategy=ScaffoldStrategy())
        assert trainer.run().final_accuracy > 0.3

    def test_strategy_cost_factors_applied(self, small_fed, small_edges):
        plain = make_trainer(small_fed, small_edges,
                             cost_model=paper_cost_model("cifar"))
        scaffold = make_trainer(small_fed, small_edges,
                                cost_model=paper_cost_model("cifar"),
                                strategy=ScaffoldStrategy())
        g = plain.groups[:1]
        c_plain = plain.ledger.estimate_round_cost(g, 1, 1)
        c_scaffold = scaffold.ledger.estimate_round_cost(g, 1, 1)
        assert c_scaffold > c_plain  # 2× payload, 1.2× training


class TestSecureTrainingPath:
    def test_secure_aggregation_training(self, small_fed, small_edges):
        cfg = TrainerConfig(group_rounds=1, local_rounds=1, num_sampled=2,
                            lr=0.08, max_rounds=3, use_secure_aggregation=True,
                            seed=0)
        history = make_trainer(small_fed, small_edges, cfg).run()
        assert history.final_accuracy > 0.2

    def test_backdoor_defense_training(self, small_fed, small_edges):
        cfg = TrainerConfig(group_rounds=1, local_rounds=1, num_sampled=2,
                            lr=0.08, max_rounds=3, use_backdoor_defense=True,
                            seed=0)
        history = make_trainer(small_fed, small_edges, cfg).run()
        assert history.final_accuracy > 0.15


class TestRegrouping:
    def test_regroup_changes_groups(self, small_fed, small_edges):
        grouper = CoVGrouping(3, 0.5)
        groups = group_clients_per_edge(grouper, small_fed.L, small_edges, rng=0)
        cfg = TrainerConfig(group_rounds=1, local_rounds=1, num_sampled=2,
                            max_rounds=4, regroup_every=2, seed=0)
        trainer = GroupFELTrainer(
            lambda: make_mlp(192, 10, hidden=(16,), seed=3),
            small_fed, groups, cfg,
            grouper=grouper, edge_assignment=small_edges,
        )
        before = [g.members.tolist() for g in trainer.groups]
        trainer.run()
        after = [g.members.tolist() for g in trainer.groups]
        assert before != after

    def test_regroup_requires_grouper(self, small_fed, small_edges):
        groups = group_clients_per_edge(
            CoVGrouping(3, 0.5), small_fed.L, small_edges, rng=0
        )
        cfg = TrainerConfig(regroup_every=2)
        with pytest.raises(ValueError, match="regroup_every"):
            GroupFELTrainer(
                lambda: make_mlp(192, 10, seed=0), small_fed, groups, cfg
            )


class TestParallelBackends:
    def test_thread_backend_matches_serial(self, small_fed, small_edges):
        """Group-parallel execution must not change results (ordered agg)."""
        results = []
        for backend in ("serial", "thread"):
            cfg = TrainerConfig(group_rounds=1, local_rounds=1, num_sampled=2,
                                lr=0.08, max_rounds=3, parallel_backend=backend,
                                seed=0)
            groups = group_clients_per_edge(
                CoVGrouping(3, 0.5), small_fed.L, small_edges, rng=0
            )
            trainer = GroupFELTrainer(
                lambda: make_mlp(192, 10, hidden=(16,), seed=3),
                small_fed, groups, cfg,
            )
            results.append(trainer.run().test_acc)
        assert results[0] == pytest.approx(results[1])


class TestConfigValidation:
    def test_invalid_values(self):
        with pytest.raises(ValueError):
            TrainerConfig(group_rounds=0)
        with pytest.raises(ValueError):
            TrainerConfig(local_rounds=0)
        with pytest.raises(ValueError):
            TrainerConfig(num_sampled=0)
        with pytest.raises(ValueError):
            TrainerConfig(max_rounds=0)

    def test_negative_lr(self):
        with pytest.raises(ValueError, match="lr"):
            TrainerConfig(lr=-0.1)
        with pytest.raises(ValueError, match="lr"):
            TrainerConfig(lr=0.0)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            TrainerConfig(batch_size=0)
        with pytest.raises(ValueError, match="batch_size"):
            TrainerConfig(batch_size=-32)

    def test_invalid_eval_every(self):
        with pytest.raises(ValueError, match="eval_every"):
            TrainerConfig(eval_every=0)

    def test_unknown_parallel_backend(self):
        with pytest.raises(ValueError, match="parallel_backend"):
            TrainerConfig(parallel_backend="gpu")

    def test_unknown_sampling_method(self):
        with pytest.raises(ValueError, match="sampling_method"):
            TrainerConfig(sampling_method="uniformly")

    def test_known_sampling_methods_accepted(self):
        for method in ("random", "rcov", "srcov", "esrcov"):
            assert TrainerConfig(sampling_method=method).sampling_method == method

    def test_invalid_dropout_prob(self):
        with pytest.raises(ValueError, match="client_dropout_prob"):
            TrainerConfig(client_dropout_prob=1.0)
        with pytest.raises(ValueError, match="client_dropout_prob"):
            TrainerConfig(client_dropout_prob=-0.1)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError, match="momentum"):
            TrainerConfig(momentum=-0.1)
        with pytest.raises(ValueError, match="momentum"):
            TrainerConfig(momentum=1.0)

    def test_invalid_weight_decay(self):
        with pytest.raises(ValueError, match="weight_decay"):
            TrainerConfig(weight_decay=-1e-4)

    def test_valid_momentum_and_weight_decay_accepted(self):
        cfg = TrainerConfig(momentum=0.9, weight_decay=1e-4)
        assert cfg.momentum == 0.9
        assert cfg.weight_decay == 1e-4
