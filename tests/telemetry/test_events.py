"""Tests for the telemetry event bus."""

from repro.telemetry import EventBus


def fake_clock():
    fake_clock.t += 1.0
    return fake_clock.t


fake_clock.t = 0.0


class TestEventBus:
    def test_emit_stores_in_order(self):
        bus = EventBus()
        bus.emit("a", x=1)
        bus.emit("b", y=2)
        events = bus.events()
        assert [e.name for e in events] == ["a", "b"]
        assert events[0].fields == {"x": 1}
        assert len(bus) == 2

    def test_subscribers_notified_synchronously(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(e.name))
        bus.subscribe(lambda e: seen.append(e.name.upper()))
        bus.emit("round_end")
        assert seen == ["round_end", "ROUND_END"]

    def test_injected_clock_timestamps(self):
        bus = EventBus(clock=iter(range(100)).__next__)
        a = bus.emit("a")
        b = bus.emit("b")
        assert (a.t, b.t) == (0, 1)

    def test_as_dict(self):
        bus = EventBus(clock=lambda: 5.0)
        event = bus.emit("train_start", label="run")
        assert event.as_dict() == {
            "name": "train_start", "t": 5.0, "fields": {"label": "run"},
        }
