"""Tests for counters, gauges, histograms, and the registry."""

import math
import threading

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotone(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1)

    def test_thread_safe(self):
        c = Counter("x")
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_nan_until_set(self):
        g = Gauge("x")
        assert math.isnan(g.value)
        g.set(3)
        assert g.value == 3.0

    def test_last_write_wins(self):
        g = Gauge("x")
        g.set(1)
        g.set(-2)
        assert g.value == -2.0


class TestHistogram:
    def test_stats(self):
        h = Histogram("x")
        for v in (1.0, 2.0, 3.0, 10.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(16.0)
        assert h.min == 1.0
        assert h.max == 10.0
        assert h.mean == pytest.approx(4.0)
        assert h.values() == [1.0, 2.0, 3.0, 10.0]

    def test_empty_stats_are_nan(self):
        h = Histogram("x")
        assert h.count == 0
        assert math.isnan(h.min) and math.isnan(h.max) and math.isnan(h.mean)
        assert math.isnan(h.percentile(50))

    def test_percentile_nearest_rank(self):
        h = Histogram("x")
        for v in range(1, 11):  # 1..10
            h.observe(v)
        assert h.percentile(0) == 1
        assert h.percentile(50) == 5
        assert h.percentile(100) == 10

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("x").percentile(101)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("a")

    def test_views_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(1)
        assert reg.counters() == {"c": 2.0}
        assert reg.gauges() == {"g": 7.0}
        assert list(reg.histograms()) == ["h"]

    def test_snapshot_roundtrip_merge(self):
        a = MetricsRegistry()
        a.counter("n").inc(3)
        a.gauge("g").set(1)
        a.histogram("h").observe(5)

        b = MetricsRegistry()
        b.counter("n").inc(4)
        b.gauge("g").set(9)
        b.histogram("h").observe(7)

        a.merge_snapshot(b.snapshot())
        assert a.counters()["n"] == 7.0          # counters add
        assert a.gauges()["g"] == 9.0            # gauges: last write wins
        assert a.histograms()["h"].values() == [5.0, 7.0]  # histograms extend

    def test_merge_into_empty(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.counter("n").inc(1)
        a.merge_snapshot(b.snapshot())
        assert a.counters() == {"n": 1.0}
