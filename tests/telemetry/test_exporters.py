"""Exporter tests: JSONL lossless dump, CSV/Prometheus round-trips, summary."""

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    load_jsonl,
    parse_prometheus,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


@pytest.fixture()
def tel():
    """A telemetry instance with one of everything recorded."""
    tel = Telemetry(label="unit", clock=FakeClock())
    tel.meta["scale"] = "fast"
    with tel.span("round", index=0):
        with tel.span("group", group_id=1):
            pass
    tel.inc("cloud_bytes_aggregated", 1024)
    tel.inc("clients_dropped", 3)
    tel.set_gauge("gamma_p", 0.1234567891011)
    tel.observe("round_cost", 10.0)
    tel.observe("round_cost", 30.0)
    tel.event("train_start", label="unit")
    return tel


class TestJsonl:
    def test_roundtrip(self, tel, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        count = tel.to_jsonl(path)
        records = load_jsonl(path)
        assert sum(len(v) for v in records.values()) == count
        assert records["meta"] == [{"label": "unit", "scale": "fast"}]
        spans = {r["name"]: r for r in records["span"]}
        assert spans["group"]["parent_id"] == spans["round"]["span_id"]
        assert spans["group"]["duration"] <= spans["round"]["duration"]
        counters = {r["name"]: r["value"] for r in records["counter"]}
        assert counters == {"cloud_bytes_aggregated": 1024.0, "clients_dropped": 3.0}
        gauges = {r["name"]: r["value"] for r in records["gauge"]}
        assert gauges["gamma_p"] == 0.1234567891011
        (hist,) = records["histogram"]
        assert hist["name"] == "round_cost"
        assert hist["values"] == [10.0, 30.0]
        assert hist["count"] == 2 and hist["sum"] == 40.0
        (event,) = records["event"]
        assert event["name"] == "train_start"

    def test_span_attrs_survive(self, tel, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tel.to_jsonl(path)
        spans = {r["name"]: r for r in load_jsonl(path)["span"]}
        assert spans["group"]["attrs"] == {"group_id": 1}


class TestCsv:
    def test_rows(self, tel, tmp_path):
        path = str(tmp_path / "metrics.csv")
        rows = tel.to_csv(path)
        lines = open(path).read().strip().splitlines()
        assert lines[0] == "kind,name,count,value,min,max,mean"
        assert len(lines) == rows + 1
        body = {line.split(",")[1]: line.split(",") for line in lines[1:]}
        assert float(body["cloud_bytes_aggregated"][3]) == 1024.0
        assert float(body["gamma_p"][3]) == 0.1234567891011
        hist = body["round_cost"]
        assert (int(hist[2]), float(hist[3])) == (2, 40.0)

    def test_csv_prometheus_agree(self, tel, tmp_path):
        """The two summary exports expose the same counter/gauge values."""
        path = str(tmp_path / "metrics.csv")
        tel.to_csv(path)
        csv_values = {}
        for line in open(path).read().strip().splitlines()[1:]:
            kind, name, _, value = line.split(",")[:4]
            if kind in ("counter", "gauge"):
                csv_values[name] = float(value)
        prom = parse_prometheus(tel.to_prometheus())
        for name, value in csv_values.items():
            assert prom[f"repro_{name}"] == value


class TestPrometheus:
    def test_exact_roundtrip(self, tel):
        text = tel.to_prometheus()
        values = parse_prometheus(text)
        assert values["repro_cloud_bytes_aggregated"] == 1024.0
        # repr() float formatting makes the round-trip exact, not approximate.
        assert values["repro_gamma_p"] == 0.1234567891011
        assert values["repro_round_cost_count"] == 2.0
        assert values["repro_round_cost_sum"] == 40.0

    def test_type_comments_present(self, tel):
        text = tel.to_prometheus()
        assert "# TYPE repro_cloud_bytes_aggregated counter" in text
        assert "# TYPE repro_gamma_p gauge" in text
        assert "# TYPE repro_round_cost summary" in text

    def test_span_aggregates_exposed(self, tel):
        values = parse_prometheus(tel.to_prometheus())
        assert values['repro_span_count{name="round"}'] == 1.0
        assert values['repro_span_seconds_total{name="round"}'] > 0.0

    def test_name_sanitised(self):
        tel = Telemetry()
        tel.inc("weird name-with.chars")
        assert "repro_weird_name_with_chars" in tel.to_prometheus()


class TestSummary:
    def test_contains_spans_and_metrics(self, tel):
        text = tel.summary()
        assert "Spans — unit" in text
        assert "round" in text and "group" in text
        assert "gamma_p" in text
        assert "Events: 1" in text

    def test_empty(self):
        assert Telemetry().summary() == "(no telemetry recorded)"


class TestNullTelemetry:
    def test_exports_raise(self, tmp_path):
        with pytest.raises(RuntimeError, match="disabled"):
            NULL_TELEMETRY.to_jsonl(str(tmp_path / "x.jsonl"))
        with pytest.raises(RuntimeError, match="disabled"):
            NULL_TELEMETRY.to_csv(str(tmp_path / "x.csv"))
        with pytest.raises(RuntimeError, match="disabled"):
            NULL_TELEMETRY.to_prometheus()

    def test_summary_is_harmless(self):
        assert NULL_TELEMETRY.summary() == "(telemetry disabled)"

    def test_noop_surface(self):
        assert NULL_TELEMETRY.enabled is False
        with NULL_TELEMETRY.span("anything"):
            assert NULL_TELEMETRY.current_span_id() is None
        NULL_TELEMETRY.inc("x")
        NULL_TELEMETRY.set_gauge("x", 1.0)
        NULL_TELEMETRY.observe("x", 1.0)
        assert NULL_TELEMETRY.event("x") is None
        assert NULL_TELEMETRY.ingest_spans([]) == []

    def test_null_span_is_reentrant(self):
        with NULL_TELEMETRY.span("a"):
            with NULL_TELEMETRY.span("b"):
                pass
