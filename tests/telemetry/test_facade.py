"""Tests for the Telemetry facade and the ambient-activation mechanism."""

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    activated,
    get_active,
    resolve,
    set_active,
)


class TestFacade:
    def test_span_records_via_tracer(self):
        tel = Telemetry()
        with tel.span("round") as span:
            assert tel.current_span_id() == span.span_id
        assert [s.name for s in tel.tracer.spans()] == ["round"]

    def test_metric_shorthands(self):
        tel = Telemetry()
        tel.inc("c", 2)
        tel.set_gauge("g", 5)
        tel.observe("h", 1.5)
        assert tel.metrics.counters()["c"] == 2.0
        assert tel.metrics.gauges()["g"] == 5.0
        assert tel.metrics.histograms()["h"].values() == [1.5]

    def test_event_shorthand(self):
        tel = Telemetry()
        tel.event("x", a=1)
        assert len(tel.events) == 1

    def test_ingest_spans_delegates(self):
        worker = Telemetry()
        with worker.span("group"):
            pass
        main = Telemetry()
        merged = main.ingest_spans(worker.tracer.spans())
        assert [s.name for s in merged] == ["group"]
        assert len(main.tracer) == 1


class TestAmbient:
    def test_default_is_null(self):
        assert get_active() is NULL_TELEMETRY
        assert isinstance(get_active(), NullTelemetry)

    def test_activated_installs_and_restores(self):
        tel = Telemetry()
        with activated(tel) as inside:
            assert inside is tel
            assert get_active() is tel
        assert get_active() is NULL_TELEMETRY

    def test_activated_restores_on_exception(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            with activated(tel):
                raise RuntimeError("x")
        assert get_active() is NULL_TELEMETRY

    def test_nested_activation(self):
        outer, inner = Telemetry("outer"), Telemetry("inner")
        with activated(outer):
            with activated(inner):
                assert get_active() is inner
            assert get_active() is outer

    def test_set_active_none_means_disabled(self):
        previous = set_active(None)
        try:
            assert get_active() is NULL_TELEMETRY
        finally:
            set_active(previous)

    def test_resolve(self):
        tel = Telemetry()
        assert resolve(tel) is tel
        assert resolve(None) is NULL_TELEMETRY
        with activated(tel):
            assert resolve(None) is tel
            other = Telemetry()
            assert resolve(other) is other
