"""End-to-end telemetry: span hierarchy, metrics, and zero-impact guarantee."""

import numpy as np
import pytest

from repro.core import GroupFELTrainer, TelemetryCallback, TrainerConfig
from repro.grouping import CoVGrouping, group_clients_per_edge
from repro.nn import make_mlp
from repro.telemetry import Telemetry, activated, load_jsonl


def make_trainer(small_fed, small_edges, telemetry=None, max_rounds=2, **cfg_kwargs):
    groups = group_clients_per_edge(
        CoVGrouping(3, 0.5), small_fed.L, small_edges, rng=0
    )
    cfg = TrainerConfig(group_rounds=1, local_rounds=1, num_sampled=2,
                        lr=0.08, max_rounds=max_rounds, seed=0, **cfg_kwargs)
    return GroupFELTrainer(
        lambda: make_mlp(192, 10, hidden=(16,), seed=3),
        small_fed, groups, cfg, telemetry=telemetry,
    )


def span_tree(tel):
    """{span -> [children]} plus name lookups for assertions."""
    spans = tel.tracer.spans()
    by_id = {s.span_id: s for s in spans}
    return spans, by_id


class TestSpanHierarchy:
    def test_round_group_client_nesting(self, small_fed, small_edges):
        tel = Telemetry(label="t")
        make_trainer(small_fed, small_edges, telemetry=tel, max_rounds=2).run()

        rounds = [s for s in tel.tracer.spans() if s.name == "round"]
        assert len(rounds) == 2
        assert [s.attrs["index"] for s in rounds] == [0, 1]
        assert all(s.parent_id is None for s in rounds)

        for round_span in rounds:
            names = [c.name for c in tel.tracer.children(round_span.span_id)]
            assert names[0] == "sample"
            assert names[-1] == "cloud_aggregate"
            groups = [
                c for c in tel.tracer.children(round_span.span_id)
                if c.name == "group"
            ]
            assert len(groups) == 2  # num_sampled
            for g in groups:
                children = tel.tracer.children(g.span_id)
                # plain path: client updates then one aggregate per k
                assert set(c.name for c in children) == {
                    "client_update", "aggregate",
                }
                assert sum(c.name == "aggregate" for c in children) == 1

    def test_children_durations_within_parent(self, small_fed, small_edges):
        tel = Telemetry()
        make_trainer(small_fed, small_edges, telemetry=tel).run()
        spans, by_id = span_tree(tel)
        for span in spans:
            parent = by_id.get(span.parent_id)
            if parent is None:
                continue
            assert span.t_start >= parent.t_start
            assert span.t_end <= parent.t_end
        # Same-thread children never overlap, so they must sum to <= parent.
        for parent in spans:
            kids = [
                s for s in tel.tracer.children(parent.span_id)
                if s.thread == parent.thread
            ]
            if kids:
                total = sum(k.duration for k in kids)
                assert total <= parent.duration + 1e-9

    def test_secagg_span_replaces_aggregate(self, small_fed, small_edges):
        tel = Telemetry()
        make_trainer(small_fed, small_edges, telemetry=tel,
                     use_secure_aggregation=True).run()
        names = {s.name for s in tel.tracer.spans()}
        assert "secagg" in names
        group_children = {
            c.name
            for s in tel.tracer.spans() if s.name == "group"
            for c in tel.tracer.children(s.span_id)
        }
        assert "aggregate" not in group_children
        assert tel.metrics.counters()["secagg_calls"] > 0

    def test_backdoor_span_present(self, small_fed, small_edges):
        tel = Telemetry()
        make_trainer(small_fed, small_edges, telemetry=tel,
                     use_backdoor_defense=True, max_rounds=1).run()
        backdoors = [s for s in tel.tracer.spans() if s.name == "backdoor"]
        assert backdoors
        assert all(s.attrs["clients"] > 1 for s in backdoors)
        assert tel.metrics.counters()["backdoor_detect_calls"] == len(backdoors)

    def test_thread_backend_groups_nest_under_round(self, small_fed, small_edges):
        tel = Telemetry()
        make_trainer(small_fed, small_edges, telemetry=tel,
                     parallel_backend="thread", max_rounds=2).run()
        rounds = [s for s in tel.tracer.spans() if s.name == "round"]
        for round_span in rounds:
            groups = [
                c for c in tel.tracer.children(round_span.span_id)
                if c.name == "group"
            ]
            # Cross-thread parenting: every sampled group stitched in even
            # though it ran on a worker thread.
            assert len(groups) == 2
            for g in groups:
                assert tel.tracer.children(g.span_id)


class TestMetrics:
    def test_run_level_counters_and_gauges(self, small_fed, small_edges):
        tel = Telemetry()
        trainer = make_trainer(small_fed, small_edges, telemetry=tel, max_rounds=2)
        trainer.run()
        counters = tel.metrics.counters()
        assert counters["groups_sampled"] == 4.0          # 2 rounds × S=2
        assert counters["cloud_bytes_aggregated"] > 0
        assert counters["cloud_params_averaged"] > 0
        assert counters["client_updates"] > 0
        assert counters["local_steps"] > 0
        assert counters["samples_trained"] > 0
        assert counters["cost_total"] == pytest.approx(trainer.ledger.total)
        gauges = tel.metrics.gauges()
        assert np.isfinite(gauges["gamma_p"])
        hist = tel.metrics.histograms()
        assert hist["round_cost"].count == 2
        assert hist["sampled_group_prob"].count == 4
        probs = hist["sampled_group_prob"].values()
        assert all(0.0 < p <= 1.0 for p in probs)


class TestZeroImpact:
    def test_disabled_run_bit_identical(self, small_fed, small_edges):
        """Instrumentation must not perturb RNG draws or float ordering."""
        plain = make_trainer(small_fed, small_edges, telemetry=None)
        plain.run()
        tel = Telemetry()
        traced = make_trainer(small_fed, small_edges, telemetry=tel)
        traced.run()
        assert np.array_equal(plain.global_params, traced.global_params)
        assert plain.history.test_acc == traced.history.test_acc

    def test_enabled_run_deterministic(self, small_fed, small_edges):
        a = make_trainer(small_fed, small_edges, telemetry=Telemetry())
        b = make_trainer(small_fed, small_edges, telemetry=Telemetry())
        a.run()
        b.run()
        assert np.array_equal(a.global_params, b.global_params)


class TestAmbientPickup:
    def test_trainer_resolves_ambient(self, small_fed, small_edges):
        tel = Telemetry()
        with activated(tel):
            trainer = make_trainer(small_fed, small_edges, max_rounds=1)
        assert trainer.telemetry is tel
        trainer.run()
        assert any(s.name == "round" for s in tel.tracer.spans())

    def test_without_activation_trainer_is_silent(self, small_fed, small_edges):
        trainer = make_trainer(small_fed, small_edges, max_rounds=1)
        assert not trainer.telemetry.enabled


class TestTelemetryCallback:
    def test_lifecycle_events_and_exports(self, small_fed, small_edges, tmp_path):
        tel = Telemetry(label="cb")
        jsonl = str(tmp_path / "run.jsonl")
        summaries = []
        cb = TelemetryCallback(jsonl_path=jsonl, summary_printer=summaries.append)
        trainer = make_trainer(small_fed, small_edges, telemetry=tel, max_rounds=2)
        trainer.callbacks.append(cb)
        trainer.run()

        names = [e.name for e in tel.events.events()]
        assert names == ["train_start", "round_end", "round_end", "train_end"]
        start = tel.events.events()[0]
        assert start.fields["num_clients"] == small_fed.num_clients
        round_end = tel.events.events()[1]
        assert "accuracy" in round_end.fields and "cost" in round_end.fields
        assert tel.metrics.gauges()["rounds_completed"] == 2.0

        records = load_jsonl(jsonl)
        assert {"meta", "span", "counter", "event"} <= set(records)
        assert summaries and "Spans — cb" in summaries[0]

    def test_noop_with_disabled_telemetry(self, small_fed, small_edges):
        trainer = make_trainer(small_fed, small_edges, max_rounds=1)
        trainer.callbacks.append(TelemetryCallback())
        trainer.run()  # must not raise (exports skipped, events dropped)
