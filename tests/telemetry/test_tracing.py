"""Tests for the span tracer: nesting, threads, and process-trace merging."""

import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro.telemetry import Span, Tracer


class FakeClock:
    """Deterministic monotonic clock advancing by ``step`` per call."""

    def __init__(self, step: float = 1.0):
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


def _worker_trace(tag: int) -> list[Span]:
    """Record a tiny trace in a fresh tracer (runs in a pool worker)."""
    tracer = Tracer()
    with tracer.span("group", tag=tag):
        with tracer.span("client_update", tag=tag):
            pass
        with tracer.span("secagg", tag=tag):
            pass
    return tracer.spans()


class TestNesting:
    def test_serial_nesting_via_thread_stack(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("round"):
            with tracer.span("group"):
                with tracer.span("client_update"):
                    pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["round"].parent_id is None
        assert spans["group"].parent_id == spans["round"].span_id
        assert spans["client_update"].parent_id == spans["group"].span_id

    def test_siblings_share_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("round"):
            with tracer.span("group"):
                pass
            with tracer.span("group"):
                pass
        round_span = next(s for s in tracer.spans() if s.name == "round")
        groups = tracer.children(round_span.span_id)
        assert [s.name for s in groups] == ["group", "group"]
        assert groups[0].span_id != groups[1].span_id

    def test_durations_from_injected_clock(self):
        clock = FakeClock(step=1.0)
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):        # start t=1
            with tracer.span("inner"):    # start t=2, end t=3
                pass
        # outer ends t=4
        spans = {s.name: s for s in tracer.spans()}
        assert spans["inner"].duration == pytest.approx(1.0)
        assert spans["outer"].duration == pytest.approx(3.0)
        assert spans["inner"].duration <= spans["outer"].duration

    def test_open_span_has_zero_duration(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as span:
            assert span.duration == 0.0
        assert span.duration > 0.0

    def test_current_span_id(self):
        tracer = Tracer()
        assert tracer.current_span_id() is None
        with tracer.span("a") as a:
            assert tracer.current_span_id() == a.span_id
            with tracer.span("b") as b:
                assert tracer.current_span_id() == b.span_id
            assert tracer.current_span_id() == a.span_id
        assert tracer.current_span_id() is None

    def test_exception_still_closes_span(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert len(tracer) == 1
        assert tracer.spans()[0].duration > 0.0
        assert tracer.current_span_id() is None

    def test_attrs_recorded(self):
        tracer = Tracer()
        with tracer.span("group", group_id=3, size=7):
            pass
        span = tracer.spans()[0]
        assert span.attrs == {"group_id": 3, "size": 7}
        assert span.as_dict()["attrs"] == {"group_id": 3, "size": 7}


class TestQueries:
    def test_totals_by_name(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(3):
            with tracer.span("secagg"):
                pass
        count, total = tracer.totals_by_name()["secagg"]
        assert count == 3
        assert total == pytest.approx(3.0)

    def test_roots(self):
        tracer = Tracer()
        with tracer.span("round"):
            with tracer.span("group"):
                pass
        assert [s.name for s in tracer.roots()] == ["round"]


class TestThreads:
    def test_worker_thread_spans_parent_explicitly(self):
        """The trainer's thread backend stitches group spans under the round
        span via an explicit parent_id (worker stacks start empty)."""
        tracer = Tracer()
        with tracer.span("round") as round_span:
            round_id = tracer.current_span_id()

            def work(gid):
                # Worker thread: the stack here is empty, so nesting must
                # come from the explicit parent_id.
                assert tracer.current_span_id() is None
                with tracer.span("group", parent_id=round_id, group_id=gid):
                    pass

            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(work, range(8)))
        groups = tracer.children(round_span.span_id)
        assert len(groups) == 8
        assert {s.attrs["group_id"] for s in groups} == set(range(8))

    def test_concurrent_recording_is_lossless(self):
        tracer = Tracer()
        n_threads, per_thread = 8, 50

        def work():
            for _ in range(per_thread):
                with tracer.span("op"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer) == n_threads * per_thread
        ids = [s.span_id for s in tracer.spans()]
        assert len(set(ids)) == len(ids)  # no id collisions


class TestIngest:
    def test_ingest_remaps_ids_and_attaches_roots(self):
        main = Tracer(clock=FakeClock())
        with main.span("round") as round_span:
            pass
        worker = Tracer(clock=FakeClock())
        with worker.span("group"):
            with worker.span("client_update"):
                pass
        merged = main.ingest(worker.spans(), parent_id=round_span.span_id)
        by_name = {s.name: s for s in merged}
        assert by_name["group"].parent_id == round_span.span_id
        assert by_name["client_update"].parent_id == by_name["group"].span_id
        ids = [s.span_id for s in main.spans()]
        assert len(set(ids)) == len(ids)

    def test_ingest_empty(self):
        tracer = Tracer()
        assert tracer.ingest([]) == []

    def test_ingest_from_process_pool(self):
        """Spans recorded in real subprocesses merge into the parent trace."""
        main = Tracer()
        with main.span("round") as round_span:
            with ProcessPoolExecutor(max_workers=2) as pool:
                worker_traces = list(pool.map(_worker_trace, range(3)))
            for spans in worker_traces:
                main.ingest(spans, parent_id=round_span.span_id)
        groups = main.children(round_span.span_id)
        assert len(groups) == 3
        assert {s.attrs["tag"] for s in groups} == {0, 1, 2}
        for g in groups:
            assert [c.name for c in main.children(g.span_id)] == [
                "client_update", "secagg",
            ]
