"""End-to-end fault injection through GroupFELTrainer.

The acceptance contract: a seeded faulty run completes, a post-masking
dropout exercises the Shamir reconstruction path (asserted via the
``secagg.reconstructions`` telemetry counter), and the same seed replays the
same fault trace and the same final model, bit for bit.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.trainer import GroupFELTrainer, TrainerConfig
from repro.costs import paper_cost_model
from repro.experiments.cli import main as cli_main
from repro.faults import FaultPlan, plan_activated
from repro.grouping import CoVGrouping, group_clients_per_edge
from repro.nn import make_mlp
from repro.telemetry import Telemetry, activated

FAULTY = "dropout:0.35@after,straggler:0.5:0.5,loss:0.2,groupfail:0.1"


def _make_trainer(fed, edges, telemetry=None, **cfg_kwargs):
    groups = group_clients_per_edge(CoVGrouping(3, 1.0), fed.L, edges, rng=0)
    cfg = TrainerConfig(
        max_rounds=2, group_rounds=2, local_rounds=1, num_sampled=2,
        seed=7, **cfg_kwargs,
    )
    return GroupFELTrainer(
        lambda: make_mlp(192, 10, seed=0),
        fed, groups, cfg, paper_cost_model(), telemetry=telemetry,
    )


def _param_hash(trainer) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(trainer.global_params).tobytes()
    ).hexdigest()


class TestFaultyRun:
    def test_dropout_triggers_shamir_reconstruction(self, small_fed, small_edges):
        tel = Telemetry(label="faulty")
        trainer = _make_trainer(
            small_fed, small_edges, telemetry=tel,
            use_secure_aggregation=True, faults="dropout:0.35@after",
        )
        history = trainer.run()
        assert len(history.test_acc) == 2  # run completed
        counters = tel.metrics.snapshot()["counters"]
        assert counters.get("secagg.reconstructions", 0) >= 1
        assert counters.get("faults.dropout", 0) >= 1
        assert trainer.fault_trace.counts()["secagg_recovery"] >= 1

    def test_all_fault_kinds_compose(self, small_fed, small_edges):
        tel = Telemetry(label="composed")
        trainer = _make_trainer(
            small_fed, small_edges, telemetry=tel,
            use_secure_aggregation=True, faults=FAULTY,
        )
        trainer.run()
        kinds = set(trainer.fault_trace.counts())
        assert {"dropout", "straggler", "message_loss"} <= kinds
        assert tel.metrics.snapshot()["counters"]["faults.injected"] >= 4

    def test_fault_delay_feeds_ledger_and_history(self, small_fed, small_edges):
        trainer = _make_trainer(small_fed, small_edges, faults="straggler:1.0:2.0")
        history = trainer.run()
        assert len(history.extra["fault_delay_s"]) == 2
        assert trainer.ledger.total_fault_delay_s > 0
        assert trainer.ledger.fault_delay_s == history.extra["fault_delay_s"]
        assert trainer.ledger.total_fault_delay_s == pytest.approx(
            trainer.fault_trace.total_delay_s()
        )

    def test_faultless_run_records_nothing(self, small_fed, small_edges):
        trainer = _make_trainer(small_fed, small_edges)
        history = trainer.run()
        assert len(trainer.fault_trace) == 0
        assert "fault_delay_s" not in history.extra


class TestDeterministicReplay:
    def test_same_seed_replays_bit_identically(self, small_fed, small_edges):
        runs = []
        for _ in range(2):
            trainer = _make_trainer(
                small_fed, small_edges,
                use_secure_aggregation=True, faults=FAULTY,
            )
            trainer.run()
            runs.append((trainer.fault_trace.signature(), _param_hash(trainer)))
        assert runs[0] == runs[1]

    def test_different_fault_seed_changes_trace(self, small_fed, small_edges):
        sigs = []
        for fault_seed in (0, 1):
            plan = FaultPlan.from_spec("dropout:0.35,straggler:0.5", seed=fault_seed)
            trainer = _make_trainer(small_fed, small_edges, faults=plan)
            trainer.run()
            sigs.append(trainer.fault_trace.signature())
        assert sigs[0] != sigs[1]


class TestGroupFailure:
    def test_graceful_degradation_spares_one_group(self, small_fed, small_edges):
        trainer = _make_trainer(small_fed, small_edges, faults="groupfail:1.0")
        history = trainer.run()
        assert len(history.test_acc) == 2
        # num_sampled=2 and every group fails → exactly one spared per round.
        assert trainer.fault_trace.counts()["group_failure"] == 2

    def test_weight_renormalization_preserves_mass(self, small_fed, small_edges):
        trainer = _make_trainer(small_fed, small_edges, faults="groupfail:0.5")
        selected, weights = trainer.sampler.sample()
        survivors, new_weights, events = trainer._apply_group_failures(
            selected, weights
        )
        assert len(survivors) >= 1
        assert len(survivors) + len(events) == len(selected)
        assert new_weights.sum() == pytest.approx(weights.sum())


class TestConfigPlumbing:
    def test_config_parses_spec_string(self, small_fed, small_edges):
        trainer = _make_trainer(small_fed, small_edges, faults="dropout:0.2,loss:0.1")
        assert isinstance(trainer.config.faults, FaultPlan)
        assert trainer.fault_plan is trainer.config.faults
        assert trainer.fault_plan.has_dropout

    def test_config_rejects_bad_type(self):
        with pytest.raises(TypeError, match="faults"):
            TrainerConfig(faults=42)

    def test_ambient_plan_pickup(self, small_fed, small_edges):
        plan = FaultPlan.from_spec("dropout:0.2")
        with plan_activated(plan):
            trainer = _make_trainer(small_fed, small_edges)
        assert trainer.fault_plan is plan

    def test_explicit_plan_beats_ambient(self, small_fed, small_edges):
        explicit = FaultPlan.from_spec("straggler:0.1")
        with plan_activated(FaultPlan.from_spec("dropout:0.9")):
            trainer = _make_trainer(small_fed, small_edges, faults=explicit)
        assert trainer.fault_plan is explicit

    def test_empty_ambient_means_no_plan(self, small_fed, small_edges):
        with plan_activated(FaultPlan(seed=0)):
            trainer = _make_trainer(small_fed, small_edges)
        assert trainer.fault_plan is None


class TestSecAggInterlock:
    def test_dropout_aggregator_enabled_by_plan(self, small_fed, small_edges):
        trainer = _make_trainer(
            small_fed, small_edges,
            use_secure_aggregation=True, faults="dropout:0.2",
        )
        assert trainer.dropout_aggregator is not None

    def test_message_loss_also_requires_recovery(self, small_fed, small_edges):
        trainer = _make_trainer(
            small_fed, small_edges,
            use_secure_aggregation=True, faults="loss:0.2",
        )
        assert trainer.dropout_aggregator is not None

    def test_no_secagg_no_recovery_protocol(self, small_fed, small_edges):
        trainer = _make_trainer(small_fed, small_edges, faults="dropout:0.2")
        assert trainer.dropout_aggregator is None


class TestRunnerIntegration:
    @pytest.fixture()
    def tiny_workload(self):
        from dataclasses import replace

        from repro.experiments import SCALES, make_image_workload

        scale = replace(
            SCALES["fast"], num_clients=18, num_edges=2, size_low=15,
            size_high=40, train_samples=2_000, test_samples=300,
            max_rounds=2, num_sampled=2, min_group_size=3, eval_every=1,
            cost_budget=None,
        )
        return make_image_workload(scale, alpha=0.1, seed=0)

    def test_run_method_forwards_faults(self, tiny_workload):
        from repro.experiments import run_method

        tel = Telemetry(label="runner")
        with activated(tel):
            history = run_method(
                "group_fel", tiny_workload, faults="straggler:1.0:1.0"
            )
        assert len(history.test_acc) == 2
        assert tel.metrics.snapshot()["counters"]["faults.straggler"] >= 1

    def test_ambient_plan_reaches_runner_trainers(self, tiny_workload):
        from repro.experiments import run_method

        tel = Telemetry(label="ambient")
        plan = FaultPlan.from_spec("straggler:1.0:1.0", seed=5)
        with activated(tel), plan_activated(plan):
            run_method("group_fel", tiny_workload)
        assert tel.metrics.snapshot()["counters"]["faults.straggler"] >= 1


class TestCLIFlag:
    def test_bad_spec_exits_2(self, capsys):
        assert cli_main(["fig9", "--faults", "powercut:0.1"]) == 2
        assert "bad --faults spec" in capsys.readouterr().err

    def test_missing_prob_exits_2(self, capsys):
        assert cli_main(["fig9", "--faults", "dropout"]) == 2
        assert "probability" in capsys.readouterr().err
