"""Unit tests for the fault injector dataclasses."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.faults import (
    DROPOUT_PHASES,
    ClientDropout,
    GroupFailure,
    MessageLoss,
    RetryPolicy,
    Straggler,
)


class TestValidation:
    def test_prob_bounds(self):
        with pytest.raises(ValueError, match="prob"):
            ClientDropout(prob=-0.1)
        with pytest.raises(ValueError, match="prob"):
            Straggler(prob=1.5)

    def test_round_window_validation(self):
        with pytest.raises(ValueError, match="start_round"):
            ClientDropout(prob=0.1, start_round=-1)
        with pytest.raises(ValueError, match="end_round"):
            ClientDropout(prob=0.1, start_round=5, end_round=5)

    def test_dropout_phase_validation(self):
        for phase in DROPOUT_PHASES:
            assert ClientDropout(prob=0.1, phase=phase).phase == phase
        with pytest.raises(ValueError, match="phase"):
            ClientDropout(prob=0.1, phase="during")

    def test_straggler_validation(self):
        with pytest.raises(ValueError, match="delay_s"):
            Straggler(prob=0.1, delay_s=0.0)
        with pytest.raises(ValueError, match="jitter"):
            Straggler(prob=0.1, jitter=1.5)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="timeout_s"):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=0.5)


class TestRoundWindows:
    def test_open_ended_by_default(self):
        inj = ClientDropout(prob=0.5)
        assert inj.active(0) and inj.active(10_000)

    def test_window_is_half_open(self):
        inj = GroupFailure(prob=0.5, start_round=3, end_round=6)
        assert [inj.active(r) for r in range(8)] == [
            False, False, False, True, True, True, False, False,
        ]


class TestStragglerDelay:
    def test_delay_within_jitter_band(self):
        inj = Straggler(prob=1.0, delay_s=2.0, jitter=0.25)
        rng = np.random.default_rng(0)
        draws = [inj.draw_delay(rng) for _ in range(200)]
        assert min(draws) >= 2.0 * 0.75
        assert max(draws) <= 2.0 * 1.25

    def test_zero_jitter_is_deterministic(self):
        inj = Straggler(prob=1.0, delay_s=3.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert inj.draw_delay(rng) == pytest.approx(3.0)


class TestRetryPolicy:
    def test_exponential_backoff_schedule(self):
        rp = RetryPolicy(max_retries=3, timeout_s=0.5, backoff=2.0)
        assert [rp.attempt_delay_s(a) for a in range(4)] == [0.5, 1.0, 2.0, 4.0]

    def test_message_loss_default_retry(self):
        inj = MessageLoss(prob=0.1)
        assert inj.retry == RetryPolicy()


class TestPicklability:
    """Injectors cross process-pool boundaries inside a FaultPlan."""

    @pytest.mark.parametrize(
        "inj",
        [
            ClientDropout(prob=0.2, phase="mid"),
            Straggler(prob=0.3, delay_s=2.0),
            MessageLoss(prob=0.1, retry=RetryPolicy(max_retries=5)),
            GroupFailure(prob=0.05, start_round=2, end_round=9),
        ],
    )
    def test_roundtrip(self, inj):
        assert pickle.loads(pickle.dumps(inj)) == inj
