"""FaultTrace: canonical ordering, counts, and replay signatures."""

from __future__ import annotations

import threading

from repro.faults import FaultEvent, FaultTrace


def _events():
    return [
        FaultEvent("dropout", round=1, group_id=2, client_id=7, k=0, phase="after"),
        FaultEvent("straggler", round=0, group_id=1, client_id=3, k=1, delay_s=2.5),
        FaultEvent("message_loss", round=0, group_id=1, client_id=3, k=0,
                   phase="retried", delay_s=0.5, retries=1),
        FaultEvent("group_failure", round=0, group_id=4),
    ]


def test_sorted_is_canonical():
    trace_fwd, trace_rev = FaultTrace(), FaultTrace()
    evs = _events()
    trace_fwd.extend(evs)
    trace_rev.extend(list(reversed(evs)))
    assert trace_fwd.sorted() == trace_rev.sorted()
    rounds = [e.round for e in trace_fwd.sorted()]
    assert rounds == sorted(rounds)


def test_signature_order_independent():
    evs = _events()
    a, b = FaultTrace(), FaultTrace()
    a.extend(evs)
    b.extend(evs[::-1])
    assert a.signature() == b.signature()


def test_signature_distinguishes_traces():
    a, b = FaultTrace(), FaultTrace()
    a.extend(_events())
    b.extend(_events()[:-1])
    assert a.signature() != b.signature()
    assert FaultTrace().signature() != a.signature()


def test_counts_and_delay():
    trace = FaultTrace()
    trace.extend(_events())
    assert trace.counts() == {
        "dropout": 1, "straggler": 1, "message_loss": 1, "group_failure": 1,
    }
    assert trace.total_delay_s() == 3.0
    assert len(trace) == 4


def test_concurrent_recording():
    """Thread-backend group rounds record into one shared trace."""
    trace = FaultTrace()

    def worker(gid: int):
        for i in range(100):
            trace.record(FaultEvent("dropout", round=i, group_id=gid, client_id=0))

    threads = [threading.Thread(target=worker, args=(g,)) for g in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(trace) == 800
    assert trace.counts()["dropout"] == 800
