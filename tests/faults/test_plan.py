"""FaultPlan: spec parsing, pure decisions, determinism, composability."""

from __future__ import annotations

import pickle

import pytest

from repro.faults import (
    ClientDropout,
    FaultPlan,
    GroupFailure,
    MessageLoss,
    RetryPolicy,
    Straggler,
    get_active_plan,
    plan_activated,
    set_active_plan,
)


class TestSpecParsing:
    def test_every_kind(self):
        plan = FaultPlan.from_spec(
            "dropout:0.2,straggler:0.3:2.5,loss:0.15,groupfail:0.05", seed=7
        )
        assert plan.seed == 7
        kinds = [inj.kind for inj in plan.injectors]
        assert kinds == ["dropout", "straggler", "message_loss", "group_failure"]
        assert plan.injectors[0] == ClientDropout(prob=0.2, phase="after")
        assert plan.injectors[1] == Straggler(prob=0.3, delay_s=2.5)
        assert plan.injectors[2] == MessageLoss(prob=0.15)
        assert plan.injectors[3] == GroupFailure(prob=0.05)

    def test_dropout_phase_suffix(self):
        plan = FaultPlan.from_spec("dropout:0.1@mid")
        assert plan.injectors[0].phase == "mid"

    def test_loss_retry_param_and_aliases(self):
        plan = FaultPlan.from_spec("msgloss:0.1:5,group:0.2")
        assert plan.injectors[0] == MessageLoss(prob=0.1, retry=RetryPolicy(max_retries=5))
        assert plan.injectors[1].kind == "group_failure"

    def test_whitespace_and_empty_terms_tolerated(self):
        plan = FaultPlan.from_spec(" dropout:0.2 , ,straggler:0.1 ")
        assert len(plan.injectors) == 2

    @pytest.mark.parametrize(
        "spec, match",
        [
            ("dropout", "probability"),
            ("dropout:high", "bad probability"),
            ("powercut:0.2", "unknown fault kind"),
            ("", "no injectors"),
            ("dropout:0.2@during", "phase"),
        ],
    )
    def test_bad_specs(self, spec, match):
        with pytest.raises(ValueError, match=match):
            FaultPlan.from_spec(spec)

    def test_rejects_non_injector(self):
        with pytest.raises(TypeError, match="not an Injector"):
            FaultPlan(seed=0, injectors=["dropout"])


class TestInspection:
    def test_of_kind_and_flags(self):
        plan = FaultPlan.from_spec("dropout:0.2,dropout:0.1@before,loss:0.1")
        assert len(plan.of_kind("dropout")) == 2
        assert plan.has_dropout and plan.has_message_loss
        assert not FaultPlan(seed=0).has_dropout

    def test_truthiness(self):
        assert not FaultPlan(seed=3)
        assert FaultPlan.from_spec("dropout:0.2")


class TestPureDecisions:
    """Decisions depend only on (seed, kind, injector, site) — never on
    call order. This is what makes replay backend-independent."""

    def test_same_site_same_answer(self):
        plan = FaultPlan.from_spec("dropout:0.5,straggler:0.5,loss:0.5", seed=1)
        a = [plan.client_dropout(3, 1, 0, c) for c in range(50)]
        # Interleave unrelated queries, then ask again in reverse order.
        [plan.straggler_delay(9, 9, 1, c) for c in range(50)]
        b = [plan.client_dropout(3, 1, 0, c) for c in reversed(range(50))]
        assert a == list(reversed(b))

    def test_identical_plans_agree(self):
        p1 = FaultPlan.from_spec("dropout:0.3,loss:0.2", seed=42)
        p2 = FaultPlan.from_spec("dropout:0.3,loss:0.2", seed=42)
        for c in range(100):
            assert p1.client_dropout(0, 0, 0, c) == p2.client_dropout(0, 0, 0, c)
            u1, u2 = p1.uplink(0, 0, 0, c), p2.uplink(0, 0, 0, c)
            assert (u1.delivered, u1.retries, u1.delay_s) == (
                u2.delivered, u2.retries, u2.delay_s)

    def test_different_seeds_differ(self):
        p1 = FaultPlan.from_spec("dropout:0.5", seed=0)
        p2 = FaultPlan.from_spec("dropout:0.5", seed=1)
        d1 = [p1.client_dropout(0, 0, 0, c) for c in range(200)]
        d2 = [p2.client_dropout(0, 0, 0, c) for c in range(200)]
        assert d1 != d2

    def test_composability(self):
        """Adding an injector must not reshuffle other kinds' schedules."""
        alone = FaultPlan(seed=5, injectors=[ClientDropout(prob=0.4)])
        stacked = FaultPlan(
            seed=5,
            injectors=[ClientDropout(prob=0.4), Straggler(prob=0.9),
                       MessageLoss(prob=0.5), GroupFailure(prob=0.3)],
        )
        for c in range(100):
            assert alone.client_dropout(2, 1, 0, c) == stacked.client_dropout(2, 1, 0, c)

    def test_earliest_phase_wins(self):
        plan = FaultPlan(
            seed=0,
            injectors=[ClientDropout(prob=1.0, phase="after"),
                       ClientDropout(prob=1.0, phase="before")],
        )
        assert plan.client_dropout(0, 0, 0, 0) == "before"

    def test_round_window_gates_decisions(self):
        plan = FaultPlan(
            seed=0, injectors=[ClientDropout(prob=1.0, start_round=5, end_round=7)]
        )
        assert plan.client_dropout(4, 0, 0, 0) is None
        assert plan.client_dropout(5, 0, 0, 0) == "after"
        assert plan.client_dropout(7, 0, 0, 0) is None

    def test_dropout_rate_is_statistical(self):
        plan = FaultPlan(seed=9, injectors=[ClientDropout(prob=0.25)])
        hits = sum(
            plan.client_dropout(r, 0, 0, c) is not None
            for r in range(40) for c in range(50)
        )
        assert 0.20 < hits / 2000 < 0.30


class TestUplink:
    def test_lossless_uplink(self):
        plan = FaultPlan(seed=0, injectors=[MessageLoss(prob=0.0)])
        out = plan.uplink(0, 0, 0, 0)
        assert out.delivered and out.retries == 0 and out.delay_s == 0.0

    def test_total_loss_exhausts_retries(self):
        rp = RetryPolicy(max_retries=3, timeout_s=0.5, backoff=2.0)
        plan = FaultPlan(seed=0, injectors=[MessageLoss(prob=1.0, retry=rp)])
        out = plan.uplink(0, 0, 0, 0)
        assert not out.delivered
        assert out.retries == 3
        # All four attempts timed out: 0.5 + 1 + 2 + 4.
        assert out.delay_s == pytest.approx(7.5)

    def test_partial_loss_retries_then_delivers(self):
        plan = FaultPlan(seed=3, injectors=[MessageLoss(prob=0.5)])
        outs = [plan.uplink(0, 0, 0, c) for c in range(300)]
        delivered = [o for o in outs if o.delivered]
        retried = [o for o in delivered if o.retries > 0]
        assert retried, "some deliveries should have needed a retry"
        assert all(o.delay_s > 0 for o in retried)


class TestGroupFailure:
    def test_certain_failure_and_certain_survival(self):
        fail = FaultPlan(seed=0, injectors=[GroupFailure(prob=1.0)])
        live = FaultPlan(seed=0, injectors=[GroupFailure(prob=0.0)])
        for g in range(20):
            assert fail.group_failed(0, g)
            assert not live.group_failed(0, g)

    def test_draw_is_margin(self):
        plan = FaultPlan(seed=1, injectors=[GroupFailure(prob=0.3)])
        for g in range(50):
            assert plan.group_failed(0, g) == (plan.group_failure_draw(0, g) < 0)


class TestAmbientActivation:
    def test_context_manager_restores(self):
        assert get_active_plan() is None
        plan = FaultPlan.from_spec("dropout:0.2")
        with plan_activated(plan) as active:
            assert active is plan
            assert get_active_plan() is plan
        assert get_active_plan() is None

    def test_set_returns_previous(self):
        plan = FaultPlan.from_spec("dropout:0.2")
        assert set_active_plan(plan) is None
        try:
            assert set_active_plan(None) is plan
        finally:
            set_active_plan(None)

    def test_nesting(self):
        outer, inner = FaultPlan.from_spec("dropout:0.1"), FaultPlan.from_spec("loss:0.1")
        with plan_activated(outer):
            with plan_activated(inner):
                assert get_active_plan() is inner
            assert get_active_plan() is outer


def test_plan_pickles():
    plan = FaultPlan.from_spec("dropout:0.2,straggler:0.3:2.0,loss:0.1,groupfail:0.05", seed=11)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone.seed == plan.seed
    assert clone.injectors == plan.injectors
    for c in range(20):
        assert clone.client_dropout(0, 0, 0, c) == plan.client_dropout(0, 0, 0, c)
