"""Smoke tests for the top-level public API."""

import numpy as np
import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_docstring_quick_tour_runs(self):
        """The README/module-docstring quickstart must actually work."""
        from repro import (
            CoVGrouping,
            FederatedDataset,
            GroupFELTrainer,
            SyntheticImage,
            TrainerConfig,
            group_clients_per_edge,
            make_mlp,
            paper_cost_model,
        )

        data = SyntheticImage(seed=0)
        train, test = data.train_test(1500, 200)
        fed = FederatedDataset.from_dataset(
            train, test, num_clients=12, alpha=0.1, size_low=15, size_high=40, rng=0
        )
        groups = group_clients_per_edge(
            CoVGrouping(3, 0.5), fed.L, [np.arange(12)], rng=0
        )
        trainer = GroupFELTrainer(
            lambda: make_mlp(192, 10, hidden=(8,), seed=0),
            fed,
            groups,
            TrainerConfig(group_rounds=1, local_rounds=1, num_sampled=2,
                          max_rounds=2, seed=0),
            paper_cost_model(),
        )
        history = trainer.run()
        assert history.total_cost > 0
        assert 0.0 <= history.final_accuracy <= 1.0
