"""Tests for model containers, flat parameters, and the model zoo."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    MLP,
    AudioCNN,
    CrossEntropyLoss,
    ResNetLite,
    SGD,
    SoftmaxRegression,
    make_audio_cnn,
    make_mlp,
    make_resnet_lite,
)


class TestFlatParams:
    def test_roundtrip(self):
        m = make_mlp(8, 3, hidden=(6,), seed=0)
        v = m.get_params()
        assert v.shape == (m.num_params,)
        m.set_params(np.arange(v.size, dtype=float))
        assert np.allclose(m.get_params(), np.arange(v.size))

    def test_set_params_changes_forward(self):
        m = make_mlp(4, 2, hidden=(), seed=0)
        x = np.ones((1, 4))
        before = m.forward(x, training=False).copy()
        m.set_params(m.get_params() * 2.0)
        after = m.forward(x, training=False)
        assert not np.allclose(before, after)

    def test_wrong_shape_raises(self):
        m = make_mlp(4, 2, seed=0)
        with pytest.raises(ValueError):
            m.set_params(np.zeros(3))

    def test_get_params_out_buffer(self):
        m = make_mlp(4, 2, seed=0)
        buf = np.empty(m.num_params)
        out = m.get_params(out=buf)
        assert out is buf

    def test_trainable_mask_all_true_for_mlp(self):
        m = make_mlp(4, 2, seed=0)
        assert m.trainable_mask().all()

    def test_trainable_mask_excludes_bn_stats(self):
        m = make_resnet_lite(base_width=4, seed=0)
        mask = m.trainable_mask()
        assert not mask.all()  # running stats present
        assert mask.any()

    def test_identical_seeds_identical_params(self):
        a = make_mlp(6, 3, seed=5)
        b = make_mlp(6, 3, seed=5)
        assert np.allclose(a.get_params(), b.get_params())

    @given(st.integers(1, 5), st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_num_params_matches_vector(self, in_f, classes):
        m = make_mlp(in_f, classes, hidden=(4,), seed=0)
        assert m.get_params().size == m.num_params


class TestEvaluate:
    def test_perfect_predictions(self):
        m = SoftmaxRegression(2, 2, seed=0)
        # Hand-craft weights: class = argmax of features.
        W = np.array([[10.0, -10.0], [-10.0, 10.0]])
        b = np.zeros(2)
        m.set_params(np.concatenate([W.ravel(), b]))
        x = np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 0.5]])
        y = np.array([0, 1, 0])
        loss, acc = m.evaluate(x, y)
        assert acc == 1.0
        assert loss < 1e-4

    def test_empty_dataset(self):
        m = make_mlp(3, 2, seed=0)
        loss, acc = m.evaluate(np.zeros((0, 3)), np.zeros(0, dtype=int))
        assert (loss, acc) == (0.0, 0.0)

    def test_predict_shape(self):
        m = make_mlp(3, 4, seed=0)
        preds = m.predict(np.random.default_rng(0).normal(size=(10, 3)))
        assert preds.shape == (10,)
        assert set(preds.tolist()) <= set(range(4))


class TestModelZoo:
    def test_mlp_accepts_tensor_input(self):
        m = make_mlp(3 * 8 * 8, 10, seed=0)
        out = m.forward(np.zeros((2, 3, 8, 8)), training=False)
        assert out.shape == (2, 10)

    def test_resnet_forward_shape(self):
        m = make_resnet_lite(in_channels=3, num_classes=10, base_width=4, seed=0)
        out = m.forward(np.zeros((2, 3, 8, 8)), training=False)
        assert out.shape == (2, 10)

    def test_resnet_trains_on_tiny_batch(self):
        rng = np.random.default_rng(0)
        m = make_resnet_lite(base_width=4, seed=1)
        x = rng.normal(size=(8, 3, 8, 8))
        y = rng.integers(0, 10, size=8)
        opt = SGD(m, lr=0.05, momentum=0.9)
        first = m.loss_and_grad(x, y)
        opt.step()
        for _ in range(25):
            last = m.loss_and_grad(x, y)
            opt.step()
        assert last < first * 0.5

    def test_audio_cnn_forward_shape(self):
        m = make_audio_cnn(in_channels=8, num_classes=35, seq_len=16, base_width=4, seed=0)
        out = m.forward(np.zeros((3, 8, 16)), training=False)
        assert out.shape == (3, 35)

    def test_audio_cnn_seq_len_validation(self):
        with pytest.raises(ValueError, match="divisible by 4"):
            AudioCNN(seq_len=10)

    def test_resnet_residual_param_layers(self):
        m = make_resnet_lite(base_width=4, seed=0)
        # Flat vector must cover every leaf parameter exactly once.
        total = sum(
            leaf.params[name].size
            for layer in m.layers
            for leaf in layer.param_layers()
            for name in leaf.params
        )
        assert total == m.num_params

    def test_resnet_gradient_flow_through_skip(self):
        """Zeroing the main branch must still propagate via the shortcut."""
        rng = np.random.default_rng(0)
        m = make_resnet_lite(base_width=4, use_batchnorm=False, seed=0)
        x = rng.normal(size=(2, 3, 8, 8))
        y = rng.integers(0, 10, size=2)
        m.loss_and_grad(x, y)
        grads = m.get_grads()
        assert np.isfinite(grads).all()
        assert (np.abs(grads) > 0).mean() > 0.5  # most params receive signal


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 1.0, 0.1]])
        y = np.array([0])
        loss, grad = CrossEntropyLoss()(logits, y)
        p = np.exp(logits) / np.exp(logits).sum()
        assert loss == pytest.approx(-np.log(p[0, 0]))
        assert grad.shape == logits.shape

    def test_cross_entropy_gradient_sums_to_zero(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 4))
        y = rng.integers(0, 4, size=5)
        _, grad = CrossEntropyLoss()(logits, y)
        # Softmax-CE gradient rows sum to zero.
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_batch_mismatch_raises(self):
        with pytest.raises(ValueError, match="batch mismatch"):
            CrossEntropyLoss()(np.zeros((3, 2)), np.zeros(2, dtype=int))
