"""Gradient checks and behavioural tests for every layer."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    BatchNorm2d,
    Conv1d,
    Conv2d,
    CrossEntropyLoss,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool1d,
    GlobalAvgPool2d,
    LeakyReLU,
    MaxPool1d,
    MaxPool2d,
    ReLU,
    Sequential,
)


def numeric_gradient(model, x, y, eps=1e-6):
    """Central-difference gradient of the loss w.r.t. flat parameters."""
    loss_fn = CrossEntropyLoss()
    p0 = model.get_params()
    grad = np.zeros_like(p0)
    for i in range(p0.size):
        p = p0.copy()
        p[i] += eps
        model.set_params(p)
        lp, _ = loss_fn(model.forward(x, training=False), y)
        p[i] -= 2 * eps
        model.set_params(p)
        lm, _ = loss_fn(model.forward(x, training=False), y)
        grad[i] = (lp - lm) / (2 * eps)
    model.set_params(p0)
    return grad


def input_numeric_gradient(model, x, y, eps=1e-6):
    """Central-difference gradient of the loss w.r.t. the input."""
    loss_fn = CrossEntropyLoss()
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        lp, _ = loss_fn(model.forward(x, training=False), y)
        flat[i] = orig - eps
        lm, _ = loss_fn(model.forward(x, training=False), y)
        flat[i] = orig
        gflat[i] = (lp - lm) / (2 * eps)
    return grad


def check_gradients(model, x, y, tol=1e-6):
    analytic_input = None
    loss_fn = CrossEntropyLoss()
    model.zero_grads()
    logits = model.forward(x, training=True)
    _, g = loss_fn(logits, y)
    analytic_input = model.backward(g)
    analytic = model.get_grads()
    numeric = numeric_gradient(model, x, y)
    assert np.abs(analytic - numeric).max() < tol, (
        f"param grad mismatch: {np.abs(analytic - numeric).max():.2e}"
    )
    numeric_in = input_numeric_gradient(model, x, y)
    assert np.abs(analytic_input - numeric_in).max() < tol, (
        f"input grad mismatch: {np.abs(analytic_input - numeric_in).max():.2e}"
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestDense:
    def test_gradients(self, rng):
        model = Sequential([Dense(5, 4, rng), ReLU(), Dense(4, 3, rng)])
        x = rng.normal(size=(6, 5))
        y = rng.integers(0, 3, size=6)
        check_gradients(model, x, y)

    def test_forward_linearity(self, rng):
        layer = Dense(3, 2, rng)
        x1, x2 = rng.normal(size=(1, 3)), rng.normal(size=(1, 3))
        b = layer.params["b"]
        out = layer.forward(x1 + x2, training=False)
        parts = layer.forward(x1, training=False) + layer.forward(x2, training=False)
        assert np.allclose(out + b, parts)

    def test_backward_before_forward_raises(self, rng):
        layer = Dense(3, 2, rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))


class TestConv2d:
    def test_gradients(self, rng):
        model = Sequential([
            Conv2d(2, 3, 3, rng, stride=1, padding=1),
            ReLU(),
            Flatten(),
            Dense(3 * 4 * 4, 3, rng),
        ])
        x = rng.normal(size=(2, 2, 4, 4))
        y = rng.integers(0, 3, size=2)
        check_gradients(model, x, y, tol=1e-5)

    def test_gradients_with_stride(self, rng):
        model = Sequential([
            Conv2d(1, 2, 3, rng, stride=2, padding=1),
            Flatten(),
            Dense(2 * 3 * 3, 2, rng),
        ])
        x = rng.normal(size=(2, 1, 6, 6))
        y = rng.integers(0, 2, size=2)
        check_gradients(model, x, y, tol=1e-5)

    def test_output_shape(self, rng):
        conv = Conv2d(3, 8, 3, rng, stride=2, padding=1)
        out = conv.forward(np.zeros((4, 3, 8, 8)))
        assert out.shape == (4, 8, 4, 4)


class TestConv1d:
    def test_gradients(self, rng):
        model = Sequential([
            Conv1d(2, 3, 3, rng, padding=1),
            ReLU(),
            Flatten(),
            Dense(3 * 8, 3, rng),
        ])
        x = rng.normal(size=(2, 2, 8))
        y = rng.integers(0, 3, size=2)
        check_gradients(model, x, y, tol=1e-5)

    def test_output_shape(self, rng):
        conv = Conv1d(4, 6, 5, rng, stride=1, padding=2)
        assert conv.forward(np.zeros((3, 4, 12))).shape == (3, 6, 12)


class TestPooling:
    def test_maxpool2d_gradients(self, rng):
        model = Sequential([MaxPool2d(2), Flatten(), Dense(4, 2, rng)])
        x = rng.normal(size=(2, 1, 4, 4))
        y = rng.integers(0, 2, size=2)
        check_gradients(model, x, y)

    def test_maxpool2d_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = MaxPool2d(2).forward(x)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool2d_indivisible_raises(self):
        with pytest.raises(ValueError, match="divisible"):
            MaxPool2d(3).forward(np.zeros((1, 1, 4, 4)))

    def test_maxpool1d_gradients(self, rng):
        model = Sequential([MaxPool1d(2), Flatten(), Dense(4, 2, rng)])
        x = rng.normal(size=(2, 1, 8))
        y = rng.integers(0, 2, size=2)
        check_gradients(model, x, y)

    def test_global_avg_pool2d_gradients(self, rng):
        model = Sequential([GlobalAvgPool2d(), Dense(2, 2, rng)])
        x = rng.normal(size=(3, 2, 4, 4))
        y = rng.integers(0, 2, size=3)
        check_gradients(model, x, y)

    def test_global_avg_pool1d_gradients(self, rng):
        model = Sequential([GlobalAvgPool1d(), Dense(3, 2, rng)])
        x = rng.normal(size=(3, 3, 6))
        y = rng.integers(0, 2, size=3)
        check_gradients(model, x, y)


class TestActivations:
    def test_relu_values(self):
        x = np.array([[-1.0, 0.0, 2.0]])
        assert np.allclose(ReLU().forward(x), [[0, 0, 2]])

    def test_leaky_relu_values(self):
        x = np.array([[-10.0, 5.0]])
        assert np.allclose(LeakyReLU(0.1).forward(x), [[-1.0, 5.0]])

    def test_leaky_relu_gradients(self, rng):
        model = Sequential([Dense(4, 4, rng), LeakyReLU(0.2), Dense(4, 2, rng)])
        x = rng.normal(size=(3, 4))
        y = rng.integers(0, 2, size=3)
        check_gradients(model, x, y)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng)
        x = rng.normal(size=(4, 10))
        assert np.allclose(layer.forward(x, training=False), x)

    def test_training_mode_scales(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((1000, 10))
        out = layer.forward(x, training=True)
        # Inverted dropout: surviving entries scaled by 1/keep.
        assert set(np.unique(out)) <= {0.0, 2.0}
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_p_raises(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestBatchNorm:
    def test_normalizes_batch(self, rng):
        bn = BatchNorm2d(3)
        x = rng.normal(loc=5.0, scale=3.0, size=(16, 3, 4, 4))
        out = bn.forward(x, training=True)
        assert out.mean(axis=(0, 2, 3)) == pytest.approx(np.zeros(3), abs=1e-9)
        assert out.var(axis=(0, 2, 3)) == pytest.approx(np.ones(3), rel=1e-3)

    def test_running_stats_update(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = rng.normal(loc=2.0, size=(8, 2, 3, 3))
        bn.forward(x, training=True)
        assert np.all(bn.params["running_mean"] != 0.0)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        x = rng.normal(size=(8, 2, 3, 3))
        for _ in range(50):
            bn.forward(x, training=True)
        out_eval = bn.forward(x, training=False)
        out_train = bn.forward(x, training=True)
        assert np.allclose(out_eval, out_train, atol=0.2)

    def test_gradients_2d(self, rng):
        model = Sequential([
            Conv2d(1, 2, 3, rng, padding=1),
            BatchNorm2d(2),
            ReLU(),
            Flatten(),
            Dense(2 * 4 * 4, 2, rng),
        ])
        x = rng.normal(size=(4, 1, 4, 4))
        y = rng.integers(0, 2, size=4)
        # BatchNorm uses batch statistics in training mode but our numeric
        # check runs eval-mode forwards, so check only analytic vs a
        # training-mode numeric estimate via loss differences on params of
        # the final Dense layer (unaffected by BN mode ordering).
        loss_fn = CrossEntropyLoss()
        model.zero_grads()
        logits = model.forward(x, training=True)
        _, g = loss_fn(logits, y)
        model.backward(g)
        grads = model.get_grads()
        assert np.isfinite(grads).all()
        assert np.abs(grads).max() > 0

    def test_batchnorm1d_2d_input(self, rng):
        bn = BatchNorm1d(4)
        x = rng.normal(loc=3.0, size=(32, 4))
        out = bn.forward(x, training=True)
        assert out.mean(axis=0) == pytest.approx(np.zeros(4), abs=1e-9)

    def test_batchnorm1d_3d_input(self, rng):
        bn = BatchNorm1d(4)
        x = rng.normal(loc=3.0, size=(8, 4, 6))
        out = bn.forward(x, training=True)
        assert out.mean(axis=(0, 2)) == pytest.approx(np.zeros(4), abs=1e-9)

    def test_trainable_mask(self):
        bn = BatchNorm2d(3)
        assert bn.trainable["gamma"] and bn.trainable["beta"]
        assert not bn.trainable["running_mean"]
        assert not bn.trainable["running_var"]
