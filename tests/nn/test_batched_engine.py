"""Differential suite: the batched training engine vs the per-client loop.

``repro.nn.batched`` replaces ``run_local_rounds`` called in a Python loop
with one stacked (B, n, d) forward/backward over a whole group. The engine
is only admissible because it is *bit-identical* to the reference — every
test here asserts exact equality (``np.array_equal``), never closeness:

* end-of-round parameters, across seeds x strategies x step modes,
* strategy side-state (FedProx is stateless, SCAFFOLD's control variates
  must match byte for byte, including dict insertion order),
* full ``run_group_round`` outputs under compression and fault injection,
  where the injected ``FaultTrace`` signatures must also match.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.compression import TopKCompressor
from repro.core.client import run_local_rounds
from repro.core.group import resolve_engine, run_group_round
from repro.core.strategies import (
    FedProxStrategy,
    PlainSGDStrategy,
    ScaffoldStrategy,
)
from repro.data import FederatedDataset, SyntheticImage
from repro.faults import FaultPlan, FaultTrace
from repro.grouping import Group
from repro.nn import SGD, make_mlp
from repro.nn.batched import batched_local_rounds, supports_batched_training
from repro.nn.optim import CosineLR, StepLR
from repro.telemetry import Telemetry

NUM_CLASSES = 10
FEATURES = 192


@pytest.fixture(scope="module")
def fed() -> FederatedDataset:
    data = SyntheticImage(noise_std=2.0, seed=0)
    train, test = data.train_test(2000, 200)
    return FederatedDataset.from_dataset(
        train, test, num_clients=8, alpha=0.3, size_low=20, size_high=50, rng=1
    )


def _strategy(name: str, num_params: int, num_clients: int):
    s = {
        "plain": PlainSGDStrategy,
        "fedprox": lambda: FedProxStrategy(mu=0.1),
        "scaffold": ScaffoldStrategy,
    }[name]()
    s.init_run(num_params, num_clients)
    return s


def _both_paths(fed, *, hidden=(16,), seed=0, strategy_name="plain",
                momentum=0.9, weight_decay=1e-4, lr=0.05, step_mode="epoch",
                local_rounds=2, batch_size=16):
    """(reference params, batched params, reference state, batched state)."""
    clients = fed.clients
    outs = []
    states = []
    for engine in ("reference", "batched"):
        model = make_mlp(FEATURES, NUM_CLASSES, hidden=hidden, seed=seed)
        optimizer = SGD(model, lr=lr, momentum=momentum,
                        weight_decay=weight_decay)
        strategy = _strategy(strategy_name, model.num_params, len(clients))
        start = model.get_params().copy()
        rngs = list(np.random.default_rng(seed + 100).spawn(len(clients)))
        if engine == "reference":
            ends = []
            for c, r in zip(clients, rngs):
                params, _ = run_local_rounds(
                    model, optimizer, c, start, local_rounds, batch_size,
                    rng=r, strategy=strategy, anchor=start,
                    step_mode=step_mode,
                )
                ends.append(params)
            result = np.stack(ends)
        else:
            result = batched_local_rounds(
                model, optimizer, clients, start, local_rounds, batch_size,
                rngs=rngs, strategy=strategy, anchor=start,
                step_mode=step_mode,
            )
        outs.append(result)
        states.append(pickle.dumps(strategy.state_dict()))
    return outs[0], outs[1], states[0], states[1]


class TestBatchedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("strategy_name", ["plain", "fedprox", "scaffold"])
    def test_bitwise_equal_across_strategies(self, fed, seed, strategy_name):
        ref, fast, ref_state, fast_state = _both_paths(
            fed, seed=seed, strategy_name=strategy_name
        )
        assert np.array_equal(ref, fast)
        assert ref_state == fast_state

    @pytest.mark.parametrize("step_mode", ["epoch", "batch"])
    def test_bitwise_equal_across_step_modes(self, fed, step_mode):
        ref, fast, _, _ = _both_paths(fed, step_mode=step_mode)
        assert np.array_equal(ref, fast)

    def test_bitwise_equal_without_momentum_or_decay(self, fed):
        ref, fast, _, _ = _both_paths(fed, momentum=0.0, weight_decay=0.0)
        assert np.array_equal(ref, fast)

    @pytest.mark.parametrize("lr", [
        StepLR(0.1, step_size=3, gamma=0.5),
        CosineLR(0.1, total_steps=20),
    ], ids=["step", "cosine"])
    def test_bitwise_equal_under_lr_schedules(self, fed, lr):
        ref, fast, _, _ = _both_paths(fed, lr=lr)
        assert np.array_equal(ref, fast)

    def test_bitwise_equal_softmax_regression(self, fed):
        # hidden=() exercises the no-hidden-layer plan (single Dense).
        ref, fast, _, _ = _both_paths(fed, hidden=())
        assert np.array_equal(ref, fast)

    def test_bitwise_equal_deep_mlp(self, fed):
        ref, fast, _, _ = _both_paths(fed, hidden=(32, 16))
        assert np.array_equal(ref, fast)


class TestEngineSelection:
    def test_mlp_supported(self):
        assert supports_batched_training(make_mlp(FEATURES, 10, hidden=(16,)))

    def test_conv_model_unsupported(self):
        from repro.nn import make_audio_cnn

        assert not supports_batched_training(make_audio_cnn())

    def test_resolve_auto_falls_back_for_unsupported_model(self):
        from repro.nn import make_audio_cnn

        assert resolve_engine("auto", make_audio_cnn(), None) is False

    def test_resolve_batched_raises_for_unsupported_model(self):
        from repro.nn import make_audio_cnn

        with pytest.raises(ValueError, match="batched"):
            resolve_engine("batched", make_audio_cnn(), None)

    def test_resolve_auto_falls_back_for_custom_strategy(self):
        class Custom(PlainSGDStrategy):
            pass

        model = make_mlp(FEATURES, 10, hidden=(16,))
        # Subclasses may override hooks the lockstep schedule cannot
        # replicate; auto must take the reference path, force must obey.
        assert resolve_engine("auto", model, Custom()) is False
        assert resolve_engine("batched", model, Custom()) is True


class TestGroupRoundParity:
    def _group_round(self, fed, engine, **kwargs):
        model = make_mlp(FEATURES, NUM_CLASSES, hidden=(16,), seed=0)
        optimizer = SGD(model, lr=0.05, momentum=0.9, weight_decay=1e-4)
        group = Group(group_id=0, edge_id=0,
                      members=list(range(len(fed.clients))),
                      label_counts=fed.L.sum(axis=0))
        global_params = model.get_params().copy()
        events: list = []
        params = run_group_round(
            model, optimizer, group, fed.clients, global_params,
            group_rounds=2, local_rounds=1, batch_size=16, rng=7,
            engine=engine, fault_events=events, **kwargs,
        )
        trace = FaultTrace()
        trace.extend(events)
        return params, trace.signature()

    def test_plain_round_parity(self, fed):
        ref = self._group_round(fed, "reference")
        fast = self._group_round(fed, "batched")
        assert np.array_equal(ref[0], fast[0])

    def test_compressed_round_parity(self, fed):
        ref = self._group_round(fed, "reference", compressor=TopKCompressor(0.3))
        fast = self._group_round(fed, "batched", compressor=TopKCompressor(0.3))
        assert np.array_equal(ref[0], fast[0])

    def test_faulted_round_parity(self, fed):
        plan = FaultPlan.from_spec(
            "dropout:0.4@before,straggler:0.5:0.5,loss:0.2", seed=3
        )
        ref = self._group_round(fed, "reference", fault_plan=plan)
        fast = self._group_round(fed, "batched", fault_plan=plan)
        assert np.array_equal(ref[0], fast[0])
        assert ref[1] == fast[1], "fault traces diverged between engines"

    def test_mid_dropout_round_parity(self, fed):
        plan = FaultPlan.from_spec("dropout:0.5@mid", seed=9)
        ref = self._group_round(fed, "reference", fault_plan=plan)
        fast = self._group_round(fed, "batched", fault_plan=plan)
        assert np.array_equal(ref[0], fast[0])
        assert ref[1] == fast[1]


class TestBatchedTelemetry:
    def test_one_client_update_span_per_group_round(self, fed):
        tel = Telemetry(label="batched")
        model = make_mlp(FEATURES, NUM_CLASSES, hidden=(16,), seed=0)
        optimizer = SGD(model, lr=0.05)
        group = Group(group_id=0, edge_id=0,
                      members=list(range(len(fed.clients))),
                      label_counts=fed.L.sum(axis=0))
        run_group_round(
            model, optimizer, group, fed.clients, model.get_params().copy(),
            group_rounds=3, local_rounds=1, batch_size=16, rng=7,
            engine="batched", telemetry=tel,
        )
        spans = [s for s in tel.tracer.spans() if s.name == "client_update"]
        assert len(spans) == 3  # one per k, not one per client
        assert all(s.attrs["clients"] == len(fed.clients) for s in spans)
        assert all(s.attrs["batched"] for s in spans)
        # The per-client counter still reflects every client trained.
        assert tel.metrics.counter("client_updates").value == 3 * len(
            fed.clients
        )
