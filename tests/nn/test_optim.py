"""Tests for SGD and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import SGD, ConstantLR, CosineLR, StepLR, make_mlp, make_resnet_lite


class TestSchedules:
    def test_constant(self):
        s = ConstantLR(0.1)
        assert s.lr_at(0) == s.lr_at(1000) == 0.1

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)

    def test_step(self):
        s = StepLR(1.0, step_size=10, gamma=0.1)
        assert s.lr_at(0) == 1.0
        assert s.lr_at(10) == pytest.approx(0.1)
        assert s.lr_at(25) == pytest.approx(0.01)

    def test_cosine_endpoints(self):
        s = CosineLR(1.0, total_steps=100, min_lr=0.1)
        assert s.lr_at(0) == pytest.approx(1.0)
        assert s.lr_at(100) == pytest.approx(0.1)
        assert s.lr_at(200) == pytest.approx(0.1)  # clamped past the end
        assert 0.1 < s.lr_at(50) < 1.0


class TestSGD:
    def test_plain_step_matches_formula(self):
        m = make_mlp(3, 2, hidden=(), seed=0)
        opt = SGD(m, lr=0.1)
        x = np.ones((2, 3))
        y = np.array([0, 1])
        p0 = m.get_params()
        m.loss_and_grad(x, y)
        g = m.get_grads()
        opt.step()
        assert np.allclose(m.get_params(), p0 - 0.1 * g)

    def test_momentum_accumulates(self):
        m = make_mlp(3, 2, hidden=(), seed=0)
        opt = SGD(m, lr=0.1, momentum=0.9)
        x = np.ones((2, 3))
        y = np.array([0, 1])
        m.loss_and_grad(x, y)
        g1 = m.get_grads().copy()
        p0 = m.get_params()
        opt.step()
        step1 = p0 - m.get_params()
        assert np.allclose(step1, 0.1 * g1)
        # Second step with same gradient: velocity = g + 0.9 g = 1.9 g.
        m.set_params(p0)  # keep gradient roughly equal
        m.loss_and_grad(x, y)
        g2 = m.get_grads().copy()
        p1 = m.get_params()
        opt.step()
        step2 = p1 - m.get_params()
        assert np.allclose(step2, 0.1 * (g2 + 0.9 * g1))

    def test_weight_decay_shrinks_params(self):
        m = make_mlp(3, 2, hidden=(), seed=0)
        m.set_params(np.ones(m.num_params))
        opt = SGD(m, lr=0.1, weight_decay=0.5)
        m.zero_grads()  # gradient 0 -> update is pure decay
        opt.step()
        assert np.allclose(m.get_params(), 1.0 - 0.1 * 0.5)

    def test_grad_offset_applied(self):
        m = make_mlp(3, 2, hidden=(), seed=0)
        opt = SGD(m, lr=1.0)
        m.zero_grads()
        p0 = m.get_params()
        offset = np.full(m.num_params, 0.25)
        opt.step(grad_offset=offset)
        assert np.allclose(m.get_params(), p0 - 0.25)

    def test_non_trainable_params_frozen(self):
        m = make_resnet_lite(base_width=4, seed=0)
        mask = m.trainable_mask()
        p0 = m.get_params()
        opt = SGD(m, lr=0.5)
        rng = np.random.default_rng(0)
        m.loss_and_grad(rng.normal(size=(2, 3, 8, 8)), rng.integers(0, 10, 2))
        # Forward in training mode mutates running stats; capture post-pass.
        p_after_forward = m.get_params()
        opt.step()
        p1 = m.get_params()
        assert np.allclose(p1[~mask], p_after_forward[~mask])
        assert not np.allclose(p1[mask], p_after_forward[mask])

    def test_schedule_advances(self):
        m = make_mlp(3, 2, seed=0)
        opt = SGD(m, lr=StepLR(1.0, step_size=1, gamma=0.5))
        m.zero_grads()
        assert opt.step() == 1.0
        assert opt.step() == 0.5
        assert opt.step() == 0.25

    def test_reset_state(self):
        m = make_mlp(3, 2, seed=0)
        opt = SGD(m, lr=0.1, momentum=0.9)
        m.loss_and_grad(np.ones((1, 3)), np.array([0]))
        opt.step()
        opt.reset_state()
        assert opt.step_count == 0
        assert np.all(opt._velocity == 0.0)

    def test_invalid_momentum(self):
        m = make_mlp(3, 2, seed=0)
        with pytest.raises(ValueError):
            SGD(m, momentum=1.0)
