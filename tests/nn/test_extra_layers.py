"""Tests for LayerNorm and average pooling."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool1d,
    AvgPool2d,
    Dense,
    Flatten,
    LayerNorm,
    ReLU,
    Sequential,
)
from tests.nn.test_layers import check_gradients


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


class TestLayerNorm:
    def test_normalizes_each_sample(self, rng):
        ln = LayerNorm(20)
        x = rng.normal(loc=7.0, scale=3.0, size=(8, 20))
        out = ln.forward(x, training=True)
        assert np.allclose(out.mean(axis=1), 0.0, atol=1e-9)
        assert np.allclose(out.var(axis=1), 1.0, atol=1e-3)

    def test_no_running_statistics(self):
        """The FL-friendly property: LayerNorm has no non-trainable state."""
        ln = LayerNorm(10)
        assert all(ln.trainable.values())
        assert set(ln.params) == {"gamma", "beta"}

    def test_train_eval_consistent(self, rng):
        ln = LayerNorm(12)
        x = rng.normal(size=(4, 12))
        assert np.allclose(
            ln.forward(x, training=True), ln.forward(x, training=False)
        )

    def test_gradients(self, rng):
        model = Sequential([Dense(5, 6, rng), LayerNorm(6), ReLU(), Dense(6, 3, rng)])
        x = rng.normal(size=(4, 5))
        y = rng.integers(0, 3, size=4)
        check_gradients(model, x, y, tol=1e-5)

    def test_multidim_shape(self, rng):
        ln = LayerNorm((3, 4, 4))
        x = rng.normal(size=(2, 3, 4, 4))
        out = ln.forward(x, training=True)
        assert out.shape == x.shape
        flat = out.reshape(2, -1)
        assert np.allclose(flat.mean(axis=1), 0.0, atol=1e-9)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="feature shape"):
            LayerNorm(8).forward(rng.normal(size=(2, 9)))


class TestAvgPool2d:
    def test_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = AvgPool2d(2).forward(x)
        assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_gradients(self, rng):
        model = Sequential([AvgPool2d(2), Flatten(), Dense(4, 2, rng)])
        x = rng.normal(size=(2, 1, 4, 4))
        y = rng.integers(0, 2, size=2)
        check_gradients(model, x, y)

    def test_grad_spreads_evenly(self):
        pool = AvgPool2d(2)
        x = np.zeros((1, 1, 4, 4))
        pool.forward(x, training=True)
        g = pool.backward(np.ones((1, 1, 2, 2)))
        assert np.allclose(g, 0.25)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            AvgPool2d(3).forward(np.zeros((1, 1, 4, 4)))


class TestAvgPool1d:
    def test_values(self):
        x = np.array([[[1.0, 3.0, 5.0, 7.0]]])
        out = AvgPool1d(2).forward(x)
        assert np.allclose(out, [[[2.0, 6.0]]])

    def test_gradients(self, rng):
        model = Sequential([AvgPool1d(2), Flatten(), Dense(4, 2, rng)])
        x = rng.normal(size=(2, 1, 8))
        y = rng.integers(0, 2, size=2)
        check_gradients(model, x, y)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            AvgPool1d(3).forward(np.zeros((1, 1, 4)))
