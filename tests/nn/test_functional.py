"""Tests for the numerical kernels (im2col, softmax, initializers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.functional import (
    col2im,
    col2im_1d,
    im2col,
    im2col_1d,
    log_softmax,
    one_hot,
    softmax,
    xavier_uniform,
    kaiming_normal,
)


class TestIm2col:
    def test_identity_kernel_1x1(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 4, 4))
        cols, (oh, ow) = im2col(x, 1)
        assert (oh, ow) == (4, 4)
        assert np.allclose(
            cols.reshape(2, 4, 4, 3).transpose(0, 3, 1, 2), x
        )

    def test_output_shape(self):
        x = np.zeros((2, 3, 8, 8))
        cols, (oh, ow) = im2col(x, 3, stride=1, pad=1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2 * 8 * 8, 3 * 9)

    def test_stride_two(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols, (oh, ow) = im2col(x, 2, stride=2)
        assert (oh, ow) == (2, 2)
        # First patch is the top-left 2x2 block.
        assert np.allclose(cols[0], [0, 1, 4, 5])

    def test_matches_direct_convolution(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        cols, (oh, ow) = im2col(x, 3, stride=1, pad=0)
        out = (cols @ w.reshape(3, -1).T).reshape(2, oh, ow, 3).transpose(0, 3, 1, 2)
        # Direct (slow) convolution reference.
        ref = np.zeros((2, 3, 3, 3))
        for n in range(2):
            for co in range(3):
                for i in range(3):
                    for j in range(3):
                        ref[n, co, i, j] = (x[n, :, i:i+3, j:j+3] * w[co]).sum()
        assert np.allclose(out, ref)

    def test_invalid_geometry_raises(self):
        x = np.zeros((1, 1, 2, 2))
        with pytest.raises(ValueError, match="output size"):
            im2col(x, 5)

    def test_col2im_adjoint_property(self):
        """<im2col(x), y> == <x, col2im(y)> — the adjoint identity."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 6, 6))
        cols, _ = im2col(x, 3, stride=1, pad=1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, 3, stride=1, pad=1)
        rhs = float((x * back).sum())
        assert np.isclose(lhs, rhs)


class TestIm2col1d:
    def test_shapes(self):
        x = np.zeros((2, 4, 16))
        cols, ol = im2col_1d(x, 3, stride=1, pad=1)
        assert ol == 16
        assert cols.shape == (2 * 16, 4 * 3)

    def test_adjoint_property(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 10))
        cols, _ = im2col_1d(x, 3, stride=1, pad=1)
        y = rng.normal(size=cols.shape)
        back = col2im_1d(y, x.shape, 3, stride=1, pad=1)
        assert np.isclose((cols * y).sum(), (x * back).sum())


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        p = softmax(rng.normal(size=(8, 5)))
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)

    def test_shift_invariance(self):
        z = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(z), softmax(z + 100.0))

    def test_extreme_logits_stable(self):
        z = np.array([[1e4, -1e4, 0.0]])
        p = softmax(z)
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        rng = np.random.default_rng(1)
        z = rng.normal(size=(4, 6))
        assert np.allclose(log_softmax(z), np.log(softmax(z)))

    @given(st.integers(2, 10), st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_softmax_probability_simplex(self, classes, batch):
        rng = np.random.default_rng(classes * 100 + batch)
        p = softmax(rng.normal(scale=5.0, size=(batch, classes)))
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all((p >= 0) & (p <= 1))


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        assert np.allclose(out, np.eye(3)[[0, 2, 1]])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            one_hot(np.array([3]), 3)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError, match="1-D"):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestInitializers:
    def test_xavier_bounds(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform(rng, (100, 100), 100, 100)
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(w) <= limit)

    def test_kaiming_scale(self):
        rng = np.random.default_rng(0)
        w = kaiming_normal(rng, (10000,), 50)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 50), rel=0.05)
